// Quickstart: the DODA library in ~60 effective lines.
//
// Builds a 12-node system under the paper's randomized adversary, runs the
// three paper algorithms (Waiting, Gathering, WaitingGreedy) plus the
// offline optimum on the same committed randomness, and prints a summary.
//
//   $ ./quickstart [seed]

#include <cstdlib>
#include <iostream>

#include "cli.hpp"
#include "doda.hpp"

namespace {

const doda::cli::HelpSpec kHelp{
    "quickstart",
    {"quickstart [seed]"},
    "The DODA library in ~60 effective lines: runs the three paper\n"
    "algorithms plus the offline optimum on one 12-node randomized\n"
    "adversary and prints a summary table.",
    {}};

}  // namespace

int main(int argc, char** argv) {
  using namespace doda;
  std::uint64_t seed = 42;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (cli::isHelpFlag(arg)) cli::exitWithHelp(kHelp);
    if (!arg.empty() && arg[0] == '-') cli::unknownFlag(kHelp, arg);
    seed = cli::parseUint(kHelp, "seed", arg);
  }
  constexpr std::size_t kNodes = 12;
  constexpr core::NodeId kSink = 0;

  // Every node contributes its id as its datum; the sink should end up
  // with 0 + 1 + ... + 11 = 66 under every correct strategy.
  core::RunOptions options;
  for (core::NodeId u = 0; u < kNodes; ++u)
    options.initial_values.push_back(static_cast<double>(u));

  // One adversary per run so every algorithm faces the same randomness.
  auto runWith = [&](core::DodaAlgorithm& algorithm) {
    adversary::RandomizedAdversary adversary(kNodes, seed);
    core::Engine engine({kNodes, kSink}, core::AggregationFunction::sum());
    return engine.run(algorithm, adversary, options);
  };

  util::Table table({"algorithm", "knowledge", "interactions", "sum@sink"});

  algorithms::Waiting waiting;
  auto r = runWith(waiting);
  table.addRow({waiting.name(), waiting.knowledge(),
                std::to_string(r.interactions_to_terminate),
                util::Table::num(r.sink_datum.value, 0)});

  algorithms::Gathering gathering;
  r = runWith(gathering);
  table.addRow({gathering.name(), gathering.knowledge(),
                std::to_string(r.interactions_to_terminate),
                util::Table::num(r.sink_datum.value, 0)});

  {
    // WaitingGreedy needs the meetTime oracle reading the adversary's
    // committed randomness, so it builds its own adversary pair.
    adversary::RandomizedAdversary adversary(kNodes, seed);
    auto meet_time = adversary.makeMeetTimeIndex(kSink);
    const auto tau = static_cast<core::Time>(
        util::closed_form::waitingGreedyTau(kNodes));
    algorithms::WaitingGreedy wg(meet_time, tau);
    core::Engine engine({kNodes, kSink}, core::AggregationFunction::sum());
    const auto wr = engine.run(wg, adversary, options);
    table.addRow({wg.name(), wg.knowledge(),
                  std::to_string(wr.interactions_to_terminate),
                  util::Table::num(wr.sink_datum.value, 0)});
  }

  {
    // The offline optimum on the exact same randomness Gathering saw.
    adversary::RandomizedAdversary adversary(kNodes, seed);
    adversary.lazySequence().ensure(4095);
    const auto seq = adversary.lazySequence().committed();
    const auto opt = analysis::optCompletion(seq, kNodes, kSink);
    table.addRow({"offline optimum", "full",
                  opt == dynagraph::kNever ? "-" : std::to_string(opt + 1),
                  "-"});
  }

  std::cout << "DODA quickstart: " << kNodes
            << " nodes, randomized adversary, seed " << seed << "\n\n";
  table.print(std::cout);
  std::cout << "\n(sum@sink counts node ids 0..11 aggregated: expect 66; "
               "WaitingGreedy's tau = n^1.5 sqrt(log n))\n";
  return 0;
}
