#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

// Shared --help convention for the examples/ CLIs (and the scripts/
// check_cli_help.py conformance test):
//
//   usage: <program> [flags] ...        one or more usage lines
//   <one-paragraph overview>
//   flags:
//     --name <arg>   one-line description
//
// Contract every CLI follows:
//  * -h / --help prints the table to stdout and exits 0, wherever it
//    appears (flags parsed before it must still be valid — the
//    conformance test probes each documented flag as `--flag VALUE
//    --help`);
//  * an unrecognized token starting with '-' prints
//    "<program>: unknown flag: <token>" to stderr and exits 2;
//  * value-flag placeholders use a small fixed vocabulary (<path>, <n>,
//    <float>, <str>, <fmt>, <addr>) so the conformance test can
//    synthesize a parseable probe value for any flag; a flag that takes
//    several argv tokens lists one placeholder per token (repeated
//    numeric placeholders probe with increasing values, so range-shaped
//    flags parse).

namespace doda::cli {

struct Flag {
  std::string name;  // "--seed"
  std::string arg;   // "<n>", or "" for a boolean flag
  std::string help;  // one line
};

struct HelpSpec {
  std::string program;
  std::vector<std::string> usage;  // without the "usage: " prefix
  std::string overview;            // one short paragraph
  std::vector<Flag> flags;
};

inline void printHelp(std::ostream& out, const HelpSpec& spec) {
  for (std::size_t i = 0; i < spec.usage.size(); ++i)
    out << (i == 0 ? "usage: " : "       ") << spec.usage[i] << "\n";
  out << "\n" << spec.overview << "\n";
  if (spec.flags.empty()) return;
  out << "\nflags:\n";
  std::size_t width = 0;
  for (const Flag& flag : spec.flags) {
    const std::size_t w =
        flag.name.size() + (flag.arg.empty() ? 0 : flag.arg.size() + 1);
    width = std::max(width, w);
  }
  for (const Flag& flag : spec.flags) {
    std::string head = flag.name;
    if (!flag.arg.empty()) head += " " + flag.arg;
    out << "  " << head << std::string(width - head.size() + 2, ' ')
        << flag.help << "\n";
  }
}

inline bool isHelpFlag(const std::string& token) {
  return token == "-h" || token == "--help";
}

/// Prints help and exits 0 — call when the parse loop meets -h/--help.
[[noreturn]] inline void exitWithHelp(const HelpSpec& spec) {
  printHelp(std::cout, spec);
  std::exit(0);
}

[[noreturn]] inline void unknownFlag(const HelpSpec& spec,
                                     const std::string& token) {
  std::cerr << spec.program << ": unknown flag: " << token << "\n"
            << "try '" << spec.program << " --help'\n";
  std::exit(2);
}

[[noreturn]] inline void usageError(const HelpSpec& spec,
                                    const std::string& message) {
  std::cerr << spec.program << ": " << message << "\n"
            << "try '" << spec.program << " --help'\n";
  std::exit(2);
}

/// Fetches the value token of a value flag; errors out when it is missing.
inline std::string flagValue(const HelpSpec& spec, int argc, char** argv,
                             int& i, const std::string& flag) {
  if (i + 1 >= argc) usageError(spec, flag + " needs a value");
  return argv[++i];
}

inline std::uint64_t parseUint(const HelpSpec& spec, const std::string& flag,
                               const std::string& text) {
  try {
    std::size_t used = 0;
    const std::uint64_t value = std::stoull(text, &used, 0);
    if (used != text.size()) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    usageError(spec, flag + ": not a number: '" + text + "'");
  }
}

inline double parseDouble(const HelpSpec& spec, const std::string& flag,
                          const std::string& text) {
  try {
    std::size_t used = 0;
    const double value = std::stod(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    usageError(spec, flag + ": not a number: '" + text + "'");
  }
}

}  // namespace doda::cli
