// trace_runner — the library as a command-line tool.
//
// Runs any of the paper's algorithms over a trace (from a file in the
// doda-trace format, or generated on the fly) and reports termination,
// interactions, the paper's cost, and routing metrics.
//
// Usage:
//   trace_runner --trace FILE [--algorithm NAME] [--sink ID] [--stats]
//   trace_runner --random N LENGTH SEED [--algorithm NAME] [--sink ID]
//   trace_runner --save FILE --random N LENGTH SEED      (generate a trace)
//
// --stats additionally prints the trace's temporal-reachability profile
// (journey coverage, temporal diameter, sink eccentricity).
//
// Algorithms: waiting | gathering | waiting-greedy[:TAU] | tree | full |
//             future | all (default)

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/reachability.hpp"
#include "analysis/schedule_metrics.hpp"
#include "cli.hpp"
#include "doda.hpp"
#include "dynagraph/trace_io.hpp"

namespace {

using namespace doda;

struct Options {
  std::string trace_path;
  std::string save_path;
  std::string algorithm = "all";
  std::size_t random_n = 0;
  core::Time random_length = 0;
  std::uint64_t random_seed = 1;
  core::NodeId sink = 0;
  bool stats = false;
};

const cli::HelpSpec kHelp{
    "trace_runner",
    {"trace_runner --trace <path> [flags]",
     "trace_runner --random <n> <n> <n> [flags]"},
    "Runs any of the paper's algorithms over one trace (loaded from a\n"
    "doda-trace file or generated on the fly) and reports termination,\n"
    "interactions, the paper's cost, and routing metrics.",
    {
        {"--trace", "<path>", "load the trace from this doda-trace file"},
        {"--random", "<n> <n> <n>",
         "generate a uniform random trace: nodes, length, seed"},
        {"--algorithm", "<str>",
         "waiting | gathering | waiting-greedy[:TAU] | tree | full | "
         "future | all (default all)"},
        {"--sink", "<n>", "sink node id (default 0)"},
        {"--save", "<path>", "also save the trace to this file"},
        {"--stats", "", "print the temporal-reachability profile"},
    }};

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (cli::isHelpFlag(arg)) cli::exitWithHelp(kHelp);
    if (arg == "--trace") {
      opt.trace_path = cli::flagValue(kHelp, argc, argv, i, arg);
    } else if (arg == "--random") {
      if (i + 3 >= argc) cli::usageError(kHelp, "--random needs N LENGTH SEED");
      opt.random_n = cli::parseUint(kHelp, arg, argv[++i]);
      opt.random_length = cli::parseUint(kHelp, arg, argv[++i]);
      opt.random_seed = cli::parseUint(kHelp, arg, argv[++i]);
    } else if (arg == "--algorithm") {
      opt.algorithm = cli::flagValue(kHelp, argc, argv, i, arg);
    } else if (arg == "--sink") {
      opt.sink = static_cast<core::NodeId>(
          cli::parseUint(kHelp, arg, cli::flagValue(kHelp, argc, argv, i, arg)));
    } else if (arg == "--save") {
      opt.save_path = cli::flagValue(kHelp, argc, argv, i, arg);
    } else if (arg == "--stats") {
      opt.stats = true;
    } else if (!arg.empty() && arg[0] == '-') {
      cli::unknownFlag(kHelp, arg);
    } else {
      cli::usageError(kHelp, "unexpected argument: '" + arg + "'");
    }
  }
  if (opt.trace_path.empty() && opt.random_n == 0)
    cli::usageError(kHelp, "need --trace or --random");
  return opt;
}

void runOne(const std::string& name, core::DodaAlgorithm& algorithm,
            const dynagraph::InteractionSequence& trace, std::size_t n,
            core::NodeId sink, util::Table& table) {
  adversary::SequenceAdversary adversary(trace);
  core::Engine engine({n, sink}, core::AggregationFunction::count());
  const auto r = engine.run(algorithm, adversary);
  if (!r.terminated) {
    table.addRow({name, "no", "-", "-", "-", "-"});
    return;
  }
  const auto cost = analysis::costOf(trace, n, sink,
                                     r.last_transmission_time);
  const auto metrics = analysis::analyzeSchedule(r.schedule, {n, sink});
  table.addRow({name, "yes", std::to_string(r.interactions_to_terminate),
                std::to_string(cost), util::Table::num(metrics.mean_hops, 2),
                std::to_string(metrics.max_hops)});
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);

  dynagraph::InteractionSequence trace;
  std::size_t n = 0;
  if (!opt.trace_path.empty()) {
    const auto loaded = dynagraph::loadTrace(opt.trace_path);
    trace = loaded.sequence;
    n = loaded.node_count;
    std::cout << "Loaded " << trace.length() << " interactions over " << n
              << " nodes from " << opt.trace_path << "\n";
  } else {
    util::Rng rng(opt.random_seed);
    n = opt.random_n;
    trace = dynagraph::traces::uniformRandom(n, opt.random_length, rng);
    std::cout << "Generated uniform random trace: n=" << n
              << " length=" << trace.length() << " seed=" << opt.random_seed
              << "\n";
  }
  if (n < 2 || opt.sink >= n) {
    std::cerr << "error: need >= 2 nodes and a valid sink id\n";
    return 1;
  }
  if (!opt.save_path.empty()) {
    dynagraph::saveTrace(opt.save_path, trace, n);
    std::cout << "Saved trace to " << opt.save_path << "\n";
    if (opt.algorithm == "all" && opt.trace_path.empty()) return 0;
  }

  if (opt.stats) {
    // Bulk-build the per-node timeline up front: the analysis passes below
    // (and any future threaded ones) then only ever read it.
    trace.buildTimelines();
    const auto report = analysis::temporalReachability(trace, n);
    std::cout << "Temporal reachability: "
              << util::Table::num(100.0 * report.reachable_fraction, 1)
              << "% of ordered pairs have a journey; temporal diameter "
              << (report.temporal_diameter == dynagraph::kNever
                      ? std::string("infinite")
                      : std::to_string(report.temporal_diameter))
              << "\n";
    const auto horizon =
        analysis::sinkReachableBy(trace, n, opt.sink);
    std::cout << "All nodes can reach the sink by interaction "
              << (horizon == dynagraph::kNever ? std::string("- (never)")
                                               : std::to_string(horizon))
              << "\n";
  }

  const auto opt_end = analysis::optCompletion(trace, n, opt.sink);
  std::cout << "Offline optimum: "
            << (opt_end == dynagraph::kNever
                    ? std::string("impossible within trace")
                    : std::to_string(opt_end + 1) + " interactions")
            << "\n\n";

  util::Table table({"algorithm", "done", "interactions", "cost",
                     "mean hops", "max hops"});

  auto want = [&](const std::string& name) {
    return opt.algorithm == "all" ||
           opt.algorithm.rfind(name, 0) == 0;  // prefix match for :TAU
  };

  if (want("waiting") && opt.algorithm.rfind("waiting-greedy", 0) != 0) {
    algorithms::Waiting w;
    runOne("waiting", w, trace, n, opt.sink, table);
  }
  if (want("gathering")) {
    algorithms::Gathering ga;
    runOne("gathering", ga, trace, n, opt.sink, table);
  }
  if (want("waiting-greedy") || opt.algorithm == "all") {
    core::Time tau = static_cast<core::Time>(
        util::closed_form::waitingGreedyTau(n));
    const auto colon = opt.algorithm.find(':');
    if (colon != std::string::npos)
      tau = std::strtoull(opt.algorithm.c_str() + colon + 1, nullptr, 10);
    dynagraph::MeetTimeIndex index(trace, opt.sink, n);
    algorithms::WaitingGreedy wg(index, tau);
    runOne("waiting-greedy(tau=" + std::to_string(tau) + ")", wg, trace, n,
           opt.sink, table);
  }
  if (want("tree")) {
    const auto g = trace.underlyingGraph(n);
    if (g.isConnected()) {
      algorithms::SpanningTreeAggregation alg(g);
      runOne("tree", alg, trace, n, opt.sink, table);
    } else {
      table.addRow({"tree", "n/a (G' disconnected)", "-", "-", "-", "-"});
    }
  }
  if (want("full")) {
    algorithms::FullKnowledgeOptimal fk(trace);
    runOne("full", fk, trace, n, opt.sink, table);
  }
  if (want("future")) {
    algorithms::FutureAware fa(trace);
    runOne("future", fa, trace, n, opt.sink, table);
  }

  table.print(std::cout);
  return 0;
}
