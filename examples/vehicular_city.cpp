// Vehicular network (the paper's "cars evolving in a city that communicate
// in an ad hoc manner" motivation).
//
// Cars random-walk a city grid; a road-side unit (RSU, node 0) is the sink.
// Each car carries one measurement (e.g. observed travel time) to be
// aggregated at the RSU, transmitting at most once. Cars that "planned
// their route" know when they will next pass the RSU — exactly the paper's
// meetTime knowledge — so WaitingGreedy applies; we sweep its horizon tau
// and compare with the knowledge-free strategies on the same trace.
//
//   $ ./vehicular_city [seed]

#include <cstdlib>
#include <iostream>

#include "cli.hpp"
#include "doda.hpp"

namespace {

const doda::cli::HelpSpec kHelp{
    "vehicular_city",
    {"vehicular_city [seed]"},
    "Vehicular scenario: cars random-walk a city grid and aggregate one\n"
    "measurement each to a road-side unit, sweeping WaitingGreedy's\n"
    "horizon against the knowledge-free strategies on the same trace.",
    {}};

}  // namespace

int main(int argc, char** argv) {
  using namespace doda;
  std::uint64_t seed = 11;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (cli::isHelpFlag(arg)) cli::exitWithHelp(kHelp);
    if (!arg.empty() && arg[0] == '-') cli::unknownFlag(kHelp, arg);
    seed = cli::parseUint(kHelp, "seed", arg);
  }

  dynagraph::traces::VehicularConfig config;
  config.width = 6;
  config.height = 6;
  config.cars = 14;
  config.steps = 6000;
  const std::size_t n = config.cars + 1;

  util::Rng rng(seed);
  const auto trace = dynagraph::traces::vehicularTrace(config, rng);
  const auto opt = analysis::optCompletion(trace, n, 0);
  std::cout << "Vehicular trace: " << config.cars << " cars + RSU on a "
            << config.width << "x" << config.height << " grid, "
            << trace.length() << " contacts\n";
  std::cout << "Offline optimum completes at interaction "
            << (opt == dynagraph::kNever ? -1 : static_cast<long long>(opt))
            << "\n\n";

  util::Table table({"algorithm", "interactions", "cost", "mean@RSU"});

  // Cars report a travel-time sample; we aggregate the sum and divide by
  // car count at the end (sum is associative; mean is derived at the sink).
  core::RunOptions options;
  options.initial_values.assign(n, 0.0);
  util::Rng samples(seed ^ 0x5a5a);
  for (std::size_t c = 1; c < n; ++c)
    options.initial_values[c] = 8.0 + samples.uniform() * 10.0;

  auto report = [&](core::DodaAlgorithm& algorithm, const std::string& name) {
    adversary::SequenceAdversary adversary(trace);
    core::Engine engine({n, 0}, core::AggregationFunction::sum());
    const auto r = engine.run(algorithm, adversary, options);
    if (!r.terminated) {
      table.addRow({name, "- (did not finish)", "-", "-"});
      return;
    }
    const auto cost =
        analysis::costOf(trace, n, 0, r.last_transmission_time);
    table.addRow({name, std::to_string(r.interactions_to_terminate),
                  std::to_string(cost),
                  util::Table::num(r.sink_datum.value /
                                       static_cast<double>(config.cars),
                                   2)});
  };

  algorithms::Waiting waiting;
  report(waiting, "Waiting");

  algorithms::Gathering gathering;
  report(gathering, "Gathering");

  // WaitingGreedy with three horizons: too eager, paper-optimal-ish, too
  // patient. meetTime comes from the (fixed) planned-routes trace.
  for (const double scale : {0.25, 1.0, 4.0}) {
    dynagraph::MeetTimeIndex meet_time(trace, 0, n);
    const auto tau = static_cast<core::Time>(
        scale * util::closed_form::waitingGreedyTau(n));
    algorithms::WaitingGreedy wg(meet_time, tau);
    report(wg, "WaitingGreedy(tau=" + std::to_string(tau) + ")");
  }

  algorithms::FullKnowledgeOptimal full(trace);
  report(full, "FullKnowledgeOptimal");

  table.print(std::cout);
  std::cout << "\nmean@RSU is the average reported travel time; identical "
               "across strategies\nbecause aggregation is exact — only "
               "latency (cost) differs.\n";

  // ---- Degradation sweep: how does route knowledge hold up in traffic? --
  // Urban radio is bursty (Gilbert–Elliott), cars park mid-route
  // (crash-stop) and a tampered on-board unit lies about its planned route
  // (Byzantine). WaitingGreedy consumes the fault-aware oracle: parked
  // cars' meetings vanish, tampered cars claim "I pass the RSU next".
  std::cout << "\nFault sweep (WaitingGreedy on the fault-aware oracle, "
            << n << " nodes):\n";
  fault::FaultModel bursty = fault::FaultModel::gilbertElliott(
      0.08, 0.4, 0.02, 0.8);
  fault::FaultModel parked = fault::FaultModel::crashStop(0.2, 2000);
  fault::FaultModel tampered = fault::FaultModel::byzantine(0.15);
  const std::vector<sim::FaultSweepPoint> sweep = {
      {"clean", fault::FaultModel::none()},
      {"bursty radio", bursty},
      {"parked cars", parked},
      {"tampered OBU", tampered},
  };
  sim::MeasureConfig mc;
  mc.node_count = n;
  mc.trials = 48;
  mc.seed = seed;
  const auto tau = static_cast<core::Time>(
      util::closed_form::waitingGreedyTau(n));
  const auto curve = sim::measureUnderFaults(
      mc, 1024, sweep, [tau](sim::TrialContext& ctx) {
        return std::make_unique<algorithms::WaitingGreedy>(*ctx.oracle, tau);
      });
  util::Table fault_table({"fault regime", "completion", "interactions",
                           "cost inflation", "residual"});
  for (const auto& point : curve) {
    const auto& d = point.result.degradation;
    fault_table.addRow(
        {point.label, util::Table::num(d.completionProbability(), 2),
         util::Table::num(point.result.interactions.mean(), 1),
         util::Table::num(d.costInflation().mean(), 2),
         util::Table::num(d.residual().mean(), 2)});
  }
  fault_table.print(std::cout);
  std::cout << "\nBursty loss inflates cost but completes; parked cars cap "
               "completion outright;\na tampered route oracle black-holes "
               "data into the liar (residual without crashes).\n";
  return 0;
}
