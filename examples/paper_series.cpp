// paper_series — regenerate the paper's headline series as CSV files for
// external plotting (gnuplot/matplotlib).
//
// Emits, into the given output directory (default "."):
//   series_scaling.csv     mean interactions vs n for offline / WG /
//                          Gathering / Waiting plus the closed forms
//                          (the data behind EXPERIMENTS.md E2-E4, E7, E8)
//   series_wg_fsweep.csv   the Thm 10 U-shape: WG termination vs f at
//                          fixed n (EXPERIMENTS.md E6)
//   series_meetcount.csv   Lemma 1: distinct sink contacts vs f (E5)
//
//   $ ./paper_series [outdir] [trials]

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "cli.hpp"
#include "doda.hpp"

namespace {

const doda::cli::HelpSpec kHelp{
    "paper_series",
    {"paper_series [outdir] [trials]"},
    "Regenerates the paper's headline series as CSV files for external\n"
    "plotting: series_scaling.csv (interactions vs n per knowledge level),\n"
    "series_wg_fsweep.csv (the Thm 10 U-shape), series_meetcount.csv\n"
    "(Lemma 1 meet counts). outdir defaults to \".\", trials to 32.",
    {}};

}  // namespace

int main(int argc, char** argv) {
  using namespace doda;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (cli::isHelpFlag(arg)) cli::exitWithHelp(kHelp);
    if (!arg.empty() && arg[0] == '-') cli::unknownFlag(kHelp, arg);
    positional.push_back(arg);
  }
  const std::string outdir = !positional.empty() ? positional[0] : ".";
  const std::size_t trials =
      positional.size() > 1 ? cli::parseUint(kHelp, "trials", positional[1])
                            : 32;

  // --- series 1: scaling of every knowledge level -----------------------
  {
    util::CsvWriter csv(outdir + "/series_scaling.csv");
    csv.header({"n", "offline", "waiting_greedy", "gathering", "waiting",
                "cf_offline", "cf_gathering", "cf_waiting", "cf_tau"});
    for (std::size_t n : {16u, 32u, 64u, 128u, 256u}) {
      sim::MeasureConfig config;
      config.node_count = n;
      config.trials = trials;
      config.seed = 0xCAFE + n;
      const auto offline = sim::measureOfflineOptimal(config);
      const auto tau = static_cast<core::Time>(
          util::closed_form::waitingGreedyTau(n));
      const auto wg = sim::measureRandomized(config, [tau](sim::TrialContext& ctx) {
        return std::make_unique<algorithms::WaitingGreedy>(ctx.meet_time,
                                                           tau);
      });
      const auto ga = sim::measureRandomized(config, [](sim::TrialContext&) {
        return std::make_unique<algorithms::Gathering>();
      });
      const auto w = sim::measureRandomized(config, [](sim::TrialContext&) {
        return std::make_unique<algorithms::Waiting>();
      });
      csv.row(n, offline.interactions.mean(), wg.interactions.mean(),
              ga.interactions.mean(), w.interactions.mean(),
              util::closed_form::broadcastExpected(n),
              util::closed_form::gatheringExpected(n),
              util::closed_form::waitingExpected(n),
              util::closed_form::waitingGreedyTau(n));
      std::cout << "scaling: n=" << n << " done\n";
    }
    std::cout << "wrote " << outdir << "/series_scaling.csv\n";
  }

  // --- series 2: the Thm 10 U-shape -------------------------------------
  {
    constexpr std::size_t n = 256;
    util::CsvWriter csv(outdir + "/series_wg_fsweep.csv");
    csv.header({"f", "tau_f", "mean_interactions"});
    for (const double f : {4.0, 8.0, 16.0, 24.0, 38.0, 64.0, 96.0, 144.0,
                           192.0}) {
      const double nd = static_cast<double>(n);
      const auto tau = static_cast<core::Time>(
          std::max(nd * f, nd * nd * std::log(nd) / f));
      sim::MeasureConfig config;
      config.node_count = n;
      config.trials = trials;
      config.seed = 0xBEEF + static_cast<std::uint64_t>(f);
      const auto r = sim::measureRandomized(config, [tau](sim::TrialContext& ctx) {
        return std::make_unique<algorithms::WaitingGreedy>(ctx.meet_time,
                                                           tau);
      });
      csv.row(f, tau, r.interactions.mean());
    }
    std::cout << "wrote " << outdir << "/series_wg_fsweep.csv\n";
  }

  // --- series 3: Lemma 1 meet counts -------------------------------------
  {
    constexpr std::size_t n = 512;
    util::CsvWriter csv(outdir + "/series_meetcount.csv");
    csv.header({"f", "interactions", "distinct_mean", "distinct_over_f"});
    util::Rng master(0xF00D);
    for (const double f : {4.0, 8.0, 16.0, 32.0, 64.0, 128.0}) {
      const auto budget = static_cast<core::Time>(n * f);
      util::RunningStats distinct;
      for (std::size_t t = 0; t < trials; ++t) {
        util::Rng rng(master());
        const auto seq = dynagraph::traces::uniformRandom(n, budget, rng);
        distinct.add(static_cast<double>(
            analysis::distinctSinkContacts(seq, 0, budget)));
      }
      csv.row(f, budget, distinct.mean(), distinct.mean() / f);
    }
    std::cout << "wrote " << outdir << "/series_meetcount.csv\n";
  }

  return 0;
}
