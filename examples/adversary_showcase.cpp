// Adversary showcase: the paper's impossibility constructions, live.
//
//   * Thm 1 (n = 3, no knowledge): an online adaptive adversary starves
//     whichever node moves first; no algorithm ever terminates, while
//     offline convergecasts keep being possible — cost grows forever.
//   * Thm 3 (n = 4, underlying graph known): same story on the 4-cycle,
//     even though every node knows G̅.
//   * Thm 2 (oblivious adversary vs deterministic oblivious algorithms):
//     a FIXED sequence, built from the algorithm's code alone, dead-ends
//     the data of a chosen node behind a hole.
//
//   $ ./adversary_showcase

#include <iostream>

#include "cli.hpp"
#include "doda.hpp"

namespace {

using namespace doda;

/// Record what an adaptive adversary emits so we can evaluate the cost
/// function on the emitted prefix.
class Recorder final : public core::Adversary {
 public:
  explicit Recorder(core::Adversary& inner) : inner_(&inner) {}
  std::string name() const override { return inner_->name(); }
  void reset(const core::SystemInfo& info) override { inner_->reset(info); }
  std::optional<core::Interaction> next(
      core::Time t, const core::ExecutionView& view) override {
    auto i = inner_->next(t, view);
    if (i) emitted.append(*i);
    return i;
  }
  dynagraph::InteractionSequence emitted;

 private:
  core::Adversary* inner_;
};

void showAdaptive(const std::string& title, core::Adversary& adversary,
                  std::size_t n) {
  std::cout << "== " << title << " ==\n";
  util::Table table({"horizon", "terminated?", "paper cost"});
  for (const core::Time horizon : {500u, 2000u, 8000u}) {
    algorithms::Gathering victim;  // optimal without knowledge — still loses
    Recorder recorder(adversary);
    core::Engine engine({n, 0}, core::AggregationFunction::count());
    core::RunOptions options;
    options.max_interactions = horizon;
    const auto r = engine.run(victim, recorder, options);
    const auto ending =
        r.terminated ? r.last_transmission_time : dynagraph::kNever;
    const auto cost = analysis::costOf(recorder.emitted, n, 0, ending);
    table.addRow({std::to_string(horizon), r.terminated ? "yes" : "no",
                  std::to_string(cost)});
  }
  table.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  const doda::cli::HelpSpec help{
      "adversary_showcase",
      {"adversary_showcase"},
      "Runs the paper's impossibility constructions live: the Thm 1 and\n"
      "Thm 3 adaptive adversaries that starve every algorithm, and the\n"
      "Thm 2 fixed sequence that dead-ends a deterministic oblivious one.",
      {}};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (doda::cli::isHelpFlag(arg)) doda::cli::exitWithHelp(help);
    if (!arg.empty() && arg[0] == '-') doda::cli::unknownFlag(help, arg);
    doda::cli::usageError(help, "unexpected argument: '" + arg + "'");
  }
  std::cout << "The adversaries of \"Distributed Online Data Aggregation in "
               "Dynamic Graphs\"\n\n";

  adversary::Thm1Adversary thm1;
  showAdaptive("Thm 1: adaptive adversary, 3 nodes, no knowledge", thm1, 3);

  adversary::Thm3Adversary thm3;
  showAdaptive(
      "Thm 3: adaptive adversary, 4-cycle, nodes KNOW the underlying graph",
      thm3, 4);

  std::cout << "== Thm 2: oblivious adversary vs deterministic oblivious "
               "algorithms ==\n";
  util::Table table({"victim", "l0 (prefix)", "stuck node", "terminated?"});
  {
    algorithms::Waiting victim;
    const auto built = adversary::buildThm2Sequence(victim, {6, 0}, 100);
    adversary::SequenceAdversary adversary(built.sequence);
    core::Engine engine({6, 0}, core::AggregationFunction::count());
    const auto r = engine.run(victim, adversary);
    table.addRow({"Waiting", std::to_string(built.prefix_length),
                  std::to_string(built.stuck_node),
                  r.terminated ? "yes" : "no"});
  }
  {
    algorithms::Gathering victim;
    const auto built = adversary::buildThm2Sequence(victim, {6, 0}, 100);
    adversary::SequenceAdversary adversary(built.sequence);
    core::Engine engine({6, 0}, core::AggregationFunction::count());
    const auto r = engine.run(victim, adversary);
    table.addRow({"Gathering", std::to_string(built.prefix_length),
                  std::to_string(built.stuck_node),
                  r.terminated ? "yes" : "no"});
  }
  table.print(std::cout);
  std::cout << "\nIn every case the execution never terminates while "
               "convergecasts remain possible:\nthe measured cost grows "
               "linearly with the horizon — the finite-horizon face of "
               "cost = infinity.\n";
  return 0;
}
