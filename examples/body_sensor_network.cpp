// Body-area sensor network (the paper's "sensors deployed on a human body"
// motivation).
//
// Eight sensors take a temperature reading each; contacts with the hub
// (node 0, the sink) happen periodically with jitter, and adjacent sensors
// meet opportunistically. Each sensor may transmit its (aggregated) reading
// exactly once. We aggregate the maximum temperature — e.g. fever
// detection — under four strategies and compare against the offline
// optimum via the paper's cost function.
//
//   $ ./body_sensor_network [seed]

#include <cstdlib>
#include <iostream>

#include "cli.hpp"
#include "doda.hpp"

namespace {

const doda::cli::HelpSpec kHelp{
    "body_sensor_network",
    {"body_sensor_network [seed]"},
    "Body-area sensor scenario: eight sensors aggregate a maximum\n"
    "temperature to a hub over a jittered periodic contact trace, compared\n"
    "across the paper's strategies and the offline optimum.",
    {}};

}  // namespace

int main(int argc, char** argv) {
  using namespace doda;
  std::uint64_t seed = 7;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (cli::isHelpFlag(arg)) cli::exitWithHelp(kHelp);
    if (!arg.empty() && arg[0] == '-') cli::unknownFlag(kHelp, arg);
    seed = cli::parseUint(kHelp, "seed", arg);
  }

  dynagraph::traces::BodySensorConfig config;
  config.sensors = 8;
  config.slots = 600;
  config.min_period = 6;
  config.max_period = 24;
  config.peer_contact_rate = 0.08;
  const std::size_t n = config.sensors + 1;

  util::Rng rng(seed);
  const auto trace = dynagraph::traces::bodySensorTrace(config, rng);
  std::cout << "Body-sensor trace: " << n << " nodes (hub = sink), "
            << trace.length() << " contacts over " << config.slots
            << " slots\n";

  // Simulated skin temperatures; sensor 5 runs hot.
  core::RunOptions options;
  options.initial_values = {0.0,  36.4, 36.6, 36.5, 36.8,
                            38.9, 36.3, 36.7, 36.5};

  const auto opt = analysis::optCompletion(trace, n, 0);
  std::cout << "Offline optimum completes at interaction "
            << (opt == dynagraph::kNever ? -1 : static_cast<long long>(opt))
            << "\n\n";

  util::Table table(
      {"algorithm", "knowledge", "interactions", "cost", "max-temp@hub"});

  auto report = [&](core::DodaAlgorithm& algorithm) {
    adversary::SequenceAdversary adversary(trace);
    core::Engine engine({n, 0}, core::AggregationFunction::max());
    const auto r = engine.run(algorithm, adversary, options);
    if (!r.terminated) {
      table.addRow({algorithm.name(), algorithm.knowledge(), "-", "-", "-"});
      return;
    }
    const auto cost =
        analysis::costOf(trace, n, 0, r.last_transmission_time);
    table.addRow({algorithm.name(), algorithm.knowledge(),
                  std::to_string(r.interactions_to_terminate),
                  std::to_string(cost),
                  util::Table::num(r.sink_datum.value, 1)});
  };

  algorithms::Waiting waiting;
  report(waiting);

  algorithms::Gathering gathering;
  report(gathering);

  {
    // The spanning-tree algorithm gets the trace's underlying graph — the
    // knowledge model of paper §3.2.
    algorithms::SpanningTreeAggregation tree_agg(trace.underlyingGraph(n));
    report(tree_agg);
  }

  {
    algorithms::FullKnowledgeOptimal full(trace);
    report(full);
  }

  table.print(std::cout);
  std::cout << "\nAll strategies deliver the same max temperature (38.9: "
               "sensor 5's fever) —\nthe knowledge only buys completion "
               "speed, measured by the paper's cost function.\n";

  // ---- How robust is the hub's reading when the body network faults? ----
  // A radio on skin loses packets (Bernoulli), sensors run out of battery
  // (crash-stop), and a compromised firmware lies (Byzantine). The same
  // Waiting strategy, measured over random body-sensor-like contacts under
  // a severity sweep.
  std::cout << "\nFault sweep (Waiting, " << n
            << " nodes, randomized contacts):\n";
  const std::vector<sim::FaultSweepPoint> sweep = {
      {"clean", fault::FaultModel::none()},
      {"loss 20%", fault::FaultModel::bernoulliLoss(0.20)},
      {"battery", fault::FaultModel::crashStop(0.25, 800)},
      {"compromised", fault::FaultModel::byzantine(0.15)},
  };
  sim::MeasureConfig mc;
  mc.node_count = n;
  mc.trials = 64;
  mc.seed = seed;
  const auto curve = sim::measureUnderFaults(
      mc, 512, sweep, [](sim::TrialContext&) {
        return std::make_unique<algorithms::Waiting>();
      });
  util::Table fault_table({"fault regime", "completion", "interactions",
                           "residual", "poisoned trials"});
  for (const auto& point : curve) {
    const auto& d = point.result.degradation;
    fault_table.addRow({point.label,
                        util::Table::num(d.completionProbability(), 2),
                        util::Table::num(point.result.interactions.mean(), 1),
                        util::Table::num(d.residual().mean(), 2),
                        std::to_string(d.poisoned())});
  }
  fault_table.print(std::cout);
  std::cout << "\nLoss only slows aggregation down (the sender retries); "
               "dead batteries strand\nreadings for good; a compromised "
               "sensor taints the hub's aggregate.\n";
  return 0;
}
