// trace_record — dump recorded workloads into a sharded binary trace store.
//
// Records `--trials` independent runs of a workload generator as a
// directory of delta-encoded binary shards (dynagraph/trace_io), ready for
// production-scale replay through the shard-parallel executor
// (sim/trace_replay, bench_trace_replay, measureReplayed*).
//
// Usage:
//   trace_record --out DIR --n N --trials T --length L
//                [--seed S] [--shards K]
//                [--zipf EXPONENT | --edge-markov P_ON P_OFF]
//                [--verify]
//
// Workloads:
//   default        uniform randomized adversary (paper §4); per-trial seeds
//                  are pre-drawn exactly like the in-memory executor, so
//                  replaying the store is bit-identical to the equivalent
//                  synthetic run
//   --zipf E       Zipf-popularity randomized adversary (same seed scheme)
//   --edge-markov  edge-Markov dynamic graph; --length is the number of
//                  Markov steps per trial (interaction counts vary)
//
// --verify reopens the store, streams every shard once, and runs a small
// multi-threaded contact-profile analysis over the first recorded trial.

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "dynagraph/edge_markov.hpp"
#include "dynagraph/trace_io.hpp"
#include "sim/trace_replay.hpp"
#include "util/rng.hpp"

namespace {

using namespace doda;

struct Options {
  std::string out_dir;
  std::size_t n = 0;
  std::size_t trials = 0;
  core::Time length = 0;
  std::uint64_t seed = 0x5eed;
  std::uint32_t shards = 8;
  double zipf = 0.0;
  bool edge_markov = false;
  double p_on = 0.05;
  double p_off = 0.30;
  bool verify = false;
};

[[noreturn]] void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --out DIR --n N --trials T --length L [--seed S]"
               " [--shards K] [--zipf E | --edge-markov P_ON P_OFF]"
               " [--verify]\n";
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto need = [&](int count) {
      if (i + count >= argc) usage(argv[0]);
    };
    if (arg == "--out") {
      need(1);
      opt.out_dir = argv[++i];
    } else if (arg == "--n") {
      need(1);
      opt.n = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--trials") {
      need(1);
      opt.trials = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--length") {
      need(1);
      opt.length = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--seed") {
      need(1);
      opt.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--shards") {
      need(1);
      opt.shards =
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--zipf") {
      need(1);
      opt.zipf = std::strtod(argv[++i], nullptr);
    } else if (arg == "--edge-markov") {
      need(2);
      opt.edge_markov = true;
      opt.p_on = std::strtod(argv[++i], nullptr);
      opt.p_off = std::strtod(argv[++i], nullptr);
    } else if (arg == "--verify") {
      opt.verify = true;
    } else {
      usage(argv[0]);
    }
  }
  if (opt.out_dir.empty() || opt.n < 2 || opt.trials == 0 ||
      opt.length == 0)
    usage(argv[0]);
  if (opt.shards == 0) opt.shards = 1;
  // Shards are the replay parallelism unit; clamp to the trial count
  // instead of collapsing to one shard when asked for more than exist.
  if (opt.shards > opt.trials)
    opt.shards = static_cast<std::uint32_t>(opt.trials);
  return opt;
}

void recordEdgeMarkov(const Options& opt) {
  dynagraph::traces::EdgeMarkovConfig config;
  config.nodes = opt.n;
  config.p_on = opt.p_on;
  config.p_off = opt.p_off;
  config.steps = opt.length;

  sim::recordTrials(opt.out_dir, opt.n, opt.trials, opt.seed, opt.shards,
                    [&](std::size_t /*trial*/, util::Rng& rng) {
                      return dynagraph::traces::edgeMarkovTrace(config, rng);
                    });
}

/// Multi-threaded contact-profile analysis over one shared sequence: the
/// timeline is bulk-built once, then per-node queries run concurrently
/// (safe because buildTimelines() leaves nothing lazily mutable).
std::vector<std::size_t> contactProfile(
    const dynagraph::InteractionSequence& seq, std::size_t n) {
  seq.buildTimelines();
  std::vector<std::size_t> contacts(n, 0);
  const std::size_t workers =
      std::max<std::size_t>(1, std::min<std::size_t>(
                                   n, std::thread::hardware_concurrency()));
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w)
    pool.emplace_back([&, w] {
      for (std::size_t u = w; u < n; u += workers)
        contacts[u] =
            seq.timesInvolving(static_cast<core::NodeId>(u)).size();
    });
  for (auto& thread : pool) thread.join();
  return contacts;
}

int verifyStore(const Options& opt) {
  const auto store = dynagraph::TraceStore::open(opt.out_dir);
  std::uint64_t interactions = 0;
  std::uint64_t bytes = 0;
  for (std::size_t s = 0; s < store.shardCount(); ++s) {
    auto reader = store.openShard(s);
    bytes += dynagraph::kTraceHeaderSize + reader.header().payload_bytes;
    while (reader.beginTrial()) {
      interactions += reader.trialLength();
      reader.skipRest();
    }
  }
  std::cout << "verify: " << store.trialCount() << " trials in "
            << store.shardCount() << " shards, " << interactions
            << " interactions, " << bytes << " bytes ("
            << (interactions == 0
                    ? 0.0
                    : static_cast<double>(bytes) /
                          static_cast<double>(interactions))
            << " bytes/interaction)\n";

  auto reader = store.openShard(0);
  if (reader.beginTrial()) {
    const auto first = reader.readRest();
    const auto contacts = contactProfile(first, store.nodeCount());
    std::size_t busiest = 0;
    for (std::size_t u = 1; u < contacts.size(); ++u)
      if (contacts[u] > contacts[busiest]) busiest = u;
    std::cout << "verify: trial 0 has " << first.length()
              << " interactions; busiest node " << busiest << " with "
              << contacts[busiest] << " contacts\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  try {
    if (opt.edge_markov) {
      recordEdgeMarkov(opt);
    } else {
      sim::MeasureConfig config;
      config.node_count = opt.n;
      config.trials = opt.trials;
      config.seed = opt.seed;
      config.zipf_exponent = opt.zipf;
      sim::recordSynthetic(opt.out_dir, config, opt.length, opt.shards);
    }
    const auto store = dynagraph::TraceStore::open(opt.out_dir);
    std::cout << "recorded " << store.trialCount() << " trials over "
              << store.nodeCount() << " nodes into " << store.shardCount()
              << " shards at " << opt.out_dir << "\n";
    if (opt.verify) return verifyStore(opt);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
