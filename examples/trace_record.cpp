// trace_record — dump recorded workloads into a sharded binary trace store.
//
// Records `--trials` independent runs of a workload generator — or imports
// an external contact-trace dataset — as a directory of binary shards
// (dynagraph/trace_io; compressed v4 by default), ready for
// production-scale replay through the shard-parallel executor
// (sim/trace_replay, bench_trace_replay, measureReplayed*).
//
// Usage:
//   trace_record --out DIR --n N --trials T --length L
//                [--seed S] [--shards K]
//                [--zipf EXPONENT | --edge-markov P_ON P_OFF]
//                [--format v1|v2|v3|v4] [--no-compress] [--block-bytes B]
//                [--durable] [--force] [--verify] [--replay-range A B]
//   trace_record --out DIR --import FILE [--trials T] [--shards K]
//                [--keep-self-loops] [--max-events M]
//                [--format v1|v2|v3|v4] [--no-compress] [--block-bytes B]
//                [--durable] [--force] [--verify] [--replay-range A B]
//   trace_record --out DIR --compact [--shards K]
//                [--format v1|v2|v3|v4] [--no-compress] [--block-bytes B]
//                [--verify] [--replay-range A B]
//
// A non-empty existing --out directory is refused unless --force is given
// or the directory carries a durable-store MANIFEST and --durable asks to
// append to it (storage/durable_store.hpp). --durable writes through the
// crash-safe store: every record/import run commits one immutable segment
// atomically, and a durable --import is *incremental* — re-importing a
// grown contact log appends only the new events, preserving the dense-id
// map. --compact rewrites every committed segment of a durable store into
// one fresh segment in the selected format (v4 by default) and drops the
// old generations.
//
// Workloads:
//   default        uniform randomized adversary (paper §4); per-trial seeds
//                  are pre-drawn exactly like the in-memory executor, so
//                  replaying the store is bit-identical to the equivalent
//                  synthetic run
//   --zipf E       Zipf-popularity randomized adversary (same seed scheme)
//   --edge-markov  edge-Markov dynamic graph; --length is the number of
//                  Markov steps per trial (interaction counts vary)
//   --import FILE  external contact events ("t u v" or "u v" lines, CSV /
//                  TSV / whitespace; SocioPatterns-style lists), densely
//                  renumbered, time-ordered, split into --trials segments;
//                  the ingest streams in two passes, so memory stays flat
//                  no matter how large the event file
//
// --verify reopens the store, streams every shard once, and runs a small
// multi-threaded contact-profile analysis over the first recorded trial.
// --replay-range A B replays only global trials [A, B) through a streamed
// Gathering run (v3/v4 stores seek straight to the window via their block
// index; v1/v2 stores skip forward) and prints the windowed statistics.

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "algorithms/gathering.hpp"
#include "cli.hpp"
#include "dynagraph/edge_markov.hpp"
#include "dynagraph/trace_import.hpp"
#include "dynagraph/trace_io.hpp"
#include "sim/experiment.hpp"
#include "sim/trace_replay.hpp"
#include "storage/durable_import.hpp"
#include "storage/durable_store.hpp"
#include "util/rng.hpp"

namespace {

using namespace doda;

struct Options {
  std::string out_dir;
  std::string import_path;
  std::size_t n = 0;
  std::size_t trials = 0;
  core::Time length = 0;
  std::uint64_t seed = 0x5eed;
  std::uint32_t shards = 8;
  double zipf = 0.0;
  bool edge_markov = false;
  double p_on = 0.05;
  double p_off = 0.30;
  bool verify = false;
  bool keep_self_loops = false;
  bool durable = false;
  bool force = false;
  bool compact = false;
  bool shards_set = false;
  bool replay_range = false;
  std::uint64_t range_first = 0;
  std::uint64_t range_last = 0;
  std::uint64_t max_events = 0;
  dynagraph::TraceWriterOptions writer;
};

const cli::HelpSpec kHelp{
    "trace_record",
    {"trace_record --out <path> --n <n> --trials <n> --length <n> [flags]",
     "trace_record --out <path> --import <path> [flags]",
     "trace_record --out <path> --compact [flags]"},
    "Records workload trials (uniform, Zipf, or edge-Markov), imports an\n"
    "external contact trace, or compacts a durable store — producing a\n"
    "sharded binary trace store (docs/FORMATS.md) ready for\n"
    "production-scale replay.",
    {
        {"--out", "<path>", "store directory to write (required)"},
        {"--n", "<n>", "node count of the generated workload"},
        {"--trials", "<n>",
         "recorded trials (import: segments to split events into)"},
        {"--length", "<n>",
         "interactions per trial (edge-Markov: steps per trial)"},
        {"--seed", "<n>", "master seed, pre-drawn per trial (default 0x5eed)"},
        {"--shards", "<n>", "shard files to spread trials over (default 8)"},
        {"--zipf", "<float>", "Zipf-popularity adversary with this exponent"},
        {"--edge-markov", "<float> <float>",
         "edge-Markov dynamic graph: p_on p_off"},
        {"--import", "<path>",
         "ingest external contact events instead of generating"},
        {"--keep-self-loops", "", "import: keep self-loop events"},
        {"--max-events", "<n>", "import: cap ingested events"},
        {"--format", "<fmt>", "store format: v1 | v2 | v3 | v4 (default v4)"},
        {"--no-compress", "", "disable payload compression"},
        {"--block-bytes", "<n>", "payload block size in bytes"},
        {"--durable", "",
         "write through the crash-safe manifest store (append semantics)"},
        {"--compact", "",
         "rewrite every committed segment of a durable store into one"},
        {"--force", "", "overwrite a non-empty --out directory"},
        {"--verify", "", "reopen the store and stream-check every shard"},
        {"--replay-range", "<n> <n>",
         "replay only global trials [A, B) and print windowed stats"},
    }};

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (cli::isHelpFlag(arg)) cli::exitWithHelp(kHelp);
    auto value = [&] { return cli::flagValue(kHelp, argc, argv, i, arg); };
    auto uintValue = [&] { return cli::parseUint(kHelp, arg, value()); };
    auto doubleValue = [&] { return cli::parseDouble(kHelp, arg, value()); };
    if (arg == "--out") {
      opt.out_dir = value();
    } else if (arg == "--import") {
      opt.import_path = value();
    } else if (arg == "--n") {
      opt.n = uintValue();
    } else if (arg == "--trials") {
      opt.trials = uintValue();
    } else if (arg == "--length") {
      opt.length = uintValue();
    } else if (arg == "--seed") {
      opt.seed = uintValue();
    } else if (arg == "--shards") {
      opt.shards = static_cast<std::uint32_t>(uintValue());
      opt.shards_set = true;
    } else if (arg == "--zipf") {
      opt.zipf = doubleValue();
    } else if (arg == "--edge-markov") {
      opt.edge_markov = true;
      opt.p_on = doubleValue();
      opt.p_off = doubleValue();
    } else if (arg == "--format") {
      const std::string format = value();
      if (format == "v1") {
        opt.writer.format_version = dynagraph::kTraceFormatVersionV1;
      } else if (format == "v2") {
        opt.writer.format_version = dynagraph::kTraceFormatVersionV2;
      } else if (format == "v3") {
        opt.writer.format_version = dynagraph::kTraceFormatVersionV3;
      } else if (format == "v4") {
        opt.writer.format_version = dynagraph::kTraceFormatVersionV4;
      } else {
        cli::usageError(kHelp, "--format: unknown format '" + format + "'");
      }
    } else if (arg == "--no-compress") {
      opt.writer.compress = false;
    } else if (arg == "--block-bytes") {
      opt.writer.block_bytes = uintValue();
    } else if (arg == "--keep-self-loops") {
      opt.keep_self_loops = true;
    } else if (arg == "--max-events") {
      opt.max_events = uintValue();
    } else if (arg == "--durable") {
      opt.durable = true;
    } else if (arg == "--force") {
      opt.force = true;
    } else if (arg == "--compact") {
      opt.compact = true;
    } else if (arg == "--verify") {
      opt.verify = true;
    } else if (arg == "--replay-range") {
      opt.replay_range = true;
      opt.range_first = uintValue();
      opt.range_last = uintValue();
      if (opt.range_first >= opt.range_last)
        cli::usageError(kHelp, "--replay-range: need A < B");
    } else if (!arg.empty() && arg[0] == '-') {
      cli::unknownFlag(kHelp, arg);
    } else {
      cli::usageError(kHelp, "unexpected argument: '" + arg + "'");
    }
  }
  if (opt.out_dir.empty()) cli::usageError(kHelp, "--out is required");
  if (opt.compact) {
    // Compaction only rewrites what the manifest already commits.
    if (!opt.import_path.empty() || opt.n != 0 || opt.trials != 0 ||
        opt.length != 0 || opt.zipf != 0.0 || opt.edge_markov ||
        opt.seed != 0x5eed || opt.durable || opt.force)
      cli::usageError(kHelp,
                      "--compact takes only store-shape flags "
                      "(--shards/--format/--no-compress/--block-bytes)");
  } else if (opt.import_path.empty()) {
    if (opt.n < 2 || opt.trials == 0 || opt.length == 0)
      cli::usageError(kHelp, "need --n >= 2, --trials and --length");
    if (opt.shards == 0) opt.shards = 1;
    // Shards are the replay parallelism unit; clamp to the trial count
    // instead of collapsing to one shard when asked for more than exist.
    if (opt.shards > opt.trials)
      opt.shards = static_cast<std::uint32_t>(opt.trials);
  } else {
    // Generator-only flags must not be silently dropped in import mode.
    if (opt.n != 0 || opt.length != 0 || opt.zipf != 0.0 ||
        opt.edge_markov || opt.seed != 0x5eed)
      cli::usageError(kHelp,
                      "--import is incompatible with the generator flags "
                      "(--n/--length/--zipf/--edge-markov/--seed)");
    if (opt.trials == 0) opt.trials = 1;
  }
  return opt;
}

/// Refuses to write into a non-empty existing directory unless --force is
/// given or the directory is a durable store that --durable will append
/// to. Guards both recorded and imported stores against accidentally
/// shredding a previous run (or a manifest store's segments).
void checkTargetWritable(const Options& opt) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(opt.out_dir) ||
      fs::directory_iterator(opt.out_dir) == fs::directory_iterator())
    return;  // absent or empty: safe to create
  if (opt.durable && storage::DurableTraceStore::isDurableStore(opt.out_dir))
    return;  // appending behind the manifest, not overwriting
  if (opt.force) return;
  throw std::runtime_error(
      opt.out_dir +
      ": refusing to write into a non-empty directory (pass --force to "
      "overwrite, or --durable to append to a manifest store)");
}

void recordEdgeMarkov(const Options& opt) {
  dynagraph::traces::EdgeMarkovConfig config;
  config.nodes = opt.n;
  config.p_on = opt.p_on;
  config.p_off = opt.p_off;
  config.steps = opt.length;

  sim::recordTrials(
      opt.out_dir, opt.n, opt.trials, opt.seed, opt.shards,
      [&](std::size_t /*trial*/, util::Rng& rng) {
        return dynagraph::traces::edgeMarkovTrace(config, rng);
      },
      opt.writer);
}

void importContacts(const Options& opt) {
  dynagraph::ContactImportOptions import;
  import.skip_self_loops = !opt.keep_self_loops;
  import.trials = opt.trials;
  import.max_events = opt.max_events;
  if (opt.durable) {
    const auto result = storage::importContactTraceDurable(
        opt.import_path, opt.out_dir, opt.shards, import, opt.writer);
    if (result.created)
      std::cout << "created durable store, imported " << result.appended_events
                << " events";
    else if (result.appended_events == 0)
      std::cout << "store already holds all " << result.total_events
                << " events, nothing appended";
    else
      std::cout << "appended " << result.appended_events << " new events ("
                << result.total_events << " total) as "
                << result.appended_trials << " trials";
    std::cout << " from " << opt.import_path << "\n";
    return;
  }
  const auto stats = dynagraph::importContactTrace(
      opt.import_path, opt.out_dir, opt.shards, import, opt.writer);
  std::cout << "imported " << stats.events << " events over "
            << stats.node_count << " nodes from " << opt.import_path;
  if (stats.timestamped)
    std::cout << " (t = " << stats.t_min << " .. " << stats.t_max << ")";
  if (stats.self_loops != 0)
    std::cout << ", skipped " << stats.self_loops << " self-loops";
  std::cout << "\n";
}

/// Durable generator recording: one atomic segment per run, appended
/// behind whatever the store already committed. Per-trial seeds follow
/// recordTrials' scheme, so a single-segment durable store replays
/// bit-identically to the plain recorded one.
void recordDurableTrials(const Options& opt,
                         const sim::TrialGenerator& generator) {
  storage::DurableTraceStore store =
      storage::DurableTraceStore::openOrCreate(opt.out_dir);
  util::Rng master(opt.seed);
  std::vector<std::uint64_t> seeds(opt.trials);
  for (auto& seed : seeds) seed = master();
  store.commitSegment(
      std::max<std::size_t>(opt.n, store.nodeCount()), opt.trials, opt.shards,
      opt.writer, [&](dynagraph::TraceStoreWriter& writer) {
        for (std::size_t trial = 0; trial < opt.trials; ++trial) {
          util::Rng rng(seeds[trial]);
          writer.appendTrial(generator(trial, rng));
        }
      });
}

void compactStore(const Options& opt) {
  storage::DurableTraceStore store =
      storage::DurableTraceStore::open(opt.out_dir);
  const std::uint64_t before_bytes = store.openStore().totalFileBytes();
  const std::size_t before_segments = store.version().segments.size();
  store.compact(opt.writer, opt.shards_set ? opt.shards : 0);
  const std::uint64_t after_bytes = store.openStore().totalFileBytes();
  std::cout << "compacted " << before_segments << " segments ("
            << before_bytes << " bytes) into 1 (" << after_bytes
            << " bytes, format v" << opt.writer.format_version << ")\n";
}

/// The store just written, whatever discipline wrote it: a durable store
/// serves its committed segments as one composite TraceStore.
dynagraph::TraceStore openRecorded(const Options& opt) {
  if (storage::DurableTraceStore::isDurableStore(opt.out_dir))
    return storage::DurableTraceStore::open(opt.out_dir).openStore();
  return dynagraph::TraceStore::open(opt.out_dir);
}

/// Multi-threaded contact-profile analysis over one shared sequence: the
/// timeline is bulk-built once, then per-node queries run concurrently
/// (safe because buildTimelines() leaves nothing lazily mutable).
std::vector<std::size_t> contactProfile(
    const dynagraph::InteractionSequence& seq, std::size_t n) {
  seq.buildTimelines();
  std::vector<std::size_t> contacts(n, 0);
  const std::size_t workers =
      std::max<std::size_t>(1, std::min<std::size_t>(
                                   n, std::thread::hardware_concurrency()));
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w)
    pool.emplace_back([&, w] {
      for (std::size_t u = w; u < n; u += workers)
        contacts[u] =
            seq.timesInvolving(static_cast<core::NodeId>(u)).size();
    });
  for (auto& thread : pool) thread.join();
  return contacts;
}

/// Windowed replay demo: streams only trials [A, B) of the store through
/// a Gathering run and prints the window's statistics. On a v3/v4 store the
/// executor seeks straight to the window via the block index.
void replayRange(const dynagraph::TraceStore& store, const Options& opt) {
  sim::ReplayConfig replay;
  replay.trial_range = {opt.range_first, opt.range_last};
  const auto result = sim::replayTraceStreaming(
      store, replay, [](const core::SystemInfo&) {
        return std::make_unique<algorithms::Gathering>();
      });
  std::cout << "replay-range [" << opt.range_first << ", " << opt.range_last
            << "): " << result.interactions.count() << " terminated, "
            << result.failed_trials << " failed";
  if (result.interactions.count() > 0)
    std::cout << ", mean interactions " << result.interactions.mean();
  std::cout << "\n";
}

int verifyStore(const dynagraph::TraceStore& store) {
  std::uint64_t interactions = 0;
  for (std::size_t s = 0; s < store.shardCount(); ++s) {
    auto reader = store.openShard(s);
    while (reader.beginTrial()) {
      interactions += reader.trialLength();
      reader.skipRest();
    }
  }
  const std::uint64_t bytes = store.totalFileBytes();
  std::cout << "verify: " << store.trialCount() << " trials in "
            << store.shardCount() << " shards (format v"
            << store.formatVersion() << "), " << interactions
            << " interactions, " << bytes << " bytes ("
            << (interactions == 0
                    ? 0.0
                    : static_cast<double>(bytes) /
                          static_cast<double>(interactions))
            << " bytes/interaction)\n";

  auto reader = store.openShard(0);
  if (reader.beginTrial()) {
    const auto first = reader.readRest();
    const auto contacts = contactProfile(first, store.nodeCount());
    std::size_t busiest = 0;
    for (std::size_t u = 1; u < contacts.size(); ++u)
      if (contacts[u] > contacts[busiest]) busiest = u;
    std::cout << "verify: trial 0 has " << first.length()
              << " interactions; busiest node " << busiest << " with "
              << contacts[busiest] << " contacts\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  try {
    if (opt.compact) {
      compactStore(opt);
    } else {
      checkTargetWritable(opt);
      if (!opt.import_path.empty()) {
        importContacts(opt);
      } else if (opt.edge_markov) {
        if (opt.durable) {
          dynagraph::traces::EdgeMarkovConfig config;
          config.nodes = opt.n;
          config.p_on = opt.p_on;
          config.p_off = opt.p_off;
          config.steps = opt.length;
          recordDurableTrials(opt, [&](std::size_t /*trial*/, util::Rng& rng) {
            return dynagraph::traces::edgeMarkovTrace(config, rng);
          });
        } else {
          recordEdgeMarkov(opt);
        }
      } else {
        sim::MeasureConfig config;
        config.node_count = opt.n;
        config.trials = opt.trials;
        config.seed = opt.seed;
        config.zipf_exponent = opt.zipf;
        if (opt.durable) {
          recordDurableTrials(opt, [&](std::size_t /*trial*/, util::Rng& rng) {
            return sim::drawAdversarySequence(config, opt.length, rng);
          });
        } else {
          sim::recordSynthetic(opt.out_dir, config, opt.length, opt.shards,
                               opt.writer);
        }
      }
    }
    const auto store = openRecorded(opt);
    std::cout << "recorded " << store.trialCount() << " trials over "
              << store.nodeCount() << " nodes into " << store.shardCount()
              << " shards at " << opt.out_dir << "\n";
    if (opt.replay_range) replayRange(store, opt);
    if (opt.verify) return verifyStore(store);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
