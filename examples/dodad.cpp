// dodad — the doda aggregation daemon.
//
// Serves the repo's measurement and replay engines over a line-delimited
// JSON-RPC dialect on TCP (docs/PROTOCOL.md): clients submit experiment
// jobs (synthetic, fault-injected, or recorded-trace replay), poll or
// subscribe to per-trial folded statistics, and fetch results that are
// bit-identical to the offline binaries for the same seed — at any thread
// count and any number of concurrent clients.

#include <signal.h>
#include <unistd.h>

#include <cstring>
#include <iostream>
#include <string>

#include "cli.hpp"
#include "server/server.hpp"
#include "server/service.hpp"

namespace {

// Self-pipe: the signal handler may only write; main blocks on the read
// end and runs the graceful drain outside signal context.
int g_signal_pipe[2] = {-1, -1};

void onSignal(int) {
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

const doda::cli::HelpSpec kHelp{
    "dodad",
    {"dodad [flags]"},
    "Long-running aggregation server: accepts experiment and replay jobs\n"
    "over line-delimited JSON-RPC on TCP (see docs/PROTOCOL.md), runs them\n"
    "on a bounded job queue over the deterministic trial executors, and\n"
    "streams per-trial folded statistics to subscribers. Results are\n"
    "bit-identical to the offline binaries for the same seed. SIGTERM or\n"
    "SIGINT drains running jobs, then exits.",
    {
        {"--bind", "<addr>", "bind address (default 127.0.0.1)"},
        {"--port", "<n>", "TCP port; 0 picks an ephemeral port (default 0)"},
        {"--workers", "<n>", "concurrent job runner threads (default 1)"},
        {"--max-open", "<n>",
         "open-job admission cap; beyond it submits fail busy (default 8)"},
        {"--max-trials", "<n>",
         "per-job trial budget (default 1048576)"},
        {"--max-frame", "<n>",
         "request frame cap in bytes (default 1048576)"},
        {"--store-root", "<path>",
         "jail replay store paths under this directory (default: off)"},
        {"--store-cache", "<n>",
         "open trace-store handles kept hot (default 8)"},
    }};

}  // namespace

int main(int argc, char** argv) {
  using doda::cli::flagValue;
  using doda::cli::parseUint;

  doda::server::ServiceOptions options;
  doda::server::ServerOptions transport;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (doda::cli::isHelpFlag(flag)) doda::cli::exitWithHelp(kHelp);
    if (flag == "--bind") {
      transport.bind_address = flagValue(kHelp, argc, argv, i, flag);
    } else if (flag == "--port") {
      transport.port = static_cast<std::uint16_t>(
          parseUint(kHelp, flag, flagValue(kHelp, argc, argv, i, flag)));
    } else if (flag == "--workers") {
      options.queue.workers = static_cast<std::size_t>(
          parseUint(kHelp, flag, flagValue(kHelp, argc, argv, i, flag)));
    } else if (flag == "--max-open") {
      options.queue.max_open = static_cast<std::size_t>(
          parseUint(kHelp, flag, flagValue(kHelp, argc, argv, i, flag)));
    } else if (flag == "--max-trials") {
      options.max_trials_per_job =
          parseUint(kHelp, flag, flagValue(kHelp, argc, argv, i, flag));
    } else if (flag == "--max-frame") {
      options.max_frame_bytes = static_cast<std::size_t>(
          parseUint(kHelp, flag, flagValue(kHelp, argc, argv, i, flag)));
    } else if (flag == "--store-root") {
      options.stores.root = flagValue(kHelp, argc, argv, i, flag);
    } else if (flag == "--store-cache") {
      options.stores.capacity = static_cast<std::size_t>(
          parseUint(kHelp, flag, flagValue(kHelp, argc, argv, i, flag)));
    } else if (!flag.empty() && flag[0] == '-') {
      doda::cli::unknownFlag(kHelp, flag);
    } else {
      doda::cli::usageError(kHelp, "unexpected argument: '" + flag + "'");
    }
  }

  if (::pipe(g_signal_pipe) != 0) {
    std::cerr << "dodad: pipe: " << std::strerror(errno) << "\n";
    return 1;
  }
  struct sigaction action {};
  action.sa_handler = onSignal;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  doda::server::Service service(options);
  doda::server::Server server(service, transport);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::cerr << "dodad: " << e.what() << "\n";
    return 1;
  }

  // The conformance harness and tests parse this exact line for the port.
  std::cout << "dodad listening on " << transport.bind_address << ":"
            << server.port() << std::endl;

  char byte = 0;
  while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }

  std::cout << "dodad draining" << std::endl;
  service.drain();  // running jobs finish, new submits get busy
  server.stop();
  std::cout << "dodad stopped" << std::endl;
  return 0;
}
