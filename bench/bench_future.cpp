// E9 — Paper Thm 6 and Cor 1 (future knowledge):
//   * Thm 6: with each node knowing its own future, cost <= n against any
//     adversary (n-1 convergecasts to gossip all futures + 1 to aggregate).
//   * Cor 1: under the randomized adversary, the future-aware algorithm
//     terminates in Theta(n log n) interactions — same order as the full-
//     knowledge optimum of Thm 8.
//
// Reproduction: FutureAware vs FullKnowledgeOptimal: mean interactions
// (both ~ c * n log n, FutureAware's c larger), measured paper-cost
// (FullKnowledge == 1 exactly; FutureAware small and << n).

#include "algorithms/full_knowledge.hpp"
#include "algorithms/future_aware.hpp"
#include "bench_common.hpp"

namespace doda {
namespace {

void BM_FutureKnowledge(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto hint = static_cast<core::Time>(
      8.0 * util::closed_form::broadcastExpected(n));
  sim::MeasureResult future, full;
  for (auto _ : state) {
    future = sim::measureMaterialized(
        bench::configFor(n, 0xE9 + n), hint,
        [](const dynagraph::InteractionSequence& seq,
           const core::SystemInfo&) {
          return std::make_unique<algorithms::FutureAware>(seq);
        });
    full = sim::measureMaterialized(
        bench::configFor(n, 0xE9 + n), hint,
        [](const dynagraph::InteractionSequence& seq,
           const core::SystemInfo&) {
          return std::make_unique<algorithms::FullKnowledgeOptimal>(seq);
        });
  }
  const double paper = util::closed_form::broadcastExpected(n);
  state.counters["future_mean"] = future.interactions.mean();
  state.counters["full_mean"] = full.interactions.mean();
  state.counters["future_over_nlogn"] = future.interactions.mean() / paper;
  state.counters["full_cost"] = full.cost.mean();            // == 1 (Thm 8)
  state.counters["future_cost_mean"] = future.cost.mean();   // << n (Thm 6)
  state.counters["future_cost_max"] = future.cost.max();
  state.counters["thm6_bound_n"] = static_cast<double>(n);
}

BENCHMARK(BM_FutureKnowledge)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace doda

BENCHMARK_MAIN();
