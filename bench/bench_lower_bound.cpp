// E1 — Paper Thm 7: any knowledge-free DODA needs Omega(n^2) expected
// interactions; the proof charges n(n-1)/2 to the LAST transmission alone.
//
// Reproduction: run Gathering (the optimal knowledge-free algorithm) under
// the randomized adversary and report (a) the mean gap between the last two
// transmissions against the paper's n(n-1)/2, and (b) the total
// interactions against n^2.

#include "adversary/randomized_adversary.hpp"
#include "bench_common.hpp"
#include "core/engine.hpp"
#include "util/rng.hpp"

namespace doda {
namespace {

void BM_LastTransmissionGap(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::RunningStats gap, total;
  for (auto _ : state) {
    util::Rng master(0xE1 + n);
    for (std::size_t trial = 0; trial < 200; ++trial) {
      adversary::RandomizedAdversary adv(n, master());
      algorithms::Gathering ga;
      core::Engine engine({n, 0}, core::AggregationFunction::count());
      const auto r = engine.run(ga, adv);
      if (!r.terminated || r.schedule.size() < 2) continue;
      gap.add(static_cast<double>(
          r.schedule.back().time - r.schedule[r.schedule.size() - 2].time));
      total.add(static_cast<double>(r.interactions_to_terminate));
    }
  }
  const double paper_last = util::closed_form::lastTransmissionExpected(n);
  state.counters["last_gap_mean"] = gap.mean();
  state.counters["paper_n(n-1)/2"] = paper_last;
  state.counters["last_gap_ratio"] = gap.mean() / paper_last;
  state.counters["total_mean"] = total.mean();
  state.counters["total_over_n^2"] =
      total.mean() / (static_cast<double>(n) * static_cast<double>(n));
}

BENCHMARK(BM_LastTransmissionGap)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace doda

BENCHMARK_MAIN();
