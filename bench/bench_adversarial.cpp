// E10 — Paper Thm 1 and Thm 3: against the online adaptive adversary, every
// algorithm has cost = infinity (Thm 1, n = 3, no knowledge; Thm 3, n = 4,
// underlying graph known).
//
// Reproduction: "cost = infinity" manifests on finite horizons as a cost
// that grows without bound: we run Gathering (and the spanning-tree
// algorithm for Thm 3) against the adaptive constructions at increasing
// horizons and report the measured paper-cost, which scales linearly with
// the horizon while the execution never terminates.

#include <benchmark/benchmark.h>

#include "adversary/adaptive_adversaries.hpp"
#include "algorithms/gathering.hpp"
#include "algorithms/spanning_tree_aggregation.hpp"
#include "analysis/convergecast.hpp"
#include "core/engine.hpp"
#include "dynagraph/traces.hpp"

namespace doda {
namespace {

/// Replays an adaptive adversary against an algorithm, capturing the
/// emitted sequence, and returns (terminated, measured cost).
std::pair<bool, std::size_t> adaptiveCost(core::DodaAlgorithm& algorithm,
                                          core::Adversary& adversary,
                                          std::size_t n,
                                          core::Time horizon) {
  class Recorder final : public core::Adversary {
   public:
    explicit Recorder(core::Adversary& inner) : inner_(&inner) {}
    std::string name() const override { return inner_->name(); }
    void reset(const core::SystemInfo& info) override { inner_->reset(info); }
    std::optional<core::Interaction> next(
        core::Time t, const core::ExecutionView& view) override {
      auto i = inner_->next(t, view);
      if (i) emitted_.append(*i);
      return i;
    }
    dynagraph::InteractionSequence emitted_;

   private:
    core::Adversary* inner_;
  } recorder(adversary);

  core::Engine engine({n, 0}, core::AggregationFunction::count());
  core::RunOptions options;
  options.max_interactions = horizon;
  const auto r = engine.run(algorithm, recorder, options);
  const auto ending =
      r.terminated ? r.last_transmission_time : dynagraph::kNever;
  return {r.terminated,
          analysis::costOf(recorder.emitted_, n, 0, ending)};
}

void BM_Thm1CostGrowsWithHorizon(benchmark::State& state) {
  const auto horizon = static_cast<core::Time>(state.range(0));
  bool terminated = true;
  std::size_t cost = 0;
  for (auto _ : state) {
    algorithms::Gathering ga;
    adversary::Thm1Adversary adv;
    std::tie(terminated, cost) = adaptiveCost(ga, adv, 3, horizon);
  }
  state.counters["terminated"] = terminated ? 1 : 0;  // always 0 (Thm 1)
  state.counters["cost"] = static_cast<double>(cost);
  state.counters["cost_per_1k_horizon"] =
      1000.0 * static_cast<double>(cost) / static_cast<double>(horizon);
}

BENCHMARK(BM_Thm1CostGrowsWithHorizon)
    ->Arg(1000)
    ->Arg(4000)
    ->Arg(16000)
    ->Arg(64000)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_Thm3CostGrowsWithHorizon(benchmark::State& state) {
  const auto horizon = static_cast<core::Time>(state.range(0));
  bool terminated = true;
  std::size_t cost = 0;
  for (auto _ : state) {
    // The victim knows the true underlying graph (the 4-cycle) — and still
    // loses, which is the point of Thm 3.
    algorithms::SpanningTreeAggregation alg(dynagraph::traces::ringGraph(4));
    adversary::Thm3Adversary adv;
    std::tie(terminated, cost) = adaptiveCost(alg, adv, 4, horizon);
  }
  state.counters["terminated"] = terminated ? 1 : 0;  // always 0 (Thm 3)
  state.counters["cost"] = static_cast<double>(cost);
  state.counters["cost_per_1k_horizon"] =
      1000.0 * static_cast<double>(cost) / static_cast<double>(horizon);
}

BENCHMARK(BM_Thm3CostGrowsWithHorizon)
    ->Arg(1000)
    ->Arg(4000)
    ->Arg(16000)
    ->Arg(64000)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace doda

BENCHMARK_MAIN();
