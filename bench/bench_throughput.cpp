// Trial-throughput benchmark for the parallel experiment subsystem.
//
// Unlike the reproduction benches (which report scientific quantities via
// Google Benchmark), this binary measures engineering throughput: how many
// Monte-Carlo trials per second measureRandomized sustains serially
// (threads = 1) versus with the parallel executor (threads = auto), for
// n in {64, 256, 1024}. Results go to stdout and to a JSON file so the
// perf trajectory is tracked across PRs.
//
// The aggregation_intra_* legs measure the OTHER axis of parallelism: one
// huge-n trial sharded across cores by the intra-trial block engine
// (core::Engine::runBlocked), at intra-worker counts 1/2/4/8 against the
// serial engine loop. Each leg reports intra_tK_trials_per_sec per worker
// count plus intra_speedup_t8 (the 8-worker scaling-curve point the CI
// gate's --min-speedup floor reads), and self-checks that every intra run
// folds statistics bit-identical to the serial loop.
//
// Usage: bench_throughput [--quick] [--out PATH] [--threads K]
//   --quick    smoke mode for CI: fewer sizes and trials
//   --out      JSON output path (default BENCH_throughput.json)
//   --threads  worker count for the parallel leg (default 0 = all cores)

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "algorithms/gathering.hpp"
#include "algorithms/waiting_greedy.hpp"
#include "sim/experiment.hpp"
#include "util/stats.hpp"

namespace {

using doda::sim::MeasureConfig;
using doda::sim::MeasureResult;

struct Row {
  std::string leg;  // non-empty for the non-default workloads
  std::size_t n = 0;
  std::size_t trials = 0;
  double serial_seconds = 0.0;
  double parallel_seconds = 0.0;
  std::size_t parallel_threads = 0;
  double mean_interactions = 0.0;

  double serialRate() const { return trials / serial_seconds; }
  double parallelRate() const { return trials / parallel_seconds; }
  double speedup() const { return serial_seconds / parallel_seconds; }
};

doda::sim::AlgorithmFactory waitingGreedy(std::size_t n) {
  const auto tau = static_cast<doda::core::Time>(
      doda::util::closed_form::waitingGreedyTau(n));
  return [tau](doda::sim::TrialContext& context) {
    return std::make_unique<doda::algorithms::WaitingGreedy>(
        context.meet_time, tau);
  };
}

doda::sim::AlgorithmFactory gathering() {
  return [](doda::sim::TrialContext&) {
    return std::make_unique<doda::algorithms::Gathering>();
  };
}

double secondsOf(const std::function<MeasureResult()>& run,
                 MeasureResult& out) {
  const auto start = std::chrono::steady_clock::now();
  out = run();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

Row benchOne(std::size_t n, std::size_t trials, std::size_t threads,
             const doda::sim::AlgorithmFactory& factory,
             std::string leg = {}) {
  MeasureConfig config;
  config.node_count = n;
  config.trials = trials;
  config.seed = 0xbe9c'0000 + n;

  Row row;
  row.leg = std::move(leg);
  row.n = n;
  row.trials = trials;
  row.parallel_threads = doda::sim::resolveThreads(threads, trials);

  MeasureResult serial, parallel;
  {
    MeasureConfig c = config;
    c.threads = 1;
    row.serial_seconds =
        secondsOf([&] { return measureRandomized(c, factory); }, serial);
  }
  {
    MeasureConfig c = config;
    c.threads = threads;
    row.parallel_seconds =
        secondsOf([&] { return measureRandomized(c, factory); }, parallel);
  }
  row.mean_interactions = serial.interactions.mean();

  // The executor's contract: identical statistics for any thread count.
  if (serial.interactions.mean() != parallel.interactions.mean() ||
      serial.interactions.variance() != parallel.interactions.variance() ||
      serial.failed_trials != parallel.failed_trials) {
    std::cerr << "FATAL: serial and parallel statistics diverge at n=" << n
              << "\n";
    std::exit(2);
  }
  return row;
}

constexpr std::size_t kIntraWorkerCounts[] = {1, 2, 4, 8};

struct IntraRow {
  std::string leg;
  std::size_t n = 0;
  std::size_t trials = 0;
  double serial_seconds = 0.0;
  // Seconds per worker count, same order as kIntraWorkerCounts.
  std::vector<double> intra_seconds;
  double mean_interactions = 0.0;

  double serialRate() const { return trials / serial_seconds; }
  double intraRate(std::size_t i) const { return trials / intra_seconds[i]; }
  /// serial engine loop vs blocked engine at the largest worker count —
  /// the scaling-curve point the CI gate's --min-speedup floor reads.
  double speedupT8() const {
    return serial_seconds / intra_seconds.back();
  }
};

/// One intra-trial scaling leg: few huge trials (threads = 1 throughout),
/// the serial loop against the blocked engine at 1/2/4/8 intra workers.
/// `max_interactions` caps runs whose termination point would be
/// impractical (n = 65536 needs ~n^2 interactions) — throughput over a
/// fixed dispatch budget is still a like-for-like scaling measurement.
IntraRow benchIntraOne(std::size_t n, std::size_t trials,
                       doda::core::Time max_interactions, std::string leg) {
  MeasureConfig config;
  config.node_count = n;
  config.trials = trials;
  config.seed = 0x1472a'0000 + n;
  config.threads = 1;
  if (max_interactions != 0) config.max_interactions = max_interactions;

  IntraRow row;
  row.leg = std::move(leg);
  row.n = n;
  row.trials = trials;

  MeasureResult serial;
  row.serial_seconds = secondsOf(
      [&] { return measureRandomized(config, gathering()); }, serial);
  row.mean_interactions = serial.interactions.mean();

  for (const std::size_t workers : kIntraWorkerCounts) {
    MeasureConfig c = config;
    c.intra_trial_workers = workers;
    // Engage the blocked engine even at one worker (partitions > 1), so
    // intra_t1 measures the blocked engine's serial overhead, not the
    // serial loop again.
    c.intra_trial_partitions = std::max<std::size_t>(workers, 2);
    MeasureResult intra;
    row.intra_seconds.push_back(
        secondsOf([&] { return measureRandomized(c, gathering()); }, intra));
    // The blocked engine's contract: bit-identical statistics for every
    // workers/partitions choice.
    if (serial.interactions.mean() != intra.interactions.mean() ||
        serial.interactions.variance() != intra.interactions.variance() ||
        serial.failed_trials != intra.failed_trials) {
      std::cerr << "FATAL: serial and intra-trial statistics diverge at n="
                << n << " workers=" << workers << "\n";
      std::exit(2);
    }
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_throughput.json";
  std::size_t threads = 0;  // 0 = all cores
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      try {
        threads = std::stoul(argv[++i]);
      } catch (const std::exception&) {
        std::cerr << "--threads: expected a number, got '" << argv[i]
                  << "'\n";
        return 1;
      }
    } else {
      std::cerr
          << "usage: bench_throughput [--quick] [--out PATH] [--threads K]\n";
      return 1;
    }
  }

  // Open the output before the (potentially minutes-long) measurement so a
  // bad path fails immediately.
  std::ofstream json(out_path);
  if (!json) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }

  struct Point {
    std::size_t n;
    std::size_t trials;
  };
  const std::vector<Point> points =
      quick ? std::vector<Point>{{64, 40}, {256, 16}}
            : std::vector<Point>{{64, 1000}, {256, 500}, {1024, 100}};
  // Aggregation-heavy case: Gathering transfers eagerly, so the sink-side
  // source sets grow to n entries and every late merge runs through the
  // spilled (bitset) SourceSet representation — the workload the
  // zero-allocation hot path is built for.
  const std::vector<Point> agg_points =
      quick ? std::vector<Point>{{256, 8}}
            : std::vector<Point>{{1024, 24}, {4096, 6}};
  // Intra-trial scaling legs: ONE trial at a time sharded across cores.
  // n = 4096 terminates naturally (~n^2 interactions); the full-mode
  // n = 65536 leg caps the dispatch budget — termination there needs
  // ~4 * 10^9 interactions.
  struct IntraPoint {
    std::size_t n;
    std::size_t trials;
    doda::core::Time max_interactions;  // 0 = uncapped
  };
  const std::vector<IntraPoint> intra_points =
      quick ? std::vector<IntraPoint>{{4096, 2, 0}}
            : std::vector<IntraPoint>{{4096, 4, 0},
                                      {65536, 1, doda::core::Time{1} << 25}};

  std::vector<Row> rows;
  auto runPoint = [&](const Point& point,
                      const doda::sim::AlgorithmFactory& factory,
                      std::string leg) {
    std::printf("%-20s n=%-5zu trials=%-5zu ...",
                leg.empty() ? "waiting_greedy" : leg.c_str(), point.n,
                point.trials);
    std::fflush(stdout);
    const Row row =
        benchOne(point.n, point.trials, threads, factory, std::move(leg));
    std::printf(
        " serial %8.1f trials/s | parallel(x%zu) %8.1f trials/s | "
        "speedup %.2fx\n",
        row.serialRate(), row.parallel_threads, row.parallelRate(),
        row.speedup());
    rows.push_back(row);
  };
  for (const auto& point : points)
    runPoint(point, waitingGreedy(point.n), {});
  for (const auto& point : agg_points)
    runPoint(point, gathering(),
             "aggregation_n" + std::to_string(point.n));

  std::vector<IntraRow> intra_rows;
  for (const auto& point : intra_points) {
    std::string leg = "aggregation_intra_n" + std::to_string(point.n);
    if (point.max_interactions != 0) leg += "_capped";
    std::printf("%-20s n=%-5zu trials=%-5zu ...", leg.c_str(), point.n,
                point.trials);
    std::fflush(stdout);
    const IntraRow row = benchIntraOne(point.n, point.trials,
                                       point.max_interactions, leg);
    std::printf(" serial %6.2f trials/s |", row.serialRate());
    for (std::size_t i = 0; i < row.intra_seconds.size(); ++i)
      std::printf(" t%zu %6.2f |", kIntraWorkerCounts[i], row.intraRate(i));
    std::printf(" speedup(t8) %.2fx\n", row.speedupT8());
    intra_rows.push_back(row);
  }

  json << "{\n"
       << "  \"bench\": \"throughput\",\n"
       << "  \"workload\": \"measureRandomized + WaitingGreedy(tau*) / "
          "Gathering (aggregation legs)\",\n"
       << "  \"hardware_concurrency\": "
       << std::thread::hardware_concurrency() << ",\n"
       << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
       << "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    json << "    {";
    if (!row.leg.empty()) json << "\"leg\": \"" << row.leg << "\", ";
    json << "\"n\": " << row.n << ", \"trials\": " << row.trials
         << ", \"serial_trials_per_sec\": " << row.serialRate()
         << ", \"parallel_trials_per_sec\": " << row.parallelRate()
         << ", \"parallel_threads\": " << row.parallel_threads
         << ", \"speedup\": " << row.speedup()
         << ", \"mean_interactions\": " << row.mean_interactions << "}"
         << (i + 1 < rows.size() || !intra_rows.empty() ? "," : "") << "\n";
  }
  for (std::size_t i = 0; i < intra_rows.size(); ++i) {
    const IntraRow& row = intra_rows[i];
    json << "    {\"leg\": \"" << row.leg << "\", \"n\": " << row.n
         << ", \"trials\": " << row.trials
         << ", \"serial_trials_per_sec\": " << row.serialRate();
    for (std::size_t k = 0; k < row.intra_seconds.size(); ++k)
      json << ", \"intra_t" << kIntraWorkerCounts[k]
           << "_trials_per_sec\": " << row.intraRate(k);
    json << ", \"intra_speedup_t8\": " << row.speedupT8()
         << ", \"mean_interactions\": " << row.mean_interactions << "}"
         << (i + 1 < intra_rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
