// Trial-throughput benchmark for the parallel experiment subsystem.
//
// Unlike the reproduction benches (which report scientific quantities via
// Google Benchmark), this binary measures engineering throughput: how many
// Monte-Carlo trials per second measureRandomized sustains serially
// (threads = 1) versus with the parallel executor (threads = auto), for
// n in {64, 256, 1024}. Results go to stdout and to a JSON file so the
// perf trajectory is tracked across PRs.
//
// Usage: bench_throughput [--quick] [--out PATH] [--threads K]
//   --quick    smoke mode for CI: fewer sizes and trials
//   --out      JSON output path (default BENCH_throughput.json)
//   --threads  worker count for the parallel leg (default 0 = all cores)

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "algorithms/gathering.hpp"
#include "algorithms/waiting_greedy.hpp"
#include "sim/experiment.hpp"
#include "util/stats.hpp"

namespace {

using doda::sim::MeasureConfig;
using doda::sim::MeasureResult;

struct Row {
  std::string leg;  // non-empty for the non-default workloads
  std::size_t n = 0;
  std::size_t trials = 0;
  double serial_seconds = 0.0;
  double parallel_seconds = 0.0;
  std::size_t parallel_threads = 0;
  double mean_interactions = 0.0;

  double serialRate() const { return trials / serial_seconds; }
  double parallelRate() const { return trials / parallel_seconds; }
  double speedup() const { return serial_seconds / parallel_seconds; }
};

doda::sim::AlgorithmFactory waitingGreedy(std::size_t n) {
  const auto tau = static_cast<doda::core::Time>(
      doda::util::closed_form::waitingGreedyTau(n));
  return [tau](doda::sim::TrialContext& context) {
    return std::make_unique<doda::algorithms::WaitingGreedy>(
        context.meet_time, tau);
  };
}

doda::sim::AlgorithmFactory gathering() {
  return [](doda::sim::TrialContext&) {
    return std::make_unique<doda::algorithms::Gathering>();
  };
}

double secondsOf(const std::function<MeasureResult()>& run,
                 MeasureResult& out) {
  const auto start = std::chrono::steady_clock::now();
  out = run();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

Row benchOne(std::size_t n, std::size_t trials, std::size_t threads,
             const doda::sim::AlgorithmFactory& factory,
             std::string leg = {}) {
  MeasureConfig config;
  config.node_count = n;
  config.trials = trials;
  config.seed = 0xbe9c'0000 + n;

  Row row;
  row.leg = std::move(leg);
  row.n = n;
  row.trials = trials;
  row.parallel_threads = doda::sim::resolveThreads(threads, trials);

  MeasureResult serial, parallel;
  {
    MeasureConfig c = config;
    c.threads = 1;
    row.serial_seconds =
        secondsOf([&] { return measureRandomized(c, factory); }, serial);
  }
  {
    MeasureConfig c = config;
    c.threads = threads;
    row.parallel_seconds =
        secondsOf([&] { return measureRandomized(c, factory); }, parallel);
  }
  row.mean_interactions = serial.interactions.mean();

  // The executor's contract: identical statistics for any thread count.
  if (serial.interactions.mean() != parallel.interactions.mean() ||
      serial.interactions.variance() != parallel.interactions.variance() ||
      serial.failed_trials != parallel.failed_trials) {
    std::cerr << "FATAL: serial and parallel statistics diverge at n=" << n
              << "\n";
    std::exit(2);
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_throughput.json";
  std::size_t threads = 0;  // 0 = all cores
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      try {
        threads = std::stoul(argv[++i]);
      } catch (const std::exception&) {
        std::cerr << "--threads: expected a number, got '" << argv[i]
                  << "'\n";
        return 1;
      }
    } else {
      std::cerr
          << "usage: bench_throughput [--quick] [--out PATH] [--threads K]\n";
      return 1;
    }
  }

  // Open the output before the (potentially minutes-long) measurement so a
  // bad path fails immediately.
  std::ofstream json(out_path);
  if (!json) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }

  struct Point {
    std::size_t n;
    std::size_t trials;
  };
  const std::vector<Point> points =
      quick ? std::vector<Point>{{64, 40}, {256, 16}}
            : std::vector<Point>{{64, 1000}, {256, 500}, {1024, 100}};
  // Aggregation-heavy case: Gathering transfers eagerly, so the sink-side
  // source sets grow to n entries and every late merge runs through the
  // spilled (bitset) SourceSet representation — the workload the
  // zero-allocation hot path is built for.
  const std::vector<Point> agg_points =
      quick ? std::vector<Point>{{256, 8}}
            : std::vector<Point>{{1024, 24}, {4096, 6}};

  std::vector<Row> rows;
  auto runPoint = [&](const Point& point,
                      const doda::sim::AlgorithmFactory& factory,
                      std::string leg) {
    std::printf("%-20s n=%-5zu trials=%-5zu ...",
                leg.empty() ? "waiting_greedy" : leg.c_str(), point.n,
                point.trials);
    std::fflush(stdout);
    const Row row =
        benchOne(point.n, point.trials, threads, factory, std::move(leg));
    std::printf(
        " serial %8.1f trials/s | parallel(x%zu) %8.1f trials/s | "
        "speedup %.2fx\n",
        row.serialRate(), row.parallel_threads, row.parallelRate(),
        row.speedup());
    rows.push_back(row);
  };
  for (const auto& point : points)
    runPoint(point, waitingGreedy(point.n), {});
  for (const auto& point : agg_points)
    runPoint(point, gathering(),
             "aggregation_n" + std::to_string(point.n));

  json << "{\n"
       << "  \"bench\": \"throughput\",\n"
       << "  \"workload\": \"measureRandomized + WaitingGreedy(tau*) / "
          "Gathering (aggregation legs)\",\n"
       << "  \"hardware_concurrency\": "
       << std::thread::hardware_concurrency() << ",\n"
       << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
       << "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    json << "    {";
    if (!row.leg.empty()) json << "\"leg\": \"" << row.leg << "\", ";
    json << "\"n\": " << row.n << ", \"trials\": " << row.trials
         << ", \"serial_trials_per_sec\": " << row.serialRate()
         << ", \"parallel_trials_per_sec\": " << row.parallelRate()
         << ", \"parallel_threads\": " << row.parallel_threads
         << ", \"speedup\": " << row.speedup()
         << ", \"mean_interactions\": " << row.mean_interactions << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
