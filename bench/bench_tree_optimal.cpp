// E12 — Paper Thm 5: when the underlying graph G̅ is a tree, the
// spanning-tree aggregation algorithm (knowing G̅) is optimal: cost = 1 on
// every sequence.
//
// Reproduction: random trees of increasing size, randomized fair edge
// schedules; report the measured paper-cost (must be exactly 1 in every
// trial) and the interactions-to-terminate against the offline optimum
// (must coincide). Also the Thm 4 contrast: on non-tree underlying graphs
// the same algorithm still terminates but its cost can exceed 1.

#include <benchmark/benchmark.h>

#include "adversary/sequence_adversary.hpp"
#include "algorithms/spanning_tree_aggregation.hpp"
#include "analysis/convergecast.hpp"
#include "core/engine.hpp"
#include "dynagraph/traces.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace doda {
namespace {

namespace traces = dynagraph::traces;

void BM_TreeOptimality(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kTrials = 16;
  util::RunningStats cost, interactions, opt_gap;
  for (auto _ : state) {
    util::Rng master(0xEC + n);
    for (std::size_t trial = 0; trial < kTrials; ++trial) {
      util::Rng rng(master());
      const auto tree = traces::randomTree(n, rng);
      const auto seq = traces::shuffledRounds(tree, 4 * n, rng);
      algorithms::SpanningTreeAggregation alg(tree);
      adversary::SequenceAdversary adv(seq);
      core::Engine engine({n, 0}, core::AggregationFunction::count());
      const auto r = engine.run(alg, adv);
      if (!r.terminated) continue;
      cost.add(static_cast<double>(
          analysis::costOf(seq, n, 0, r.last_transmission_time)));
      interactions.add(static_cast<double>(r.interactions_to_terminate));
      const auto opt = analysis::optCompletion(seq, n, 0);
      opt_gap.add(static_cast<double>(r.last_transmission_time) -
                  static_cast<double>(opt));
    }
  }
  state.counters["cost_mean"] = cost.mean();  // == 1 exactly (Thm 5)
  state.counters["cost_max"] = cost.max();
  state.counters["interactions_mean"] = interactions.mean();
  state.counters["gap_to_offline_opt"] = opt_gap.mean();  // == 0 (optimal)
}

BENCHMARK(BM_TreeOptimality)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_NonTreeContrast(benchmark::State& state) {
  // Thm 4: same algorithm, non-tree G̅ (tree + extra edges): cost can
  // exceed 1 (finite, but no longer optimal).
  const auto n = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kTrials = 16;
  util::RunningStats cost;
  std::size_t above_one = 0, done = 0;
  for (auto _ : state) {
    util::Rng master(0xED + n);
    for (std::size_t trial = 0; trial < kTrials; ++trial) {
      util::Rng rng(master());
      const auto g = traces::randomConnected(n, n, rng);
      const auto seq = traces::shuffledRounds(g, 4 * n, rng);
      algorithms::SpanningTreeAggregation alg(g);
      adversary::SequenceAdversary adv(seq);
      core::Engine engine({n, 0}, core::AggregationFunction::count());
      const auto r = engine.run(alg, adv);
      if (!r.terminated) continue;
      ++done;
      const auto c =
          analysis::costOf(seq, n, 0, r.last_transmission_time);
      cost.add(static_cast<double>(c));
      if (c > 1) ++above_one;
    }
  }
  state.counters["cost_mean"] = cost.mean();
  state.counters["frac_cost_above_1"] =
      done ? static_cast<double>(above_one) / done : 0.0;
}

BENCHMARK(BM_NonTreeContrast)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace doda

BENCHMARK_MAIN();
