// E4 — Paper Thm 9 (Gathering): E[X_G] = n(n-1) * sum 1/(i(i+1)) = O(n^2)
// (the sum telescopes to 1 - 1/n, so E = (n-1)^2), and Cor 2: Gathering is
// optimal among knowledge-free algorithms (its n^2 matches Thm 7's bound).
//
// Reproduction: mean interactions of Gathering vs the exact closed form
// and the fitted quadratic exponent.

#include <vector>

#include "bench_common.hpp"

namespace doda {
namespace {

std::vector<double> g_ns, g_means;

void BM_Gathering(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::MeasureResult r;
  for (auto _ : state)
    r = sim::measureRandomized(bench::configFor(n, 0xE4 + n),
                               bench::gathering());
  const double paper = util::closed_form::gatheringExpected(n);
  state.counters["mean"] = r.interactions.mean();
  state.counters["paper_(n-1)^2"] = paper;
  state.counters["ratio"] = r.interactions.mean() / paper;
  state.counters["rel_stddev"] =
      r.interactions.stddev() / r.interactions.mean();
  g_ns.push_back(static_cast<double>(n));
  g_means.push_back(r.interactions.mean());
  if (g_ns.size() >= 6)
    state.counters["fitted_exponent"] =
        util::fitPowerLaw(g_ns, g_means).slope;  // ~2.0
}

BENCHMARK(BM_Gathering)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Arg(512)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace doda

BENCHMARK_MAIN();
