// E6 + E7 — Paper Thm 10 and Cor 3 (Waiting Greedy with meetTime):
//   * Thm 10: WG with tau = Theta(max(n f(n), n^2 log n / f(n))) terminates
//     within tau interactions w.h.p. — the two phases trade off through f.
//   * Cor 3: f(n) = sqrt(n log n) minimizes the bound, giving
//     tau = Theta(n^{3/2} sqrt(log n)).
//
// Reproduction (two sweeps):
//   1. f-sweep at n = 256: tau(f) = max(n f, n^2 log n / f); report mean
//      termination and the fraction of runs finishing within tau — the
//      U-shape bottoms out near f* = sqrt(n log n).
//   2. n-sweep at f = f*: report mean termination, its ratio to tau*, and
//      the fitted exponent (~1.5, vs 2.0 for Gathering in E4).

#include <algorithm>
#include <cmath>
#include <vector>

#include "adversary/randomized_adversary.hpp"
#include "bench_common.hpp"
#include "core/engine.hpp"
#include "util/rng.hpp"

namespace doda {
namespace {

/// Runs WG trials and reports (mean termination, fraction <= tau).
std::pair<util::RunningStats, double> runTrials(std::size_t n,
                                                core::Time tau,
                                                std::uint64_t seed) {
  util::Rng master(seed);
  util::RunningStats stats;
  std::size_t within = 0, done = 0;
  for (std::size_t trial = 0; trial < bench::kTrials; ++trial) {
    adversary::RandomizedAdversary adv(n, master());
    auto index = adv.makeMeetTimeIndex(0);
    algorithms::WaitingGreedy wg(index, tau);
    core::Engine engine({n, 0}, core::AggregationFunction::count());
    const auto r = engine.run(wg, adv);
    if (!r.terminated) continue;
    ++done;
    stats.add(static_cast<double>(r.interactions_to_terminate));
    if (r.interactions_to_terminate <= tau) ++within;
  }
  return {stats, done ? static_cast<double>(within) / done : 0.0};
}

void BM_WaitingGreedyFSweep(benchmark::State& state) {
  constexpr std::size_t n = 256;
  const auto f = static_cast<double>(state.range(0));
  const double nd = static_cast<double>(n);
  const auto tau = static_cast<core::Time>(
      std::max(nd * f, nd * nd * std::log(nd) / f));
  std::pair<util::RunningStats, double> result;
  for (auto _ : state) result = runTrials(n, tau, 0xE6 + state.range(0));
  state.counters["f"] = f;
  state.counters["tau(f)"] = static_cast<double>(tau);
  state.counters["mean"] = result.first.mean();
  state.counters["frac_within_tau"] = result.second;
}

// f* = sqrt(n log n) ~ 37.7 at n = 256; sweep around it.
BENCHMARK(BM_WaitingGreedyFSweep)
    ->Arg(8)
    ->Arg(16)
    ->Arg(38)
    ->Arg(96)
    ->Arg(192)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

std::vector<double> g_ns, g_means;

void BM_WaitingGreedyOptimalTau(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto tau =
      static_cast<core::Time>(util::closed_form::waitingGreedyTau(n));
  std::pair<util::RunningStats, double> result;
  for (auto _ : state) result = runTrials(n, tau, 0xE7 + n);
  state.counters["tau*"] = static_cast<double>(tau);
  state.counters["mean"] = result.first.mean();
  state.counters["mean_over_tau"] =
      result.first.mean() / static_cast<double>(tau);
  state.counters["frac_within_tau"] = result.second;
  g_ns.push_back(static_cast<double>(n));
  g_means.push_back(result.first.mean());
  if (g_ns.size() >= 5)
    state.counters["fitted_exponent"] =
        util::fitPowerLaw(g_ns, g_means).slope;  // ~1.5 (Cor 3)
}

BENCHMARK(BM_WaitingGreedyOptimalTau)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace doda

BENCHMARK_MAIN();
