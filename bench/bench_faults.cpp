// Degradation-curve benchmark for the fault-injection subsystem.
//
// Sweeps fault severity (Bernoulli loss, Gilbert–Elliott bursts, crash-stop,
// Byzantine) over Waiting and WaitingGreedy via measureUnderFaults and
// reports both engineering throughput (trials/s, the gated *_per_sec
// metrics) and the science (completion probability, residual, cost
// inflation) so the curves are tracked in CI like every other workload.
//
// Two self-checks run on every invocation and abort with exit 2 when
// violated:
//  * determinism — serial and parallel statistics must be bit-identical;
//  * closed form — Waiting under Bernoulli loss p must match
//    E[X_W(p)] = n(n-1)/2 * H(n-1) / (1-p) within statistical tolerance.
//
// Usage: bench_faults [--quick] [--out PATH] [--threads K]

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "algorithms/waiting.hpp"
#include "algorithms/waiting_greedy.hpp"
#include "sim/fault_experiment.hpp"
#include "util/stats.hpp"

namespace {

using doda::fault::FaultModel;
using doda::sim::FaultMeasureResult;
using doda::sim::FaultSweepPoint;
using doda::sim::MeasureConfig;

struct Row {
  std::string leg;
  std::size_t n = 0;
  std::size_t trials = 0;
  double seconds = 0.0;
  double completion_probability = 0.0;
  double mean_interactions = 0.0;
  double mean_residual = 0.0;
  double mean_cost_inflation = 0.0;
  std::size_t poisoned = 0;

  double rate() const { return static_cast<double>(trials) / seconds; }
};

bool statsEqual(const FaultMeasureResult& a, const FaultMeasureResult& b) {
  return a.interactions.count() == b.interactions.count() &&
         a.interactions.mean() == b.interactions.mean() &&
         a.interactions.variance() == b.interactions.variance() &&
         a.degradation.completed() == b.degradation.completed() &&
         a.degradation.blocked() == b.degradation.blocked() &&
         a.degradation.poisoned() == b.degradation.poisoned() &&
         a.degradation.residual().mean() == b.degradation.residual().mean() &&
         a.degradation.costInflation().mean() ==
             b.degradation.costInflation().mean() &&
         a.timed_out_trials == b.timed_out_trials;
}

doda::sim::AlgorithmFactory waiting() {
  return [](doda::sim::TrialContext&) {
    return std::make_unique<doda::algorithms::Waiting>();
  };
}

doda::sim::AlgorithmFactory waitingGreedy(std::size_t n) {
  const auto tau = static_cast<doda::core::Time>(
      doda::util::closed_form::waitingGreedyTau(n));
  return [tau](doda::sim::TrialContext& context) {
    // The fault-aware oracle: crashed nodes never meet the sink again,
    // Byzantine nodes lie.
    return std::make_unique<doda::algorithms::WaitingGreedy>(*context.oracle,
                                                             tau);
  };
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_faults.json";
  std::size_t threads = 0;  // 0 = all cores
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      try {
        threads = std::stoul(argv[++i]);
      } catch (const std::exception&) {
        std::cerr << "--threads: expected a number, got '" << argv[i]
                  << "'\n";
        return 1;
      }
    } else {
      std::cerr << "usage: bench_faults [--quick] [--out PATH] "
                   "[--threads K]\n";
      return 1;
    }
  }

  std::ofstream json(out_path);
  if (!json) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }

  const std::size_t n = quick ? 16 : 48;
  const std::size_t trials = quick ? 24 : 160;
  const doda::core::Time length_hint = quick ? 1024 : 8192;

  FaultModel mixed_light = FaultModel::gilbertElliott(0.05, 0.5, 0.01, 0.7);
  mixed_light.crash_fraction = 0.05;
  mixed_light.crash_horizon = 4 * n * n;
  FaultModel mixed_heavy = FaultModel::gilbertElliott(0.15, 0.3, 0.05, 0.9);
  mixed_heavy.crash_fraction = 0.15;
  mixed_heavy.crash_horizon = 4 * n * n;
  mixed_heavy.byzantine_fraction = 0.08;

  struct Workload {
    std::string prefix;
    doda::sim::AlgorithmFactory factory;
    std::vector<FaultSweepPoint> sweep;
  };
  const std::vector<Workload> workloads = {
      {"waiting",
       waiting(),
       {{"loss00", FaultModel::none()},
        {"loss10", FaultModel::bernoulliLoss(0.10)},
        {"loss30", FaultModel::bernoulliLoss(0.30)}}},
      {"waiting_greedy",
       waitingGreedy(n),
       {{"clean", FaultModel::none()},
        {"mixed_light", mixed_light},
        {"mixed_heavy", mixed_heavy}}},
  };

  std::vector<Row> rows;
  int failures = 0;
  for (const auto& workload : workloads) {
    MeasureConfig config;
    config.node_count = n;
    config.trials = trials;
    config.seed = 0xfa17'0000 + n;
    config.threads = threads;

    const auto start = std::chrono::steady_clock::now();
    const auto curve = measureUnderFaults(config, length_hint,
                                          workload.sweep, workload.factory);
    const auto end = std::chrono::steady_clock::now();
    const double total_seconds =
        std::chrono::duration<double>(end - start).count();

    // Determinism self-check on the heaviest point: the serial executor
    // must reproduce the parallel statistics bit for bit.
    {
      MeasureConfig serial = config;
      serial.threads = 1;
      serial.faults = workload.sweep.back().model;
      const auto reference = measureWithFaults(serial, length_hint,
                                               workload.factory);
      MeasureConfig parallel = serial;
      parallel.threads = threads;
      const auto concurrent = measureWithFaults(parallel, length_hint,
                                                workload.factory);
      if (!statsEqual(reference, concurrent)) {
        std::cerr << "FATAL: serial and parallel fault statistics diverge "
                     "on leg "
                  << workload.prefix << "_" << workload.sweep.back().label
                  << "\n";
        ++failures;
      }
    }

    // The sweep points share one timed run; attribute time evenly (the
    // gate only needs a stable per-leg throughput signal).
    const double per_point =
        total_seconds / static_cast<double>(workload.sweep.size());
    for (std::size_t i = 0; i < curve.size(); ++i) {
      const auto& point = curve[i];
      Row row;
      row.leg = workload.prefix + "_" + point.label;
      row.n = n;
      row.trials = trials;
      row.seconds = per_point;
      row.completion_probability =
          point.result.degradation.completionProbability();
      row.mean_interactions = point.result.interactions.mean();
      row.mean_residual = point.result.degradation.residual().mean();
      row.mean_cost_inflation =
          point.result.degradation.costInflation().mean();
      row.poisoned = point.result.degradation.poisoned();
      std::printf("%-28s n=%-4zu trials=%-4zu %8.1f trials/s  "
                  "completion %.2f  inflation %.2f  residual %.2f\n",
                  row.leg.c_str(), row.n, row.trials, row.rate(),
                  row.completion_probability, row.mean_cost_inflation,
                  row.mean_residual);
      rows.push_back(row);
    }
  }

  // Closed-form self-check: Waiting under Bernoulli loss p. The quick
  // trial count is small, so the band is wide; the slow statistical test
  // pins the same identity tightly.
  {
    const double p = 0.3;
    MeasureConfig config;
    config.node_count = n;
    config.trials = trials;
    config.seed = 0xc105'ed00;
    config.threads = threads;
    config.faults = FaultModel::bernoulliLoss(p);
    const auto r = measureWithFaults(config, length_hint, waiting());
    const double expected =
        doda::util::closed_form::waitingLossExpected(n, p);
    const double ratio = r.interactions.mean() / expected;
    const double tolerance = quick ? 0.25 : 0.12;
    std::printf("closed-form check: E[X_W(p=%.1f)]=%.1f measured=%.1f "
                "(ratio %.3f, band %.0f%%)\n",
                p, expected, r.interactions.mean(), ratio,
                tolerance * 100);
    if (std::abs(ratio - 1.0) > tolerance) {
      std::cerr << "FATAL: Waiting loss measurement deviates from the "
                   "closed form beyond tolerance\n";
      ++failures;
    }
  }
  if (failures != 0) return 2;

  json << "{\n"
       << "  \"bench\": \"faults\",\n"
       << "  \"workload\": \"measureUnderFaults degradation sweep "
          "(Waiting + WaitingGreedy)\",\n"
       << "  \"hardware_concurrency\": "
       << std::thread::hardware_concurrency() << ",\n"
       << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
       << "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    json << "    {\"leg\": \"" << row.leg << "\", \"n\": " << row.n
         << ", \"trials\": " << row.trials
         << ", \"trials_per_sec\": " << row.rate()
         << ", \"completion_probability\": " << row.completion_probability
         << ", \"mean_interactions\": " << row.mean_interactions
         << ", \"mean_residual\": " << row.mean_residual
         << ", \"mean_cost_inflation\": " << row.mean_cost_inflation
         << ", \"poisoned_trials\": " << row.poisoned << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
