// E2 — Paper Thm 8: the best full-knowledge algorithm terminates in
// Theta(n log n) interactions, in expectation and w.h.p. (via the
// convergecast = reversed broadcast argument).
//
// Reproduction: measure opt(0)+1 under the randomized adversary and compare
// with the closed form (n-1) * H(n-1); also report the relative spread
// (concentration) and the fitted scaling exponent across the sweep.

#include <vector>

#include "bench_common.hpp"

namespace doda {
namespace {

std::vector<double> g_ns, g_means;

void BM_OfflineOptimal(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::MeasureResult r;
  for (auto _ : state)
    r = sim::measureOfflineOptimal(bench::configFor(n, 0xE2 + n));
  const double paper = util::closed_form::broadcastExpected(n);
  state.counters["opt_mean"] = r.interactions.mean();
  state.counters["paper_(n-1)H(n-1)"] = paper;
  state.counters["ratio"] = r.interactions.mean() / paper;
  state.counters["rel_stddev"] =
      r.interactions.stddev() / r.interactions.mean();
  g_ns.push_back(static_cast<double>(n));
  g_means.push_back(r.interactions.mean());
  if (g_ns.size() >= 5)
    state.counters["fitted_exponent"] =
        util::fitPowerLaw(g_ns, g_means).slope;  // ~1 + o(1) for n log n
}

BENCHMARK(BM_OfflineOptimal)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Arg(512)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace doda

BENCHMARK_MAIN();
