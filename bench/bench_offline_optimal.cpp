// E2 — Paper Thm 8: the best full-knowledge algorithm terminates in
// Theta(n log n) interactions (convergecast = reversed broadcast).
//
// Two jobs in one binary:
//  * reproduction: mean opt(0)+1 under the randomized adversary vs the
//    closed form (n-1)*H(n-1) (reported per leg as a JSON field);
//  * engineering: offline-optimal oracle throughput. The oracle legs time
//    optCompletion on pre-drawn sequences (generation excluded), the chain
//    leg times the full T(i) chain, and the measure leg times the
//    end-to-end measureOfflineOptimal path. The *_per_sec fields feed the
//    CI perf-regression gate (scripts/check_bench_regression.py).
//
// Usage: bench_offline_optimal [--quick] [--out PATH]
//   --quick    smoke mode for CI: fewer sizes and trials
//   --out      JSON output path (default BENCH_offline_optimal.json)

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/convergecast.hpp"
#include "sim/experiment.hpp"
#include "util/stats.hpp"

namespace {

using doda::core::Time;
using doda::dynagraph::InteractionSequence;
using doda::dynagraph::kNever;

using Clock = std::chrono::steady_clock;

struct Row {
  std::string leg;
  std::size_t n = 0;
  std::size_t trials = 0;
  double seconds = 0.0;
  double units = 0.0;          // interactions examined / chain terms
  double mean_opt = 0.0;       // mean opt(0)+1 (oracle and measure legs)
  double paper_ratio = 0.0;    // mean / ((n-1) H(n-1))

  double trialsPerSec() const { return trials / std::max(seconds, 1e-9); }
  double unitsPerSec() const { return units / std::max(seconds, 1e-9); }
};

InteractionSequence feasibleSequence(const doda::sim::MeasureConfig& config,
                                     Time initial, doda::util::Rng& rng) {
  InteractionSequence seq =
      doda::sim::drawAdversarySequence(config, initial, rng);
  while (doda::analysis::optCompletion(seq, config.node_count, config.sink) ==
         kNever)
    seq.appendAll(doda::sim::drawAdversarySequence(config, seq.length(), rng));
  return seq;
}

// Every leg runs one untimed warm-up round and then `rounds` timed
// rounds, reporting the *fastest* round. Interference on a shared runner
// only ever slows a round down, so best-of-K is the stable estimator the
// 25% CI tolerance band needs; the rounds also keep each timed window in
// the tens-of-milliseconds range.
Row benchOracle(std::size_t n, std::size_t trials, std::size_t rounds) {
  doda::sim::MeasureConfig config;
  config.node_count = n;
  const auto dn = static_cast<double>(n);
  const Time initial =
      std::max<Time>(16, static_cast<Time>(4.0 * dn * std::log(dn)));

  doda::util::Rng rng(0xE2E2 + n);
  std::vector<InteractionSequence> sequences;
  sequences.reserve(trials);
  for (std::size_t t = 0; t < trials; ++t)
    sequences.push_back(feasibleSequence(config, initial, rng));

  Row row;
  row.leg = "oracle_n" + std::to_string(n);
  row.n = n;
  row.trials = trials;
  double opt_sum = 0.0;
  double units = 0.0;
  double best = 0.0;
  for (std::size_t r = 0; r <= rounds; ++r) {  // round 0 is the warm-up
    units = 0.0;
    const auto t0 = Clock::now();
    for (const auto& seq : sequences) {
      const Time opt = doda::analysis::optCompletion(seq, n, 0);
      if (opt == kNever) {
        std::cerr << "FATAL: pre-validated sequence became infeasible\n";
        std::exit(2);
      }
      if (r == 0) opt_sum += static_cast<double>(opt + 1);
      units += static_cast<double>(opt + 1);  // window examined
    }
    const double s = std::chrono::duration<double>(Clock::now() - t0).count();
    if (r == 1 || (r > 1 && s < best)) best = s;
  }
  row.seconds = best;
  row.units = units;
  row.mean_opt = opt_sum / static_cast<double>(trials);
  row.paper_ratio =
      row.mean_opt / doda::util::closed_form::broadcastExpected(n);
  return row;
}

Row benchChain(std::size_t n, Time length, std::size_t rounds) {
  doda::sim::MeasureConfig config;
  config.node_count = n;
  doda::util::Rng rng(0xC4A1 + n);
  const InteractionSequence seq =
      doda::sim::drawAdversarySequence(config, length, rng);

  Row row;
  row.leg = "chain_n" + std::to_string(n);
  row.n = n;
  row.trials = 1;
  double best = 0.0;
  for (std::size_t r = 0; r <= rounds; ++r) {
    const auto t0 = Clock::now();
    const auto chain = doda::analysis::convergecastChain(seq, n, 0);
    const double s = std::chrono::duration<double>(Clock::now() - t0).count();
    row.units = static_cast<double>(chain.size());
    if (r == 1 || (r > 1 && s < best)) best = s;
  }
  row.seconds = best;
  return row;
}

// Times the adversary-sequence generation half of the measure leg alone
// (same trial count, each trial drawing the same initial window
// measureOfflineOptimal sizes: 1.25x the Thm-8 closed form, doubling
// extensions excluded — they are rare at that window), and the full
// measure leg itself. The generation leg gates the one-draw-per-pair v2
// sampler in CI, and its ratio to the matching measure leg is reported as
// generation_share: the fraction of the end-to-end offline-optimal
// measurement spent generating its workload. The two legs' timing rounds
// are interleaved (g, m, g, m, ...) so each leg's best-of-rounds comes
// from the same host-load regime — timing them back to back lets drift on
// a shared box skew the share by several points in either direction.
std::pair<Row, Row> benchGenerateAndMeasure(std::size_t n, std::size_t trials,
                                            std::size_t rounds) {
  doda::sim::MeasureConfig gen_config;
  gen_config.node_count = n;
  const Time initial = std::max<Time>(
      16,
      static_cast<Time>(1.25 * doda::util::closed_form::broadcastExpected(n)));

  doda::sim::MeasureConfig meas_config;
  meas_config.node_count = n;
  meas_config.trials = trials;
  meas_config.seed = 0xE2 + n;
  meas_config.threads = 1;

  Row gen;
  gen.leg = "generate_v2_sampler";
  gen.n = n;
  gen.trials = trials;
  Row meas;
  meas.leg = "measure_n" + std::to_string(n);
  meas.n = n;
  meas.trials = trials;

  doda::sim::MeasureResult result;
  double gen_best = 0.0;
  double meas_best = 0.0;
  for (std::size_t r = 0; r <= rounds; ++r) {  // round 0 is the warm-up
    doda::util::Rng rng(0x6E2 + n);
    double units = 0.0;
    const auto g0 = Clock::now();
    for (std::size_t t = 0; t < trials; ++t) {
      const InteractionSequence seq =
          doda::sim::drawAdversarySequence(gen_config, initial, rng);
      units += static_cast<double>(seq.length());
    }
    const double gs = std::chrono::duration<double>(Clock::now() - g0).count();
    gen.units = units;
    if (r == 1 || (r > 1 && gs < gen_best)) gen_best = gs;

    const auto m0 = Clock::now();
    result = doda::sim::measureOfflineOptimal(meas_config);
    const double ms = std::chrono::duration<double>(Clock::now() - m0).count();
    if (r == 1 || (r > 1 && ms < meas_best)) meas_best = ms;
  }
  gen.seconds = gen_best;
  meas.seconds = meas_best;
  meas.units = result.interactions.mean() * static_cast<double>(trials);
  meas.mean_opt = result.interactions.mean();
  meas.paper_ratio =
      meas.mean_opt / doda::util::closed_form::broadcastExpected(n);
  return {gen, meas};
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_offline_optimal.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_offline_optimal [--quick] [--out PATH]\n";
      return 1;
    }
  }

  std::ofstream json(out_path);
  if (!json) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }

  std::vector<Row> rows;
  if (quick) {
    rows.push_back(benchOracle(256, 400, 5));
    rows.push_back(benchOracle(1024, 100, 5));
    rows.push_back(benchChain(64, Time{1} << 19, 5));
    const auto [gen, meas] = benchGenerateAndMeasure(256, 100, 7);
    rows.push_back(gen);
    rows.push_back(meas);
  } else {
    rows.push_back(benchOracle(256, 1000, 5));
    rows.push_back(benchOracle(1024, 200, 5));
    rows.push_back(benchOracle(4096, 30, 5));
    rows.push_back(benchChain(64, Time{1} << 20, 5));
    const auto [gen, meas] = benchGenerateAndMeasure(1024, 50, 7);
    rows.push_back(gen);
    rows.push_back(meas);
  }

  // Generation share: the generate leg repeats exactly the sequence-drawing
  // work of the measure leg (same n, same trials, same window), so the
  // ratio of their best rounds is the fraction of measureOfflineOptimal
  // spent in the adversary generator. The v2 one-draw sampler keeps this
  // below 0.40 (asserted by the perf gate via the leg's units_per_sec).
  double generation_share = 0.0;
  {
    const Row* gen = nullptr;
    const Row* meas = nullptr;
    for (const auto& row : rows) {
      if (row.leg == "generate_v2_sampler") gen = &row;
      if (row.leg.rfind("measure_n", 0) == 0) meas = &row;
    }
    if (gen != nullptr && meas != nullptr && meas->seconds > 0.0)
      generation_share = gen->seconds / meas->seconds;
  }

  for (const auto& row : rows)
    std::printf(
        "%-14s n=%-5zu trials=%-4zu %10.1f trials/s %12.3e units/s "
        "mean_opt=%.1f ratio=%.3f\n",
        row.leg.c_str(), row.n, row.trials, row.trialsPerSec(),
        row.unitsPerSec(), row.mean_opt, row.paper_ratio);
  std::printf("generation share of measureOfflineOptimal: %.1f%%\n",
              100.0 * generation_share);

  json << "{\n"
       << "  \"bench\": \"offline_optimal\",\n"
       << "  \"workload\": \"ConvergecastFrontier optCompletion / chain / "
          "measureOfflineOptimal\",\n"
       << "  \"hardware_concurrency\": "
       << std::thread::hardware_concurrency() << ",\n"
       << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
       << "  \"generation_share\": " << generation_share << ",\n"
       << "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    json << "    {\"leg\": \"" << row.leg << "\", \"n\": " << row.n
         << ", \"trials\": " << row.trials
         << ", \"trials_per_sec\": " << row.trialsPerSec()
         << ", \"units_per_sec\": " << row.unitsPerSec()
         << ", \"mean_opt\": " << row.mean_opt
         << ", \"paper_ratio\": " << row.paper_ratio << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
