// E8 — Paper Thm 11 context: the knowledge hierarchy in one head-to-head.
//
//   offline optimum (full knowledge)   Theta(n log n)         (Thm 8)
//   WaitingGreedy  (meetTime)          Theta(n^1.5 sqrt(log)) (Cor 3)
//   Gathering      (no knowledge)      Theta(n^2)             (Thm 9, opt.)
//   Waiting        (no knowledge)      Theta(n^2 log n)       (Thm 9)
//
// Reproduction: mean interactions of all four at each n. The expected
// ordering offline < WG < Gathering < Waiting must hold at every size, and
// the WG/Gathering gap must widen with n.

#include "bench_common.hpp"

namespace doda {
namespace {

void BM_Comparison(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto tau =
      static_cast<core::Time>(util::closed_form::waitingGreedyTau(n));
  sim::MeasureResult offline, wg, ga, w;
  for (auto _ : state) {
    offline = sim::measureOfflineOptimal(bench::configFor(n, 0xE8 + n));
    wg = sim::measureRandomized(bench::configFor(n, 0xE8 + n),
                                bench::waitingGreedy(tau));
    ga = sim::measureRandomized(bench::configFor(n, 0xE8 + n),
                                bench::gathering());
    w = sim::measureRandomized(bench::configFor(n, 0xE8 + n),
                               bench::waiting());
  }
  state.counters["offline"] = offline.interactions.mean();
  state.counters["waiting_greedy"] = wg.interactions.mean();
  state.counters["gathering"] = ga.interactions.mean();
  state.counters["waiting"] = w.interactions.mean();
  state.counters["wg_speedup_vs_gathering"] =
      ga.interactions.mean() / wg.interactions.mean();
  state.counters["gap_to_offline"] =
      wg.interactions.mean() / offline.interactions.mean();
}

BENCHMARK(BM_Comparison)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Arg(512)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace doda

BENCHMARK_MAIN();
