#pragma once

/// Shared helpers for the reproduction benches.
///
/// Every bench binary reproduces one experiment from DESIGN.md's index
/// (E1..E12). The scientific quantities (interaction counts, ratios to the
/// paper's closed forms, fitted exponents) are exported as benchmark
/// counters so the "rows" of each reproduced result appear directly in the
/// benchmark output; wall-clock timing is incidental.

#include <benchmark/benchmark.h>

#include <memory>

#include "algorithms/gathering.hpp"
#include "algorithms/waiting.hpp"
#include "algorithms/waiting_greedy.hpp"
#include "sim/experiment.hpp"
#include "util/stats.hpp"

namespace doda::bench {

/// Default trial count per design point: enough for stable means, small
/// enough that the full suite stays fast.
inline constexpr std::size_t kTrials = 48;

inline sim::MeasureConfig configFor(std::size_t n, std::uint64_t seed,
                                    std::size_t trials = kTrials) {
  sim::MeasureConfig config;
  config.node_count = n;
  config.trials = trials;
  config.seed = seed;
  return config;
}

inline sim::AlgorithmFactory gathering() {
  return [](sim::TrialContext&) {
    return std::make_unique<algorithms::Gathering>();
  };
}

inline sim::AlgorithmFactory waiting() {
  return [](sim::TrialContext&) {
    return std::make_unique<algorithms::Waiting>();
  };
}

inline sim::AlgorithmFactory waitingGreedy(core::Time tau) {
  return [tau](sim::TrialContext& ctx) {
    return std::make_unique<algorithms::WaitingGreedy>(ctx.meet_time, tau);
  };
}

}  // namespace doda::bench
