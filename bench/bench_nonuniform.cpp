// E11 — Extension (paper's concluding remark #3): "Can randomized
// adversaries that use a non-uniform probabilistic distribution alter
// significantly the bounds presented here?"
//
// Reproduction/ablation: re-run the headline quantities (offline optimum,
// Gathering, WaitingGreedy with the uniform-optimal tau) under a
// Zipf-weighted randomized adversary with increasing skew. Expectation:
// mild skew changes constants only; strong skew (exponent >= 1) hurts the
// unpopular nodes' sink contact rate and inflates all three measures, and
// the uniform-tuned tau* stops being the right horizon for WG.

#include "bench_common.hpp"

namespace doda {
namespace {

void BM_ZipfSkewAblation(benchmark::State& state) {
  constexpr std::size_t n = 128;
  const double exponent = static_cast<double>(state.range(0)) / 100.0;
  const auto tau =
      static_cast<core::Time>(util::closed_form::waitingGreedyTau(n));
  sim::MeasureResult offline, ga, wg;
  for (auto _ : state) {
    auto config = bench::configFor(n, 0xEB + state.range(0));
    config.zipf_exponent = exponent;
    offline = sim::measureOfflineOptimal(config);
    ga = sim::measureRandomized(config, bench::gathering());
    wg = sim::measureRandomized(config, bench::waitingGreedy(tau));
  }
  const double uniform_offline = util::closed_form::broadcastExpected(n);
  const double uniform_ga = util::closed_form::gatheringExpected(n);
  state.counters["zipf_exponent"] = exponent;
  state.counters["offline_mean"] = offline.interactions.mean();
  state.counters["offline_vs_uniform"] =
      offline.interactions.mean() / uniform_offline;
  state.counters["gathering_mean"] = ga.interactions.mean();
  state.counters["gathering_vs_uniform"] =
      ga.interactions.mean() / uniform_ga;
  state.counters["wg_mean"] = wg.interactions.mean();
  state.counters["wg_vs_gathering"] =
      wg.interactions.mean() / ga.interactions.mean();
}

// Exponent = arg/100: 0 (uniform), 0.25, 0.5, 1.0, 1.5.
BENCHMARK(BM_ZipfSkewAblation)
    ->Arg(0)
    ->Arg(25)
    ->Arg(50)
    ->Arg(100)
    ->Arg(150)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace doda

BENCHMARK_MAIN();
