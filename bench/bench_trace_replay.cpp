// Trace-replay throughput benchmark for the recorded-workload subsystem.
//
// Records a uniform randomized-adversary workload into a sharded binary
// store in a scratch directory, then measures how fast the shard-parallel
// replay executor (sim/trace_replay) pushes it through the engine:
// materialized replay (per-trial decode + meetTime oracle, WaitingGreedy)
// and fully streamed replay (zero materialization, Gathering), each
// serially and with a worker pool. Results go to stdout and a JSON file so
// the perf trajectory is tracked across PRs and gated in CI.
//
// Usage: bench_trace_replay [--quick] [--out PATH] [--threads K] [--keep DIR]
//   --quick    smoke mode for CI: smaller workload
//   --out      JSON output path (default BENCH_trace_replay.json)
//   --threads  worker count for the parallel legs (default 0 = all cores)
//   --keep     record into DIR and leave the store on disk (default: a
//              scratch directory under the system temp dir, removed after)

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "algorithms/gathering.hpp"
#include "algorithms/waiting_greedy.hpp"
#include "sim/trace_replay.hpp"
#include "util/stats.hpp"

namespace {

using doda::sim::MeasureResult;
using doda::sim::ReplayConfig;

struct Leg {
  std::string name;
  double seconds = 0.0;
  double trials_per_sec = 0.0;
  double interactions_per_sec = 0.0;
};

double secondsOf(const std::function<MeasureResult()>& run,
                 MeasureResult& out) {
  const auto start = std::chrono::steady_clock::now();
  out = run();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

void expectIdentical(const MeasureResult& a, const MeasureResult& b,
                     const char* what) {
  if (a.interactions.count() != b.interactions.count() ||
      a.interactions.mean() != b.interactions.mean() ||
      a.interactions.variance() != b.interactions.variance() ||
      a.failed_trials != b.failed_trials) {
    std::cerr << "FATAL: " << what << " statistics diverge\n";
    std::exit(2);
  }
}

doda::sim::AlgorithmFactory waitingGreedy(std::size_t n) {
  const auto tau = static_cast<doda::core::Time>(
      doda::util::closed_form::waitingGreedyTau(n));
  return [tau](doda::sim::TrialContext& context) {
    return std::make_unique<doda::algorithms::WaitingGreedy>(
        context.meet_time, tau);
  };
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_trace_replay.json";
  std::string keep_dir;
  std::size_t threads = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--keep" && i + 1 < argc) {
      keep_dir = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      try {
        threads = std::stoul(argv[++i]);
      } catch (const std::exception&) {
        std::cerr << "--threads: expected a number, got '" << argv[i]
                  << "'\n";
        return 1;
      }
    } else {
      std::cerr << "usage: bench_trace_replay [--quick] [--out PATH] "
                   "[--threads K] [--keep DIR]\n";
      return 1;
    }
  }

  // Fail on a bad output path before the measurement, not after.
  std::ofstream json(out_path);
  if (!json) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }

  const std::size_t n = quick ? 64 : 128;
  const std::size_t trials = quick ? 32 : 128;
  const doda::core::Time length =
      static_cast<doda::core::Time>(8 * n * n);
  const std::uint32_t shards = 8;

  doda::sim::MeasureConfig config;
  config.node_count = n;
  config.trials = trials;
  config.seed = 0x7ace + n;

  // Pid-unique scratch path so concurrent bench runs on one machine never
  // record into (or clean up) each other's live store.
  const std::string dir =
      !keep_dir.empty()
          ? keep_dir
          : (std::filesystem::temp_directory_path() /
             ("doda_bench_trace_store_" + std::to_string(n) + "_" +
              std::to_string(::getpid())))
                .string();

  std::printf("recording n=%zu trials=%zu length=%llu shards=%u ...",
              n, trials, static_cast<unsigned long long>(length), shards);
  std::fflush(stdout);
  const auto record_start = std::chrono::steady_clock::now();
  doda::sim::recordSynthetic(dir, config, length, shards);
  const double record_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    record_start)
          .count();

  const auto store = doda::dynagraph::TraceStore::open(dir);
  std::uint64_t store_bytes = 0;
  for (const auto& header : store.shardHeaders())
    store_bytes += doda::dynagraph::kTraceHeaderSize + header.payload_bytes;
  const double total_interactions =
      static_cast<double>(trials) * static_cast<double>(length);
  std::printf(" %.0f interactions, %llu bytes (%.2f B/interaction)\n",
              total_interactions,
              static_cast<unsigned long long>(store_bytes),
              static_cast<double>(store_bytes) / total_interactions);

  ReplayConfig serial_cfg;
  serial_cfg.threads = 1;
  ReplayConfig parallel_cfg;
  parallel_cfg.threads = threads;

  const auto materialized = waitingGreedy(n);
  const auto streamed = [](const doda::core::SystemInfo&) {
    return std::make_unique<doda::algorithms::Gathering>();
  };
  const auto gathering_materialized = [](doda::sim::TrialContext&) {
    return std::make_unique<doda::algorithms::Gathering>();
  };

  std::vector<Leg> legs;
  legs.push_back({"record", record_seconds, trials / record_seconds,
                  total_interactions / record_seconds});

  auto runLeg = [&](const std::string& name,
                    const std::function<MeasureResult()>& run,
                    MeasureResult& out) {
    Leg leg;
    leg.name = name;
    leg.seconds = secondsOf(run, out);
    leg.trials_per_sec = trials / leg.seconds;
    leg.interactions_per_sec = total_interactions / leg.seconds;
    std::printf("%-28s %8.1f trials/s  %12.0f interactions/s\n",
                name.c_str(), leg.trials_per_sec,
                leg.interactions_per_sec);
    legs.push_back(leg);
    return leg;
  };

  MeasureResult mat_serial, mat_parallel, stream_serial, stream_parallel;
  runLeg("replay_materialized_serial",
         [&] { return replayTrace(store, serial_cfg, materialized); },
         mat_serial);
  runLeg("replay_materialized_pool",
         [&] { return replayTrace(store, parallel_cfg, materialized); },
         mat_parallel);
  runLeg("replay_streaming_serial",
         [&] { return replayTraceStreaming(store, serial_cfg, streamed); },
         stream_serial);
  runLeg("replay_streaming_pool",
         [&] {
           return replayTraceStreaming(store, parallel_cfg, streamed);
         },
         stream_parallel);

  // The executor's contract, enforced on every bench run: thread count
  // never changes the statistics, and the streamed path agrees with the
  // materialized path for the same (online) algorithm.
  expectIdentical(mat_serial, mat_parallel, "materialized serial/pool");
  expectIdentical(stream_serial, stream_parallel, "streaming serial/pool");
  MeasureResult gathering_check;
  secondsOf(
      [&] {
        return replayTrace(store, serial_cfg, gathering_materialized);
      },
      gathering_check);
  expectIdentical(stream_serial, gathering_check,
                  "streaming vs materialized (Gathering)");

  if (mat_serial.interactions.count() == 0) {
    std::cerr << "FATAL: every materialized trial failed — lengthen the "
                 "recorded trace\n";
    return 2;
  }

  json << "{\n"
       << "  \"bench\": \"trace_replay\",\n"
       << "  \"workload\": \"recordSynthetic + WaitingGreedy(tau*) / "
          "Gathering\",\n"
       << "  \"hardware_concurrency\": "
       << std::thread::hardware_concurrency() << ",\n"
       << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
       << "  \"n\": " << n << ",\n"
       << "  \"trials\": " << trials << ",\n"
       << "  \"length\": " << length << ",\n"
       << "  \"shards\": " << shards << ",\n"
       << "  \"store_bytes\": " << store_bytes << ",\n"
       << "  \"results\": [\n";
  for (std::size_t i = 0; i < legs.size(); ++i) {
    const Leg& leg = legs[i];
    json << "    {\"leg\": \"" << leg.name
         << "\", \"trials_per_sec\": " << leg.trials_per_sec
         << ", \"interactions_per_sec\": " << leg.interactions_per_sec
         << "}" << (i + 1 < legs.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "wrote " << out_path << "\n";

  if (keep_dir.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);  // best-effort scratch cleanup
  }
  return 0;
}
