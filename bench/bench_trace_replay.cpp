// Trace-replay throughput benchmark for the recorded-workload subsystem.
//
// Records one uniform randomized-adversary workload as a v1 store, a
// compressed v2 store, a compressed block-indexed v3 store and a v4
// group-unit store (dynagraph/trace_io) in scratch directories, plus an
// imported contact-event CSV (dynagraph/trace_import), then measures:
// pure compressed-block decode throughput per codec (decode_v2 adaptive
// range coder vs decode_v3 interleaved rANS vs decode_v4 group units —
// the PR-7 headline), block-parallel decode of single huge trials
// (decode_v4_parallel_trial, riding the block index on a borrowed
// worker pool), materialized replay (per-trial decode + meetTime oracle,
// WaitingGreedy), fully streamed replay (zero materialization, Gathering)
// serially and with a worker pool on the mmap-backed reader (kAuto), a
// buffered-stream v1 leg pinning the exact PR-2 configuration, and a
// ranged replay of the middle half of the trials riding the block index.
// Live compression ratios for every format are printed and emitted in the
// JSON. Every leg cross-checks the executor's contract: thread count,
// store format, reader backend and replay window never change the
// statistics.
//
// Results go to stdout and a JSON file so the perf trajectory is tracked
// across PRs and gated in CI (scripts/check_bench_regression.py).
//
// Usage: bench_trace_replay [--quick] [--out PATH] [--threads K] [--keep DIR]
//   --quick    smoke mode for CI: smaller workload
//   --out      JSON output path (default BENCH_trace_replay.json)
//   --threads  worker count for the parallel legs (default 0 = all cores)
//   --keep     record into DIR and leave the stores on disk (default: a
//              scratch directory under the system temp dir, removed after)

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "algorithms/gathering.hpp"
#include "algorithms/waiting_greedy.hpp"
#include "dynagraph/trace_import.hpp"
#include "sim/trace_replay.hpp"
#include "storage/durable_store.hpp"
#include "util/stats.hpp"

namespace {

using doda::dynagraph::TraceReadBackend;
using doda::dynagraph::TraceStore;
using doda::dynagraph::TraceWriterOptions;
using doda::sim::MeasureResult;
using doda::sim::ReplayConfig;

struct Leg {
  std::string name;
  double seconds = 0.0;
  double trials_per_sec = 0.0;
  double interactions_per_sec = 0.0;
};

double secondsOf(const std::function<void()>& run) {
  const auto start = std::chrono::steady_clock::now();
  run();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

void expectIdentical(const MeasureResult& a, const MeasureResult& b,
                     const char* what) {
  if (a.interactions.count() != b.interactions.count() ||
      a.interactions.mean() != b.interactions.mean() ||
      a.interactions.variance() != b.interactions.variance() ||
      a.failed_trials != b.failed_trials) {
    std::cerr << "FATAL: " << what << " statistics diverge\n";
    std::exit(2);
  }
}

doda::sim::AlgorithmFactory waitingGreedy(std::size_t n) {
  const auto tau = static_cast<doda::core::Time>(
      doda::util::closed_form::waitingGreedyTau(n));
  return [tau](doda::sim::TrialContext& context) {
    return std::make_unique<doda::algorithms::WaitingGreedy>(
        context.meet_time, tau);
  };
}

std::unique_ptr<doda::core::DodaAlgorithm> gatheringStreamed(
    const doda::core::SystemInfo&) {
  return std::make_unique<doda::algorithms::Gathering>();
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_trace_replay.json";
  std::string keep_dir;
  std::size_t threads = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--keep" && i + 1 < argc) {
      keep_dir = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      try {
        threads = std::stoul(argv[++i]);
      } catch (const std::exception&) {
        std::cerr << "--threads: expected a number, got '" << argv[i]
                  << "'\n";
        return 1;
      }
    } else {
      std::cerr << "usage: bench_trace_replay [--quick] [--out PATH] "
                   "[--threads K] [--keep DIR]\n";
      return 1;
    }
  }

  // Fail on a bad output path before the measurement, not after.
  std::ofstream json(out_path);
  if (!json) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }

  const std::size_t n = quick ? 64 : 128;
  const std::size_t trials = quick ? 32 : 128;
  const doda::core::Time length =
      static_cast<doda::core::Time>(8 * n * n);
  const std::uint32_t shards = 8;

  doda::sim::MeasureConfig config;
  config.node_count = n;
  config.trials = trials;
  config.seed = 0x7ace + n;

  // Pid-unique scratch path so concurrent bench runs on one machine never
  // record into (or clean up) each other's live stores.
  const std::string root =
      !keep_dir.empty()
          ? keep_dir
          : (std::filesystem::temp_directory_path() /
             ("doda_bench_trace_store_" + std::to_string(n) + "_" +
              std::to_string(::getpid())))
                .string();
  const std::string dir_v1 = root + "/v1";
  const std::string dir_v2 = root + "/v2";
  const std::string dir_v3 = root + "/v3";
  const std::string dir_v4 = root + "/v4";
  const std::string dir_big = root + "/big";
  const std::string dir_import_v1 = root + "/import_v1";
  const std::string dir_import = root + "/import";
  const std::string events_csv = root + "/events.csv";

  TraceWriterOptions v1_format;
  v1_format.format_version = doda::dynagraph::kTraceFormatVersionV1;
  TraceWriterOptions v2_format;
  v2_format.format_version = doda::dynagraph::kTraceFormatVersionV2;
  TraceWriterOptions v3_format;
  v3_format.format_version = doda::dynagraph::kTraceFormatVersionV3;

  const double total_interactions =
      static_cast<double>(trials) * static_cast<double>(length);
  std::printf("recording n=%zu trials=%zu length=%llu shards=%u ...\n",
              n, trials, static_cast<unsigned long long>(length), shards);

  std::vector<Leg> legs;
  auto runLeg = [&](const std::string& name, double leg_trials,
                    double leg_interactions, const std::function<void()>& run) {
    Leg leg;
    leg.name = name;
    leg.seconds = secondsOf(run);
    leg.trials_per_sec = leg_trials / leg.seconds;
    leg.interactions_per_sec = leg_interactions / leg.seconds;
    std::printf("%-28s %8.1f trials/s  %12.0f interactions/s\n",
                name.c_str(), leg.trials_per_sec, leg.interactions_per_sec);
    legs.push_back(leg);
  };

  const double t = static_cast<double>(trials);

  // -------------------------------------------------------------- record
  // "record" is always the writer default (v4 since PR 7); the older
  // formats are pinned explicitly so their legs keep measuring the same
  // code path across PRs.
  runLeg("record", t, total_interactions, [&] {
    doda::sim::recordSynthetic(dir_v4, config, length, shards);
  });
  runLeg("record_v3", t, total_interactions, [&] {
    doda::sim::recordSynthetic(dir_v3, config, length, shards, v3_format);
  });
  runLeg("record_v2", t, total_interactions, [&] {
    doda::sim::recordSynthetic(dir_v2, config, length, shards, v2_format);
  });
  runLeg("record_v1", t, total_interactions, [&] {
    doda::sim::recordSynthetic(dir_v1, config, length, shards, v1_format);
  });

  const auto store_v4 = TraceStore::open(dir_v4);
  const auto store_v3 = TraceStore::open(dir_v3);
  const auto store_v2 = TraceStore::open(dir_v2);
  const auto store_v1 = TraceStore::open(dir_v1);
  const std::uint64_t bytes_v1 = store_v1.totalFileBytes();
  const std::uint64_t bytes_v2 = store_v2.totalFileBytes();
  const std::uint64_t bytes_v3 = store_v3.totalFileBytes();
  const std::uint64_t bytes_v4 = store_v4.totalFileBytes();
  const double ratio =
      static_cast<double>(bytes_v1) / static_cast<double>(bytes_v2);
  const double ratio_v3 =
      static_cast<double>(bytes_v1) / static_cast<double>(bytes_v3);
  const double ratio_v4 =
      static_cast<double>(bytes_v1) / static_cast<double>(bytes_v4);
  std::printf(
      "store: %.0f interactions, v1 %llu bytes (%.3f B/i), v2 %llu bytes "
      "(%.3f B/i, %.2fx), v3 %llu bytes (%.3f B/i, %.2fx), v4 %llu bytes "
      "(%.3f B/i, %.2fx; %+.1f%% vs v3)\n",
      total_interactions, static_cast<unsigned long long>(bytes_v1),
      bytes_v1 / total_interactions,
      static_cast<unsigned long long>(bytes_v2),
      bytes_v2 / total_interactions, ratio,
      static_cast<unsigned long long>(bytes_v3),
      bytes_v3 / total_interactions, ratio_v3,
      static_cast<unsigned long long>(bytes_v4),
      bytes_v4 / total_interactions, ratio_v4,
      100.0 * (static_cast<double>(bytes_v4) / static_cast<double>(bytes_v3) -
               1.0));

  // -------------------------------------------------------------- decode
  // Pure compressed-block decode (skip every trial without running the
  // engine): the entropy-coder throughput in isolation. Repetitions keep
  // each leg's wall time well above the gate's noise floor.
  auto decodeStore = [](const TraceStore& store) {
    for (std::size_t s = 0; s < store.shardCount(); ++s) {
      auto reader = store.openShard(s);
      while (reader.beginTrial()) reader.skipRest();
    }
  };
  const int reps_v2 = 2;
  const int reps_v3 = 8;
  const int reps_v4 = 16;
  runLeg("decode_v2", t * reps_v2, total_interactions * reps_v2, [&] {
    for (int rep = 0; rep < reps_v2; ++rep) decodeStore(store_v2);
  });
  runLeg("decode_v3", t * reps_v3, total_interactions * reps_v3, [&] {
    for (int rep = 0; rep < reps_v3; ++rep) decodeStore(store_v3);
  });
  const double decode_v3_per_sec = legs.back().interactions_per_sec;
  runLeg("decode_v4", t * reps_v4, total_interactions * reps_v4, [&] {
    for (int rep = 0; rep < reps_v4; ++rep) decodeStore(store_v4);
  });
  const double decode_speedup_v4 =
      legs.back().interactions_per_sec / decode_v3_per_sec;
  std::printf("decode: v4 group units %.2fx the v3 varint throughput\n",
              decode_speedup_v4);

  // Block-parallel decode of single huge trials: a dedicated store whose
  // trials each span many index blocks, decoded with a borrowed worker
  // pool through readRest. On a single-core runner the pool is inert and
  // this leg degenerates to sequential decode — the CI gate marks it as a
  // parallel-scaling leg, skipped when hardware_concurrency == 1.
  const std::size_t big_n = 256;
  const std::size_t big_trials = 2;
  const doda::core::Time big_length = quick ? (1u << 20) : (1u << 22);
  {
    doda::sim::MeasureConfig big_config;
    big_config.node_count = big_n;
    big_config.trials = big_trials;
    big_config.seed = 0xb16;
    doda::sim::recordSynthetic(dir_big, big_config, big_length, 1);
  }
  const auto store_big = TraceStore::open(dir_big);
  const std::size_t pool_workers = std::max<std::size_t>(
      2, threads != 0 ? threads : std::thread::hardware_concurrency());
  doda::dynagraph::TraceDecodePool decode_pool;
  decode_pool.workers = pool_workers;
  decode_pool.run = [pool_workers](
                        std::size_t count,
                        const std::function<void(std::size_t)>& task) {
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(std::min(pool_workers, count));
    for (std::size_t w = 0; w < std::min(pool_workers, count); ++w)
      pool.emplace_back([&] {
        for (std::size_t i = next.fetch_add(1); i < count;
             i = next.fetch_add(1))
          task(i);
      });
    for (auto& worker : pool) worker.join();
  };
  std::uint64_t big_sequential_hash = 0, big_pooled_hash = 0;
  auto decodeBig = [&](const doda::dynagraph::TraceDecodePool* pool) {
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    auto reader = store_big.openShard(0);
    reader.setDecodePool(pool);
    while (reader.beginTrial()) {
      const auto seq = reader.readRest();
      for (const auto& interaction : seq.interactions()) {
        hash = (hash ^ interaction.a()) * 0x100000001b3ULL;
        hash = (hash ^ interaction.b()) * 0x100000001b3ULL;
      }
    }
    return hash;
  };
  const int reps_big = 4;
  const double big_interactions =
      static_cast<double>(big_trials) * static_cast<double>(big_length);
  runLeg("decode_v4_parallel_trial", big_trials * reps_big,
         big_interactions * reps_big, [&] {
           for (int rep = 0; rep < reps_big; ++rep)
             big_pooled_hash = decodeBig(&decode_pool);
         });
  big_sequential_hash = decodeBig(nullptr);
  if (big_sequential_hash != big_pooled_hash) {
    std::cerr << "FATAL: pooled single-trial decode diverges from "
                 "sequential\n";
    return 2;
  }

  ReplayConfig serial_cfg;
  serial_cfg.threads = 1;
  ReplayConfig pool_cfg;
  pool_cfg.threads = threads;
  ReplayConfig bufio_cfg;  // the exact PR-2 configuration
  bufio_cfg.threads = 1;
  bufio_cfg.backend = TraceReadBackend::kStream;

  const auto materialized = waitingGreedy(n);
  const auto gathering_materialized = [](doda::sim::TrialContext&) {
    return std::make_unique<doda::algorithms::Gathering>();
  };

  // -------------------------------------------------------------- replay
  MeasureResult mat_serial, mat_pool, stream_serial, stream_pool;
  MeasureResult stream_v3_serial, stream_v2_serial, stream_v1_serial, stream_v1_bufio;
  runLeg("replay_materialized_serial", t, total_interactions, [&] {
    mat_serial = replayTrace(store_v4, serial_cfg, materialized);
  });
  runLeg("replay_materialized_pool", t, total_interactions, [&] {
    mat_pool = replayTrace(store_v4, pool_cfg, materialized);
  });
  runLeg("replay_streaming_serial", t, total_interactions, [&] {
    stream_serial =
        replayTraceStreaming(store_v4, serial_cfg, gatheringStreamed);
  });
  runLeg("replay_streaming_pool", t, total_interactions, [&] {
    stream_pool = replayTraceStreaming(store_v4, pool_cfg, gatheringStreamed);
  });
  runLeg("replay_streaming_v2_serial", t, total_interactions, [&] {
    stream_v2_serial =
        replayTraceStreaming(store_v2, serial_cfg, gatheringStreamed);
  });
  stream_v3_serial =
      replayTraceStreaming(store_v3, serial_cfg, gatheringStreamed);
  runLeg("replay_streaming_v1_serial", t, total_interactions, [&] {
    stream_v1_serial =
        replayTraceStreaming(store_v1, serial_cfg, gatheringStreamed);
  });
  runLeg("replay_streaming_v1_bufio", t, total_interactions, [&] {
    stream_v1_bufio =
        replayTraceStreaming(store_v1, bufio_cfg, gatheringStreamed);
  });

  // Ranged replay: the middle half of the trials, riding the v3 block
  // index (v1 reaches the same window by sequential skip — the identity
  // check below proves the window's statistics are format-independent).
  doda::sim::ReplayTrialRange window{trials / 4, trials - trials / 4};
  const double window_trials =
      static_cast<double>(window.last - window.first);
  ReplayConfig range_cfg = serial_cfg;
  range_cfg.trial_range = window;
  ReplayConfig range_pool_cfg = pool_cfg;
  range_pool_cfg.trial_range = window;
  ReplayConfig range_v1_cfg = serial_cfg;
  range_v1_cfg.trial_range = window;
  MeasureResult range_serial, range_pool, range_v1;
  // Repetitions keep the (half-size) ranged leg above the gate's noise
  // floor, like the decode legs.
  const int reps_range = 4;
  runLeg("replay_range", window_trials * reps_range,
         window_trials * static_cast<double>(length) * reps_range, [&] {
           for (int rep = 0; rep < reps_range; ++rep)
             range_serial =
                 replayTraceStreaming(store_v4, range_cfg, gatheringStreamed);
         });
  range_pool = replayTraceStreaming(store_v4, range_pool_cfg,
                                    gatheringStreamed);
  range_v1 = replayTraceStreaming(store_v1, range_v1_cfg, gatheringStreamed);

  // The executor's contract, enforced on every bench run: thread count,
  // store format, reader backend and replay window never change the
  // statistics, and the streamed path agrees with the materialized path
  // for the same (online) algorithm.
  expectIdentical(mat_serial, mat_pool, "materialized serial/pool");
  expectIdentical(stream_serial, stream_pool, "streaming serial/pool");
  expectIdentical(stream_serial, stream_v3_serial, "streaming v4/v3");
  expectIdentical(stream_serial, stream_v2_serial, "streaming v4/v2");
  expectIdentical(stream_serial, stream_v1_serial, "streaming v4/v1");
  expectIdentical(stream_v1_serial, stream_v1_bufio,
                  "streaming v1 mmap/bufio");
  expectIdentical(range_serial, range_pool, "ranged serial/pool");
  expectIdentical(range_serial, range_v1, "ranged v3/v1");
  MeasureResult gathering_check;
  gathering_check = replayTrace(store_v4, serial_cfg, gathering_materialized);
  expectIdentical(stream_serial, gathering_check,
                  "streaming vs materialized (Gathering)");

  if (mat_serial.interactions.count() == 0) {
    std::cerr << "FATAL: every materialized trial failed — lengthen the "
                 "recorded trace\n";
    return 2;
  }

  // -------------------------------------------------------------- import
  // The external-workload path: dump a Zipf-flavored contact log as CSV
  // (time-sorted, so the streaming two-pass ingester applies), then time
  // parse -> renumber -> compressed sharded v3 store, and replay the
  // imported store. The import is also written as v1 to report the
  // compression ratio on a structured, real-world-shaped workload (the
  // uniform store above is entropy-floor-limited; see the README's format
  // notes).
  const std::size_t import_events = quick ? 262144 : 1048576;
  {
    doda::sim::MeasureConfig import_config = config;
    import_config.zipf_exponent = 0.9;
    doda::util::Rng rng(0xc0ffee);
    const auto seq = doda::sim::drawAdversarySequence(
        import_config, static_cast<doda::core::Time>(import_events), rng);
    std::ofstream csv(events_csv, std::ios::trunc);
    csv << "# synthetic zipf contact log (t u v)\n";
    for (doda::core::Time i = 0; i < seq.length(); ++i)
      csv << i / 4 << '\t' << seq.at(i).a() << '\t' << seq.at(i).b()
          << '\n';
  }
  doda::dynagraph::ContactImportOptions import_options;
  import_options.trials = shards;  // one segment per shard
  runLeg("import", static_cast<double>(shards),
         static_cast<double>(import_events), [&] {
           doda::dynagraph::importContactTrace(events_csv, dir_import,
                                               shards, import_options);
         });
  doda::dynagraph::importContactTrace(events_csv, dir_import_v1, shards,
                                      import_options, v1_format);
  const auto import_store = TraceStore::open(dir_import);
  const std::uint64_t import_bytes_v1 =
      TraceStore::open(dir_import_v1).totalFileBytes();
  const std::uint64_t import_bytes = import_store.totalFileBytes();
  const double import_ratio = static_cast<double>(import_bytes_v1) /
                              static_cast<double>(import_bytes);
  std::printf("import: %zu events, v1 %llu bytes (%.3f B/i), v3 %llu bytes "
              "(%.3f B/i), ratio %.2fx\n",
              import_events, static_cast<unsigned long long>(import_bytes_v1),
              import_bytes_v1 / static_cast<double>(import_events),
              static_cast<unsigned long long>(import_bytes),
              import_bytes / static_cast<double>(import_events),
              import_ratio);

  MeasureResult import_serial, import_pool;
  runLeg("replay_import_serial", static_cast<double>(shards),
         static_cast<double>(import_events), [&] {
           import_serial = replayTraceStreaming(import_store, serial_cfg,
                                                gatheringStreamed);
         });
  import_pool =
      replayTraceStreaming(import_store, pool_cfg, gatheringStreamed);
  expectIdentical(import_serial, import_pool, "import serial/pool");

  // ------------------------------------------------------- durable store
  // The crash-safe manifest store (storage/durable_store): the same
  // workload recorded as two appended generations with the recordTrials
  // seed scheme, so the composite replays the exact trials of the
  // monolithic v4 store above. Measured: recovery-on-open plus composite
  // streamed replay (the append-reopen path, fsync-on-commit included in
  // setup, not in the leg), and offline compaction of the two
  // generations into one indexed v4 segment. Both paths cross-check
  // against the monolithic statistics: appending and compacting never
  // change what replays.
  const std::string dir_durable = root + "/durable";
  {
    doda::util::Rng master(config.seed);
    std::vector<std::uint64_t> seeds(trials);
    for (auto& seed : seeds) seed = master();
    const auto fillRange = [&](std::size_t first, std::size_t last) {
      return [&, first, last](doda::dynagraph::TraceStoreWriter& writer) {
        for (std::size_t i = first; i < last; ++i) {
          doda::util::Rng rng(seeds[i]);
          writer.appendTrial(
              doda::sim::drawAdversarySequence(config, length, rng));
        }
      };
    };
    auto durable = doda::storage::DurableTraceStore::create(dir_durable);
    durable.commitSegment(n, trials / 2, shards, {}, fillRange(0, trials / 2));
    durable.commitSegment(n, trials - trials / 2, shards, {},
                          fillRange(trials / 2, trials));
  }
  MeasureResult durable_serial;
  const int reps_durable = 4;
  runLeg("replay_durable_append_reopen", t * reps_durable,
         total_interactions * reps_durable, [&] {
           for (int rep = 0; rep < reps_durable; ++rep) {
             const auto durable =
                 doda::storage::DurableTraceStore::open(dir_durable);
             durable_serial = replayTraceStreaming(durable.openStore(),
                                                   serial_cfg,
                                                   gatheringStreamed);
           }
         });
  expectIdentical(stream_serial, durable_serial,
                  "durable append-reopen vs monolithic");
  runLeg("compact_durable", t, total_interactions, [&] {
    auto durable = doda::storage::DurableTraceStore::open(dir_durable);
    durable.compact();
  });
  {
    const auto durable = doda::storage::DurableTraceStore::open(dir_durable);
    const MeasureResult compacted = replayTraceStreaming(
        durable.openStore(), serial_cfg, gatheringStreamed);
    expectIdentical(stream_serial, compacted,
                    "durable compacted vs monolithic");
  }

  json << "{\n"
       << "  \"bench\": \"trace_replay\",\n"
       << "  \"workload\": \"recordSynthetic v1+v2+v3+v4 + contact import + "
          "WaitingGreedy(tau*) / Gathering\",\n"
       << "  \"hardware_concurrency\": "
       << std::thread::hardware_concurrency() << ",\n"
       << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
       << "  \"n\": " << n << ",\n"
       << "  \"trials\": " << trials << ",\n"
       << "  \"length\": " << length << ",\n"
       << "  \"shards\": " << shards << ",\n"
       << "  \"store_bytes_v1\": " << bytes_v1 << ",\n"
       << "  \"store_bytes_v2\": " << bytes_v2 << ",\n"
       << "  \"store_bytes_v3\": " << bytes_v3 << ",\n"
       << "  \"store_bytes_v4\": " << bytes_v4 << ",\n"
       << "  \"compression_ratio\": " << ratio << ",\n"
       << "  \"compression_ratio_v3\": " << ratio_v3 << ",\n"
       << "  \"compression_ratio_v4\": " << ratio_v4 << ",\n"
       << "  \"decode_speedup_v4_over_v3\": " << decode_speedup_v4 << ",\n"
       << "  \"import_events\": " << import_events << ",\n"
       << "  \"import_bytes_v1\": " << import_bytes_v1 << ",\n"
       << "  \"import_bytes_v3\": " << import_bytes << ",\n"
       << "  \"import_compression_ratio\": " << import_ratio << ",\n"
       << "  \"results\": [\n";
  for (std::size_t i = 0; i < legs.size(); ++i) {
    const Leg& leg = legs[i];
    json << "    {\"leg\": \"" << leg.name
         << "\", \"trials_per_sec\": " << leg.trials_per_sec
         << ", \"interactions_per_sec\": " << leg.interactions_per_sec
         << "}" << (i + 1 < legs.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "wrote " << out_path << "\n";

  if (keep_dir.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(root, ec);  // best-effort scratch cleanup
  }
  return 0;
}
