// E5 — Paper Lemma 1: if f(n) = omega(1) and o(n), then within n * f(n)
// uniform random interactions, Theta(f(n)) distinct nodes interact with the
// sink, w.h.p.
//
// Reproduction: at n = 512, sweep f in {8, 16, 32, 64, 128} and report the
// mean number of distinct sink contacts within n*f interactions and its
// ratio to f (expected a constant ~2, since each interaction touches the
// sink with probability 2/n).

#include "analysis/meetings.hpp"
#include "bench_common.hpp"
#include "dynagraph/traces.hpp"
#include "util/rng.hpp"

namespace doda {
namespace {

void BM_MeetCount(benchmark::State& state) {
  constexpr std::size_t n = 512;
  const auto f = static_cast<double>(state.range(0));
  const auto budget = static_cast<core::Time>(n * f);
  util::RunningStats distinct;
  for (auto _ : state) {
    util::Rng master(0xE5 + state.range(0));
    for (std::size_t trial = 0; trial < bench::kTrials; ++trial) {
      util::Rng rng(master());
      const auto seq = dynagraph::traces::uniformRandom(n, budget, rng);
      distinct.add(static_cast<double>(
          analysis::distinctSinkContacts(seq, 0, budget)));
    }
  }
  state.counters["f"] = f;
  state.counters["interactions_nf"] = static_cast<double>(budget);
  state.counters["distinct_mean"] = distinct.mean();
  state.counters["distinct_over_f"] = distinct.mean() / f;  // Theta(1)
}

BENCHMARK(BM_MeetCount)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace doda

BENCHMARK_MAIN();
