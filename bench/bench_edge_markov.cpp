// E14 — Extension: robustness of the randomized-adversary results to
// temporal correlation.
//
// The paper's §4 adversary draws interactions i.i.d. uniformly. Real
// dynamic networks have correlated edges (a contact that exists now tends
// to persist). We replay the head-to-head of E8 on edge-Markov traces with
// fixed stationary density but increasing persistence (lower p_on + p_off
// = slower mixing), asking: do Gathering/WG/offline keep their ordering,
// and how much does correlation inflate completion?
//
// Interactions per step vary with density, so we report *interactions*
// (the paper's clock), which stays comparable across persistence levels.

#include <benchmark/benchmark.h>

#include "adversary/sequence_adversary.hpp"
#include "algorithms/gathering.hpp"
#include "algorithms/waiting_greedy.hpp"
#include "analysis/convergecast.hpp"
#include "bench_common.hpp"
#include "dynagraph/edge_markov.hpp"
#include "dynagraph/meet_time_index.hpp"

namespace doda {
namespace {

constexpr std::size_t kN = 64;
constexpr double kDensity = 0.10;  // stationary edge density, all points

void BM_EdgeMarkovPersistence(benchmark::State& state) {
  // mixing = p_on + p_off in percent; stationary density fixed at 0.10.
  const double mixing = static_cast<double>(state.range(0)) / 100.0;
  dynagraph::traces::EdgeMarkovConfig config;
  config.nodes = kN;
  config.p_on = kDensity * mixing;
  config.p_off = (1.0 - kDensity) * mixing;
  config.steps = 40000;

  util::RunningStats ga_stats, wg_stats, opt_stats;
  for (auto _ : state) {
    util::Rng master(0xEE + state.range(0));
    for (std::size_t trial = 0; trial < 12; ++trial) {
      util::Rng rng(master());
      const auto seq = dynagraph::traces::edgeMarkovTrace(config, rng);

      algorithms::Gathering ga;
      adversary::SequenceAdversary adv1(seq);
      core::Engine engine({kN, 0}, core::AggregationFunction::count());
      const auto r1 = engine.run(ga, adv1);
      if (r1.terminated)
        ga_stats.add(static_cast<double>(r1.interactions_to_terminate));

      dynagraph::MeetTimeIndex index(seq, 0, kN);
      const auto tau = static_cast<core::Time>(
          util::closed_form::waitingGreedyTau(kN));
      algorithms::WaitingGreedy wg(index, tau);
      adversary::SequenceAdversary adv2(seq);
      const auto r2 = engine.run(wg, adv2);
      if (r2.terminated)
        wg_stats.add(static_cast<double>(r2.interactions_to_terminate));

      const auto opt = analysis::optCompletion(seq, kN, 0);
      if (opt != dynagraph::kNever)
        opt_stats.add(static_cast<double>(opt + 1));
    }
  }
  state.counters["mixing_p_on+p_off"] = mixing;
  state.counters["offline_mean"] = opt_stats.mean();
  state.counters["gathering_mean"] = ga_stats.mean();
  state.counters["wg_mean"] = wg_stats.mean();
  state.counters["ga_over_offline"] = ga_stats.mean() / opt_stats.mean();
  state.counters["wg_over_offline"] = wg_stats.mean() / opt_stats.mean();
}

// 100% = memoryless (fresh graph every step); 4% = sticky contacts.
BENCHMARK(BM_EdgeMarkovPersistence)
    ->Arg(100)
    ->Arg(50)
    ->Arg(16)
    ->Arg(4)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace doda

BENCHMARK_MAIN();
