// E3 — Paper Thm 9 (Waiting): E[X_W] = n(n-1)/2 * H(n-1) = O(n^2 log n),
// concentrated (Chebyshev) within n^2 log n w.h.p.
//
// Reproduction: mean interactions of Waiting vs the exact closed form, the
// relative spread, and the fitted exponent (expected ~2 + log correction).

#include <vector>

#include "bench_common.hpp"

namespace doda {
namespace {

std::vector<double> g_ns, g_means;

void BM_Waiting(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::MeasureResult r;
  for (auto _ : state)
    r = sim::measureRandomized(bench::configFor(n, 0xE3 + n),
                               bench::waiting());
  const double paper = util::closed_form::waitingExpected(n);
  state.counters["mean"] = r.interactions.mean();
  state.counters["paper_n(n-1)/2*H"] = paper;
  state.counters["ratio"] = r.interactions.mean() / paper;
  state.counters["rel_stddev"] =
      r.interactions.stddev() / r.interactions.mean();
  g_ns.push_back(static_cast<double>(n));
  g_means.push_back(r.interactions.mean());
  if (g_ns.size() >= 5)
    state.counters["fitted_exponent"] =
        util::fitPowerLaw(g_ns, g_means).slope;  // ~2.1 for n^2 log n
}

BENCHMARK(BM_Waiting)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace doda

BENCHMARK_MAIN();
