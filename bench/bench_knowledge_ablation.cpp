// E13 — Extension (paper's concluding remarks #1 and #2):
//   #1 "What knowledge has a real impact on the lower bounds or algorithm
//       efficiency?"
//   #2 "Can similar optimal algorithms be obtained with fixed memory or
//       limited computational power?"
//
// Ablations on WaitingGreedy's meetTime knowledge at n = 256 with the
// Cor 3 horizon tau* = n^1.5 sqrt(log n):
//
//   * Foresight window sweep (remark #1): the oracle only reveals meetings
//     at most W interactions ahead. W = 0 is Gathering-with-ids; W >= tau
//     is the full oracle. The interesting question is where between 0 and
//     tau the benefit saturates.
//   * Quantization sweep (remark #2): the oracle reveals meetTime only up
//     to a bucket of size B, i.e. log2(tau/B) bits of per-node memory.
//     Expectation: WG only compares meet times against each other and
//     against tau, so coarse buckets should lose almost nothing until the
//     bucket approaches tau itself.

#include "adversary/randomized_adversary.hpp"
#include "bench_common.hpp"
#include "core/engine.hpp"
#include "dynagraph/oracles.hpp"
#include "util/rng.hpp"

namespace doda {
namespace {

constexpr std::size_t kN = 256;

/// Runs WG over `trials` with an oracle built per trial by `make_oracle`.
template <typename MakeOracle>
util::RunningStats runAblation(core::Time tau, std::uint64_t seed,
                               MakeOracle&& make_oracle) {
  util::Rng master(seed);
  util::RunningStats stats;
  for (std::size_t trial = 0; trial < bench::kTrials; ++trial) {
    adversary::RandomizedAdversary adv(kN, master());
    auto index = adv.makeMeetTimeIndex(0);
    auto oracle = make_oracle(index);
    algorithms::WaitingGreedy wg(*oracle, tau);
    core::Engine engine({kN, 0}, core::AggregationFunction::count());
    const auto r = engine.run(wg, adv);
    if (r.terminated)
      stats.add(static_cast<double>(r.interactions_to_terminate));
  }
  return stats;
}

void BM_ForesightWindow(benchmark::State& state) {
  const auto tau =
      static_cast<core::Time>(util::closed_form::waitingGreedyTau(kN));
  // Window as a percentage of tau.
  const auto window =
      static_cast<core::Time>(static_cast<double>(state.range(0)) / 100.0 *
                              static_cast<double>(tau));
  util::RunningStats stats;
  for (auto _ : state) {
    stats = runAblation(tau, 0xF1 + state.range(0),
                        [window](dynagraph::MeetTimeIndex& index) {
                          return std::make_unique<
                              dynagraph::WindowedMeetTimeOracle>(index,
                                                                 window);
                        });
  }
  state.counters["window_pct_of_tau"] = static_cast<double>(state.range(0));
  state.counters["mean"] = stats.mean();
  state.counters["vs_full_oracle_tau"] =
      stats.mean() / static_cast<double>(tau);
}

// 0% = no foresight (Gathering-like), 100% = the full Cor 3 oracle.
BENCHMARK(BM_ForesightWindow)
    ->Arg(0)
    ->Arg(5)
    ->Arg(25)
    ->Arg(50)
    ->Arg(100)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_QuantizedMeetTime(benchmark::State& state) {
  const auto tau =
      static_cast<core::Time>(util::closed_form::waitingGreedyTau(kN));
  const auto bits = static_cast<core::Time>(state.range(0));
  // bucket = tau / 2^bits: `bits` bits of memory cover [0, tau].
  const core::Time bucket = std::max<core::Time>(1, tau >> bits);
  util::RunningStats stats;
  for (auto _ : state) {
    stats = runAblation(tau, 0xF2 + state.range(0),
                        [bucket](dynagraph::MeetTimeIndex& index) {
                          return std::make_unique<
                              dynagraph::QuantizedMeetTimeOracle>(index,
                                                                  bucket);
                        });
  }
  state.counters["bits"] = static_cast<double>(bits);
  state.counters["bucket"] = static_cast<double>(bucket);
  state.counters["mean"] = stats.mean();
  state.counters["vs_full_oracle_tau"] =
      stats.mean() / static_cast<double>(tau);
}

// 0 bits: every meeting rounds up to tau-or-later; 10 bits ~ exact.
BENCHMARK(BM_QuantizedMeetTime)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(10)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace doda

BENCHMARK_MAIN();
