#include "adversary/adaptive_adversaries.hpp"

#include <stdexcept>

namespace doda::adversary {

using core::ExecutionView;
using core::Interaction;
using core::NodeId;
using core::SystemInfo;
using core::Time;

namespace {

/// The non-sink node ids of a system, ascending.
std::vector<NodeId> nonSinkNodes(const SystemInfo& info) {
  std::vector<NodeId> out;
  out.reserve(info.node_count - 1);
  for (NodeId u = 0; u < info.node_count; ++u)
    if (u != info.sink) out.push_back(u);
  return out;
}

}  // namespace

void Thm1Adversary::reset(const SystemInfo& info) {
  if (info.node_count != 3)
    throw std::invalid_argument("Thm1Adversary: requires exactly 3 nodes");
  const auto others = nonSinkNodes(info);
  a_ = others[0];
  b_ = others[1];
  s_ = info.sink;
  probe_step_ = 0;
  trap_step_ = 0;
}

std::optional<Interaction> Thm1Adversary::next(Time t,
                                               const ExecutionView& view) {
  // At most one transfer can ever happen against this adversary: as soon as
  // ownership changes, we lock into the trap that starves the remaining
  // owner (paper Thm 1). Ownership is all the state we need to observe.
  if (!view.ownsData(a_)) {
    // a transmitted (to b at {a,b}); b must never meet s again:
    // repeat {a,s}, {a,b} — both inert since a has no data.
    const Interaction trap[2] = {Interaction(a_, s_), Interaction(a_, b_)};
    return trap[trap_step_++ % 2];
  }
  if (!view.ownsData(b_)) {
    // b transmitted (to a at {a,b}, or to s at {b,s}); starve a:
    // repeat {b,s}, {a,b} — both inert since b has no data.
    const Interaction trap[2] = {Interaction(b_, s_), Interaction(a_, b_)};
    return trap[trap_step_++ % 2];
  }
  // No transmission yet: alternate the probes {a,b}, {b,s} (the paper's
  // "otherwise ... continue as in the first time").
  (void)t;
  const Interaction probes[2] = {Interaction(a_, b_), Interaction(b_, s_)};
  return probes[probe_step_++ % 2];
}

void Thm3Adversary::reset(const SystemInfo& info) {
  if (info.node_count != 4)
    throw std::invalid_argument("Thm3Adversary: requires exactly 4 nodes");
  const auto others = nonSinkNodes(info);
  u1_ = others[0];
  u2_ = others[1];
  u3_ = others[2];
  s_ = info.sink;
  mode_ = Mode::kBlock;
  step_ = 0;
  have_emitted_ = false;
  last_emitted_ = 0;
}

std::optional<Interaction> Thm3Adversary::next(Time /*t*/,
                                               const ExecutionView& view) {
  // Watch u2: the moment it transmits, trap the receiver's side of the
  // cycle. u2 transmits at most once, so scanning the schedule is cheap.
  if (mode_ == Mode::kBlock && !view.ownsData(u2_)) {
    NodeId receiver = u1_;
    for (const auto& rec : view.schedule())
      if (rec.sender == u2_) receiver = rec.receiver;
    mode_ = receiver == u1_ ? Mode::kTrapViaU1 : Mode::kTrapViaU3;
    step_ = 0;
  }

  switch (mode_) {
    case Mode::kBlock: {
      const Interaction block[4] = {
          Interaction(u1_, s_), Interaction(u3_, s_), Interaction(u2_, u1_),
          Interaction(u2_, u3_)};
      return block[step_++ % 4];
    }
    case Mode::kTrapViaU1: {
      // u1 holds u2's data; u1 only ever meets the empty u2.
      const Interaction loop[3] = {Interaction(u1_, u2_),
                                   Interaction(u2_, u3_),
                                   Interaction(u3_, s_)};
      return loop[step_++ % 3];
    }
    case Mode::kTrapViaU3: {
      // u3 holds u2's data; u3 only ever meets the empty u2.
      const Interaction loop[3] = {Interaction(u3_, u2_),
                                   Interaction(u2_, u1_),
                                   Interaction(u1_, s_)};
      return loop[step_++ % 3];
    }
  }
  return std::nullopt;  // unreachable
}

}  // namespace doda::adversary
