#pragma once

#include "core/adversary.hpp"
#include "dynagraph/interaction_sequence.hpp"

namespace doda::adversary {

/// The oblivious adversary (paper §2.2): the whole sequence of interactions
/// is fixed before the execution starts. Also used to replay traces
/// (body-sensor, vehicular) and crafted counterexample sequences.
class SequenceAdversary final : public core::Adversary {
 public:
  /// The sequence is copied; replays I_0, I_1, ... then reports exhaustion.
  explicit SequenceAdversary(dynagraph::InteractionSequence sequence)
      : sequence_(std::move(sequence)) {}

  std::string name() const override { return "oblivious-sequence"; }

  std::optional<core::Interaction> next(
      core::Time t, const core::ExecutionView& /*view*/) override {
    if (t >= sequence_.length()) return std::nullopt;
    return sequence_.at(t);
  }

  const dynagraph::InteractionSequence& sequence() const noexcept {
    return sequence_;
  }

 private:
  dynagraph::InteractionSequence sequence_;
};

/// Zero-copy variant of SequenceAdversary: replays a borrowed
/// InteractionSequenceView. The measurement loops use it to replay
/// per-trial materialized sequences (and decoded trace-shard trials)
/// without the per-trial copy SequenceAdversary would take. The viewed
/// storage must outlive the adversary.
class SequenceViewAdversary final : public core::Adversary {
 public:
  explicit SequenceViewAdversary(dynagraph::InteractionSequenceView view)
      : view_(view) {}

  std::string name() const override { return "oblivious-sequence-view"; }

  std::optional<core::Interaction> next(
      core::Time t, const core::ExecutionView& /*view*/) override {
    if (t >= view_.length()) return std::nullopt;
    return view_.at(t);
  }

  dynagraph::InteractionSequenceView sequence() const noexcept {
    return view_;
  }

 private:
  dynagraph::InteractionSequenceView view_;
};

}  // namespace doda::adversary
