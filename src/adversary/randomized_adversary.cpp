#include "adversary/randomized_adversary.hpp"

namespace doda::adversary {

RandomizedAdversary::RandomizedAdversary(
    std::size_t node_count, std::uint64_t seed, core::Time max_length,
    dynagraph::traces::SeedFormat seed_format)
    : node_count_(node_count), seed_format_(seed_format), rng_(seed) {
  // Batched committed randomness: each LazySequence chunk is one tight
  // appendUniform fill (same rng draw order as per-pair sampling, so the
  // committed sequence is bit-identical to the legacy per-item generator).
  sequence_ = std::make_unique<dynagraph::LazySequence>(
      dynagraph::LazySequence::BlockGenerator(
          [this](core::Time, std::size_t count,
                 std::vector<core::Interaction>& out) {
            dynagraph::traces::appendUniform(node_count_, count, rng_, out,
                                             seed_format_);
          }),
      max_length);
}

dynagraph::MeetTimeIndex RandomizedAdversary::makeMeetTimeIndex(
    core::NodeId sink) {
  return dynagraph::MeetTimeIndex(*sequence_, sink, node_count_);
}

NonUniformAdversary::NonUniformAdversary(std::size_t node_count,
                                         double zipf_exponent,
                                         std::uint64_t seed,
                                         core::Time max_length)
    : node_count_(node_count),
      distribution_(node_count, zipf_exponent),
      rng_(seed) {
  sequence_ = std::make_unique<dynagraph::LazySequence>(
      dynagraph::LazySequence::BlockGenerator(
          [this](core::Time, std::size_t count,
                 std::vector<core::Interaction>& out) {
            distribution_.append(count, rng_, out);
          }),
      max_length);
}

dynagraph::MeetTimeIndex NonUniformAdversary::makeMeetTimeIndex(
    core::NodeId sink) {
  return dynagraph::MeetTimeIndex(*sequence_, sink, node_count_);
}

}  // namespace doda::adversary
