#include "adversary/randomized_adversary.hpp"

namespace doda::adversary {

RandomizedAdversary::RandomizedAdversary(std::size_t node_count,
                                         std::uint64_t seed,
                                         core::Time max_length)
    : node_count_(node_count), rng_(seed) {
  sequence_ = std::make_unique<dynagraph::LazySequence>(
      [this](core::Time) {
        return dynagraph::traces::uniformPair(node_count_, rng_);
      },
      max_length);
}

dynagraph::MeetTimeIndex RandomizedAdversary::makeMeetTimeIndex(
    core::NodeId sink) {
  return dynagraph::MeetTimeIndex(*sequence_, sink, node_count_);
}

NonUniformAdversary::NonUniformAdversary(std::size_t node_count,
                                         double zipf_exponent,
                                         std::uint64_t seed,
                                         core::Time max_length)
    : node_count_(node_count),
      distribution_(node_count, zipf_exponent),
      rng_(seed) {
  sequence_ = std::make_unique<dynagraph::LazySequence>(
      [this](core::Time) { return distribution_.sample(rng_); }, max_length);
}

dynagraph::MeetTimeIndex NonUniformAdversary::makeMeetTimeIndex(
    core::NodeId sink) {
  return dynagraph::MeetTimeIndex(*sequence_, sink, node_count_);
}

}  // namespace doda::adversary
