#pragma once

#include <array>

#include "core/adversary.hpp"

namespace doda::adversary {

/// The online adaptive adversary of paper Theorem 1.
///
/// Works on 3 nodes {a, b, s}: it probes {a,b} and {b,s}, watching which
/// node (if any) transmits, then locks the execution into a loop in which
/// the remaining data owner never meets a node that could relay its datum
/// to the sink — while an offline convergecast remains possible in every
/// window. Against ANY algorithm, the execution never terminates and
/// cost = infinity.
///
/// Requires exactly 3 nodes; a and b are the two non-sink ids in
/// ascending order.
class Thm1Adversary final : public core::Adversary {
 public:
  std::string name() const override { return "adaptive-thm1"; }

  void reset(const core::SystemInfo& info) override;

  std::optional<core::Interaction> next(
      core::Time t, const core::ExecutionView& view) override;

 private:
  core::NodeId a_ = 0, b_ = 0, s_ = 0;
  std::size_t probe_step_ = 0;
  std::size_t trap_step_ = 0;
};

/// The online adaptive adversary of paper Theorem 3 (n = 4, nodes know the
/// underlying graph).
///
/// The underlying graph is the cycle s - u1 - u2 - u3 - s. The adversary
/// replays the block ({u1,s}, {u3,s}, {u2,u1}, {u2,u3}) and watches u2: as
/// soon as u2 transmits to u1 (resp. u3) it locks into the loop
/// ({u1,u2}, {u2,u3}, {u3,s}) (resp. ({u2,u3}, {u1,u2}, {u1,s})), where the
/// new data holder can never reach the sink; if u2 never transmits, u2
/// itself never meets the sink. Either way no algorithm terminates while a
/// convergecast stays possible in every window, so cost = infinity.
///
/// Requires exactly 4 nodes; u1 < u2 < u3 are the non-sink ids.
class Thm3Adversary final : public core::Adversary {
 public:
  std::string name() const override { return "adaptive-thm3"; }

  void reset(const core::SystemInfo& info) override;

  std::optional<core::Interaction> next(
      core::Time t, const core::ExecutionView& view) override;

 private:
  enum class Mode { kBlock, kTrapViaU1, kTrapViaU3 };

  core::NodeId u1_ = 0, u2_ = 0, u3_ = 0, s_ = 0;
  Mode mode_ = Mode::kBlock;
  std::size_t step_ = 0;        // position within the current block/loop
  core::Time last_emitted_ = 0;
  bool have_emitted_ = false;
};

}  // namespace doda::adversary
