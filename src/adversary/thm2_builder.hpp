#pragma once

#include "core/algorithm.hpp"
#include "dynagraph/interaction_sequence.hpp"

namespace doda::adversary {

/// The oblivious-adversary construction of paper Theorem 2, specialized to
/// deterministic oblivious algorithms (for which the paper's transmission
/// probabilities are 0/1 and the construction is exact).
struct Thm2Construction {
  /// The full sequence: star prefix I^{l0} followed by `repeats` copies of
  /// the blocking ring round I'.
  dynagraph::InteractionSequence sequence;
  /// l0: length of the star prefix (first prefix on which the algorithm
  /// transmits at least once). 0 if the algorithm never transmits on the
  /// star within the probe bound.
  dynagraph::Time prefix_length = 0;
  /// u_d: the node that still owns data after the prefix but whose only
  /// route to the sink passes through a node that no longer owns data.
  dynagraph::NodeId stuck_node = 0;
};

/// Builds the Theorem 2 sequence against `algorithm`.
///
/// The adversary knows the algorithm's code (paper §2.2), so it simulates
/// the algorithm on star prefixes I^l (I_i = {u_{i mod n-1}, s}) to find
/// l0 = the first prefix length with a transmission, picks a node u_d that
/// still owns data, and appends `repeats` rounds of the ring sequence I'
/// where the only interaction touching the sink is {u_{d-1}, s}: u_d's data
/// would have to traverse every other node — including one with no data —
/// so the execution can never terminate while offline convergecasts remain
/// possible (cost = infinity).
///
/// `info.node_count` must be >= 4. `max_prefix` bounds the l0 search; if
/// the algorithm never transmits on the star, the returned sequence is the
/// pure star prefix repeated (on which such an algorithm never terminates
/// either).
Thm2Construction buildThm2Sequence(core::DodaAlgorithm& algorithm,
                                   const core::SystemInfo& info,
                                   std::size_t repeats,
                                   dynagraph::Time max_prefix = 1 << 16);

}  // namespace doda::adversary
