#include "adversary/thm2_builder.hpp"

#include <stdexcept>
#include <vector>

#include "adversary/sequence_adversary.hpp"
#include "core/engine.hpp"

namespace doda::adversary {

using core::NodeId;
using core::SystemInfo;
using core::Time;
using dynagraph::Interaction;
using dynagraph::InteractionSequence;

Thm2Construction buildThm2Sequence(core::DodaAlgorithm& algorithm,
                                   const SystemInfo& info,
                                   std::size_t repeats, Time max_prefix) {
  if (info.node_count < 4)
    throw std::invalid_argument("buildThm2Sequence: need >= 4 nodes");

  // Non-sink nodes u_0 .. u_{n-2} in ascending id order; all index
  // arithmetic below is modulo n-1 as in the paper.
  std::vector<NodeId> u;
  for (NodeId v = 0; v < info.node_count; ++v)
    if (v != info.sink) u.push_back(v);
  const std::size_t m = u.size();  // n - 1

  // Star sequence I^L: I_i = {u_{i mod m}, s}.
  InteractionSequence star;
  for (Time i = 0; i < max_prefix; ++i)
    star.append(Interaction(u[static_cast<std::size_t>(i) % m], info.sink));

  // Simulate the algorithm on the star (the adversary knows its code) to
  // find the first transmission.
  core::Engine engine(info, core::AggregationFunction::sum());
  SequenceAdversary probe(star);
  core::RunOptions options;
  options.max_interactions = max_prefix;
  const auto result = engine.run(algorithm, probe, options);

  Thm2Construction out;
  if (result.schedule.empty()) {
    // The algorithm never transmits on the star: the star itself defeats it.
    out.sequence = star;
    out.prefix_length = 0;
    out.stuck_node = u[0];
    return out;
  }

  const Time first = result.schedule.front().time;
  const Time l0 = first + 1;
  // The transmitter at I_{l0-1} = {u_j, s} is u_j; every other non-sink
  // node still owns data there. Pick d = j+1 (any still-owning node works;
  // the paper picks one distinct from u_{l0}).
  const std::size_t j = static_cast<std::size_t>(first) % m;
  const std::size_t d = (j + 1) % m;

  // Ring round I' of length m: I'_i = {u_i, u_{i+1 mod m}} except
  // I'_{d-1} = {u_{d-1}, s}. The ring edge {u_{d-1}, u_d} is the one
  // replaced, so u_d's only route to the sink goes the long way around —
  // through u_j, which has no data.
  const std::size_t cut = (d + m - 1) % m;
  InteractionSequence round;
  for (std::size_t i = 0; i < m; ++i) {
    if (i == cut)
      round.append(Interaction(u[cut], info.sink));
    else
      round.append(Interaction(u[i], u[(i + 1) % m]));
  }

  out.sequence = star.slice(0, l0);
  for (std::size_t r = 0; r < repeats; ++r) out.sequence.appendAll(round);
  out.prefix_length = l0;
  out.stuck_node = u[d];
  return out;
}

}  // namespace doda::adversary
