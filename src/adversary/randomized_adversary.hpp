#pragma once

#include <memory>

#include "core/adversary.hpp"
#include "dynagraph/lazy_sequence.hpp"
#include "dynagraph/meet_time_index.hpp"
#include "dynagraph/traces.hpp"
#include "util/rng.hpp"

namespace doda::adversary {

/// The randomized adversary (paper §2.2/§4): every interaction is an
/// unordered pair drawn uniformly at random among the n(n-1)/2 pairs.
///
/// The adversary conceptually commits to an infinite random sequence up
/// front; knowledge oracles (meetTime, future) read that committed
/// randomness. This class therefore owns a LazySequence and serves the
/// execution from it, so oracle answers and delivered interactions always
/// agree. Create one instance per trial (reuse would replay the same
/// randomness, which is occasionally exactly what a test wants).
class RandomizedAdversary final : public core::Adversary {
 public:
  RandomizedAdversary(
      std::size_t node_count, std::uint64_t seed,
      core::Time max_length = core::Time{1} << 34,
      dynagraph::traces::SeedFormat seed_format = dynagraph::traces::kSeedFormat);

  std::string name() const override { return "randomized-uniform"; }

  std::optional<core::Interaction> next(
      core::Time t, const core::ExecutionView& /*view*/) override {
    return sequence_->at(t);
  }

  /// The committed-randomness backing store (shared with oracles).
  dynagraph::LazySequence& lazySequence() noexcept { return *sequence_; }

  /// Builds the paper's meetTime oracle reading this adversary's committed
  /// randomness.
  dynagraph::MeetTimeIndex makeMeetTimeIndex(core::NodeId sink);

 private:
  std::size_t node_count_;
  dynagraph::traces::SeedFormat seed_format_;
  util::Rng rng_;
  std::unique_ptr<dynagraph::LazySequence> sequence_;
};

/// The non-uniform randomized adversary of the paper's concluding remark
/// #3: interactions are drawn with Zipf-weighted node popularity.
class NonUniformAdversary final : public core::Adversary {
 public:
  NonUniformAdversary(std::size_t node_count, double zipf_exponent,
                      std::uint64_t seed,
                      core::Time max_length = core::Time{1} << 34);

  std::string name() const override { return "randomized-zipf"; }

  std::optional<core::Interaction> next(
      core::Time t, const core::ExecutionView& /*view*/) override {
    return sequence_->at(t);
  }

  dynagraph::LazySequence& lazySequence() noexcept { return *sequence_; }

  dynagraph::MeetTimeIndex makeMeetTimeIndex(core::NodeId sink);

 private:
  std::size_t node_count_;
  dynagraph::traces::ZipfPairDistribution distribution_;
  util::Rng rng_;
  std::unique_ptr<dynagraph::LazySequence> sequence_;
};

}  // namespace doda::adversary
