#include "dynagraph/traces.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

namespace doda::dynagraph::traces {

namespace {

/// Triangular number t(t+1)/2 without intermediate overflow.
inline std::uint64_t triangular(std::uint64_t t) noexcept {
  return (t % 2 == 0) ? t / 2 * (t + 1) : (t + 1) / 2 * t;
}

/// Decodes the r-th unordered pair (0-based, lexicographic: (0,1), (0,2),
/// ..., (0,n-1), (1,2), ...) of n nodes. The row is recovered from the
/// *reversed* index s = n(n-1)/2 - 1 - r via the triangular-root formula
/// t = floor((sqrt(8s+1)-1)/2); the double-precision estimate is corrected
/// by an integer fixup so the decode is exact (and deterministic across
/// platforms) for every s < 2^63.
inline Interaction pairFromIndex(std::uint64_t r, std::size_t n,
                                 std::uint64_t total) noexcept {
  const std::uint64_t s = total - 1 - r;
  auto t = static_cast<std::uint64_t>(
      (std::sqrt(static_cast<double>(s) * 8.0 + 1.0) - 1.0) * 0.5);
  while (triangular(t + 1) <= s) ++t;
  while (triangular(t) > s) --t;
  const std::uint64_t off = s - triangular(t);  // off <= t
  const auto u = static_cast<NodeId>(n - 2 - t);
  const auto v = static_cast<NodeId>(n - 1 - off);
  return Interaction(u, v);
}

/// Bulk fast path for the v2 sampler: for moderate n the index decode is a
/// single lookup into a per-thread row table of n, reused across calls
/// (experiments hold n fixed across trials). The table stores only the row
/// u of each lexicographic index r; the column follows arithmetically from
/// the row-start closed form rowStart(u) = u*(2n-1-u)/2 as
/// v = r - rowStart(u) + u + 1. Storing u16 rows instead of packed pairs
/// halves the footprint — the n = 1024 table is 1 MiB, L2-resident even
/// while the measure scan competes for cache — and the cap bounds a table
/// at 2 MiB per thread (total <= 2^20 forces n <= 1449, so rows fit u16).
/// The draw stream stays exactly one below(total) per pair, and the decode
/// equals pairFromIndex(r, n, total) by construction, so the output is
/// bit-identical to the sqrt decode — which remains in place for n past
/// the cap.
inline constexpr std::uint64_t kPairTableMaxEntries = std::uint64_t{1} << 20;

const std::vector<std::uint16_t>& pairRowTable(std::size_t n) {
  thread_local std::size_t cached_n = 0;
  thread_local std::vector<std::uint16_t> table;
  if (cached_n != n) {
    table.clear();
    table.reserve(triangular(static_cast<std::uint64_t>(n) - 1));
    for (std::uint32_t u = 0; u + 1 < n; ++u)
      for (std::uint32_t v = u + 1; v < n; ++v)
        table.push_back(static_cast<std::uint16_t>(u));
    cached_n = n;
  }
  return table;
}

}  // namespace

Interaction uniformPair(std::size_t n, util::Rng& rng, SeedFormat format) {
  if (n < 2) throw std::invalid_argument("uniformPair: need n >= 2");
  if (format == SeedFormat::v1) {
    const auto u = static_cast<NodeId>(rng.below(n));
    auto v = static_cast<NodeId>(rng.below(n - 1));
    if (v >= u) ++v;  // uniform over the n-1 other nodes
    return Interaction(u, v);
  }
  const std::uint64_t total = triangular(static_cast<std::uint64_t>(n) - 1);
  return pairFromIndex(rng.below(total), n, total);
}

void appendUniform(std::size_t n, std::size_t count, util::Rng& rng,
                   std::vector<Interaction>& out, SeedFormat format) {
  if (n < 2) throw std::invalid_argument("appendUniform: need n >= 2");
  out.reserve(out.size() + count);
  if (format == SeedFormat::v1) {
    for (std::size_t k = 0; k < count; ++k) {
      const auto u = static_cast<NodeId>(rng.below(n));
      auto v = static_cast<NodeId>(rng.below(n - 1));
      if (v >= u) ++v;
      out.emplace_back(u, v);
    }
    return;
  }
  const std::uint64_t total = triangular(static_cast<std::uint64_t>(n) - 1);
  if (total <= kPairTableMaxEntries) {
    const std::uint16_t* rows = pairRowTable(n).data();
    const std::uint64_t two_n_minus_1 = 2 * static_cast<std::uint64_t>(n) - 1;
    // Two passes per chunk: drawing the chunk's indices first lets every
    // table line be prefetched while later draws are still in flight, so
    // the lookups run at full memory-level parallelism instead of one
    // L2/L3 miss at a time (the n = 1024 table does not fit L1). The
    // high-locality hint pulls lines into L1 — a chunk touches at most
    // 512 lines (32 KiB), under the 48 KiB L1d — which measures ~10%
    // faster than stopping at L2.
    constexpr std::size_t kChunk = 512;
    std::uint32_t idx[kChunk];
    for (std::size_t done = 0; done < count;) {
      const std::size_t m = std::min(count - done, kChunk);
      for (std::size_t k = 0; k < m; ++k) {
        const auto r = static_cast<std::uint32_t>(rng.below(total));
        idx[k] = r;
#if defined(__GNUC__) || defined(__clang__)
        __builtin_prefetch(rows + r, 0, 3);
#endif
      }
      for (std::size_t k = 0; k < m; ++k) {
        const std::uint32_t r = idx[k];
        const std::uint64_t a = rows[r];
        const std::uint64_t row_start = a * (two_n_minus_1 - a) / 2;
        out.push_back(Interaction::presorted(
            static_cast<NodeId>(a),
            static_cast<NodeId>(r - row_start + a + 1)));
      }
      done += m;
    }
    return;
  }
  for (std::size_t k = 0; k < count; ++k)
    out.push_back(pairFromIndex(rng.below(total), n, total));
}

InteractionSequence uniformRandom(std::size_t n, Time length, util::Rng& rng,
                                  SeedFormat format) {
  std::vector<Interaction> out;
  appendUniform(n, static_cast<std::size_t>(length), rng, out, format);
  return InteractionSequence(std::move(out));
}

ZipfPairDistribution::ZipfPairDistribution(std::size_t n, double exponent)
    : weights_(n) {
  if (n < 2) throw std::invalid_argument("ZipfPairDistribution: n >= 2");
  for (std::size_t i = 0; i < n; ++i)
    weights_[i] = 1.0 / std::pow(static_cast<double>(i + 1), exponent);
}

Interaction ZipfPairDistribution::sample(util::Rng& rng) const {
  const auto u = static_cast<NodeId>(rng.weighted(weights_));
  // Sample the second endpoint from the residual distribution (without
  // replacement) by rejection; acceptance probability is >= 1 - w_max.
  for (;;) {
    const auto v = static_cast<NodeId>(rng.weighted(weights_));
    if (v != u) return Interaction(u, v);
  }
}

void ZipfPairDistribution::append(std::size_t count, util::Rng& rng,
                                  std::vector<Interaction>& out) const {
  out.reserve(out.size() + count);
  for (std::size_t k = 0; k < count; ++k) out.push_back(sample(rng));
}

InteractionSequence zipfRandom(std::size_t n, Time length, double exponent,
                               util::Rng& rng) {
  const ZipfPairDistribution dist(n, exponent);
  std::vector<Interaction> out;
  dist.append(static_cast<std::size_t>(length), rng, out);
  return InteractionSequence(std::move(out));
}

InteractionSequence roundRobin(const graph::StaticGraph& g,
                               std::size_t rounds) {
  const auto edges = g.edges();
  std::vector<Interaction> out;
  out.reserve(edges.size() * rounds);
  for (std::size_t r = 0; r < rounds; ++r)
    for (const auto& [u, v] : edges) out.emplace_back(u, v);
  return InteractionSequence(std::move(out));
}

InteractionSequence shuffledRounds(const graph::StaticGraph& g,
                                   std::size_t rounds, util::Rng& rng) {
  auto edges = g.edges();
  std::vector<Interaction> out;
  out.reserve(edges.size() * rounds);
  for (std::size_t r = 0; r < rounds; ++r) {
    rng.shuffle(edges);
    for (const auto& [u, v] : edges) out.emplace_back(u, v);
  }
  return InteractionSequence(std::move(out));
}

graph::StaticGraph pathGraph(std::size_t n) {
  graph::StaticGraph g(n);
  for (NodeId i = 0; i + 1 < n; ++i) g.addEdge(i, i + 1);
  return g;
}

graph::StaticGraph ringGraph(std::size_t n) {
  if (n < 3) throw std::invalid_argument("ringGraph: need n >= 3");
  auto g = pathGraph(n);
  g.addEdge(static_cast<NodeId>(n - 1), 0);
  return g;
}

graph::StaticGraph starGraph(std::size_t n, graph::NodeId center) {
  graph::StaticGraph g(n);
  for (NodeId i = 0; i < n; ++i)
    if (i != center) g.addEdge(center, i);
  return g;
}

graph::StaticGraph completeGraph(std::size_t n) {
  graph::StaticGraph g(n);
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v) g.addEdge(u, v);
  return g;
}

graph::StaticGraph randomTree(std::size_t n, util::Rng& rng) {
  graph::StaticGraph g(n);
  for (NodeId i = 1; i < n; ++i)
    g.addEdge(i, static_cast<NodeId>(rng.below(i)));
  return g;
}

graph::StaticGraph randomConnected(std::size_t n, std::size_t extra_edges,
                                   util::Rng& rng) {
  auto g = randomTree(n, rng);
  const std::size_t max_extra = n * (n - 1) / 2 - (n - 1);
  extra_edges = std::min(extra_edges, max_extra);
  std::size_t added = 0;
  while (added < extra_edges) {
    const auto i = uniformPair(n, rng);
    if (!g.hasEdge(i.a(), i.b())) {
      g.addEdge(i.a(), i.b());
      ++added;
    }
  }
  return g;
}

InteractionSequence bodySensorTrace(const BodySensorConfig& config,
                                    util::Rng& rng) {
  if (config.sensors < 2)
    throw std::invalid_argument("bodySensorTrace: need >= 2 sensors");
  if (config.min_period == 0 || config.min_period > config.max_period)
    throw std::invalid_argument("bodySensorTrace: bad period range");
  const std::size_t n = config.sensors + 1;  // node 0 is the hub/sink

  std::vector<Time> period(n, 0);
  for (std::size_t i = 1; i < n; ++i)
    period[i] = static_cast<Time>(
        rng.between(static_cast<std::int64_t>(config.min_period),
                    static_cast<std::int64_t>(config.max_period)));

  std::vector<Interaction> out;
  for (Time slot = 1; slot <= config.slots; ++slot) {
    // Hub contacts: sensor i checks in around every period[i] slots.
    for (std::size_t i = 1; i < n; ++i) {
      const Time jitter =
          config.jitter == 0
              ? 0
              : static_cast<Time>(rng.below(2 * config.jitter + 1));
      const Time phase = (slot + jitter) % period[i];
      if (phase == 0) out.emplace_back(0, static_cast<NodeId>(i));
    }
    // Peer contacts between adjacent body positions (i, i+1).
    for (std::size_t i = 1; i + 1 < n; ++i)
      if (rng.chance(config.peer_contact_rate))
        out.emplace_back(static_cast<NodeId>(i), static_cast<NodeId>(i + 1));
  }
  return InteractionSequence(std::move(out));
}

InteractionSequence vehicularTrace(const VehicularConfig& config,
                                   util::Rng& rng) {
  if (config.width == 0 || config.height == 0)
    throw std::invalid_argument("vehicularTrace: empty grid");
  if (config.cars < 2)
    throw std::invalid_argument("vehicularTrace: need >= 2 cars");
  const std::size_t cells = config.width * config.height;
  const std::size_t rsu_cell =
      (config.height / 2) * config.width + config.width / 2;

  // Node 0 is the RSU/sink; cars are nodes 1..cars.
  std::vector<std::size_t> pos(config.cars + 1);
  pos[0] = rsu_cell;
  for (std::size_t c = 1; c <= config.cars; ++c) pos[c] = rng.below(cells);

  auto step = [&](std::size_t cell) {
    const std::size_t x = cell % config.width;
    const std::size_t y = cell / config.width;
    switch (rng.below(5)) {
      case 0:
        return cell;  // wait at intersection
      case 1:
        return y * config.width + (x + 1 < config.width ? x + 1 : x);
      case 2:
        return y * config.width + (x > 0 ? x - 1 : x);
      case 3:
        return (y + 1 < config.height ? y + 1 : y) * config.width + x;
      default:
        return (y > 0 ? y - 1 : y) * config.width + x;
    }
  };

  std::vector<Interaction> out;
  for (Time t = 0; t < config.steps; ++t) {
    for (std::size_t c = 1; c <= config.cars; ++c) pos[c] = step(pos[c]);
    // Serialize this step's co-location contacts in id order.
    for (std::size_t a = 0; a <= config.cars; ++a)
      for (std::size_t b = a + 1; b <= config.cars; ++b)
        if (pos[a] == pos[b])
          out.emplace_back(static_cast<NodeId>(a), static_cast<NodeId>(b));
  }
  return InteractionSequence(std::move(out));
}

}  // namespace doda::dynagraph::traces
