#include "dynagraph/traces.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

namespace doda::dynagraph::traces {

Interaction uniformPair(std::size_t n, util::Rng& rng) {
  if (n < 2) throw std::invalid_argument("uniformPair: need n >= 2");
  const auto u = static_cast<NodeId>(rng.below(n));
  auto v = static_cast<NodeId>(rng.below(n - 1));
  if (v >= u) ++v;  // uniform over the n-1 other nodes
  return Interaction(u, v);
}

void appendUniform(std::size_t n, std::size_t count, util::Rng& rng,
                   std::vector<Interaction>& out) {
  if (n < 2) throw std::invalid_argument("appendUniform: need n >= 2");
  out.reserve(out.size() + count);
  for (std::size_t k = 0; k < count; ++k) {
    const auto u = static_cast<NodeId>(rng.below(n));
    auto v = static_cast<NodeId>(rng.below(n - 1));
    if (v >= u) ++v;
    out.emplace_back(u, v);
  }
}

InteractionSequence uniformRandom(std::size_t n, Time length,
                                  util::Rng& rng) {
  std::vector<Interaction> out;
  appendUniform(n, static_cast<std::size_t>(length), rng, out);
  return InteractionSequence(std::move(out));
}

ZipfPairDistribution::ZipfPairDistribution(std::size_t n, double exponent)
    : weights_(n) {
  if (n < 2) throw std::invalid_argument("ZipfPairDistribution: n >= 2");
  for (std::size_t i = 0; i < n; ++i)
    weights_[i] = 1.0 / std::pow(static_cast<double>(i + 1), exponent);
}

Interaction ZipfPairDistribution::sample(util::Rng& rng) const {
  const auto u = static_cast<NodeId>(rng.weighted(weights_));
  // Sample the second endpoint from the residual distribution (without
  // replacement) by rejection; acceptance probability is >= 1 - w_max.
  for (;;) {
    const auto v = static_cast<NodeId>(rng.weighted(weights_));
    if (v != u) return Interaction(u, v);
  }
}

void ZipfPairDistribution::append(std::size_t count, util::Rng& rng,
                                  std::vector<Interaction>& out) const {
  out.reserve(out.size() + count);
  for (std::size_t k = 0; k < count; ++k) out.push_back(sample(rng));
}

InteractionSequence zipfRandom(std::size_t n, Time length, double exponent,
                               util::Rng& rng) {
  const ZipfPairDistribution dist(n, exponent);
  std::vector<Interaction> out;
  dist.append(static_cast<std::size_t>(length), rng, out);
  return InteractionSequence(std::move(out));
}

InteractionSequence roundRobin(const graph::StaticGraph& g,
                               std::size_t rounds) {
  const auto edges = g.edges();
  std::vector<Interaction> out;
  out.reserve(edges.size() * rounds);
  for (std::size_t r = 0; r < rounds; ++r)
    for (const auto& [u, v] : edges) out.emplace_back(u, v);
  return InteractionSequence(std::move(out));
}

InteractionSequence shuffledRounds(const graph::StaticGraph& g,
                                   std::size_t rounds, util::Rng& rng) {
  auto edges = g.edges();
  std::vector<Interaction> out;
  out.reserve(edges.size() * rounds);
  for (std::size_t r = 0; r < rounds; ++r) {
    rng.shuffle(edges);
    for (const auto& [u, v] : edges) out.emplace_back(u, v);
  }
  return InteractionSequence(std::move(out));
}

graph::StaticGraph pathGraph(std::size_t n) {
  graph::StaticGraph g(n);
  for (NodeId i = 0; i + 1 < n; ++i) g.addEdge(i, i + 1);
  return g;
}

graph::StaticGraph ringGraph(std::size_t n) {
  if (n < 3) throw std::invalid_argument("ringGraph: need n >= 3");
  auto g = pathGraph(n);
  g.addEdge(static_cast<NodeId>(n - 1), 0);
  return g;
}

graph::StaticGraph starGraph(std::size_t n, graph::NodeId center) {
  graph::StaticGraph g(n);
  for (NodeId i = 0; i < n; ++i)
    if (i != center) g.addEdge(center, i);
  return g;
}

graph::StaticGraph completeGraph(std::size_t n) {
  graph::StaticGraph g(n);
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v) g.addEdge(u, v);
  return g;
}

graph::StaticGraph randomTree(std::size_t n, util::Rng& rng) {
  graph::StaticGraph g(n);
  for (NodeId i = 1; i < n; ++i)
    g.addEdge(i, static_cast<NodeId>(rng.below(i)));
  return g;
}

graph::StaticGraph randomConnected(std::size_t n, std::size_t extra_edges,
                                   util::Rng& rng) {
  auto g = randomTree(n, rng);
  const std::size_t max_extra = n * (n - 1) / 2 - (n - 1);
  extra_edges = std::min(extra_edges, max_extra);
  std::size_t added = 0;
  while (added < extra_edges) {
    const auto i = uniformPair(n, rng);
    if (!g.hasEdge(i.a(), i.b())) {
      g.addEdge(i.a(), i.b());
      ++added;
    }
  }
  return g;
}

InteractionSequence bodySensorTrace(const BodySensorConfig& config,
                                    util::Rng& rng) {
  if (config.sensors < 2)
    throw std::invalid_argument("bodySensorTrace: need >= 2 sensors");
  if (config.min_period == 0 || config.min_period > config.max_period)
    throw std::invalid_argument("bodySensorTrace: bad period range");
  const std::size_t n = config.sensors + 1;  // node 0 is the hub/sink

  std::vector<Time> period(n, 0);
  for (std::size_t i = 1; i < n; ++i)
    period[i] = static_cast<Time>(
        rng.between(static_cast<std::int64_t>(config.min_period),
                    static_cast<std::int64_t>(config.max_period)));

  std::vector<Interaction> out;
  for (Time slot = 1; slot <= config.slots; ++slot) {
    // Hub contacts: sensor i checks in around every period[i] slots.
    for (std::size_t i = 1; i < n; ++i) {
      const Time jitter =
          config.jitter == 0
              ? 0
              : static_cast<Time>(rng.below(2 * config.jitter + 1));
      const Time phase = (slot + jitter) % period[i];
      if (phase == 0) out.emplace_back(0, static_cast<NodeId>(i));
    }
    // Peer contacts between adjacent body positions (i, i+1).
    for (std::size_t i = 1; i + 1 < n; ++i)
      if (rng.chance(config.peer_contact_rate))
        out.emplace_back(static_cast<NodeId>(i), static_cast<NodeId>(i + 1));
  }
  return InteractionSequence(std::move(out));
}

InteractionSequence vehicularTrace(const VehicularConfig& config,
                                   util::Rng& rng) {
  if (config.width == 0 || config.height == 0)
    throw std::invalid_argument("vehicularTrace: empty grid");
  if (config.cars < 2)
    throw std::invalid_argument("vehicularTrace: need >= 2 cars");
  const std::size_t cells = config.width * config.height;
  const std::size_t rsu_cell =
      (config.height / 2) * config.width + config.width / 2;

  // Node 0 is the RSU/sink; cars are nodes 1..cars.
  std::vector<std::size_t> pos(config.cars + 1);
  pos[0] = rsu_cell;
  for (std::size_t c = 1; c <= config.cars; ++c) pos[c] = rng.below(cells);

  auto step = [&](std::size_t cell) {
    const std::size_t x = cell % config.width;
    const std::size_t y = cell / config.width;
    switch (rng.below(5)) {
      case 0:
        return cell;  // wait at intersection
      case 1:
        return y * config.width + (x + 1 < config.width ? x + 1 : x);
      case 2:
        return y * config.width + (x > 0 ? x - 1 : x);
      case 3:
        return (y + 1 < config.height ? y + 1 : y) * config.width + x;
      default:
        return (y > 0 ? y - 1 : y) * config.width + x;
    }
  };

  std::vector<Interaction> out;
  for (Time t = 0; t < config.steps; ++t) {
    for (std::size_t c = 1; c <= config.cars; ++c) pos[c] = step(pos[c]);
    // Serialize this step's co-location contacts in id order.
    for (std::size_t a = 0; a <= config.cars; ++a)
      for (std::size_t b = a + 1; b <= config.cars; ++b)
        if (pos[a] == pos[b])
          out.emplace_back(static_cast<NodeId>(a), static_cast<NodeId>(b));
  }
  return InteractionSequence(std::move(out));
}

}  // namespace doda::dynagraph::traces
