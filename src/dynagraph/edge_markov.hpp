#pragma once

#include "dynagraph/interaction_sequence.hpp"
#include "util/rng.hpp"

namespace doda::dynagraph::traces {

/// Edge-Markov dynamic graph (a standard model in the time-varying-graph
/// literature the paper builds on): every potential edge independently
/// follows a two-state Markov chain — an absent edge appears with
/// probability `p_on` per step, a present edge disappears with probability
/// `p_off`. Each step's live edges are serialized into consecutive pairwise
/// interactions (in lexicographic order), matching the one-interaction-per-
/// time-unit model.
///
/// The stationary edge density is p_on / (p_on + p_off); correlation decays
/// as (1 - p_on - p_off)^k, so the model sweeps smoothly from i.i.d. random
/// graphs (p_on + p_off = 1) to near-static topologies (both small).
struct EdgeMarkovConfig {
  std::size_t nodes = 16;
  double p_on = 0.05;   // birth probability per absent edge per step
  double p_off = 0.30;  // death probability per present edge per step
  Time steps = 1000;
  /// When true, edges start from the stationary distribution; when false,
  /// the graph starts empty.
  bool stationary_start = true;
};

InteractionSequence edgeMarkovTrace(const EdgeMarkovConfig& config,
                                    util::Rng& rng);

}  // namespace doda::dynagraph::traces
