#include "dynagraph/trace_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace doda::dynagraph {

void writeTrace(std::ostream& os, const InteractionSequence& sequence,
                std::size_t node_count) {
  os << "# doda-trace v1\n";
  if (node_count == 0) node_count = sequence.minNodeCount();
  os << "# nodes " << node_count << "\n";
  for (Time t = 0; t < sequence.length(); ++t) {
    const auto& i = sequence.at(t);
    os << i.a() << ' ' << i.b() << '\n';
  }
}

void saveTrace(const std::string& path, const InteractionSequence& sequence,
               std::size_t node_count) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("saveTrace: cannot open " + path);
  writeTrace(out, sequence, node_count);
}

LoadedTrace readTrace(std::istream& is) {
  LoadedTrace result;
  std::size_t declared_nodes = 0;
  std::string line;
  std::size_t line_no = 0;
  auto fail = [&](const std::string& why) {
    throw std::runtime_error("readTrace: line " + std::to_string(line_no) +
                             ": " + why);
  };
  while (std::getline(is, line)) {
    ++line_no;
    // Trim trailing CR for Windows-authored files.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream header(line.substr(1));
      std::string keyword;
      if (header >> keyword && keyword == "nodes") {
        if (!(header >> declared_nodes)) fail("malformed '# nodes' header");
      }
      continue;
    }
    std::istringstream cells(line);
    long long u = -1, v = -1;
    if (!(cells >> u >> v)) fail("expected two node ids");
    std::string extra;
    if (cells >> extra) fail("trailing content: '" + extra + "'");
    if (u < 0 || v < 0) fail("negative node id");
    if (u == v) fail("self-interaction");
    result.sequence.append(Interaction(static_cast<NodeId>(u),
                                       static_cast<NodeId>(v)));
  }
  const std::size_t min_nodes = result.sequence.minNodeCount();
  if (declared_nodes != 0 && declared_nodes < min_nodes)
    throw std::runtime_error(
        "readTrace: '# nodes' header smaller than ids used");
  result.node_count = declared_nodes != 0 ? declared_nodes : min_nodes;
  return result;
}

LoadedTrace loadTrace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("loadTrace: cannot open " + path);
  return readTrace(in);
}

}  // namespace doda::dynagraph
