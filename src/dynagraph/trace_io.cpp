#include "dynagraph/trace_io.hpp"

#include "storage/env.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <optional>
#include <sstream>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#define DODA_TRACE_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

// The v4 SWAR unit parser assembles fields with unaligned 64-bit loads,
// which read bytes in native order; it is only enabled where that order is
// the on-disk (little-endian) order. Elsewhere the scalar parser runs.
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
#define DODA_TRACE_LITTLE_ENDIAN 1
#else
#define DODA_TRACE_LITTLE_ENDIAN 0
#endif

namespace doda::dynagraph {

void writeTrace(std::ostream& os, const InteractionSequence& sequence,
                std::size_t node_count) {
  os << "# doda-trace v1\n";
  if (node_count == 0) node_count = sequence.minNodeCount();
  os << "# nodes " << node_count << "\n";
  for (Time t = 0; t < sequence.length(); ++t) {
    const auto& i = sequence.at(t);
    os << i.a() << ' ' << i.b() << '\n';
  }
}

void saveTrace(const std::string& path, const InteractionSequence& sequence,
               std::size_t node_count) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("saveTrace: cannot open " + path);
  writeTrace(out, sequence, node_count);
}

LoadedTrace readTrace(std::istream& is) {
  LoadedTrace result;
  std::size_t declared_nodes = 0;
  std::string line;
  std::size_t line_no = 0;
  auto fail = [&](const std::string& why) {
    throw std::runtime_error("readTrace: line " + std::to_string(line_no) +
                             ": " + why);
  };
  while (std::getline(is, line)) {
    ++line_no;
    // Trim trailing CR for Windows-authored files.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream header(line.substr(1));
      std::string keyword;
      if (header >> keyword && keyword == "nodes") {
        if (!(header >> declared_nodes)) fail("malformed '# nodes' header");
      }
      continue;
    }
    std::istringstream cells(line);
    long long u = -1, v = -1;
    if (!(cells >> u >> v)) fail("expected two node ids");
    std::string extra;
    if (cells >> extra) fail("trailing content: '" + extra + "'");
    if (u < 0 || v < 0) fail("negative node id");
    if (u == v) fail("self-interaction");
    result.sequence.append(Interaction(static_cast<NodeId>(u),
                                       static_cast<NodeId>(v)));
  }
  const std::size_t min_nodes = result.sequence.minNodeCount();
  if (declared_nodes != 0 && declared_nodes < min_nodes)
    throw std::runtime_error(
        "readTrace: '# nodes' header smaller than ids used");
  result.node_count = declared_nodes != 0 ? declared_nodes : min_nodes;
  return result;
}

LoadedTrace loadTrace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("loadTrace: cannot open " + path);
  return readTrace(in);
}

// ------------------------------------------------------------ binary store

namespace {

constexpr char kTraceMagic[8] = {'D', 'O', 'D', 'A', 'T', 'R', 'C', '1'};
constexpr std::size_t kTraceMinBlockBytes = 16;
constexpr std::size_t kTraceMaxBlockBytes = std::size_t{1} << 26;

std::uint64_t fnv1a(const unsigned char* data, std::size_t size) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void storeU16(unsigned char* out, std::uint16_t value) {
  out[0] = static_cast<unsigned char>(value);
  out[1] = static_cast<unsigned char>(value >> 8);
}

void storeU32(unsigned char* out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i)
    out[i] = static_cast<unsigned char>(value >> (8 * i));
}

void storeU64(unsigned char* out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i)
    out[i] = static_cast<unsigned char>(value >> (8 * i));
}

std::uint16_t loadU16(const unsigned char* in) {
  return static_cast<std::uint16_t>(in[0] | (in[1] << 8));
}

std::uint32_t loadU32(const unsigned char* in) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i)
    value |= static_cast<std::uint32_t>(in[i]) << (8 * i);
  return value;
}

std::uint64_t loadU64(const unsigned char* in) {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i)
    value |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  return value;
}

/// Serializes a header for either format version (header.format_version
/// picks the layout; the returned vector is the exact on-disk size).
std::vector<unsigned char> encodeHeader(const TraceShardHeader& header) {
  std::vector<unsigned char> bytes(header.headerSize(), 0);
  for (int i = 0; i < 8; ++i)
    bytes[static_cast<std::size_t>(i)] =
        static_cast<unsigned char>(kTraceMagic[i]);
  storeU16(&bytes[8], header.format_version);
  storeU16(&bytes[10], header.headerSize());
  storeU32(&bytes[12], header.shard_index);
  storeU32(&bytes[16], header.shard_count);
  storeU64(&bytes[24], header.node_count);
  storeU64(&bytes[32], header.trial_count);
  storeU64(&bytes[40], header.base_trial);
  storeU64(&bytes[48], header.payload_bytes);
  if (header.format_version >= kTraceFormatVersionV2) {
    storeU32(&bytes[20], header.codec);
    storeU64(&bytes[56], header.raw_payload_bytes);
    storeU32(&bytes[64], header.block_bytes);
    // v2 reserves offset 68 (always 0); v3 stores the footer size there.
    storeU32(&bytes[68], header.format_version >= kTraceFormatVersionV3
                             ? header.footer_bytes
                             : 0);
    storeU64(&bytes[72], fnv1a(bytes.data(), 72));
  } else {
    storeU32(&bytes[20], 0);  // reserved
    storeU64(&bytes[56], fnv1a(bytes.data(), 56));
  }
  return bytes;
}

std::uint64_t zigzagEncode(std::int64_t value) {
  return (static_cast<std::uint64_t>(value) << 1) ^
         static_cast<std::uint64_t>(value >> 63);
}

std::size_t varintLen(std::uint64_t value) {
  std::size_t len = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++len;
  }
  return len;
}

std::int64_t zigzagDecode(std::uint64_t value) {
  return static_cast<std::int64_t>(value >> 1) ^
         -static_cast<std::int64_t>(value & 1);
}

/// v4: little-endian byte length of a group field (the writer guarantees
/// values < 2^32 via the node-count bound).
std::size_t v4FieldLen(std::uint64_t value) {
  return value < (1u << 8) ? 1 : value < (1u << 16) ? 2
         : value < (std::uint64_t{1} << 24) ? 3 : 4;
}

/// v4: size code of a trial-length unit (data bytes = 1 << code).
unsigned v4LengthCode(std::uint64_t length) {
  return length < (std::uint64_t{1} << 8)    ? 0u
         : length < (std::uint64_t{1} << 16) ? 1u
         : length < (std::uint64_t{1} << 32) ? 2u
                                             : 3u;
}

}  // namespace

std::string traceShardFileName(std::uint32_t shard_index) {
  char name[32];
  std::snprintf(name, sizeof(name), "shard-%05u.trace", shard_index);
  return name;
}

// ------------------------------------------------------------ mmap region

namespace detail {

MmapRegion::~MmapRegion() { unmap(); }

MmapRegion::MmapRegion(MmapRegion&& other) noexcept
    : data(other.data), size(other.size) {
  other.data = nullptr;
  other.size = 0;
}

MmapRegion& MmapRegion::operator=(MmapRegion&& other) noexcept {
  if (this != &other) {
    unmap();
    data = other.data;
    size = other.size;
    other.data = nullptr;
    other.size = 0;
  }
  return *this;
}

bool MmapRegion::map([[maybe_unused]] const std::string& path,
                     std::string& error) {
#if DODA_TRACE_HAS_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    error = "cannot open";
    return false;
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    error = "cannot stat";
    return false;
  }
  const auto file_size = static_cast<std::size_t>(st.st_size);
  if (file_size == 0) {
    ::close(fd);
    error = "empty file";
    return false;
  }
  void* mapped = ::mmap(nullptr, file_size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping outlives the descriptor
  if (mapped == MAP_FAILED) {
    error = "mmap failed";
    return false;
  }
  data = static_cast<const unsigned char*>(mapped);
  size = file_size;
  return true;
#else
  error = "mmap unsupported on this platform";
  return false;
#endif
}

void MmapRegion::unmap() noexcept {
#if DODA_TRACE_HAS_MMAP
  if (data != nullptr) ::munmap(const_cast<unsigned char*>(data), size);
#endif
  data = nullptr;
  size = 0;
}

}  // namespace detail

// ---------------------------------------------------------------- writer

TraceStoreWriter::TraceStoreWriter(std::string directory,
                                   std::size_t node_count,
                                   std::uint64_t total_trials,
                                   std::uint32_t shard_count,
                                   TraceWriterOptions options)
    : directory_(std::move(directory)),
      node_count_(node_count),
      total_trials_(total_trials),
      shard_count_(shard_count),
      options_(options) {
  if (node_count_ < 2)
    throw std::invalid_argument("TraceStoreWriter: need at least 2 nodes");
  if (total_trials_ == 0)
    throw std::invalid_argument("TraceStoreWriter: zero trials");
  if (shard_count_ == 0 || shard_count_ > total_trials_)
    throw std::invalid_argument(
        "TraceStoreWriter: shard count must be in [1, total_trials]");
  if (options_.format_version < kTraceFormatVersionV1 ||
      options_.format_version > kTraceFormatVersionV4)
    throw std::invalid_argument(
        "TraceStoreWriter: unsupported format version " +
        std::to_string(options_.format_version));
  if (options_.format_version >= kTraceFormatVersionV4 &&
      node_count_ > (std::uint64_t{1} << 31))
    throw std::invalid_argument(
        "TraceStoreWriter: v4 requires node_count <= 2^31 (group fields "
        "are at most 4 bytes)");
  if (options_.block_bytes < kTraceMinBlockBytes ||
      options_.block_bytes > kTraceMaxBlockBytes)
    throw std::invalid_argument("TraceStoreWriter: block size out of range");
  if (options_.format_version >= kTraceFormatVersionV3) {
    bucket_cap_ = codec::kRansContextBuckets;
    if (options_.compress) {
      if (options_.format_version >= kTraceFormatVersionV4)
        rans_v4_ = std::make_unique<codec::RansV4BlockEncoder>();
      else
        rans_ = std::make_unique<codec::RansBlockEncoder>();
    }
  }
  bucket_shift_ = codec::bucketShiftFor(node_count_, bucket_cap_);
  storage::resolveEnv(options_.env).mkdirs(directory_);
  if (options_.format_version == kTraceFormatVersionV1) {
    chunk_.reserve(options_.block_bytes);
  } else {
    raw_block_.reserve(options_.block_bytes);
    if (options_.format_version == kTraceFormatVersionV3 &&
        options_.compress)
      ctx_block_.reserve(options_.block_bytes);
  }
  openShard(0);
}

TraceStoreWriter::~TraceStoreWriter() {
  if (finished_) return;
  try {
    finish();
  } catch (...) {
    // Destructors must not throw; an incomplete store is detectable by
    // TraceStore::open (trial-count / size mismatch).
  }
}

std::uint64_t TraceStoreWriter::trialsInShard(std::uint32_t index) const {
  // Contiguous near-equal split; the first (total % shards) shards take one
  // extra trial.
  const std::uint64_t base = total_trials_ / shard_count_;
  return base + (index < total_trials_ % shard_count_ ? 1 : 0);
}

void TraceStoreWriter::openShard(std::uint32_t index) {
  const auto path =
      (std::filesystem::path(directory_) / traceShardFileName(index))
          .string();
  out_ = storage::resolveEnv(options_.env).newWritableFile(path);
  current_shard_ = index;
  trials_in_current_ = 0;
  payload_bytes_ = 0;
  raw_payload_bytes_ = 0;
  chunk_.clear();
  raw_block_.clear();
  ctx_block_.clear();
  index_.clear();
  cur_trials_begun_ = 0;
  cur_trial_length_ = 0;
  cur_decoded_ = 0;
  cur_prev_a_ = 0;
  v4_have_pending_ = false;
  if (options_.format_version == kTraceFormatVersionV2 && options_.compress) {
    encoded_.clear();
    encoder_.start(&encoded_);
    models_.reset();
  }
  if (rans_) rans_->reset();
  if (rans_v4_) rans_v4_->reset();
  // Placeholder header; sealed with the real payload size in closeShard().
  TraceShardHeader header;
  header.format_version = options_.format_version;
  header.shard_index = index;
  header.shard_count = shard_count_;
  header.node_count = node_count_;
  header.trial_count = trialsInShard(index);
  header.base_trial = options_.base_trial + trials_appended_;
  const auto bytes = encodeHeader(header);
  out_->append(bytes.data(), bytes.size());
}

void TraceStoreWriter::closeShard() {
  if (options_.format_version >= kTraceFormatVersionV2) {
    flushBlock();
  } else {
    flushChunk();
    raw_payload_bytes_ = payload_bytes_;
  }
  if (options_.format_version >= kTraceFormatVersionV3) writeFooter();
  TraceShardHeader header;
  header.format_version = options_.format_version;
  header.shard_index = current_shard_;
  header.shard_count = shard_count_;
  header.node_count = node_count_;
  header.trial_count = trials_in_current_;
  header.base_trial = options_.base_trial + trials_appended_ - trials_in_current_;
  header.payload_bytes = payload_bytes_;
  if (options_.format_version >= kTraceFormatVersionV2) {
    header.codec =
        !options_.compress ? kTraceCodecRaw
        : options_.format_version >= kTraceFormatVersionV4 ? kTraceCodecRansV4
        : options_.format_version >= kTraceFormatVersionV3 ? kTraceCodecRans
                                                           : kTraceCodecRangeCoded;
    header.block_bytes = static_cast<std::uint32_t>(options_.block_bytes);
    header.raw_payload_bytes = raw_payload_bytes_;
  }
  if (options_.format_version >= kTraceFormatVersionV3)
    header.footer_bytes = static_cast<std::uint32_t>(
        kTraceIndexFixedBytes + index_.size() * kTraceIndexEntryBytes);
  const auto bytes = encodeHeader(header);
  out_->writeAt(0, bytes.data(), bytes.size());
  if (options_.sync_on_close) out_->sync();
  out_->close();
  out_.reset();
}

void TraceStoreWriter::putByte(std::uint8_t byte, codec::SymbolClass cls,
                               unsigned bucket) {
  if (options_.format_version >= kTraceFormatVersionV3) {
    if (raw_block_.empty()) {
      // A block is starting: snapshot where it lives and the record cursor
      // at its first byte. putByte is only reached at record-unit
      // boundaries after alignBlockForUnit, so the cursor fully describes
      // this position.
      TraceBlockIndexEntry entry;
      entry.offset = kTraceHeaderSizeV2 + payload_bytes_;
      entry.raw_start = raw_payload_bytes_;
      entry.trials_begun = cur_trials_begun_;
      entry.trial_length = cur_trial_length_;
      entry.decoded = cur_decoded_;
      entry.prev_a = cur_prev_a_;
      index_.push_back(entry);
    }
    raw_block_.push_back(byte);
    if (rans_) {
      // Contexts are only consumed by the rANS seal; the raw (compress =
      // false) path skips the per-byte bookkeeping entirely.
      const unsigned ctx = codec::ransContext(cls, bucket);
      ctx_block_.push_back(static_cast<std::uint8_t>(ctx));
      rans_->count(byte, ctx);
    }
    return;  // flushing happens at unit boundaries (alignBlockForUnit)
  }
  if (options_.format_version >= kTraceFormatVersionV2) {
    raw_block_.push_back(byte);
    if (options_.compress) encoder_.encodeByte(models_.select(cls, bucket), byte);
    if (raw_block_.size() == options_.block_bytes) flushBlock();
    return;
  }
  if (chunk_.size() == options_.block_bytes) flushChunk();
  chunk_.push_back(static_cast<char>(byte));
  ++payload_bytes_;
}

void TraceStoreWriter::alignBlockForUnit(std::size_t unit_bytes) {
  if (options_.format_version < kTraceFormatVersionV3) return;
  if (!raw_block_.empty() &&
      raw_block_.size() + unit_bytes > options_.block_bytes)
    flushBlock();
}

void TraceStoreWriter::putVarint(std::uint64_t value,
                                 codec::SymbolClass first_cls,
                                 codec::SymbolClass cont_cls,
                                 unsigned bucket) {
  codec::SymbolClass cls = first_cls;
  while (value >= 0x80) {
    putByte(static_cast<std::uint8_t>(value) | 0x80, cls, bucket);
    value >>= 7;
    cls = cont_cls;
  }
  putByte(static_cast<std::uint8_t>(value), cls, bucket);
}

void TraceStoreWriter::putByteV4(std::uint8_t byte) {
  if (raw_block_.empty()) {
    // Same block snapshot as the v3 putByte path: putByteV4 is only
    // reached at record-unit boundaries after alignBlockForUnit, so the
    // cursor fully describes this position.
    TraceBlockIndexEntry entry;
    entry.offset = kTraceHeaderSizeV2 + payload_bytes_;
    entry.raw_start = raw_payload_bytes_;
    entry.trials_begun = cur_trials_begun_;
    entry.trial_length = cur_trial_length_;
    entry.decoded = cur_decoded_;
    entry.prev_a = cur_prev_a_;
    index_.push_back(entry);
  }
  raw_block_.push_back(byte);
  if (rans_v4_) rans_v4_->count(byte);
}

void TraceStoreWriter::emitGroupV4(Interaction first,
                                   const Interaction* second) {
  const std::uint64_t delta0 =
      zigzagEncode(static_cast<std::int64_t>(first.a()) -
                   static_cast<std::int64_t>(cur_prev_a_));
  const std::uint64_t gap0 = first.b() - first.a() - 1;
  const std::size_t l0 = v4FieldLen(delta0);
  const std::size_t g0 = v4FieldLen(gap0);
  std::uint64_t delta1 = 0, gap1 = 0;
  std::size_t l1 = 0, g1 = 0;
  std::uint8_t ctrl = static_cast<std::uint8_t>((l0 - 1) | ((g0 - 1) << 2));
  if (second != nullptr) {
    delta1 = zigzagEncode(static_cast<std::int64_t>(second->a()) -
                          static_cast<std::int64_t>(first.a()));
    gap1 = second->b() - second->a() - 1;
    l1 = v4FieldLen(delta1);
    g1 = v4FieldLen(gap1);
    ctrl |= static_cast<std::uint8_t>(((l1 - 1) << 4) | ((g1 - 1) << 6));
  }
  alignBlockForUnit(1 + l0 + g0 + l1 + g1);
  putByteV4(ctrl);
  auto putField = [this](std::uint64_t value, std::size_t len) {
    for (std::size_t i = 0; i < len; ++i)
      putByteV4(static_cast<std::uint8_t>(value >> (8 * i)));
  };
  putField(delta0, l0);
  putField(gap0, g0);
  if (second != nullptr) {
    putField(delta1, l1);
    putField(gap1, g1);
    cur_prev_a_ = second->a();
    cur_decoded_ += 2;
  } else {
    cur_prev_a_ = first.a();
    cur_decoded_ += 1;
  }
}

void TraceStoreWriter::flushChunk() {
  if (chunk_.empty()) return;
  out_->append(chunk_.data(), chunk_.size());
  chunk_.clear();
}

void TraceStoreWriter::flushBlock() {
  if (raw_block_.empty()) return;
  const std::uint8_t* stored = raw_block_.data();
  std::size_t stored_size = raw_block_.size();
  std::uint8_t block_codec = static_cast<std::uint8_t>(kTraceCodecRaw);
  if (rans_v4_) {
    rans_v4_->seal(raw_block_.data(), raw_block_.size(), encoded_);
    // Raw fallback: an incompressible block is stored verbatim, so a
    // compressed store never expands beyond the per-block framing.
    if (encoded_.size() < raw_block_.size()) {
      stored = encoded_.data();
      stored_size = encoded_.size();
      block_codec = static_cast<std::uint8_t>(kTraceCodecRansV4);
    }
  } else if (rans_) {
    rans_->seal(raw_block_.data(), ctx_block_.data(), raw_block_.size(),
                encoded_);
    if (encoded_.size() < raw_block_.size()) {
      stored = encoded_.data();
      stored_size = encoded_.size();
      block_codec = static_cast<std::uint8_t>(kTraceCodecRans);
    }
  } else if (options_.format_version == kTraceFormatVersionV2 &&
             options_.compress) {
    encoder_.finish();
    if (encoded_.size() < raw_block_.size()) {
      stored = encoded_.data();
      stored_size = encoded_.size();
      block_codec = static_cast<std::uint8_t>(kTraceCodecRangeCoded);
    }
  }
  unsigned char frame[kTraceBlockFrameBytes];
  storeU32(frame, static_cast<std::uint32_t>(raw_block_.size()));
  storeU32(frame + 4, static_cast<std::uint32_t>(stored_size));
  frame[8] = block_codec;
  storeU64(frame + 9, fnv1a(stored, stored_size));
  out_->append(frame, sizeof(frame));
  out_->append(stored, stored_size);
  if (options_.format_version >= kTraceFormatVersionV3) {
    index_.back().raw_size = static_cast<std::uint32_t>(raw_block_.size());
    index_.back().stored_size = static_cast<std::uint32_t>(stored_size);
  }
  payload_bytes_ += kTraceBlockFrameBytes + stored_size;
  raw_payload_bytes_ += raw_block_.size();
  raw_block_.clear();
  ctx_block_.clear();
  if (rans_v4_) {
    rans_v4_->reset();
  } else if (rans_) {
    rans_->reset();
  } else if (options_.format_version == kTraceFormatVersionV2 &&
             options_.compress) {
    encoded_.clear();
    encoder_.start(&encoded_);
    models_.reset();
  }
}

void TraceStoreWriter::writeFooter() {
  std::vector<unsigned char> footer(kTraceIndexFixedBytes +
                                    index_.size() * kTraceIndexEntryBytes);
  storeU32(footer.data(), static_cast<std::uint32_t>(index_.size()));
  std::size_t at = 4;
  for (const TraceBlockIndexEntry& entry : index_) {
    storeU64(&footer[at], entry.offset);
    storeU32(&footer[at + 8], entry.raw_size);
    storeU32(&footer[at + 12], entry.stored_size);
    storeU64(&footer[at + 16], entry.raw_start);
    storeU64(&footer[at + 24], entry.trials_begun);
    storeU64(&footer[at + 32], entry.trial_length);
    storeU64(&footer[at + 40], entry.decoded);
    storeU64(&footer[at + 48], entry.prev_a);
    at += kTraceIndexEntryBytes;
  }
  storeU64(&footer[at], fnv1a(footer.data(), at));
  out_->append(footer.data(), footer.size());
}

void TraceStoreWriter::beginTrial(std::uint64_t length) {
  if (finished_)
    throw std::logic_error("TraceStoreWriter: beginTrial after finish");
  if (trial_open_)
    throw std::logic_error(
        "TraceStoreWriter: beginTrial with a trial still open");
  if (trials_appended_ == total_trials_)
    throw std::logic_error("TraceStoreWriter: more trials than declared");
  if (trials_in_current_ == trialsInShard(current_shard_)) {
    closeShard();
    openShard(current_shard_ + 1);
  }
  if (options_.format_version >= kTraceFormatVersionV4) {
    const unsigned code = v4LengthCode(length);
    const std::size_t nbytes = std::size_t{1} << code;
    alignBlockForUnit(1 + nbytes);
    putByteV4(static_cast<std::uint8_t>(code));
    for (std::size_t i = 0; i < nbytes; ++i)
      putByteV4(static_cast<std::uint8_t>(length >> (8 * i)));
  } else {
    using codec::SymbolClass;
    alignBlockForUnit(varintLen(length));
    putVarint(length, SymbolClass::kLengthFirst, SymbolClass::kLengthCont, 0);
  }
  ++cur_trials_begun_;
  cur_trial_length_ = length;
  cur_decoded_ = 0;
  cur_prev_a_ = 0;
  pending_interactions_ = length;
  trial_open_ = true;
  if (length == 0) {
    trial_open_ = false;
    ++trials_appended_;
    ++trials_in_current_;
  }
}

void TraceStoreWriter::addInteraction(Interaction interaction) {
  if (!trial_open_)
    throw std::logic_error(
        "TraceStoreWriter: addInteraction without an open trial");
  if (interaction.b() >= node_count_)
    throw std::invalid_argument(
        "TraceStoreWriter: interaction endpoint >= node_count");
  if (options_.format_version >= kTraceFormatVersionV4) {
    // Interactions pair up into group units; the writer holds at most one
    // interaction back, flushed as a single-interaction group when the
    // trial ends on an odd count.
    --pending_interactions_;
    if (!v4_have_pending_ && pending_interactions_ > 0) {
      v4_pending_ = interaction;
      v4_have_pending_ = true;
      return;
    }
    if (v4_have_pending_) {
      emitGroupV4(v4_pending_, &interaction);
      v4_have_pending_ = false;
    } else {
      emitGroupV4(interaction, nullptr);
    }
    if (pending_interactions_ == 0) {
      trial_open_ = false;
      ++trials_appended_;
      ++trials_in_current_;
    }
    return;
  }
  using codec::SymbolClass;
  const std::uint64_t delta =
      zigzagEncode(static_cast<std::int64_t>(interaction.a()) -
                   static_cast<std::int64_t>(cur_prev_a_));
  const std::uint64_t gap = interaction.b() - interaction.a() - 1;
  alignBlockForUnit(varintLen(delta) + varintLen(gap));
  putVarint(delta, SymbolClass::kDeltaFirst, SymbolClass::kDeltaCont,
            codec::contextBucket(cur_prev_a_, bucket_shift_, bucket_cap_));
  putVarint(gap, SymbolClass::kGapFirst, SymbolClass::kGapCont,
            codec::contextBucket(interaction.a(), bucket_shift_,
                                 bucket_cap_));
  cur_prev_a_ = interaction.a();
  ++cur_decoded_;
  if (--pending_interactions_ == 0) {
    trial_open_ = false;
    ++trials_appended_;
    ++trials_in_current_;
  }
}

void TraceStoreWriter::appendTrial(InteractionSequenceView trial) {
  // Validate before emitting a single byte: a rejected trial must not
  // leave a partial record in the payload (the caller may catch and
  // continue, and the shard must stay decodable).
  for (const Interaction& i : trial)
    if (i.b() >= node_count_)
      throw std::invalid_argument(
          "TraceStoreWriter: interaction endpoint >= node_count");
  beginTrial(trial.length());
  for (const Interaction& i : trial) addInteraction(i);
}

void TraceStoreWriter::finish() {
  if (finished_) return;
  if (trials_appended_ != total_trials_)
    throw std::logic_error("TraceStoreWriter: appended " +
                           std::to_string(trials_appended_) + " of " +
                           std::to_string(total_trials_) +
                           " declared trials");
  closeShard();
  finished_ = true;
}

// ---------------------------------------------------------------- reader

bool TraceShardReader::mmapSupported() noexcept {
#if DODA_TRACE_HAS_MMAP
  return true;
#else
  return false;
#endif
}

TraceShardReader::TraceShardReader(std::string path, std::size_t block_bytes,
                                   TraceReadBackend backend)
    : path_(std::move(path)),
      stream_block_bytes_(block_bytes > 0 ? block_bytes : kTraceBlockBytes) {
  // Stat before choosing a backend so a missing / zero-length file fails
  // with the same message on every backend.
  std::error_code ec;
  const auto file_size = std::filesystem::file_size(path_, ec);
  if (ec) {
    if (!std::filesystem::exists(path_)) fail("cannot open");
    fail("cannot stat: " + ec.message());
  }
  if (file_size < kTraceHeaderSize) fail("truncated header");

  if (backend != TraceReadBackend::kStream) {
    std::string error;
    if (!map_.map(path_, error)) {
      if (backend == TraceReadBackend::kMmap)
        fail("mmap backend unavailable: " + error);
      // kAuto: fall back to buffered streams below.
    }
  }
  if (!usingMmap()) {
    in_.open(path_, std::ios::binary);
    if (!in_) fail("cannot open");
  }

  parseHeader();

  const std::uint64_t expected = header_.fileBytes();
  if (file_size < expected)
    fail("truncated shard (payload shorter than header declares)");
  if (file_size > expected) fail("trailing bytes after declared payload");

  if (usingMmap()) {
    payload_ptr_ = map_.data + header_.headerSize();
    // The payload cursor never runs into the v3 footer (0 bytes for v1/v2).
    payload_end_ = map_.data + header_.headerSize() + header_.payload_bytes;
    if (header_.format_version == kTraceFormatVersionV1) {
      // v1 + mmap: the whole payload is the symbol window — zero copies,
      // one bounds check per byte.
      sym_buf_ = payload_ptr_;
      sym_pos_ = 0;
      sym_limit_ = static_cast<std::size_t>(header_.payload_bytes);
      payload_ptr_ = payload_end_;
    }
  } else {
    payload_left_ = header_.payload_bytes;
    if (header_.format_version == kTraceFormatVersionV1)
      stream_buf_.resize(stream_block_bytes_);
  }
  raw_left_base_ = header_.raw_payload_bytes;
  if (header_.format_version >= kTraceFormatVersionV3) {
    bucket_cap_ = codec::kRansContextBuckets;
    parseFooter();
  }
  bucket_shift_ = codec::bucketShiftFor(header_.node_count, bucket_cap_);
  have_offset_ctx_ = true;
}

void TraceShardReader::fail(const std::string& why) const {
  std::string where;
  if (have_offset_ctx_) {
    // The payload cursor sits just past the bytes consumed so far, which
    // is where the first corruption was detected.
    where = " (at byte " +
            std::to_string(header_.headerSize() + header_.payload_bytes -
                           payloadSourceLeft());
    if (header_.format_version >= kTraceFormatVersionV2 && blocks_loaded_ > 0)
      where += ", block " + std::to_string(blocks_loaded_ - 1);
    where += ")";
  }
  throw std::runtime_error("TraceShardReader: " + path_ + ": " + why + where);
}

void TraceShardReader::parseHeader() {
  std::array<unsigned char, kTraceHeaderSizeV2> bytes{};
  auto readHeaderBytes = [&](std::size_t offset, std::size_t count) {
    if (usingMmap()) {
      if (map_.size < offset + count) fail("truncated header");
      std::memcpy(bytes.data() + offset, map_.data + offset, count);
      return;
    }
    in_.read(reinterpret_cast<char*>(bytes.data() + offset),
             static_cast<std::streamsize>(count));
    if (in_.gcount() != static_cast<std::streamsize>(count))
      fail("truncated header");
  };

  readHeaderBytes(0, kTraceHeaderSize);
  for (int i = 0; i < 8; ++i)
    if (bytes[static_cast<std::size_t>(i)] !=
        static_cast<unsigned char>(kTraceMagic[i]))
      fail("bad magic (not a doda binary trace shard)");
  const std::uint16_t version = loadU16(&bytes[8]);
  const std::uint16_t header_size = loadU16(&bytes[10]);
  if (version == kTraceFormatVersionV1) {
    if (header_size != kTraceHeaderSize) fail("unexpected header size");
    if (loadU64(&bytes[56]) != fnv1a(bytes.data(), 56))
      fail("header checksum mismatch (corrupt header)");
  } else if (version >= kTraceFormatVersionV2 &&
             version <= kTraceFormatVersionV4) {
    if (header_size != kTraceHeaderSizeV2) fail("unexpected header size");
    readHeaderBytes(kTraceHeaderSize, kTraceHeaderSizeV2 - kTraceHeaderSize);
    if (loadU64(&bytes[72]) != fnv1a(bytes.data(), 72))
      fail("header checksum mismatch (corrupt header)");
  } else {
    fail("unsupported format version " + std::to_string(version));
  }

  header_.format_version = version;
  header_.shard_index = loadU32(&bytes[12]);
  header_.shard_count = loadU32(&bytes[16]);
  header_.node_count = loadU64(&bytes[24]);
  header_.trial_count = loadU64(&bytes[32]);
  header_.base_trial = loadU64(&bytes[40]);
  header_.payload_bytes = loadU64(&bytes[48]);
  if (version >= kTraceFormatVersionV2) {
    header_.codec = loadU32(&bytes[20]);
    header_.raw_payload_bytes = loadU64(&bytes[56]);
    header_.block_bytes = loadU32(&bytes[64]);
    if (version >= kTraceFormatVersionV3) {
      header_.footer_bytes = loadU32(&bytes[68]);
      const std::uint32_t coded = version >= kTraceFormatVersionV4
                                      ? kTraceCodecRansV4
                                      : kTraceCodecRans;
      if (header_.codec != kTraceCodecRaw && header_.codec != coded)
        fail("unsupported payload codec " + std::to_string(header_.codec));
      if (header_.footer_bytes < kTraceIndexFixedBytes +
                                     kTraceIndexEntryBytes ||
          (header_.footer_bytes - kTraceIndexFixedBytes) %
                  kTraceIndexEntryBytes !=
              0)
        fail("footer size malformed (corrupt block index)");
    } else if (header_.codec > kTraceCodecRangeCoded) {
      fail("unsupported payload codec " + std::to_string(header_.codec));
    }
    if (header_.block_bytes < kTraceMinBlockBytes ||
        header_.block_bytes > kTraceMaxBlockBytes)
      fail("header block size out of range");
    if (header_.raw_payload_bytes > 0 && header_.payload_bytes == 0)
      fail("header payload sizes inconsistent");
  } else {
    header_.codec = kTraceCodecRaw;
    header_.block_bytes = 0;
    header_.raw_payload_bytes = header_.payload_bytes;
  }
  if (header_.node_count < 2) fail("header declares fewer than 2 nodes");
  if (header_.node_count > std::numeric_limits<NodeId>::max())
    fail("header node count exceeds the supported id range");
  if (version >= kTraceFormatVersionV4 &&
      header_.node_count > (std::uint64_t{1} << 31))
    fail("header node count exceeds the v4 record-layout bound");
  if (header_.shard_count == 0 || header_.shard_index >= header_.shard_count)
    fail("header shard index/count inconsistent");
}

void TraceShardReader::parseFooter() {
  const std::size_t footer_size = header_.footer_bytes;
  const std::uint64_t footer_at = header_.headerSize() + header_.payload_bytes;
  std::vector<unsigned char> buf;
  const unsigned char* footer = nullptr;
  if (usingMmap()) {
    footer = map_.data + footer_at;  // file size already validated
  } else {
    buf.resize(footer_size);
    in_.seekg(static_cast<std::streamoff>(footer_at));
    in_.read(reinterpret_cast<char*>(buf.data()),
             static_cast<std::streamsize>(footer_size));
    if (in_.gcount() != static_cast<std::streamsize>(footer_size))
      fail("truncated block index (corrupt block index)");
    in_.clear();
    in_.seekg(static_cast<std::streamoff>(header_.headerSize()));
    if (!in_) fail("cannot reposition after the block index");
    footer = buf.data();
  }

  if (loadU64(footer + footer_size - 8) != fnv1a(footer, footer_size - 8))
    fail("block index checksum mismatch (corrupt block index)");
  const std::uint32_t count = loadU32(footer);
  if (count == 0 ||
      footer_size !=
          kTraceIndexFixedBytes + std::size_t{count} * kTraceIndexEntryBytes)
    fail("block index count disagrees with footer size (corrupt block index)");

  // The index must describe the payload *exactly*: offsets chain through
  // every frame, raw starts accumulate to the header's raw size, and the
  // record cursors are monotone. Anything else means index and payload
  // disagree — reject before any seek trusts it.
  index_.clear();
  index_.reserve(count);
  std::uint64_t expect_offset = header_.headerSize();
  std::uint64_t expect_raw = 0;
  std::uint64_t prev_trials = 0;
  std::size_t at = 4;
  for (std::uint32_t k = 0; k < count; ++k, at += kTraceIndexEntryBytes) {
    TraceBlockIndexEntry entry;
    entry.offset = loadU64(footer + at);
    entry.raw_size = loadU32(footer + at + 8);
    entry.stored_size = loadU32(footer + at + 12);
    entry.raw_start = loadU64(footer + at + 16);
    entry.trials_begun = loadU64(footer + at + 24);
    entry.trial_length = loadU64(footer + at + 32);
    entry.decoded = loadU64(footer + at + 40);
    entry.prev_a = loadU64(footer + at + 48);
    if (entry.offset != expect_offset || entry.raw_start != expect_raw)
      fail("block index disagrees with payload layout (corrupt block index)");
    if (entry.raw_size == 0 || entry.raw_size > maxBlockRawBytes() ||
        entry.stored_size > entry.raw_size)
      fail("block index sizes out of range (corrupt block index)");
    if (entry.trials_begun < prev_trials ||
        entry.trials_begun > header_.trial_count ||
        entry.decoded > entry.trial_length ||
        entry.prev_a >= header_.node_count)
      fail("block index cursor out of range (corrupt block index)");
    // Entry 0 starts the payload, where the record cursor is the origin —
    // seekToTrial relies on it (entry 0 is <= every local trial id).
    if (k == 0 && (entry.trials_begun != 0 || entry.trial_length != 0 ||
                   entry.decoded != 0 || entry.prev_a != 0))
      fail("block index cursor out of range (corrupt block index)");
    expect_offset += kTraceBlockFrameBytes + entry.stored_size;
    expect_raw += entry.raw_size;
    prev_trials = entry.trials_begun;
    index_.push_back(entry);
  }
  if (expect_offset != footer_at || expect_raw != header_.raw_payload_bytes)
    fail("block index does not cover the payload (corrupt block index)");
}

std::size_t TraceShardReader::maxBlockRawBytes() const noexcept {
  // v3 blocks align to record units, so a block may exceed the configured
  // size when one unit alone is larger than the whole block.
  if (header_.format_version >= kTraceFormatVersionV3)
    return std::max<std::size_t>(header_.block_bytes,
                                 kTraceMaxRecordUnitBytes);
  return header_.block_bytes;
}

void TraceShardReader::seekToBlock(std::size_t k) {
  if (k >= index_.size())
    throw std::out_of_range(
        "TraceShardReader::seekToBlock: block " + std::to_string(k) + " of " +
        std::to_string(index_.size()) +
        (index_.empty() ? " (no block index on this shard)" : ""));
  const TraceBlockIndexEntry& entry = index_[k];
  if (usingMmap()) {
    payload_ptr_ = map_.data + entry.offset;
  } else {
    in_.clear();
    in_.seekg(static_cast<std::streamoff>(entry.offset));
    if (!in_) fail("seek failed");
    payload_left_ =
        header_.payload_bytes - (entry.offset - header_.headerSize());
  }
  sym_buf_ = nullptr;
  sym_pos_ = 0;
  sym_limit_ = 0;
  rc_rans_ = false;
  rc_block_raw_ = 0;
  rc_symbols_left_ = 0;
  v4_pending_ = false;
  raw_left_base_ = header_.raw_payload_bytes - entry.raw_start;
  trials_begun_ = entry.trials_begun;
  trial_length_ = entry.trial_length;
  decoded_ = entry.decoded;
  prev_a_ = static_cast<NodeId>(entry.prev_a);
  blocks_loaded_ = k;  // the next loadNextBlock reads block k
}

bool TraceShardReader::seekToTrial(std::uint64_t global_trial) {
  if (global_trial < header_.base_trial ||
      global_trial >= header_.base_trial + header_.trial_count)
    return false;
  const std::uint64_t local = global_trial - header_.base_trial;
  if (!index_.empty()) {
    // Last block whose cursor is at or before the trial's record start
    // (entries are monotone in trials_begun; entry 0 is always <= local).
    const auto it = std::upper_bound(
        index_.begin(), index_.end(), local,
        [](std::uint64_t value, const TraceBlockIndexEntry& entry) {
          return value < entry.trials_begun;
        });
    seekToBlock(static_cast<std::size_t>(it - index_.begin()) - 1);
  } else if (trials_begun_ > local) {
    fail("seekToTrial backward without a block index (reopen the shard)");
  }
  // Decode forward across at most the partial trial in front of the
  // target (without an index: everything in front of it).
  while (trials_begun_ < local)
    if (!beginTrial()) return false;
  return true;
}

std::uint64_t TraceShardReader::payloadSourceLeft() const noexcept {
  if (usingMmap())
    return static_cast<std::uint64_t>(payload_end_ - payload_ptr_);
  return payload_left_;
}

void TraceShardReader::readPayloadBytes(unsigned char* dst,
                                        std::size_t count) {
  if (usingMmap()) {
    if (static_cast<std::size_t>(payload_end_ - payload_ptr_) < count)
      fail("truncated shard (unexpected EOF)");
    std::memcpy(dst, payload_ptr_, count);
    payload_ptr_ += count;
    return;
  }
  if (payload_left_ < count) fail("truncated shard (unexpected EOF)");
  in_.read(reinterpret_cast<char*>(dst),
           static_cast<std::streamsize>(count));
  if (in_.gcount() != static_cast<std::streamsize>(count))
    fail("truncated shard (unexpected EOF)");
  payload_left_ -= count;
}

const unsigned char* TraceShardReader::borrowPayloadBytes(std::size_t count) {
  if (usingMmap()) {
    if (static_cast<std::size_t>(payload_end_ - payload_ptr_) < count)
      fail("truncated shard (unexpected EOF)");
    const unsigned char* ptr = payload_ptr_;
    payload_ptr_ += count;
    return ptr;
  }
  if (block_buf_.size() < count) block_buf_.resize(count);
  readPayloadBytes(block_buf_.data(), count);
  return block_buf_.data();
}

void TraceShardReader::loadNextBlock() {
  beginWindow();
  if (payloadSourceLeft() == 0)
    fail("truncated shard (payload exhausted)");
  ++blocks_loaded_;
  unsigned char frame[kTraceBlockFrameBytes];
  readPayloadBytes(frame, sizeof(frame));
  const std::uint32_t raw_size = loadU32(frame);
  const std::uint32_t stored_size = loadU32(frame + 4);
  const std::uint8_t block_codec = frame[8];
  const std::uint64_t checksum = loadU64(frame + 9);
  if (raw_size == 0 || raw_size > maxBlockRawBytes())
    fail("block raw size out of range (corrupt block)");
  if (raw_size > raw_left_base_)
    fail("block sizes disagree with header (corrupt block)");
  if (block_codec == kTraceCodecRaw) {
    if (stored_size != raw_size)
      fail("raw block sizes disagree (corrupt block)");
  } else if (block_codec == kTraceCodecRangeCoded ||
             block_codec == kTraceCodecRans ||
             block_codec == kTraceCodecRansV4) {
    if (header_.codec != block_codec)
      fail("block codec disagrees with the shard codec (corrupt block)");
    if (stored_size >= raw_size)
      fail("compressed block larger than raw (corrupt block)");
  } else {
    fail("unknown block codec (corrupt block)");
  }
  const unsigned char* stored = borrowPayloadBytes(stored_size);
  if (fnv1a(stored, stored_size) != checksum)
    fail("block checksum mismatch (corrupt block)");
  if (block_codec == kTraceCodecRaw) {
    sym_buf_ = stored;
    sym_limit_ = raw_size;
  } else if (block_codec == kTraceCodecRangeCoded) {
    models_.reset();
    decoder_.start(stored, stored_size);
    rc_rans_ = false;
    rc_block_raw_ = raw_size;
    rc_symbols_left_ = raw_size;
  } else if (block_codec == kTraceCodecRansV4) {
    // Phase 1 of v4 decode: reconstruct the whole block's raw bytes in
    // one bulk 8-way rANS run, then serve them as a plain byte window.
    // The group parser (phase 2) thus always reads from contiguous
    // memory — which is what the SWAR fast path needs.
    decodeV4Block(stored, stored_size, raw_size);
    sym_buf_ = v4_scratch_.data();
    sym_limit_ = raw_size;
  } else {
    if (!rans_) rans_ = std::make_unique<codec::RansBlockDecoder>();
    if (!rans_->start(stored, stored_size))
      fail("malformed rANS tables (corrupt block)");
    rc_rans_ = true;
    rc_block_raw_ = raw_size;
    rc_symbols_left_ = raw_size;
  }
}

void TraceShardReader::decodeV4Block(const unsigned char* stored,
                                     std::size_t stored_size,
                                     std::size_t raw_size) {
  // v4 codes every record byte as one symbol of the block's single table
  // exactly so this pass needs no record parsing at all: the whole block
  // reconstructs in one bulk 8-way rANS run. All structural validation
  // (control-byte invariants, units crossing the block end) happens in
  // phase 2, which parses the scratch bytes.
  v4_scratch_.resize(raw_size);
  if (!rans_v4_) rans_v4_ = std::make_unique<codec::RansV4BlockDecoder>();
  if (!rans_v4_->decode(stored, stored_size, v4_scratch_.data(), raw_size))
    fail("malformed v4 block payload (corrupt block)");
}

void TraceShardReader::verifyPayloadChecksums() {
  // v1 payloads are a bare record stream with no per-block framing; the
  // constructor's size check is all the structural validation they carry.
  if (header_.format_version < kTraceFormatVersionV2) return;
  std::uint64_t raw_total = 0;
  while (payloadSourceLeft() > 0) {
    if (payloadSourceLeft() < kTraceBlockFrameBytes)
      fail("truncated block frame (corrupt block)");
    ++blocks_loaded_;
    unsigned char frame[kTraceBlockFrameBytes];
    readPayloadBytes(frame, sizeof(frame));
    const std::uint32_t raw_size = loadU32(frame);
    const std::uint32_t stored_size = loadU32(frame + 4);
    const std::uint8_t block_codec = frame[8];
    const std::uint64_t checksum = loadU64(frame + 9);
    if (raw_size == 0 || raw_size > maxBlockRawBytes())
      fail("block raw size out of range (corrupt block)");
    if (raw_total + raw_size > header_.raw_payload_bytes)
      fail("block sizes disagree with header (corrupt block)");
    if (block_codec == kTraceCodecRaw) {
      if (stored_size != raw_size)
        fail("raw block sizes disagree (corrupt block)");
    } else if (block_codec == kTraceCodecRangeCoded ||
               block_codec == kTraceCodecRans ||
               block_codec == kTraceCodecRansV4) {
      if (header_.codec != block_codec)
        fail("block codec disagrees with the shard codec (corrupt block)");
      if (stored_size >= raw_size)
        fail("compressed block larger than raw (corrupt block)");
    } else {
      fail("unknown block codec (corrupt block)");
    }
    const unsigned char* stored = borrowPayloadBytes(stored_size);
    if (fnv1a(stored, stored_size) != checksum)
      fail("block checksum mismatch (corrupt block)");
    raw_total += raw_size;
  }
  if (raw_total != header_.raw_payload_bytes)
    fail("block raw sizes disagree with header (corrupt payload)");
}

void TraceShardReader::refillSymbols() {
  if (header_.format_version >= kTraceFormatVersionV2) {
    loadNextBlock();
    return;
  }
  // v1: windowed refill of the bare record stream (stream backend only —
  // the mmap backend serves the whole payload as one window).
  beginWindow();
  if (payload_left_ == 0) fail("truncated shard (payload exhausted)");
  const auto want = static_cast<std::streamsize>(
      std::min<std::uint64_t>(stream_buf_.size(), payload_left_));
  in_.read(reinterpret_cast<char*>(stream_buf_.data()), want);
  const auto got = static_cast<std::size_t>(in_.gcount());
  if (got == 0) fail("truncated shard (unexpected EOF)");
  payload_left_ -= got;
  sym_buf_ = stream_buf_.data();
  sym_limit_ = got;
}

std::uint8_t TraceShardReader::takeByte(codec::SymbolClass cls,
                                        unsigned bucket) {
  // Iterative, not recursive: the raw-window fast path must stay
  // inlinable into the varint/record decoders (v1 and raw-block decode
  // throughput hinges on it). Record-stream accounting is windowed
  // (rawLeft()), so serving a byte touches no extra state.
  for (;;) {
    if (sym_pos_ < sym_limit_) return sym_buf_[sym_pos_++];
    if (rc_symbols_left_ > 0) {
      std::uint8_t byte;
      if (rc_rans_) {
        byte = rans_->decodeByte(codec::ransContext(cls, bucket));
        if (rans_->overrun())
          fail("compressed block overruns its payload (corrupt block)");
      } else {
        byte = decoder_.decodeByte(models_.select(cls, bucket));
        if (decoder_.overrun())
          fail("compressed block overruns its payload (corrupt block)");
      }
      --rc_symbols_left_;
      return byte;
    }
    refillSymbols();
  }
}

std::uint64_t TraceShardReader::rawLeft() const noexcept {
  // Record-stream bytes not yet served: the remainder when the current
  // window (raw bytes or range-coded block) was installed, minus what the
  // window has served since. Exactly one of the two window terms is live.
  return raw_left_base_ - sym_pos_ - (rc_block_raw_ - rc_symbols_left_);
}

void TraceShardReader::beginWindow() {
  raw_left_base_ = rawLeft();
  sym_buf_ = nullptr;
  sym_pos_ = 0;
  sym_limit_ = 0;
  rc_block_raw_ = 0;
  rc_symbols_left_ = 0;
}

std::uint64_t TraceShardReader::takeVarint(codec::SymbolClass first_cls,
                                           codec::SymbolClass cont_cls,
                                           unsigned bucket) {
  std::uint64_t value = 0;
  codec::SymbolClass cls = first_cls;
  for (int shift = 0; shift < 64; shift += 7) {
    const std::uint8_t byte = takeByte(cls, bucket);
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return value;
    cls = cont_cls;
  }
  fail("varint overrun (corrupt payload)");
}

Interaction TraceShardReader::decodeOne() {
  // Range checks guard every decoded quantity *before* it is used in
  // arithmetic (no signed overflow, no unsigned wrap): v1 payloads are not
  // checksummed, and even checksummed v2 blocks defend in depth.
  using codec::SymbolClass;
  const std::int64_t delta = zigzagDecode(
      takeVarint(SymbolClass::kDeltaFirst, SymbolClass::kDeltaCont,
                 codec::contextBucket(prev_a_, bucket_shift_, bucket_cap_)));
  const auto n = static_cast<std::int64_t>(header_.node_count);
  const auto prev = static_cast<std::int64_t>(prev_a_);
  if (delta < -prev || delta >= n - prev)
    fail("decoded endpoint out of range (corrupt payload)");
  const std::int64_t a = prev + delta;
  const std::uint64_t gap =
      takeVarint(SymbolClass::kGapFirst, SymbolClass::kGapCont,
                 codec::contextBucket(static_cast<std::uint64_t>(a),
                                      bucket_shift_, bucket_cap_));
  if (gap >= header_.node_count - static_cast<std::uint64_t>(a) - 1)
    fail("decoded endpoint out of range (corrupt payload)");
  const std::uint64_t b = static_cast<std::uint64_t>(a) + 1 + gap;
  prev_a_ = static_cast<NodeId>(a);
  return Interaction(static_cast<NodeId>(a), static_cast<NodeId>(b));
}

bool TraceShardReader::beginTrial() {
  if (trials_begun_ > 0) skipRest();
  if (trials_begun_ == header_.trial_count) {
    // v2 accounts the record stream exactly: a well-formed shard has no
    // undecoded remainder once every trial is consumed.
    if (header_.format_version >= kTraceFormatVersionV2 &&
        (rawLeft() != 0 || payloadSourceLeft() != 0))
      fail("trailing bytes after the last trial (corrupt shard)");
    return false;
  }
  if (header_.format_version >= kTraceFormatVersionV4) {
    // v4 windows are always plain bytes (coded blocks were reconstructed
    // at load), so takeByte's class/bucket arguments are inert here.
    const std::uint8_t ctrl =
        takeByte(codec::SymbolClass::kLengthFirst, 0);
    if ((ctrl & ~0x03u) != 0)
      fail("v4 length control byte malformed (corrupt payload)");
    const std::size_t nbytes = std::size_t{1} << (ctrl & 3);
    std::uint64_t length = 0;
    for (std::size_t i = 0; i < nbytes; ++i)
      length |= static_cast<std::uint64_t>(
                    takeByte(codec::SymbolClass::kLengthCont, 0))
                << (8 * i);
    trial_length_ = length;
  } else {
    trial_length_ = takeVarint(codec::SymbolClass::kLengthFirst,
                               codec::SymbolClass::kLengthCont, 0);
  }
  // Every interaction occupies at least two record-stream bytes (two
  // varints), so a declared length beyond half the remaining stream is
  // corrupt — reject it here rather than letting readRest() reserve a
  // huge vector.
  if (trial_length_ > rawLeft() / 2)
    fail("trial length exceeds remaining payload (corrupt payload)");
  decoded_ = 0;
  prev_a_ = 0;
  v4_pending_ = false;
  ++trials_begun_;
  return true;
}

Interaction TraceShardReader::takeGroupV4() {
  // One group unit: the control byte names every field width, so the whole
  // unit parses branch-free when it (plus SWAR load slack) fits the
  // current window; near a window edge the scalar loop below reads the
  // same bytes one at a time through takeByte (refilling across blocks).
  const bool pair = trial_length_ - decoded_ >= 2;
  std::uint8_t ctrl;
  std::uint64_t delta0, gap0, delta1 = 0, gap1 = 0;
#if DODA_TRACE_LITTLE_ENDIAN
  if (!force_scalar_ &&
      sym_limit_ - sym_pos_ >= kTraceMaxRecordUnitBytes + 7) {
    const unsigned char* p = sym_buf_ + sym_pos_;
    ctrl = p[0];
    const std::size_t l0 = 1 + (ctrl & 3);
    const std::size_t g0 = 1 + ((ctrl >> 2) & 3);
    auto loadField = [p](std::size_t at, std::size_t len) {
      // The window invariant above keeps every 8-byte load in bounds
      // (largest start offset 13, so the load ends within unit + 7 slack).
      std::uint64_t word;
      std::memcpy(&word, p + at, sizeof(word));
      return word & ((std::uint64_t{1} << (8 * len)) - 1);
    };
    delta0 = loadField(1, l0);
    gap0 = loadField(1 + l0, g0);
    std::size_t total = 1 + l0 + g0;
    if (pair) {
      const std::size_t l1 = 1 + ((ctrl >> 4) & 3);
      const std::size_t g1 = 1 + ((ctrl >> 6) & 3);
      delta1 = loadField(total, l1);
      gap1 = loadField(total + l1, g1);
      total += l1 + g1;
    } else if ((ctrl & 0xf0u) != 0) {
      fail("v4 group control byte malformed (corrupt payload)");
    }
    sym_pos_ += total;
  } else
#endif
  {
    using codec::SymbolClass;
    ctrl = takeByte(SymbolClass::kDeltaFirst, 0);
    if (!pair && (ctrl & 0xf0u) != 0)
      fail("v4 group control byte malformed (corrupt payload)");
    auto takeField = [this](std::size_t len) {
      std::uint64_t value = 0;
      for (std::size_t i = 0; i < len; ++i)
        value |= static_cast<std::uint64_t>(
                     takeByte(SymbolClass::kDeltaCont, 0))
                 << (8 * i);
      return value;
    };
    delta0 = takeField(1 + (ctrl & 3));
    gap0 = takeField(1 + ((ctrl >> 2) & 3));
    if (pair) {
      delta1 = takeField(1 + ((ctrl >> 4) & 3));
      gap1 = takeField(1 + ((ctrl >> 6) & 3));
    }
  }

  // Range validation identical to decodeOne (defense in depth for raw
  // blocks and corrupt streams).
  const auto n = static_cast<std::int64_t>(header_.node_count);
  const std::int64_t d0 = zigzagDecode(delta0);
  const auto prev = static_cast<std::int64_t>(prev_a_);
  if (d0 < -prev || d0 >= n - prev)
    fail("decoded endpoint out of range (corrupt payload)");
  const std::int64_t a0 = prev + d0;
  if (gap0 >= header_.node_count - static_cast<std::uint64_t>(a0) - 1)
    fail("decoded endpoint out of range (corrupt payload)");
  const std::uint64_t b0 = static_cast<std::uint64_t>(a0) + 1 + gap0;
  if (pair) {
    const std::int64_t d1 = zigzagDecode(delta1);
    if (d1 < -a0 || d1 >= n - a0)
      fail("decoded endpoint out of range (corrupt payload)");
    const std::int64_t a1 = a0 + d1;
    if (gap1 >= header_.node_count - static_cast<std::uint64_t>(a1) - 1)
      fail("decoded endpoint out of range (corrupt payload)");
    v4_pend_a_ = static_cast<NodeId>(a1);
    v4_pend_b_ = static_cast<NodeId>(static_cast<std::uint64_t>(a1) + 1 + gap1);
    v4_pending_ = true;
    prev_a_ = static_cast<NodeId>(a1);
  } else {
    prev_a_ = static_cast<NodeId>(a0);
  }
  return Interaction(static_cast<NodeId>(a0), static_cast<NodeId>(b0));
}

std::uint64_t TraceShardReader::bulkGroupsV4(Interaction* dst,
                                             std::uint64_t count) {
#if DODA_TRACE_LITTLE_ENDIAN
  if (force_scalar_) return 0;
  // Same parse and the same range validation as takeGroupV4, with the
  // reader state hoisted into locals for the whole run: one group is a
  // control byte plus four masked unaligned loads, no pending buffering,
  // no per-group call. Only pair groups are handled — the loop stops two
  // interactions short of the trial end, so an odd final group always
  // goes through takeGroupV4.
  std::uint64_t produced = 0;
  const unsigned char* const buf = sym_buf_;
  std::size_t pos = sym_pos_;
  const std::size_t limit = sym_limit_;
  const auto n = static_cast<std::int64_t>(header_.node_count);
  const std::uint64_t un = header_.node_count;
  std::int64_t prev = static_cast<std::int64_t>(prev_a_);
  const std::uint64_t room = trial_length_ - decoded_;
  const std::uint64_t want = count < room ? count : room;
  while (produced + 2 <= want &&
         limit - pos >= kTraceMaxRecordUnitBytes + 7) {
    const unsigned char* p = buf + pos;
    const std::uint8_t ctrl = p[0];
    const std::size_t l0 = 1 + (ctrl & 3);
    const std::size_t g0 = 1 + ((ctrl >> 2) & 3);
    const std::size_t l1 = 1 + ((ctrl >> 4) & 3);
    const std::size_t g1 = 1 + ((ctrl >> 6) & 3);
    auto loadField = [p](std::size_t at, std::size_t len) {
      std::uint64_t word;
      std::memcpy(&word, p + at, sizeof(word));
      return word & ((std::uint64_t{1} << (8 * len)) - 1);
    };
    const std::uint64_t delta0 = loadField(1, l0);
    const std::uint64_t gap0 = loadField(1 + l0, g0);
    const std::uint64_t delta1 = loadField(1 + l0 + g0, l1);
    const std::uint64_t gap1 = loadField(1 + l0 + g0 + l1, g1);
    const std::int64_t d0 = zigzagDecode(delta0);
    if (d0 < -prev || d0 >= n - prev)
      fail("decoded endpoint out of range (corrupt payload)");
    const std::int64_t a0 = prev + d0;
    if (gap0 >= un - static_cast<std::uint64_t>(a0) - 1)
      fail("decoded endpoint out of range (corrupt payload)");
    const std::int64_t d1 = zigzagDecode(delta1);
    if (d1 < -a0 || d1 >= n - a0)
      fail("decoded endpoint out of range (corrupt payload)");
    const std::int64_t a1 = a0 + d1;
    if (gap1 >= un - static_cast<std::uint64_t>(a1) - 1)
      fail("decoded endpoint out of range (corrupt payload)");
    if (dst != nullptr) {
      dst[produced] = Interaction(
          static_cast<NodeId>(a0),
          static_cast<NodeId>(static_cast<std::uint64_t>(a0) + 1 + gap0));
      dst[produced + 1] = Interaction(
          static_cast<NodeId>(a1),
          static_cast<NodeId>(static_cast<std::uint64_t>(a1) + 1 + gap1));
    }
    prev = a1;
    pos += 1 + l0 + g0 + l1 + g1;
    produced += 2;
  }
  sym_pos_ = pos;
  prev_a_ = static_cast<NodeId>(prev);
  decoded_ += produced;
  return produced;
#else
  (void)dst;
  (void)count;
  return 0;
#endif
}

std::optional<Interaction> TraceShardReader::next() {
  if (decoded_ == trial_length_) return std::nullopt;
  if (header_.format_version >= kTraceFormatVersionV4) {
    if (v4_pending_) {
      v4_pending_ = false;
      ++decoded_;
      return Interaction(v4_pend_a_, v4_pend_b_);
    }
    const Interaction i = takeGroupV4();
    ++decoded_;
    return i;
  }
  const Interaction i = decodeOne();
  ++decoded_;
  return i;
}

void TraceShardReader::decodeInto(Interaction* dst, std::uint64_t count) {
  if (header_.format_version >= kTraceFormatVersionV4) {
    std::uint64_t k = 0;
    while (k < count) {
      if (v4_pending_) {
        v4_pending_ = false;
        dst[k++] = Interaction(v4_pend_a_, v4_pend_b_);
        ++decoded_;
        continue;
      }
      const std::uint64_t got = bulkGroupsV4(dst + k, count - k);
      if (got > 0) {
        k += got;
        continue;
      }
      dst[k++] = takeGroupV4();
      ++decoded_;
    }
    return;
  }
  for (std::uint64_t k = 0; k < count; ++k) {
    dst[k] = decodeOne();
    ++decoded_;
  }
}

bool TraceShardReader::tryReadRestParallel(std::vector<Interaction>& out) {
  if (index_.empty() || v4_pending_ || decoded_ == trial_length_)
    return false;
  const std::uint64_t tb = trials_begun_;
  const std::uint64_t d0 = decoded_;
  const std::uint64_t len = trial_length_;
  // Index entries are lexicographically non-decreasing in (trials begun,
  // decoded) along the payload, so the remainder's block range is found by
  // one partition point plus a bounded scan.
  const auto first = std::partition_point(
      index_.begin(), index_.end(), [&](const TraceBlockIndexEntry& e) {
        return e.trials_begun < tb || (e.trials_begun == tb && e.decoded < d0);
      });
  const auto k0 = static_cast<std::size_t>(first - index_.begin());
  std::size_t k1 = k0;
  while (k1 < index_.size() && index_[k1].trials_begun == tb &&
         index_[k1].decoded < len)
    ++k1;
  if (k1 - k0 < 2) return false;  // too few boundaries ahead to split

  out.assign(static_cast<std::size_t>(len - d0), Interaction(0, 1));
  // Head: this reader decodes from its current position (possibly mid
  // block) up to the first indexed boundary of the remainder.
  decodeInto(out.data(), index_[k0].decoded - d0);
  // Middle: blocks [k0, k1-1) split into contiguous chunks, each decoded
  // by a fresh reader seeked to its first block. Chunk boundaries are
  // index boundaries, so every worker decodes an exact span of `out`.
  const std::size_t blocks = k1 - 1 - k0;
  const std::size_t chunks = std::min(blocks, pool_->workers * 2);
  const TraceReadBackend backend =
      usingMmap() ? TraceReadBackend::kMmap : TraceReadBackend::kStream;
  pool_->run(chunks, [&](std::size_t c) {
    const std::size_t cb = k0 + c * blocks / chunks;
    const std::size_t ce = k0 + (c + 1) * blocks / chunks;
    if (cb == ce) return;
    const std::uint64_t from = index_[cb].decoded;
    const std::uint64_t to = index_[ce].decoded;
    TraceShardReader worker(path_, stream_block_bytes_, backend);
    worker.setForceScalarDecode(force_scalar_);
    worker.seekToBlock(cb);
    worker.decodeInto(out.data() + (from - d0), to - from);
  });
  // Tail: this reader finishes from the last boundary, ending positioned
  // at the trial's end exactly like the sequential path.
  seekToBlock(k1 - 1);
  decodeInto(out.data() + (index_[k1 - 1].decoded - d0),
             len - index_[k1 - 1].decoded);
  return true;
}

InteractionSequence TraceShardReader::readRest() {
  if (pool_ != nullptr && *pool_) {
    std::vector<Interaction> out;
    if (tryReadRestParallel(out)) return InteractionSequence(std::move(out));
  }
  const auto remaining = static_cast<std::size_t>(remainingInTrial());
  std::vector<Interaction> interactions(remaining, Interaction(0, 1));
  decodeInto(interactions.data(), remaining);
  return InteractionSequence(std::move(interactions));
}

void TraceShardReader::skipRest() {
  if (header_.format_version >= kTraceFormatVersionV4) {
    while (decoded_ < trial_length_) {
      if (v4_pending_) {
        v4_pending_ = false;
        ++decoded_;
        continue;
      }
      if (bulkGroupsV4(nullptr, trial_length_ - decoded_) > 0) continue;
      takeGroupV4();
      ++decoded_;
    }
    return;
  }
  while (decoded_ < trial_length_) {
    decodeOne();
    ++decoded_;
  }
}

// ----------------------------------------------------------------- store

std::string TraceStore::shardPath(std::size_t shard_index) const {
  if (shard_index >= shard_paths_.size())
    throw std::out_of_range("TraceStore::shardPath: shard index " +
                            std::to_string(shard_index) + " of " +
                            std::to_string(shard_paths_.size()));
  return shard_paths_[shard_index];
}

TraceShardReader TraceStore::openShard(std::size_t shard_index,
                                       TraceReadBackend backend) const {
  // shard_paths_ records where each usable shard actually lives: after a
  // partial open the k-th usable shard need not be the k-th file on disk,
  // and in a composite store it need not even be in directory_.
  return TraceShardReader(shardPath(shard_index), kTraceBlockBytes, backend);
}

std::uint64_t TraceStore::totalFileBytes() const noexcept {
  std::uint64_t total = 0;
  for (const auto& header : shards_) total += header.fileBytes();
  return total;
}

TraceStore TraceStore::open(const std::string& directory) {
  return open(directory, TraceStoreOpenOptions{});
}

TraceStore TraceStore::open(const std::string& directory,
                            const TraceStoreOpenOptions& options) {
  return openComposite({directory}, options);
}

TraceStore TraceStore::openComposite(const std::vector<std::string>& part_dirs,
                                     const TraceStoreOpenOptions& options) {
  if (part_dirs.empty())
    throw std::invalid_argument("TraceStore::openComposite: no directories");
  TraceStore store;
  store.directory_ = part_dirs.front();
  // Within each part directory, shard 0 names that part's shard count;
  // every shard is opened once to validate its header and the cross-shard
  // invariants. Header validation does not need the payload, so the cheap
  // stream backend is used (verify_payloads walks the payload too).
  //
  // Strict mode throws at the first bad shard (the reader and the checks
  // below both name the shard's path). Partial mode quarantines the shard
  // and keeps scanning; until a readable header has named a part's shard
  // count, the scan probes forward over the files actually present.
  //
  // Global invariants span parts: one node count, and base trials
  // contiguous from 0 across the concatenated parts. Shard count and
  // format version are per-part (a compacted v4 generation can precede
  // v1 append segments).
  std::optional<TraceShardHeader> first;  // first usable header overall
  std::uint64_t next_base = 0;  // contiguity cursor over usable shards
  bool gap = false;             // a shard has been quarantined
  for (const std::string& dir : part_dirs) {
    std::optional<TraceShardHeader> reference;  // first usable in this part
    std::uint32_t shard_count = 0;              // valid once `reference`
    const auto pathOf = [&dir](std::uint32_t k) {
      return (std::filesystem::path(dir) / traceShardFileName(k)).string();
    };
    for (std::uint32_t k = 0;
         reference ? k < shard_count
                   : (k == 0 || std::filesystem::exists(pathOf(k)));
         ++k) {
      TraceShardHeader header;
      try {
        TraceShardReader probe(pathOf(k), kTraceBlockBytes,
                               TraceReadBackend::kStream);
        header = probe.header();
        if (options.verify_payloads) probe.verifyPayloadChecksums();
      } catch (const std::runtime_error& e) {
        if (!options.allow_partial) throw;
        store.quarantined_.push_back({pathOf(k), e.what()});
        gap = true;
        continue;
      }
      std::string why;
      if (header.shard_index != k) {
        why = "shard index does not match file name";
      } else if (reference && header.shard_count != shard_count) {
        why = "shard count disagrees with shard " +
              std::to_string(reference->shard_index);
      } else if (reference && header.node_count != reference->node_count) {
        why = "node count disagrees with shard " +
              std::to_string(reference->shard_index);
      } else if (first && header.node_count <
                              static_cast<std::uint64_t>(store.node_count_)) {
        // Across segments the node universe may only grow (an appended
        // import can add nodes); a shrink means mismatched segments.
        why = "node count shrank relative to an earlier segment";
      } else if (reference &&
                 header.format_version != reference->format_version) {
        why = "format version disagrees with shard " +
              std::to_string(reference->shard_index);
      } else if (header.base_trial != next_base &&
                 !(gap && header.base_trial > next_base)) {
        // After a quarantined shard the base can only be checked for
        // monotonicity: the gap's trial count is unknown.
        why = gap ? "base trial overlaps preceding shards"
                  : "base trial not contiguous with preceding shards";
      }
      if (!why.empty()) {
        if (!options.allow_partial)
          throw std::runtime_error("TraceStore: " + pathOf(k) + ": " + why);
        store.quarantined_.push_back({pathOf(k), why});
        gap = true;
        continue;
      }
      store.shards_.push_back(header);
      store.shard_paths_.push_back(pathOf(k));
      if (!reference) {
        reference = header;
        shard_count = header.shard_count;
      }
      if (!first) first = header;
      store.node_count_ =
          std::max(store.node_count_, static_cast<std::size_t>(header.node_count));
      next_base = header.base_trial + header.trial_count;
    }
  }
  // Trial ids keep their recorded (global) numbering so per-shard windows
  // stay valid across a gap; the count is one past the last usable trial.
  store.trial_count_ = next_base;
  if (store.shards_.empty() && !store.quarantined_.empty())
    throw std::runtime_error(
        "TraceStore: " + store.directory_ + ": no usable shards (" +
        std::to_string(store.quarantined_.size()) + " quarantined; first: " +
        store.quarantined_.front().path + ": " +
        store.quarantined_.front().reason + ")");
  if (store.trial_count_ == 0)
    throw std::runtime_error("TraceStore: " + store.directory_ +
                             ": empty store");
  return store;
}

}  // namespace doda::dynagraph
