#include "dynagraph/trace_io.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace doda::dynagraph {

void writeTrace(std::ostream& os, const InteractionSequence& sequence,
                std::size_t node_count) {
  os << "# doda-trace v1\n";
  if (node_count == 0) node_count = sequence.minNodeCount();
  os << "# nodes " << node_count << "\n";
  for (Time t = 0; t < sequence.length(); ++t) {
    const auto& i = sequence.at(t);
    os << i.a() << ' ' << i.b() << '\n';
  }
}

void saveTrace(const std::string& path, const InteractionSequence& sequence,
               std::size_t node_count) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("saveTrace: cannot open " + path);
  writeTrace(out, sequence, node_count);
}

LoadedTrace readTrace(std::istream& is) {
  LoadedTrace result;
  std::size_t declared_nodes = 0;
  std::string line;
  std::size_t line_no = 0;
  auto fail = [&](const std::string& why) {
    throw std::runtime_error("readTrace: line " + std::to_string(line_no) +
                             ": " + why);
  };
  while (std::getline(is, line)) {
    ++line_no;
    // Trim trailing CR for Windows-authored files.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream header(line.substr(1));
      std::string keyword;
      if (header >> keyword && keyword == "nodes") {
        if (!(header >> declared_nodes)) fail("malformed '# nodes' header");
      }
      continue;
    }
    std::istringstream cells(line);
    long long u = -1, v = -1;
    if (!(cells >> u >> v)) fail("expected two node ids");
    std::string extra;
    if (cells >> extra) fail("trailing content: '" + extra + "'");
    if (u < 0 || v < 0) fail("negative node id");
    if (u == v) fail("self-interaction");
    result.sequence.append(Interaction(static_cast<NodeId>(u),
                                       static_cast<NodeId>(v)));
  }
  const std::size_t min_nodes = result.sequence.minNodeCount();
  if (declared_nodes != 0 && declared_nodes < min_nodes)
    throw std::runtime_error(
        "readTrace: '# nodes' header smaller than ids used");
  result.node_count = declared_nodes != 0 ? declared_nodes : min_nodes;
  return result;
}

LoadedTrace loadTrace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("loadTrace: cannot open " + path);
  return readTrace(in);
}

// ------------------------------------------------------------ binary store

namespace {

constexpr char kTraceMagic[8] = {'D', 'O', 'D', 'A', 'T', 'R', 'C', '1'};

std::uint64_t fnv1a(const unsigned char* data, std::size_t size) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void storeU16(unsigned char* out, std::uint16_t value) {
  out[0] = static_cast<unsigned char>(value);
  out[1] = static_cast<unsigned char>(value >> 8);
}

void storeU32(unsigned char* out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i)
    out[i] = static_cast<unsigned char>(value >> (8 * i));
}

void storeU64(unsigned char* out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i)
    out[i] = static_cast<unsigned char>(value >> (8 * i));
}

std::uint16_t loadU16(const unsigned char* in) {
  return static_cast<std::uint16_t>(in[0] | (in[1] << 8));
}

std::uint32_t loadU32(const unsigned char* in) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i)
    value |= static_cast<std::uint32_t>(in[i]) << (8 * i);
  return value;
}

std::uint64_t loadU64(const unsigned char* in) {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i)
    value |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  return value;
}

std::array<unsigned char, kTraceHeaderSize> encodeHeader(
    const TraceShardHeader& header) {
  std::array<unsigned char, kTraceHeaderSize> bytes{};
  for (int i = 0; i < 8; ++i)
    bytes[static_cast<std::size_t>(i)] =
        static_cast<unsigned char>(kTraceMagic[i]);
  storeU16(&bytes[8], kTraceFormatVersion);
  storeU16(&bytes[10], kTraceHeaderSize);
  storeU32(&bytes[12], header.shard_index);
  storeU32(&bytes[16], header.shard_count);
  storeU32(&bytes[20], 0);  // reserved
  storeU64(&bytes[24], header.node_count);
  storeU64(&bytes[32], header.trial_count);
  storeU64(&bytes[40], header.base_trial);
  storeU64(&bytes[48], header.payload_bytes);
  storeU64(&bytes[56], fnv1a(bytes.data(), 56));
  return bytes;
}

std::uint64_t zigzagEncode(std::int64_t value) {
  return (static_cast<std::uint64_t>(value) << 1) ^
         static_cast<std::uint64_t>(value >> 63);
}

std::int64_t zigzagDecode(std::uint64_t value) {
  return static_cast<std::int64_t>(value >> 1) ^
         -static_cast<std::int64_t>(value & 1);
}

}  // namespace

std::string traceShardFileName(std::uint32_t shard_index) {
  char name[32];
  std::snprintf(name, sizeof(name), "shard-%05u.trace", shard_index);
  return name;
}

// ---------------------------------------------------------------- writer

TraceStoreWriter::TraceStoreWriter(std::string directory,
                                   std::size_t node_count,
                                   std::uint64_t total_trials,
                                   std::uint32_t shard_count)
    : directory_(std::move(directory)),
      node_count_(node_count),
      total_trials_(total_trials),
      shard_count_(shard_count) {
  if (node_count_ < 2)
    throw std::invalid_argument("TraceStoreWriter: need at least 2 nodes");
  if (total_trials_ == 0)
    throw std::invalid_argument("TraceStoreWriter: zero trials");
  if (shard_count_ == 0 || shard_count_ > total_trials_)
    throw std::invalid_argument(
        "TraceStoreWriter: shard count must be in [1, total_trials]");
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
  if (ec)
    throw std::runtime_error("TraceStoreWriter: cannot create " + directory_ +
                             ": " + ec.message());
  chunk_.reserve(kTraceBlockBytes);
  openShard(0);
}

TraceStoreWriter::~TraceStoreWriter() {
  if (finished_) return;
  try {
    finish();
  } catch (...) {
    // Destructors must not throw; an incomplete store is detectable by
    // TraceStore::open (trial-count / size mismatch).
  }
}

std::uint64_t TraceStoreWriter::trialsInShard(std::uint32_t index) const {
  // Contiguous near-equal split; the first (total % shards) shards take one
  // extra trial.
  const std::uint64_t base = total_trials_ / shard_count_;
  return base + (index < total_trials_ % shard_count_ ? 1 : 0);
}

void TraceStoreWriter::openShard(std::uint32_t index) {
  const auto path =
      (std::filesystem::path(directory_) / traceShardFileName(index))
          .string();
  out_.open(path, std::ios::binary | std::ios::trunc);
  if (!out_)
    throw std::runtime_error("TraceStoreWriter: cannot open " + path);
  current_shard_ = index;
  trials_in_current_ = 0;
  payload_bytes_ = 0;
  // Placeholder header; sealed with the real payload size in closeShard().
  TraceShardHeader header;
  header.shard_index = index;
  header.shard_count = shard_count_;
  header.node_count = node_count_;
  header.trial_count = trialsInShard(index);
  header.base_trial = trials_appended_;
  header.payload_bytes = 0;
  const auto bytes = encodeHeader(header);
  out_.write(reinterpret_cast<const char*>(bytes.data()), bytes.size());
}

void TraceStoreWriter::closeShard() {
  flushChunk();
  TraceShardHeader header;
  header.shard_index = current_shard_;
  header.shard_count = shard_count_;
  header.node_count = node_count_;
  header.trial_count = trials_in_current_;
  header.base_trial = trials_appended_ - trials_in_current_;
  header.payload_bytes = payload_bytes_;
  const auto bytes = encodeHeader(header);
  out_.seekp(0);
  out_.write(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  out_.close();
  if (!out_)
    throw std::runtime_error("TraceStoreWriter: write failed on shard " +
                             std::to_string(current_shard_));
}

void TraceStoreWriter::putByte(std::uint8_t byte) {
  if (chunk_.size() == kTraceBlockBytes) flushChunk();
  chunk_.push_back(static_cast<char>(byte));
  ++payload_bytes_;
}

void TraceStoreWriter::putVarint(std::uint64_t value) {
  while (value >= 0x80) {
    putByte(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  putByte(static_cast<std::uint8_t>(value));
}

void TraceStoreWriter::flushChunk() {
  if (chunk_.empty()) return;
  out_.write(chunk_.data(), static_cast<std::streamsize>(chunk_.size()));
  chunk_.clear();
}

void TraceStoreWriter::appendTrial(InteractionSequenceView trial) {
  if (finished_)
    throw std::logic_error("TraceStoreWriter: appendTrial after finish");
  if (trials_appended_ == total_trials_)
    throw std::logic_error("TraceStoreWriter: more trials than declared");
  // Validate before emitting a single byte: a rejected trial must not
  // leave a partial record in the payload (the caller may catch and
  // continue, and the shard must stay decodable).
  for (const Interaction& i : trial)
    if (i.b() >= node_count_)
      throw std::invalid_argument(
          "TraceStoreWriter: interaction endpoint >= node_count");
  if (trials_in_current_ == trialsInShard(current_shard_)) {
    closeShard();
    openShard(current_shard_ + 1);
  }
  putVarint(trial.length());
  NodeId prev_a = 0;
  for (const Interaction& i : trial) {
    putVarint(zigzagEncode(static_cast<std::int64_t>(i.a()) -
                           static_cast<std::int64_t>(prev_a)));
    putVarint(i.b() - i.a() - 1);
    prev_a = i.a();
  }
  ++trials_appended_;
  ++trials_in_current_;
}

void TraceStoreWriter::finish() {
  if (finished_) return;
  if (trials_appended_ != total_trials_)
    throw std::logic_error("TraceStoreWriter: appended " +
                           std::to_string(trials_appended_) + " of " +
                           std::to_string(total_trials_) +
                           " declared trials");
  closeShard();
  finished_ = true;
}

// ---------------------------------------------------------------- reader

TraceShardReader::TraceShardReader(std::string path, std::size_t block_bytes)
    : path_(std::move(path)), in_(path_, std::ios::binary) {
  if (!in_) fail("cannot open");
  block_.resize(block_bytes > 0 ? block_bytes : kTraceBlockBytes);

  std::array<unsigned char, kTraceHeaderSize> bytes{};
  in_.read(reinterpret_cast<char*>(bytes.data()), bytes.size());
  if (in_.gcount() != static_cast<std::streamsize>(bytes.size()))
    fail("truncated header");
  for (int i = 0; i < 8; ++i)
    if (bytes[static_cast<std::size_t>(i)] !=
        static_cast<unsigned char>(kTraceMagic[i]))
      fail("bad magic (not a doda binary trace shard)");
  if (loadU16(&bytes[8]) != kTraceFormatVersion)
    fail("unsupported format version " + std::to_string(loadU16(&bytes[8])));
  if (loadU16(&bytes[10]) != kTraceHeaderSize)
    fail("unexpected header size");
  if (loadU64(&bytes[56]) != fnv1a(bytes.data(), 56))
    fail("header checksum mismatch (corrupt header)");
  header_.shard_index = loadU32(&bytes[12]);
  header_.shard_count = loadU32(&bytes[16]);
  header_.node_count = loadU64(&bytes[24]);
  header_.trial_count = loadU64(&bytes[32]);
  header_.base_trial = loadU64(&bytes[40]);
  header_.payload_bytes = loadU64(&bytes[48]);
  if (header_.node_count < 2) fail("header declares fewer than 2 nodes");
  if (header_.node_count > std::numeric_limits<NodeId>::max())
    fail("header node count exceeds the supported id range");
  if (header_.shard_count == 0 || header_.shard_index >= header_.shard_count)
    fail("header shard index/count inconsistent");

  std::error_code ec;
  const auto size = std::filesystem::file_size(path_, ec);
  if (ec) fail("cannot stat: " + ec.message());
  const std::uint64_t expected = kTraceHeaderSize + header_.payload_bytes;
  if (size < expected) fail("truncated shard (payload shorter than header declares)");
  if (size > expected) fail("trailing bytes after declared payload");
  payload_left_ = header_.payload_bytes;
}

void TraceShardReader::fail(const std::string& why) const {
  throw std::runtime_error("TraceShardReader: " + path_ + ": " + why);
}

std::uint8_t TraceShardReader::takeByte() {
  if (block_pos_ == block_limit_) {
    if (payload_left_ == 0) fail("truncated shard (payload exhausted)");
    const auto want = static_cast<std::streamsize>(
        std::min<std::uint64_t>(block_.size(), payload_left_));
    in_.read(block_.data(), want);
    block_limit_ = static_cast<std::size_t>(in_.gcount());
    block_pos_ = 0;
    if (block_limit_ == 0) fail("truncated shard (unexpected EOF)");
    payload_left_ -= block_limit_;
  }
  return static_cast<std::uint8_t>(block_[block_pos_++]);
}

std::uint64_t TraceShardReader::takeVarint() {
  std::uint64_t value = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    const std::uint8_t byte = takeByte();
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return value;
  }
  fail("varint overrun (corrupt payload)");
}

Interaction TraceShardReader::decodeOne() {
  // The payload is not checksummed, so these range checks are the only
  // defense against corruption: validate every decoded quantity *before*
  // using it in arithmetic (no signed overflow, no unsigned wrap).
  const std::int64_t delta = zigzagDecode(takeVarint());
  const auto n = static_cast<std::int64_t>(header_.node_count);
  const auto prev = static_cast<std::int64_t>(prev_a_);
  if (delta < -prev || delta >= n - prev)
    fail("decoded endpoint out of range (corrupt payload)");
  const std::int64_t a = prev + delta;
  const std::uint64_t gap = takeVarint();
  if (gap >= header_.node_count - static_cast<std::uint64_t>(a) - 1)
    fail("decoded endpoint out of range (corrupt payload)");
  const std::uint64_t b = static_cast<std::uint64_t>(a) + 1 + gap;
  prev_a_ = static_cast<NodeId>(a);
  return Interaction(static_cast<NodeId>(a), static_cast<NodeId>(b));
}

bool TraceShardReader::beginTrial() {
  if (trials_begun_ > 0) skipRest();
  if (trials_begun_ == header_.trial_count) return false;
  trial_length_ = takeVarint();
  // Every interaction occupies at least two payload bytes (two varints),
  // so a declared length beyond half the undelivered payload is corrupt —
  // reject it here rather than letting readRest() reserve a huge vector.
  const std::uint64_t bytes_left =
      payload_left_ + (block_limit_ - block_pos_);
  if (trial_length_ > bytes_left / 2)
    fail("trial length exceeds remaining payload (corrupt payload)");
  decoded_ = 0;
  prev_a_ = 0;
  ++trials_begun_;
  return true;
}

std::optional<Interaction> TraceShardReader::next() {
  if (decoded_ == trial_length_) return std::nullopt;
  const Interaction i = decodeOne();
  ++decoded_;
  return i;
}

InteractionSequence TraceShardReader::readRest() {
  std::vector<Interaction> interactions;
  interactions.reserve(static_cast<std::size_t>(remainingInTrial()));
  while (decoded_ < trial_length_) {
    interactions.push_back(decodeOne());
    ++decoded_;
  }
  return InteractionSequence(std::move(interactions));
}

void TraceShardReader::skipRest() {
  while (decoded_ < trial_length_) {
    decodeOne();
    ++decoded_;
  }
}

// ----------------------------------------------------------------- store

std::string TraceStore::shardPath(std::size_t shard_index) const {
  return (std::filesystem::path(directory_) /
          traceShardFileName(static_cast<std::uint32_t>(shard_index)))
      .string();
}

TraceShardReader TraceStore::openShard(std::size_t shard_index) const {
  if (shard_index >= shards_.size())
    throw std::out_of_range("TraceStore::openShard: shard index " +
                            std::to_string(shard_index) + " of " +
                            std::to_string(shards_.size()));
  return TraceShardReader(shardPath(shard_index));
}

TraceStore TraceStore::open(const std::string& directory) {
  TraceStore store;
  store.directory_ = directory;
  // Shard 0 names the shard count; every shard is then opened once to
  // validate its header and the cross-shard invariants.
  TraceShardReader first(store.shardPath(0));
  const std::uint32_t shard_count = first.header().shard_count;
  store.shards_.reserve(shard_count);
  store.node_count_ = static_cast<std::size_t>(first.header().node_count);
  for (std::uint32_t k = 0; k < shard_count; ++k) {
    const TraceShardHeader header =
        k == 0 ? first.header() : TraceShardReader(store.shardPath(k)).header();
    auto fail = [&](const std::string& why) {
      throw std::runtime_error("TraceStore: " + store.shardPath(k) + ": " +
                               why);
    };
    if (header.shard_index != k) fail("shard index does not match file name");
    if (header.shard_count != shard_count)
      fail("shard count disagrees with shard 0");
    if (header.node_count != first.header().node_count)
      fail("node count disagrees with shard 0");
    if (header.base_trial != store.trial_count_)
      fail("base trial not contiguous with preceding shards");
    store.trial_count_ += header.trial_count;
    store.shards_.push_back(header);
  }
  if (store.trial_count_ == 0)
    throw std::runtime_error("TraceStore: " + directory + ": empty store");
  return store;
}

}  // namespace doda::dynagraph
