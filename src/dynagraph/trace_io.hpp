#pragma once

#include <iosfwd>
#include <string>

#include "dynagraph/interaction_sequence.hpp"

namespace doda::dynagraph {

/// Plain-text trace format for interaction sequences, for interchange with
/// external tools and for the CLI runner:
///
/// ```
/// # doda-trace v1
/// # nodes <n>          (optional hint; inferred from content otherwise)
/// <u> <v>              one interaction per line, time = line order
/// ...
/// ```
///
/// Lines starting with '#' are comments; blank lines are skipped. Node ids
/// are decimal and a line's pair must be distinct.

/// Writes `sequence` to `os` in the format above.
void writeTrace(std::ostream& os, const InteractionSequence& sequence,
                std::size_t node_count = 0);

/// Writes to a file. Throws std::runtime_error if the file cannot be
/// opened.
void saveTrace(const std::string& path, const InteractionSequence& sequence,
               std::size_t node_count = 0);

/// Result of parsing a trace.
struct LoadedTrace {
  InteractionSequence sequence;
  /// Declared node count if a "# nodes" header was present, otherwise the
  /// minimal count covering every id in the file.
  std::size_t node_count = 0;
};

/// Parses a trace from `is`. Throws std::runtime_error with a line number
/// on malformed input.
LoadedTrace readTrace(std::istream& is);

/// Reads from a file. Throws std::runtime_error on open failure or
/// malformed content.
LoadedTrace loadTrace(const std::string& path);

}  // namespace doda::dynagraph
