#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include <memory>

#include "dynagraph/interaction_sequence.hpp"
#include "dynagraph/trace_codec.hpp"
#include "dynagraph/trace_rans.hpp"

namespace doda::storage {
class Env;
class WritableFile;
}  // namespace doda::storage

namespace doda::dynagraph {

// ---------------------------------------------------------------------------
// Plain-text trace format (single sequence, for interchange and the CLI
// runner):
//
// ```
// # doda-trace v1
// # nodes <n>          (optional hint; inferred from content otherwise)
// <u> <v>              one interaction per line, time = line order
// ...
// ```
//
// Lines starting with '#' are comments; blank lines are skipped. Node ids
// are decimal and a line's pair must be distinct.
// ---------------------------------------------------------------------------

/// Writes `sequence` to `os` in the format above.
void writeTrace(std::ostream& os, const InteractionSequence& sequence,
                std::size_t node_count = 0);

/// Writes to a file. Throws std::runtime_error if the file cannot be
/// opened.
void saveTrace(const std::string& path, const InteractionSequence& sequence,
               std::size_t node_count = 0);

/// Result of parsing a trace.
struct LoadedTrace {
  InteractionSequence sequence;
  /// Declared node count if a "# nodes" header was present, otherwise the
  /// minimal count covering every id in the file.
  std::size_t node_count = 0;
};

/// Parses a trace from `is`. Throws std::runtime_error with a line number
/// on malformed input.
LoadedTrace readTrace(std::istream& is);

/// Reads from a file. Throws std::runtime_error on open failure or
/// malformed content.
LoadedTrace loadTrace(const std::string& path);

// ---------------------------------------------------------------------------
// Binary sharded trace store (many trials, production-scale replay).
//
// A *store* is a directory of shard files, each holding a contiguous block
// of recorded trials (one trial = one interaction sequence). Shards are the
// parallelism unit of replay: the executor in sim/trace_replay hands one
// shard to one task and streams its trials without ever materializing the
// shard.
//
// The on-disk formats all share the "DODATRC1" magic and are told apart by
// the header's version field. Every past version stays fully readable.
//
// v1 shard layout (all integers little-endian):
//
//   offset size
//   0      8    magic "DODATRC1"
//   8      2    u16 format version (1)
//   10     2    u16 header size (64)
//   12     4    u32 shard index
//   16     4    u32 shard count of the store
//   20     4    u32 reserved (0)
//   24     8    u64 node count
//   32     8    u64 trial count in this shard
//   40     8    u64 base trial (global index of this shard's first trial)
//   48     8    u64 payload bytes following the header
//   56     8    u64 FNV-1a checksum of header bytes [0, 56)
//
// The v1 payload is the bare *record stream*, a run of trial records:
//
//   varint  interaction count L
//   L x     delta-encoded interaction: zigzag-varint(a - prev_a) followed
//           by varint(b - a - 1), where {a, b} is the normalized pair
//           (a < b) and prev_a is the previous interaction's `a` (0 at the
//           start of each trial)
//
// Varints are LEB128 (7 bits per byte, little-endian groups).
//
// v2 shard layout (the current writer default):
//
//   offset size
//   0      8    magic "DODATRC1"
//   8      2    u16 format version (2)
//   10     2    u16 header size (80)
//   12     4    u32 shard index
//   16     4    u32 shard count of the store
//   20     4    u32 codec (0 = raw blocks, 1 = range-coded blocks allowed)
//   24     8    u64 node count
//   32     8    u64 trial count in this shard
//   40     8    u64 base trial
//   48     8    u64 payload bytes following the header (block frames
//               included)
//   56     8    u64 raw payload bytes (length of the decoded record stream)
//   64     4    u32 block capacity (max raw bytes per block)
//   68     4    u32 reserved (0)
//   72     8    u64 FNV-1a checksum of header bytes [0, 72)
//
// The v2 payload is a run of independently checksummed *blocks* framing the
// same record stream (a trial — even a varint — may span blocks):
//
//   u32  raw size      decoded bytes of this block, in (0, block capacity]
//   u32  stored size   bytes stored on disk (== raw size when codec 0,
//                      < raw size when codec 1)
//   u8   codec         0 = raw copy of the record stream, 1 = range-coded
//                      (trace_codec.hpp: adaptive binary range coder with
//                      per-class bit-tree byte models, reset per block)
//   u64  FNV-1a checksum of the stored bytes
//   ...  stored bytes
//
// A writer that finds a block incompressible stores it raw (codec 0), so a
// v2 store never expands beyond framing overhead. Readers verify the block
// checksum before decoding, making payload corruption detectable even when
// the damaged bytes would happen to decode in range.
//
// v3 shard layout (the current writer default) reuses the v2 header byte
// for byte with version = 3 and two changes:
//
//   * the u32 at offset 20 may additionally be 2 (static-table interleaved
//     rANS blocks allowed — dynagraph/trace_rans.hpp); block frames carry
//     codec 2 with the same frame fields, and incompressible blocks still
//     fall back to raw (codec 0),
//   * the reserved u32 at offset 68 becomes the *footer size*: a block
//     index appended after the payload so readers can seek without
//     sequential skipping.
//
// v3 blocks additionally align to record-unit boundaries (a trial-length
// varint, or one interaction's delta+gap varint pair, is never split
// across blocks), so every block boundary is describable by the record
// cursor — which is exactly what the footer stores:
//
//   offset size
//   0      4    u32 block count K (>= 1)
//   4      56*K per block, in payload order:
//               u64 file offset of the block frame
//               u32 raw size          (== the frame's, cross-checked)
//               u32 stored size
//               u64 raw start         (record-stream bytes before the block)
//               u64 trials begun      (trials whose record started before
//                                      the block's first byte, shard-local)
//               u64 trial length      (of the trial open at the boundary)
//               u64 decoded           (its interactions already consumed)
//               u64 prev_a            (the record-layer delta anchor)
//   ...    8    u64 FNV-1a of every preceding footer byte
//
// The index is validated at open (offsets must chain exactly through the
// payload, raw starts must sum to the header's raw payload size, trial
// cursors must be monotone) so a footer that disagrees with its payload is
// rejected before any seek. v1/v2 stores have no footer; seekToTrial on
// them falls back to sequential skipping.
//
// v4 shard layout (the current writer default) reuses the v3 container —
// header, block frames, raw fallback for incompressible blocks,
// record-unit-aligned blocks, footer index — byte for byte with version =
// 4, with compressed blocks carrying codec 3 instead of 2 (header codec:
// 0 or 3). Two things change. The *record stream* under the entropy coder:
// the sequential LEB128 varints become byte-aligned units whose control
// byte names every field width up front, so a whole unit decodes
// branch-free (SWAR: one unaligned 64-bit load + mask per field) instead
// of byte-at-a-time. And the *entropy coder* itself: codec 3 is an 8-way
// interleaved rANS over ONE frequency table (trace_rans.hpp
// RansV4Block{Encoder,Decoder}) instead of v3's 2-way, 20-context coder.
//
//   trial-length unit:
//     u8   control      bits 0..1 = size code c (data bytes = 1 << c, i.e.
//                       1, 2, 4 or 8); bits 2..7 must be zero
//     .    1 << c bytes little-endian trial length L
//
//   group unit (two consecutive interactions of one trial; the last unit
//   of an odd-length trial carries one):
//     u8   control      four 2-bit fields, each (byte length - 1) of the
//                       corresponding value:
//                         bits 0..1  zigzag(a0 - prev_a)
//                         bits 2..3  b0 - a0 - 1
//                         bits 4..5  zigzag(a1 - a0)
//                         bits 6..7  b1 - a1 - 1
//                       a one-interaction group uses the low nibble only;
//                       the high nibble must be zero
//     .    the named value bytes, little-endian, in field order
//
// Values are the v1-v3 delta/gap quantities unchanged (a < b normalized,
// prev_a reset to 0 per trial; within a group the second delta anchors on
// a0). A v4 writer requires node_count <= 2^31 so every field fits 4 bytes
// and the largest unit is 1 + 4*4 = 17 bytes <= kTraceMaxRecordUnitBytes.
// Units never split across blocks (same alignment rule as v3), so the
// footer cursor semantics carry over unchanged and every block decodes
// independently given its index entry.
//
// A codec-3 block codes EVERY record byte — control and value alike — as
// one symbol of its single table. One table trades a little compression
// ratio for decode speed: phase 1 reconstructs a whole coded block in one
// bulk 8-way rANS run (a fused slot table, branchless renormalization, no
// per-symbol context steering, no record parsing), and phase 2 parses
// units from the contiguous buffer, where ALL structural validation lives
// (control-byte invariants plus the same delta/gap range checks as
// v1-v3). The contiguous scratch buffer is also what enables the SWAR
// fast path and block-parallel decode of a single trial (readRest with a
// TraceDecodePool).
// ---------------------------------------------------------------------------

inline constexpr std::uint16_t kTraceFormatVersionV1 = 1;
inline constexpr std::uint16_t kTraceFormatVersionV2 = 2;
inline constexpr std::uint16_t kTraceFormatVersionV3 = 3;
inline constexpr std::uint16_t kTraceFormatVersionV4 = 4;
/// Default format written by TraceStoreWriter.
inline constexpr std::uint16_t kTraceFormatVersion = kTraceFormatVersionV4;
inline constexpr std::uint16_t kTraceHeaderSize = 64;    // v1
inline constexpr std::uint16_t kTraceHeaderSizeV2 = 80;  // v2 and v3
inline constexpr std::size_t kTraceBlockBytes = std::size_t{1} << 16;
inline constexpr std::size_t kTraceBlockFrameBytes = 17;
/// Footer sizes (v3): fixed trailer fields and one index entry.
inline constexpr std::size_t kTraceIndexEntryBytes = 56;
inline constexpr std::size_t kTraceIndexFixedBytes = 12;  // count + checksum
/// Upper bound of one unsplittable record unit: two 10-byte varints (v3)
/// or a 17-byte v4 group; a v3/v4 block may exceed the configured block
/// size by at most this much minus one when a single unit is larger than
/// the whole block.
inline constexpr std::size_t kTraceMaxRecordUnitBytes = 20;

/// Block codec ids (v2+ headers and block frames).
inline constexpr std::uint32_t kTraceCodecRaw = 0;
inline constexpr std::uint32_t kTraceCodecRangeCoded = 1;
inline constexpr std::uint32_t kTraceCodecRans = 2;
inline constexpr std::uint32_t kTraceCodecRansV4 = 3;

/// One v3 block-index entry: where the block lives in the file and the
/// record-layer cursor at its first byte (enough to resume decoding there).
struct TraceBlockIndexEntry {
  std::uint64_t offset = 0;      ///< file offset of the block frame
  std::uint32_t raw_size = 0;    ///< decoded bytes of the block
  std::uint32_t stored_size = 0; ///< bytes stored on disk
  std::uint64_t raw_start = 0;   ///< record-stream bytes before the block
  std::uint64_t trials_begun = 0;  ///< shard-local trials begun before it
  std::uint64_t trial_length = 0;  ///< length of the trial open at the cut
  std::uint64_t decoded = 0;       ///< its interactions already consumed
  std::uint64_t prev_a = 0;        ///< record-layer delta anchor
};

/// Decoded, validated shard header.
struct TraceShardHeader {
  std::uint16_t format_version = kTraceFormatVersionV1;
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 0;
  /// v2: kTraceCodecRaw or kTraceCodecRangeCoded; v3: kTraceCodecRaw or
  /// kTraceCodecRans; v4: kTraceCodecRaw or kTraceCodecRansV4; always 0
  /// for v1.
  std::uint32_t codec = 0;
  /// v2/v3: max raw bytes per block; 0 for v1.
  std::uint32_t block_bytes = 0;
  /// v3: on-disk bytes of the block-index footer after the payload; 0
  /// for v1/v2 (no footer).
  std::uint32_t footer_bytes = 0;
  std::uint64_t node_count = 0;
  std::uint64_t trial_count = 0;
  std::uint64_t base_trial = 0;
  /// On-disk payload bytes following the header (footer excluded).
  std::uint64_t payload_bytes = 0;
  /// Decoded record-stream bytes (== payload_bytes for v1).
  std::uint64_t raw_payload_bytes = 0;

  std::uint16_t headerSize() const noexcept {
    return format_version >= kTraceFormatVersionV2 ? kTraceHeaderSizeV2
                                                   : kTraceHeaderSize;
  }
  /// Total shard file size implied by this header.
  std::uint64_t fileBytes() const noexcept {
    return headerSize() + payload_bytes + footer_bytes;
  }
};

/// Canonical shard file name within a store directory ("shard-00007.trace").
std::string traceShardFileName(std::uint32_t shard_index);

/// Writer-side format knobs. Defaults produce a compressed, block-indexed
/// v4 store.
struct TraceWriterOptions {
  /// Any past version reproduces its historical format byte for byte
  /// (v1 = bare varints, v2 = adaptive range coder, v3 = rANS varints,
  /// v4 = rANS group units). v4 additionally requires node_count <= 2^31.
  std::uint16_t format_version = kTraceFormatVersion;
  /// v2 and newer: entropy-code blocks (incompressible blocks fall back
  /// to raw storage automatically). false writes raw, checksummed blocks.
  bool compress = true;
  /// v2 and newer: raw bytes per block. Smaller blocks localize corruption
  /// and reset the models/tables more often; larger blocks compress
  /// slightly better and keep the v3 index smaller.
  std::size_t block_bytes = kTraceBlockBytes;
  /// Global trial id of this writer's first trial. Shard headers carry
  /// base_trial plus the shard's local offset, so a segment written behind
  /// an existing store keeps globally consistent trial ids (seekToTrial
  /// and replayShards address trials by global id).
  std::uint64_t base_trial = 0;
  /// Filesystem the writer writes through (storage::Env). Null means the
  /// real filesystem; tests thread a storage::FaultyEnv here.
  storage::Env* env = nullptr;
  /// fsync each shard before closing it — the durable store's commit
  /// discipline. Off by default: a plain recorded store keeps the
  /// historical cost profile, and its durability is the caller's problem.
  bool sync_on_close = false;
};

/// A borrowed worker pool for block-parallel decode of a single trial
/// (TraceShardReader::setDecodePool). `run(count, task)` must invoke
/// task(0) .. task(count-1), each exactly once, from any threads, and
/// return only after every task completed (rethrowing the first task
/// exception). The pool is inert — and readRest() stays sequential —
/// unless it converts to true.
struct TraceDecodePool {
  std::size_t workers = 0;
  std::function<void(std::size_t count,
                     const std::function<void(std::size_t)>& task)>
      run;

  explicit operator bool() const noexcept {
    return workers > 1 && static_cast<bool>(run);
  }
};

/// How TraceShardReader accesses the shard file.
enum class TraceReadBackend : std::uint8_t {
  /// mmap when the platform supports it, buffered streams otherwise.
  kAuto,
  /// Require mmap; constructor throws where unavailable.
  kMmap,
  /// Force buffered-stream reads (the PR-2 behavior).
  kStream,
};

namespace detail {
/// Read-only mapping of a whole shard file (POSIX mmap). Empty on
/// platforms without mmap support.
struct MmapRegion {
  const unsigned char* data = nullptr;
  std::size_t size = 0;

  MmapRegion() = default;
  ~MmapRegion();
  MmapRegion(MmapRegion&& other) noexcept;
  MmapRegion& operator=(MmapRegion&& other) noexcept;
  MmapRegion(const MmapRegion&) = delete;
  MmapRegion& operator=(const MmapRegion&) = delete;

  /// Maps `path` read-only. Returns false (leaving the region empty) when
  /// mmap is unsupported or fails; `error` receives the reason.
  bool map(const std::string& path, std::string& error);
  void unmap() noexcept;
};
}  // namespace detail

/// Writes a sharded binary trace store. Trials are appended in global
/// order; the writer splits them into `shard_count` contiguous blocks of
/// near-equal size (earlier shards get the remainder). finish() (or
/// destruction) seals the last shard; appendTrial after finish() throws.
class TraceStoreWriter {
 public:
  /// Creates `directory` (and parents) and opens the first shard. Throws
  /// std::invalid_argument on a degenerate shape (zero trials, zero shards,
  /// more shards than trials, node_count < 2, bad options) and
  /// std::runtime_error on I/O failure.
  TraceStoreWriter(std::string directory, std::size_t node_count,
                   std::uint64_t total_trials, std::uint32_t shard_count,
                   TraceWriterOptions options = {});
  ~TraceStoreWriter();

  TraceStoreWriter(const TraceStoreWriter&) = delete;
  TraceStoreWriter& operator=(const TraceStoreWriter&) = delete;

  const std::string& directory() const noexcept { return directory_; }
  const TraceWriterOptions& options() const noexcept { return options_; }

  /// Appends the next trial. Every interaction endpoint must be
  /// < node_count (validated before any byte is emitted, so a rejected
  /// trial leaves the shard decodable). Throws std::logic_error when more
  /// than `total_trials` trials are appended.
  void appendTrial(InteractionSequenceView trial);

  /// Streaming alternative to appendTrial for trials too large to
  /// materialize: declare the length, then feed exactly `length`
  /// interactions. Unlike appendTrial, endpoints are validated as they
  /// arrive — a throw from addInteraction leaves the trial incomplete and
  /// finish() will reject the store.
  void beginTrial(std::uint64_t length);
  void addInteraction(Interaction interaction);

  /// Seals the current shard and validates that exactly `total_trials`
  /// trials were appended (std::logic_error otherwise). Idempotent.
  void finish();

 private:
  void openShard(std::uint32_t index);
  void closeShard();
  void putByte(std::uint8_t byte, codec::SymbolClass cls, unsigned bucket);
  void putVarint(std::uint64_t value, codec::SymbolClass first_cls,
                 codec::SymbolClass cont_cls, unsigned bucket);
  /// v4: emits one record byte (one symbol of the block's single table).
  void putByteV4(std::uint8_t byte);
  /// v4: emits one group unit (the second interaction may be absent for
  /// the final unit of an odd-length trial) and advances the record
  /// cursor.
  void emitGroupV4(Interaction first, const Interaction* second);
  void flushChunk();  // v1: buffered write of the bare record stream
  void flushBlock();  // v2/v3: seal and emit the current block
  /// v3: flushes the current block when the next `unit_bytes`-byte record
  /// unit would overflow it (units never split across v3 blocks).
  void alignBlockForUnit(std::size_t unit_bytes);
  void writeFooter();  // v3: block index + checksum after the payload
  std::uint64_t trialsInShard(std::uint32_t index) const;

  std::string directory_;
  std::size_t node_count_;
  std::uint64_t total_trials_;
  std::uint32_t shard_count_;
  TraceWriterOptions options_;
  unsigned bucket_shift_ = 0;
  std::size_t bucket_cap_ = codec::kContextBuckets;
  std::unique_ptr<storage::WritableFile> out_;
  std::vector<char> chunk_;                // v1 write buffer
  std::vector<std::uint8_t> raw_block_;    // v2/v3: raw record bytes
  std::vector<std::uint8_t> ctx_block_;    // v3: per-byte rANS context ids
  std::vector<std::uint8_t> encoded_;      // entropy-coder output
  codec::RangeEncoder encoder_;
  codec::TraceModels models_;
  std::unique_ptr<codec::RansBlockEncoder> rans_;  // v3 compress only
  std::unique_ptr<codec::RansV4BlockEncoder> rans_v4_;  // v4 compress only
  std::vector<TraceBlockIndexEntry> index_;        // v3 footer entries
  std::uint32_t current_shard_ = 0;
  std::uint64_t trials_appended_ = 0;
  std::uint64_t trials_in_current_ = 0;
  std::uint64_t payload_bytes_ = 0;
  std::uint64_t raw_payload_bytes_ = 0;
  // Record cursor mirrored into v3 index entries (shard-local).
  std::uint64_t cur_trials_begun_ = 0;
  std::uint64_t cur_trial_length_ = 0;
  std::uint64_t cur_decoded_ = 0;
  std::uint64_t cur_prev_a_ = 0;
  std::uint64_t pending_interactions_ = 0;  // of the open streamed trial
  // v4: first interaction of a not-yet-emitted group unit.
  Interaction v4_pending_{0, 1};
  bool v4_have_pending_ = false;
  bool trial_open_ = false;
  bool finished_ = false;
};

/// Streams one shard file: validates the header on open (magic, version,
/// checksum, and that the file size matches the declared payload — a short
/// file fails fast as "truncated"), then decodes trials sequentially. The
/// backend is mmap where available (zero-copy for raw payloads) with a
/// buffered-stream fallback; v2 block payloads are additionally verified
/// against their per-block checksum before decoding. The whole shard is
/// never resident beyond the mapping.
class TraceShardReader {
 public:
  /// Opens and validates `path`. Throws std::runtime_error on a missing
  /// file, corrupt header, truncated payload, or (backend kMmap) when mmap
  /// is unavailable.
  explicit TraceShardReader(std::string path,
                            std::size_t block_bytes = kTraceBlockBytes,
                            TraceReadBackend backend = TraceReadBackend::kAuto);

  /// Whether this platform can mmap shard files at all.
  static bool mmapSupported() noexcept;

  const TraceShardHeader& header() const noexcept { return header_; }
  const std::string& path() const noexcept { return path_; }
  /// Whether this reader serves bytes from a memory mapping.
  bool usingMmap() const noexcept { return map_.data != nullptr; }

  /// Whether this shard carries a block index (v3 footers). Without one,
  /// seekToTrial degrades to sequential skipping and seekToBlock throws.
  bool hasBlockIndex() const noexcept { return !index_.empty(); }
  /// The validated block index (empty for v1/v2 shards).
  const std::vector<TraceBlockIndexEntry>& blockIndex() const noexcept {
    return index_;
  }

  /// Repositions the decode cursor at the first byte of block `k`,
  /// restoring the record cursor from the index. Requires hasBlockIndex();
  /// throws std::out_of_range past the last block.
  void seekToBlock(std::size_t k);

  /// Positions the reader so the next beginTrial() begins the trial with
  /// the given *global* index. Returns false when the trial is not in this
  /// shard. O(log blocks + one partial block decode) with a block index;
  /// without one, decodes forward from the current position (and throws
  /// std::runtime_error on a backward seek, which would need a reopen).
  bool seekToTrial(std::uint64_t global_trial);

  /// Positions at the next trial (skipping any undecoded remainder of the
  /// current one). Returns false when every trial of the shard has been
  /// consumed. The global index of the trial just begun is
  /// header().base_trial + trialsBegun() - 1.
  bool beginTrial();

  /// Trials begun so far (== local index of the current trial + 1).
  std::uint64_t trialsBegun() const noexcept { return trials_begun_; }

  /// Interaction count of the current trial.
  std::uint64_t trialLength() const noexcept { return trial_length_; }

  /// Interactions of the current trial not yet decoded.
  std::uint64_t remainingInTrial() const noexcept {
    return trial_length_ - decoded_;
  }

  /// Decodes the next interaction of the current trial; std::nullopt at
  /// trial end. Throws std::runtime_error on a truncated or corrupt
  /// payload (out-of-range endpoint, varint overrun, block checksum
  /// mismatch, unexpected EOF).
  std::optional<Interaction> next();

  /// Materializes the undecoded remainder of the current trial. With a
  /// decode pool set (setDecodePool) and a block index covering at least
  /// two blocks of the remainder, the blocks are decoded in parallel on
  /// the pool and stitched in order — bit-identical to the sequential
  /// path; the reader still ends positioned at the trial's end.
  InteractionSequence readRest();

  /// Decodes and discards the remainder of the current trial.
  void skipRest();

  /// Borrows `pool` (nullptr detaches) for block-parallel readRest() on
  /// indexed (v3/v4) shards. The pool must outlive its use; the caller
  /// keeps ownership. Single-trial parallelism only kicks in when the
  /// remainder spans enough indexed blocks to split.
  void setDecodePool(const TraceDecodePool* pool) noexcept { pool_ = pool; }

  /// Test hook: forces the scalar v4 unit parser even when the SWAR fast
  /// path would apply (fuzzing parity between the two). Inherited by the
  /// workers a decode pool spawns.
  void setForceScalarDecode(bool force) noexcept { force_scalar_ = force; }

  /// Walks every block frame of the payload and verifies its geometry and
  /// checksum without decoding (no-op for v1, whose payload carries no
  /// per-block checksums). Throws like next() does, with the byte offset
  /// and block index of the first corruption. Consumes the payload
  /// cursor — use on a throwaway reader (TraceStoreOpenOptions::
  /// verify_payloads does) and open a fresh one to decode.
  void verifyPayloadChecksums();

 private:
  /// Throws std::runtime_error naming the shard path; once the header is
  /// validated, appends the payload cursor's byte offset and (v2+) the
  /// ordinal of the block being read, so a quarantine reason pinpoints
  /// the first corruption.
  [[noreturn]] void fail(const std::string& why) const;
  void parseHeader();
  void parseFooter();
  std::size_t maxBlockRawBytes() const noexcept;
  void readPayloadBytes(unsigned char* dst, std::size_t count);
  const unsigned char* borrowPayloadBytes(std::size_t count);
  std::uint64_t payloadSourceLeft() const noexcept;
  void refillSymbols();
  void loadNextBlock();
  void beginWindow();
  std::uint64_t rawLeft() const noexcept;
  std::uint8_t takeByte(codec::SymbolClass cls, unsigned bucket);
  std::uint64_t takeVarint(codec::SymbolClass first_cls,
                           codec::SymbolClass cont_cls, unsigned bucket);
  Interaction decodeOne();
  /// v4: rANS-decodes a whole coded block payload into v4_scratch_ in
  /// one bulk 8-way run, so the block is then served as a plain byte
  /// window. All structural validation happens in the group parser.
  void decodeV4Block(const unsigned char* stored, std::size_t stored_size,
                     std::size_t raw_size);
  /// v4: parses the next group unit from the window, returns its first
  /// interaction, and buffers the second (if the unit carries one).
  Interaction takeGroupV4();
  /// v4 bulk fast path: parses consecutive PAIR groups straight from the
  /// current window into `dst` (skip-only when null), advancing decoded_.
  /// Returns the interactions produced (always even); 0 when the window
  /// is near its edge, the trial is near its end, or under force-scalar —
  /// the callers then fall back to takeGroupV4 for one group and retry.
  std::uint64_t bulkGroupsV4(Interaction* dst, std::uint64_t count);
  /// Decodes `count` interactions of the current trial into `dst`
  /// (format-agnostic; the trial must have at least that many left).
  void decodeInto(Interaction* dst, std::uint64_t count);
  /// Block-parallel readRest body; false when the remainder cannot be
  /// split (no index, pending state, or too few blocks ahead).
  bool tryReadRestParallel(std::vector<Interaction>& out);

  std::string path_;
  detail::MmapRegion map_;
  std::ifstream in_;
  std::vector<unsigned char> stream_buf_;  // stream backend read window
  std::vector<unsigned char> block_buf_;   // stream backend block bytes
  TraceShardHeader header_;
  std::vector<TraceBlockIndexEntry> index_;  // v3 block index (validated)
  unsigned bucket_shift_ = 0;
  std::size_t bucket_cap_ = codec::kContextBuckets;
  std::size_t stream_block_bytes_ = 0;
  // On-disk payload cursor.
  const unsigned char* payload_ptr_ = nullptr;  // mmap backend
  const unsigned char* payload_end_ = nullptr;
  std::uint64_t payload_left_ = 0;  // stream backend: undelivered file bytes
  // Decoded-symbol window (raw blocks / v1 payloads serve directly from it).
  const unsigned char* sym_buf_ = nullptr;
  std::size_t sym_pos_ = 0;
  std::size_t sym_limit_ = 0;
  // Entropy-coded block state (v2 adaptive range coder or v3 rANS).
  codec::RangeDecoder decoder_;
  codec::TraceModels models_;
  std::unique_ptr<codec::RansBlockDecoder> rans_;  // lazy, v3 blocks only
  std::unique_ptr<codec::RansV4BlockDecoder> rans_v4_;  // lazy, v4 blocks
  bool rc_rans_ = false;               // live coded block is rANS
  std::uint64_t rc_block_raw_ = 0;     // raw size of the live coded block
  std::uint64_t rc_symbols_left_ = 0;
  std::uint64_t raw_left_base_ = 0;  // rawLeft() when the window began
  std::uint64_t trials_begun_ = 0;
  std::uint64_t trial_length_ = 0;
  std::uint64_t decoded_ = 0;
  NodeId prev_a_ = 0;
  // v4 record-layer state.
  std::vector<unsigned char> v4_scratch_;  // coded block, reconstructed
  NodeId v4_pend_a_ = 0;  // second interaction of a parsed group
  NodeId v4_pend_b_ = 1;
  bool v4_pending_ = false;
  bool force_scalar_ = false;
  const TraceDecodePool* pool_ = nullptr;  // borrowed, may be null
  // Diagnostics context for fail(): valid once construction completed.
  bool have_offset_ctx_ = false;
  std::uint64_t blocks_loaded_ = 0;
};

/// Options for TraceStore::open. The default is strict: any missing,
/// corrupt, truncated, or mutually inconsistent shard fails the whole
/// open (with the offending shard's path in the error). With
/// `allow_partial` such shards are quarantined instead — recorded with
/// their path and the rejection reason — and the store exposes only the
/// readable, mutually consistent shards.
struct TraceStoreOpenOptions {
  bool allow_partial = false;
  /// Additionally walk every shard's payload at open and verify each
  /// block's frame geometry and checksum (TraceShardReader::
  /// verifyPayloadChecksums). Catches mid-payload corruption that header
  /// validation alone cannot see, at the cost of reading every byte once.
  bool verify_payloads = false;
};

/// A validated handle on a sharded store directory: opens every shard
/// header once, checks cross-shard consistency (same node count, shard
/// count and format, shard indices and base trials contiguous), and hands
/// out per-shard readers. Copyable; holds no file descriptors.
class TraceStore {
 public:
  /// A shard excluded from a partial open: where it lives and why it was
  /// rejected.
  struct QuarantinedShard {
    std::string path;
    std::string reason;
  };

  /// Opens the store at `directory`. Throws std::runtime_error when shards
  /// are missing, corrupt, or mutually inconsistent.
  static TraceStore open(const std::string& directory);

  /// Opens the store at `directory` under `options`. With
  /// `options.allow_partial`, unreadable or inconsistent shards are
  /// quarantined (see quarantined()) rather than failing the open; if
  /// shard 0 itself is quarantined, the scan probes forward over the
  /// shard files present until a readable header names the shard count.
  /// Trial ids keep their global (recorded) numbering, so a quarantined
  /// shard leaves a gap: trialCount() is the id one past the last usable
  /// trial, and replaying the store folds trials inside the gap as failed.
  /// Still throws when no shard at all is usable.
  static TraceStore open(const std::string& directory,
                         const TraceStoreOpenOptions& options);

  /// Opens an ordered sequence of segment directories as one logical
  /// store (the durable store's manifest replay): each directory holds a
  /// complete shard run (shard-00000.trace …) whose headers carry global
  /// base trials, and the runs must be contiguous in global trial ids
  /// across segments (quarantine gaps permitting, as in open). Node count
  /// may grow from one segment to the next (an appended import can add
  /// nodes; nodeCount() reports the maximum) but never shrink; shard
  /// count and format version are per-segment, so a compacted v4
  /// generation can sit behind v1 history.
  static TraceStore openComposite(const std::vector<std::string>& part_dirs,
                                  const TraceStoreOpenOptions& options = {});

  const std::string& directory() const noexcept { return directory_; }
  std::size_t nodeCount() const noexcept { return node_count_; }
  std::uint64_t trialCount() const noexcept { return trial_count_; }
  std::size_t shardCount() const noexcept { return shards_.size(); }
  std::uint16_t formatVersion() const noexcept {
    return shards_.empty() ? kTraceFormatVersion : shards_[0].format_version;
  }
  const std::vector<TraceShardHeader>& shardHeaders() const noexcept {
    return shards_;
  }
  /// Shards rejected by a partial open; empty for strict opens and for
  /// fully healthy stores.
  const std::vector<QuarantinedShard>& quarantined() const noexcept {
    return quarantined_;
  }
  /// Total bytes of every shard file (headers + payloads).
  std::uint64_t totalFileBytes() const noexcept;

  /// File path of the `shard_index`-th *usable* shard (an index into
  /// shardHeaders(), like openShard's).
  std::string shardPath(std::size_t shard_index) const;
  /// Opens the `shard_index`-th *usable* shard (an index into
  /// shardHeaders(); identical to the on-disk shard index unless a
  /// partial open quarantined shards or the store is composite).
  TraceShardReader openShard(
      std::size_t shard_index,
      TraceReadBackend backend = TraceReadBackend::kAuto) const;

 private:
  TraceStore() = default;

  std::string directory_;
  std::vector<TraceShardHeader> shards_;
  std::vector<std::string> shard_paths_;  // parallel to shards_
  std::vector<QuarantinedShard> quarantined_;
  std::uint64_t trial_count_ = 0;
  std::size_t node_count_ = 0;
};

}  // namespace doda::dynagraph
