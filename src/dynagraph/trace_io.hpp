#pragma once

#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "dynagraph/interaction_sequence.hpp"

namespace doda::dynagraph {

// ---------------------------------------------------------------------------
// Plain-text trace format (single sequence, for interchange and the CLI
// runner):
//
// ```
// # doda-trace v1
// # nodes <n>          (optional hint; inferred from content otherwise)
// <u> <v>              one interaction per line, time = line order
// ...
// ```
//
// Lines starting with '#' are comments; blank lines are skipped. Node ids
// are decimal and a line's pair must be distinct.
// ---------------------------------------------------------------------------

/// Writes `sequence` to `os` in the format above.
void writeTrace(std::ostream& os, const InteractionSequence& sequence,
                std::size_t node_count = 0);

/// Writes to a file. Throws std::runtime_error if the file cannot be
/// opened.
void saveTrace(const std::string& path, const InteractionSequence& sequence,
               std::size_t node_count = 0);

/// Result of parsing a trace.
struct LoadedTrace {
  InteractionSequence sequence;
  /// Declared node count if a "# nodes" header was present, otherwise the
  /// minimal count covering every id in the file.
  std::size_t node_count = 0;
};

/// Parses a trace from `is`. Throws std::runtime_error with a line number
/// on malformed input.
LoadedTrace readTrace(std::istream& is);

/// Reads from a file. Throws std::runtime_error on open failure or
/// malformed content.
LoadedTrace loadTrace(const std::string& path);

// ---------------------------------------------------------------------------
// Binary sharded trace store (many trials, production-scale replay).
//
// A *store* is a directory of shard files, each holding a contiguous block
// of recorded trials (one trial = one interaction sequence). Shards are the
// parallelism unit of replay: the executor in sim/trace_replay hands one
// shard to one task and streams its trials without ever materializing the
// shard.
//
// Shard file layout (all integers little-endian):
//
//   offset size
//   0      8    magic "DODATRC1"
//   8      2    u16 format version (currently 1)
//   10     2    u16 header size (currently 64)
//   12     4    u32 shard index
//   16     4    u32 shard count of the store
//   20     4    u32 reserved (0)
//   24     8    u64 node count
//   32     8    u64 trial count in this shard
//   40     8    u64 base trial (global index of this shard's first trial)
//   48     8    u64 payload bytes following the header
//   56     8    u64 FNV-1a checksum of header bytes [0, 56)
//
// The payload is a run of trial records:
//
//   varint  interaction count L
//   L x     delta-encoded interaction: zigzag-varint(a - prev_a) followed
//           by varint(b - a - 1), where {a, b} is the normalized pair
//           (a < b) and prev_a is the previous interaction's `a` (0 at the
//           start of each trial)
//
// Varints are LEB128 (7 bits per byte, little-endian groups). The delta
// encoding makes locality cheap: uniform-random traces take ~2-3 bytes per
// interaction versus 8 for raw u32 pairs, and the codec streams in both
// directions — the writer emits fixed-size chunks, the reader block-reads
// into a bounded buffer.
// ---------------------------------------------------------------------------

inline constexpr std::uint16_t kTraceFormatVersion = 1;
inline constexpr std::uint16_t kTraceHeaderSize = 64;
inline constexpr std::size_t kTraceBlockBytes = std::size_t{1} << 16;

/// Decoded, validated shard header.
struct TraceShardHeader {
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 0;
  std::uint64_t node_count = 0;
  std::uint64_t trial_count = 0;
  std::uint64_t base_trial = 0;
  std::uint64_t payload_bytes = 0;
};

/// Canonical shard file name within a store directory ("shard-00007.trace").
std::string traceShardFileName(std::uint32_t shard_index);

/// Writes a sharded binary trace store. Trials are appended in global
/// order; the writer splits them into `shard_count` contiguous blocks of
/// near-equal size (earlier shards get the remainder). finish() (or
/// destruction) seals the last shard; appendTrial after finish() throws.
class TraceStoreWriter {
 public:
  /// Creates `directory` (and parents) and opens the first shard. Throws
  /// std::invalid_argument on a degenerate shape (zero trials, zero shards,
  /// more shards than trials, node_count < 2) and std::runtime_error on I/O
  /// failure.
  TraceStoreWriter(std::string directory, std::size_t node_count,
                   std::uint64_t total_trials, std::uint32_t shard_count);
  ~TraceStoreWriter();

  TraceStoreWriter(const TraceStoreWriter&) = delete;
  TraceStoreWriter& operator=(const TraceStoreWriter&) = delete;

  const std::string& directory() const noexcept { return directory_; }

  /// Appends the next trial. Every interaction endpoint must be
  /// < node_count. Throws std::logic_error when more than `total_trials`
  /// trials are appended.
  void appendTrial(InteractionSequenceView trial);

  /// Seals the current shard and validates that exactly `total_trials`
  /// trials were appended (std::logic_error otherwise). Idempotent.
  void finish();

 private:
  void openShard(std::uint32_t index);
  void closeShard();
  void putByte(std::uint8_t byte);
  void putVarint(std::uint64_t value);
  void flushChunk();
  std::uint64_t trialsInShard(std::uint32_t index) const;

  std::string directory_;
  std::size_t node_count_;
  std::uint64_t total_trials_;
  std::uint32_t shard_count_;
  std::ofstream out_;
  std::vector<char> chunk_;
  std::uint32_t current_shard_ = 0;
  std::uint64_t trials_appended_ = 0;
  std::uint64_t trials_in_current_ = 0;
  std::uint64_t payload_bytes_ = 0;
  bool finished_ = false;
};

/// Streams one shard file: validates the header on open (magic, version,
/// checksum, and that the file size matches the declared payload — a short
/// file fails fast as "truncated"), then decodes trials sequentially
/// through a fixed-size block buffer. The whole shard is never resident.
class TraceShardReader {
 public:
  /// Opens and validates `path`. Throws std::runtime_error on a missing
  /// file, corrupt header, or truncated payload.
  explicit TraceShardReader(std::string path,
                            std::size_t block_bytes = kTraceBlockBytes);

  const TraceShardHeader& header() const noexcept { return header_; }
  const std::string& path() const noexcept { return path_; }

  /// Positions at the next trial (skipping any undecoded remainder of the
  /// current one). Returns false when every trial of the shard has been
  /// consumed. The global index of the trial just begun is
  /// header().base_trial + trialsBegun() - 1.
  bool beginTrial();

  /// Trials begun so far (== local index of the current trial + 1).
  std::uint64_t trialsBegun() const noexcept { return trials_begun_; }

  /// Interaction count of the current trial.
  std::uint64_t trialLength() const noexcept { return trial_length_; }

  /// Interactions of the current trial not yet decoded.
  std::uint64_t remainingInTrial() const noexcept {
    return trial_length_ - decoded_;
  }

  /// Decodes the next interaction of the current trial; std::nullopt at
  /// trial end. Throws std::runtime_error on a truncated or corrupt
  /// payload (out-of-range endpoint, varint overrun, unexpected EOF).
  std::optional<Interaction> next();

  /// Materializes the undecoded remainder of the current trial.
  InteractionSequence readRest();

  /// Decodes and discards the remainder of the current trial.
  void skipRest();

 private:
  [[noreturn]] void fail(const std::string& why) const;
  std::uint8_t takeByte();
  std::uint64_t takeVarint();
  Interaction decodeOne();

  std::string path_;
  std::ifstream in_;
  std::vector<char> block_;
  std::size_t block_pos_ = 0;
  std::size_t block_limit_ = 0;
  TraceShardHeader header_;
  std::uint64_t payload_left_ = 0;  // undelivered payload bytes (file-side)
  std::uint64_t trials_begun_ = 0;
  std::uint64_t trial_length_ = 0;
  std::uint64_t decoded_ = 0;
  NodeId prev_a_ = 0;
};

/// A validated handle on a sharded store directory: opens every shard
/// header once, checks cross-shard consistency (same node count and shard
/// count, shard indices and base trials contiguous), and hands out
/// per-shard readers. Copyable; holds no file descriptors.
class TraceStore {
 public:
  /// Opens the store at `directory`. Throws std::runtime_error when shards
  /// are missing, corrupt, or mutually inconsistent.
  static TraceStore open(const std::string& directory);

  const std::string& directory() const noexcept { return directory_; }
  std::size_t nodeCount() const noexcept { return node_count_; }
  std::uint64_t trialCount() const noexcept { return trial_count_; }
  std::size_t shardCount() const noexcept { return shards_.size(); }
  const std::vector<TraceShardHeader>& shardHeaders() const noexcept {
    return shards_;
  }

  std::string shardPath(std::size_t shard_index) const;
  TraceShardReader openShard(std::size_t shard_index) const;

 private:
  TraceStore() = default;

  std::string directory_;
  std::vector<TraceShardHeader> shards_;
  std::uint64_t trial_count_ = 0;
  std::size_t node_count_ = 0;
};

}  // namespace doda::dynagraph
