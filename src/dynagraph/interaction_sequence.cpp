#include "dynagraph/interaction_sequence.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>

namespace doda::dynagraph {

std::ostream& operator<<(std::ostream& os, const Interaction& i) {
  return os << '{' << i.a() << ',' << i.b() << '}';
}

const Interaction& InteractionSequence::at(Time t) const {
  if (t >= interactions_.size())
    throw std::out_of_range("InteractionSequence::at: time out of range");
  return interactions_[static_cast<std::size_t>(t)];
}

const Interaction& InteractionSequenceView::at(Time t) const {
  if (t >= size_)
    throw std::out_of_range("InteractionSequenceView::at: time out of range");
  return data_[static_cast<std::size_t>(t)];
}

void InteractionSequence::appendAll(const InteractionSequence& other) {
  // Self-append must read the pre-append contents; iterators into
  // interactions_ would be invalidated by the growth, so index instead.
  const std::size_t n = other.interactions_.size();
  interactions_.reserve(interactions_.size() + n);
  for (std::size_t i = 0; i < n; ++i)
    interactions_.push_back(other.interactions_[i]);
}

InteractionSequence InteractionSequence::slice(Time from, Time to) const {
  from = std::min<Time>(from, interactions_.size());
  to = std::clamp<Time>(to, from, interactions_.size());
  return InteractionSequence(std::vector<Interaction>(
      interactions_.begin() + static_cast<std::ptrdiff_t>(from),
      interactions_.begin() + static_cast<std::ptrdiff_t>(to)));
}

InteractionSequence InteractionSequence::reversed() const {
  std::vector<Interaction> rev(interactions_.rbegin(), interactions_.rend());
  return InteractionSequence(std::move(rev));
}

InteractionSequence InteractionSequence::repeated(std::size_t copies) const {
  InteractionSequence out;
  out.interactions_.reserve(interactions_.size() * copies);
  for (std::size_t i = 0; i < copies; ++i) out.appendAll(*this);
  return out;
}

graph::StaticGraph InteractionSequence::underlyingGraph(
    std::size_t node_count) const {
  graph::StaticGraph g(node_count);
  for (const auto& i : interactions_) g.addEdge(i.a(), i.b());
  return g;
}

std::size_t InteractionSequence::minNodeCount() const {
  std::size_t max_id = 0;
  bool any = false;
  for (const auto& i : interactions_) {
    // Consider both endpoints: Interaction normalizes a() < b() today, but
    // minNodeCount must not silently depend on that representation detail.
    max_id = std::max<std::size_t>(max_id, i.a());
    max_id = std::max<std::size_t>(max_id, i.b());
    any = true;
  }
  return any ? max_id + 1 : 0;
}

void InteractionSequence::ensureTimeline() const {
  for (; timeline_scanned_ < interactions_.size(); ++timeline_scanned_) {
    const Interaction& i = interactions_[timeline_scanned_];
    const auto needed =
        static_cast<std::size_t>(std::max(i.a(), i.b())) + 1;
    if (timeline_.size() < needed) timeline_.resize(needed);
    const Time t = timeline_scanned_;
    timeline_[i.a()].push_back(t);
    timeline_[i.b()].push_back(t);
  }
}

std::vector<Time> InteractionSequence::timesInvolving(NodeId u,
                                                      Time from) const {
  ensureTimeline();
  if (u >= timeline_.size()) return {};
  const auto& times = timeline_[u];
  const auto begin = std::lower_bound(times.begin(), times.end(), from);
  return std::vector<Time>(begin, times.end());
}

Time InteractionSequence::nextOccurrence(NodeId u, NodeId v, Time from) const {
  const Interaction target(u, v);
  ensureTimeline();
  if (u >= timeline_.size() || v >= timeline_.size()) return kNever;
  // Walk the sparser endpoint's timeline; each candidate is checked against
  // the actual interaction, so only times involving *both* nodes match.
  const auto& times = timeline_[u].size() <= timeline_[v].size()
                          ? timeline_[u]
                          : timeline_[v];
  for (auto it = std::lower_bound(times.begin(), times.end(), from);
       it != times.end(); ++it)
    if (interactions_[static_cast<std::size_t>(*it)] == target) return *it;
  return kNever;
}

}  // namespace doda::dynagraph
