#include "dynagraph/interaction_sequence.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>

namespace doda::dynagraph {

std::ostream& operator<<(std::ostream& os, const Interaction& i) {
  return os << '{' << i.a() << ',' << i.b() << '}';
}

const Interaction& InteractionSequence::at(Time t) const {
  if (t >= interactions_.size())
    throw std::out_of_range("InteractionSequence::at: time out of range");
  return interactions_[static_cast<std::size_t>(t)];
}

void InteractionSequence::appendAll(const InteractionSequence& other) {
  interactions_.insert(interactions_.end(), other.interactions_.begin(),
                       other.interactions_.end());
}

InteractionSequence InteractionSequence::slice(Time from, Time to) const {
  from = std::min<Time>(from, interactions_.size());
  to = std::clamp<Time>(to, from, interactions_.size());
  return InteractionSequence(std::vector<Interaction>(
      interactions_.begin() + static_cast<std::ptrdiff_t>(from),
      interactions_.begin() + static_cast<std::ptrdiff_t>(to)));
}

InteractionSequence InteractionSequence::reversed() const {
  std::vector<Interaction> rev(interactions_.rbegin(), interactions_.rend());
  return InteractionSequence(std::move(rev));
}

InteractionSequence InteractionSequence::repeated(std::size_t copies) const {
  InteractionSequence out;
  out.interactions_.reserve(interactions_.size() * copies);
  for (std::size_t i = 0; i < copies; ++i) out.appendAll(*this);
  return out;
}

graph::StaticGraph InteractionSequence::underlyingGraph(
    std::size_t node_count) const {
  graph::StaticGraph g(node_count);
  for (const auto& i : interactions_) g.addEdge(i.a(), i.b());
  return g;
}

std::size_t InteractionSequence::minNodeCount() const {
  std::size_t max_id = 0;
  bool any = false;
  for (const auto& i : interactions_) {
    max_id = std::max<std::size_t>(max_id, i.b());
    any = true;
  }
  return any ? max_id + 1 : 0;
}

std::vector<Time> InteractionSequence::timesInvolving(NodeId u,
                                                      Time from) const {
  std::vector<Time> out;
  for (Time t = from; t < interactions_.size(); ++t)
    if (interactions_[static_cast<std::size_t>(t)].involves(u))
      out.push_back(t);
  return out;
}

Time InteractionSequence::nextOccurrence(NodeId u, NodeId v, Time from) const {
  const Interaction target(u, v);
  for (Time t = from; t < interactions_.size(); ++t)
    if (interactions_[static_cast<std::size_t>(t)] == target) return t;
  return kNever;
}

}  // namespace doda::dynagraph
