#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "dynagraph/interaction_sequence.hpp"
#include "dynagraph/trace_io.hpp"

namespace doda::dynagraph {

// ---------------------------------------------------------------------------
// External contact-trace ingestion: converts real-world contact event lists
// (the common interchange shape of SocioPatterns / CRAWDAD-style datasets)
// into sharded binary trace stores so recorded replay gains real workloads
// next to the synthetic generators.
//
// Accepted input, one event per line:
//
//   <t> <u> <v> [extra columns ignored]     timestamped contact
//   <u> <v>                                 untimed contact (file order)
//
// Fields are separated by any run of spaces, tabs, commas or semicolons.
// Lines starting with '#' or '%' are comments; a leading non-numeric
// header line is skipped. All rows of a file must agree on whether they
// carry a timestamp. Node ids are arbitrary unsigned integers and are
// densely renumbered (sorted external id -> dense id); timestamped events
// are stably sorted by time, so simultaneous contacts keep file order.
// ---------------------------------------------------------------------------

/// Options of the external contact-trace importer.
struct ContactImportOptions {
  /// Skip events whose endpoints coincide (real datasets contain them);
  /// when false such an event is a hard error.
  bool skip_self_loops = true;
  /// Split the time-ordered event list into this many near-equal
  /// consecutive trials (replay's unit of measurement). Clamped to the
  /// event count.
  std::size_t trials = 1;
  /// Stop after this many imported events (0 = no cap) — lets a smoke job
  /// ingest the head of a huge dataset.
  std::uint64_t max_events = 0;
};

struct ContactImportStats {
  std::uint64_t lines = 0;       ///< input lines consumed
  std::uint64_t events = 0;      ///< imported interactions
  std::uint64_t self_loops = 0;  ///< skipped self-loop events
  std::uint64_t skipped = 0;     ///< comment / blank / header lines
  std::size_t node_count = 0;    ///< dense ids assigned
  bool timestamped = false;      ///< rows carried a time column
  double t_min = 0.0;            ///< earliest timestamp (when timestamped)
  double t_max = 0.0;            ///< latest timestamp (when timestamped)
};

/// A parsed external contact trace: densely renumbered events in time
/// order plus the mapping back to the original ids.
struct ContactTrace {
  std::vector<Interaction> events;
  /// dense id -> external id (sorted ascending).
  std::vector<std::uint64_t> external_ids;
  ContactImportStats stats;
};

/// Parses an event list. Throws std::runtime_error with a line number on
/// malformed input (non-numeric field, inconsistent column count, fewer
/// than two distinct nodes, no events).
ContactTrace readContactEvents(std::istream& is,
                               const ContactImportOptions& options = {});

/// Reads from a file. Throws std::runtime_error on open failure or
/// malformed content.
ContactTrace loadContactEvents(const std::string& path,
                               const ContactImportOptions& options = {});

/// Converts the event list at `input_path` into a sharded binary store
/// under `directory` (options.trials consecutive segments, shard_count
/// clamped to the trial count), written in the format `writer_options`
/// selects. Returns the import statistics.
///
/// The ingest is a streaming two-pass: pass 1 scans the file once to size
/// the store (event count, dense id universe, time order), pass 2 streams
/// events straight into the shard writer — memory stays O(distinct nodes)
/// no matter how large the dataset, and max_events stops both passes
/// without materializing anything. Only a timestamped file whose rows are
/// *out of time order* falls back to the materialized stable-sort path
/// (the sort needs the whole list); time-sorted files — the common
/// interchange shape — always stream.
ContactImportStats importContactTrace(
    const std::string& input_path, const std::string& directory,
    std::uint32_t shard_count, const ContactImportOptions& options = {},
    const TraceWriterOptions& writer_options = {});

}  // namespace doda::dynagraph
