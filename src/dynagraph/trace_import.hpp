#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "dynagraph/interaction_sequence.hpp"
#include "dynagraph/trace_io.hpp"

namespace doda::dynagraph {

// ---------------------------------------------------------------------------
// External contact-trace ingestion: converts real-world contact event lists
// (the common interchange shape of SocioPatterns / CRAWDAD-style datasets)
// into sharded binary trace stores so recorded replay gains real workloads
// next to the synthetic generators.
//
// Accepted input, one event per line:
//
//   <t> <u> <v> [extra columns ignored]     timestamped contact
//   <u> <v>                                 untimed contact (file order)
//
// Fields are separated by any run of spaces, tabs, commas or semicolons.
// Lines starting with '#' or '%' are comments; a leading non-numeric
// header line is skipped. All rows of a file must agree on whether they
// carry a timestamp. Node ids are arbitrary unsigned integers and are
// densely renumbered (sorted external id -> dense id); timestamped events
// are stably sorted by time, so simultaneous contacts keep file order.
// ---------------------------------------------------------------------------

/// Options of the external contact-trace importer.
struct ContactImportOptions {
  /// Skip events whose endpoints coincide (real datasets contain them);
  /// when false such an event is a hard error.
  bool skip_self_loops = true;
  /// Split the time-ordered event list into this many near-equal
  /// consecutive trials (replay's unit of measurement). Clamped to the
  /// event count.
  std::size_t trials = 1;
  /// Stop after this many imported events (0 = no cap) — lets a smoke job
  /// ingest the head of a huge dataset.
  std::uint64_t max_events = 0;
};

struct ContactImportStats {
  std::uint64_t lines = 0;       ///< input lines consumed
  std::uint64_t events = 0;      ///< imported interactions
  std::uint64_t self_loops = 0;  ///< skipped self-loop events
  std::uint64_t skipped = 0;     ///< comment / blank / header lines
  std::size_t node_count = 0;    ///< dense ids assigned
  bool timestamped = false;      ///< rows carried a time column
  double t_min = 0.0;            ///< earliest timestamp (when timestamped)
  double t_max = 0.0;            ///< latest timestamp (when timestamped)
};

/// A parsed external contact trace: densely renumbered events in time
/// order plus the mapping back to the original ids.
struct ContactTrace {
  std::vector<Interaction> events;
  /// dense id -> external id (sorted ascending).
  std::vector<std::uint64_t> external_ids;
  ContactImportStats stats;
};

/// Parses an event list. Throws std::runtime_error with a line number on
/// malformed input (non-numeric field, inconsistent column count, fewer
/// than two distinct nodes, no events).
ContactTrace readContactEvents(std::istream& is,
                               const ContactImportOptions& options = {});

/// Reads from a file. Throws std::runtime_error on open failure or
/// malformed content.
ContactTrace loadContactEvents(const std::string& path,
                               const ContactImportOptions& options = {});

/// Converts the event list at `input_path` into a sharded binary store
/// under `directory` (options.trials consecutive segments, shard_count
/// clamped to the trial count), written in the format `writer_options`
/// selects. Returns the import statistics.
///
/// The ingest is a streaming two-pass: pass 1 scans the file once to size
/// the store (event count, dense id universe, time order), pass 2 streams
/// events straight into the shard writer — memory stays O(distinct nodes)
/// no matter how large the dataset, and max_events stops both passes
/// without materializing anything. Only a timestamped file whose rows are
/// *out of time order* falls back to the materialized stable-sort path
/// (the sort needs the whole list); time-sorted files — the common
/// interchange shape — always stream.
ContactImportStats importContactTrace(
    const std::string& input_path, const std::string& directory,
    std::uint32_t shard_count, const ContactImportOptions& options = {},
    const TraceWriterOptions& writer_options = {});

// ---------------------------------------------------------------------------
// Incremental append: re-importing a *grown* event log (the previously
// imported events plus new ones at the tail) ingests only the tail. The
// store side persists the dense-id map and a running event-stream hash
// (the durable store's manifest carries both); the import side verifies
// the grown log still begins with the imported prefix and plans the dense
// ids of the new events. Requires a time-ordered log — an out-of-order
// file would be re-sorted across the already-committed boundary.
// ---------------------------------------------------------------------------

/// Seed of the running import event hash (FNV-1a offset basis). A store
/// with no imported events carries this value.
inline constexpr std::uint64_t kContactEventHashSeed = 0xcbf29ce484222325ULL;

/// What a previous import committed: the dense-id map (dense id ->
/// external id, in assignment order) and the imported event stream's
/// length and running hash.
struct ContactAppendBase {
  std::vector<std::uint64_t> external_ids;
  std::uint64_t events = 0;
  std::uint64_t event_hash = kContactEventHashSeed;
};

/// A planned incremental append. With an empty base this is a plan for a
/// full from-scratch import (external_ids then sorted ascending, exactly
/// like importContactTrace).
struct ContactAppendPlan {
  std::uint64_t base_events = 0;  ///< events already in the store
  std::uint64_t new_events = 0;   ///< events to append
  /// Running hash over the whole (grown) event stream.
  std::uint64_t event_hash = kContactEventHashSeed;
  /// Updated dense-id map: the base map unchanged, new external ids
  /// appended in sorted order — committed dense ids never move.
  std::vector<std::uint64_t> external_ids;
  ContactImportStats stats;

  /// Trial count the append will write under `options` (options.trials
  /// clamped to the new-event count) — the shape streamContactAppend's
  /// writer must be constructed with.
  std::uint64_t appendTrials(const ContactImportOptions& options) const {
    const std::uint64_t trials = options.trials == 0 ? 1 : options.trials;
    return new_events == 0 ? 0 : trials < new_events ? trials : new_events;
  }
};

/// Scans the log at `path` once and plans the append on top of `base`.
/// Throws std::runtime_error when the log shrank below base.events, when
/// its first base.events events no longer hash to base.event_hash (the
/// log is not an extension of what was imported), or when a timestamped
/// log is out of time order. `options` must match the original import's
/// (self-loop filtering changes which events the hash covers).
ContactAppendPlan planContactAppend(const std::string& path,
                                    const ContactAppendBase& base,
                                    const ContactImportOptions& options = {});

/// Re-scans `path`, skips the first plan.base_events events, and streams
/// the plan.new_events new ones into `writer` as plan.appendTrials(options)
/// near-equal consecutive trials — the writer must have been constructed
/// with exactly that trial count and plan.external_ids.size() nodes.
/// Returns the scan statistics (whole file).
ContactImportStats streamContactAppend(TraceStoreWriter& writer,
                                       const std::string& path,
                                       const ContactAppendPlan& plan,
                                       const ContactImportOptions& options = {});

}  // namespace doda::dynagraph
