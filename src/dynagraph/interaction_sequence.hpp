#pragma once

#include <initializer_list>
#include <span>
#include <vector>

#include "dynagraph/interaction.hpp"
#include "graph/static_graph.hpp"

namespace doda::dynagraph {

/// A finite prefix of a dynamic graph: the sequence (I_0, I_1, ..., I_{T-1}).
///
/// The index of an interaction is its time of occurrence (paper §2). This is
/// the oblivious-adversary object: the whole execution is fixed up front.
///
/// Per-node queries (timesInvolving, nextOccurrence) are served from a
/// lazily built inverted timeline (node -> ascending involvement times), so
/// repeated queries cost O(log T + answer) instead of rescanning the whole
/// sequence. The timeline extends incrementally on append and is built on
/// first query; building it mutates cache members, so concurrent *first*
/// queries from multiple threads on a shared sequence are not safe. Analysis
/// passes that share one sequence across threads must call buildTimelines()
/// up front — once the timeline covers the whole sequence, the per-node
/// queries are pure reads and safe to issue concurrently (as long as no
/// thread appends).
class InteractionSequence {
 public:
  InteractionSequence() = default;
  explicit InteractionSequence(std::vector<Interaction> interactions)
      : interactions_(std::move(interactions)) {}
  InteractionSequence(std::initializer_list<Interaction> interactions)
      : interactions_(interactions) {}

  Time length() const noexcept { return interactions_.size(); }
  bool empty() const noexcept { return interactions_.empty(); }

  const Interaction& at(Time t) const;
  void append(Interaction i) { interactions_.push_back(i); }
  void appendAll(const InteractionSequence& other);
  /// Bulk append of a generated block (the batched-generation entry point:
  /// chunk producers fill a scratch buffer, the sequence absorbs it in one
  /// reserve + copy instead of per-interaction appends).
  void appendSpan(std::span<const Interaction> block) {
    interactions_.insert(interactions_.end(), block.begin(), block.end());
  }

  const std::vector<Interaction>& interactions() const noexcept {
    return interactions_;
  }

  /// Subsequence [from, to) as a new sequence. Clamps to bounds.
  InteractionSequence slice(Time from, Time to) const;

  /// Time-reversed copy. Reversal turns a convergecast into a broadcast and
  /// vice versa (used by the offline-optimal computation, paper Thm 8).
  InteractionSequence reversed() const;

  /// Concatenation of `copies` copies of this sequence.
  InteractionSequence repeated(std::size_t copies) const;

  /// The underlying graph G̅ = (V, E) with E = { {u,v} | ∃t, I_t = {u,v} }
  /// (paper §3.2). `node_count` fixes |V| (ids beyond the max seen are
  /// isolated). Throws if an interaction references a node >= node_count.
  graph::StaticGraph underlyingGraph(std::size_t node_count) const;

  /// Largest node id appearing in the sequence plus one (0 when empty).
  std::size_t minNodeCount() const;

  /// Times t in [from, length) with I_t involving `u`, ascending.
  std::vector<Time> timesInvolving(NodeId u, Time from = 0) const;

  /// First time t >= from with I_t = {u, v}; kNever if none.
  Time nextOccurrence(NodeId u, NodeId v, Time from = 0) const;

  /// Eagerly builds the inverted timeline over the whole sequence. Call
  /// this before handing one sequence to several threads: afterwards the
  /// per-node queries above no longer mutate cache state and are safe to
  /// run concurrently (until the next append).
  void buildTimelines() const { ensureTimeline(); }

  /// Two sequences are equal iff their interactions are equal (the cached
  /// inverted timeline is derived state and never observable).
  friend bool operator==(const InteractionSequence& lhs,
                         const InteractionSequence& rhs) {
    return lhs.interactions_ == rhs.interactions_;
  }

 private:
  /// Extends the inverted timeline to cover every appended interaction.
  void ensureTimeline() const;

  std::vector<Interaction> interactions_;
  // Lazily built inverted timeline: for each node, the ascending times of
  // the interactions involving it. `timeline_scanned_` is how much of
  // `interactions_` has been folded in (appends only grow the sequence, so
  // the timeline extends incrementally and is never invalidated).
  mutable std::vector<std::vector<Time>> timeline_;
  mutable std::size_t timeline_scanned_ = 0;
};

/// Non-owning, trivially copyable window onto a run of interactions — the
/// streamed counterpart of InteractionSequence. The engine-facing consumers
/// (schedule validation, replay adversaries) take this view so a trial can
/// be served from a memory-mapped / block-read trace shard or a borrowed
/// sequence without copying into an owned vector. The viewed storage must
/// outlive the view (and must not be appended to while viewed: vector
/// growth relocates the buffer).
class InteractionSequenceView {
 public:
  constexpr InteractionSequenceView() = default;
  constexpr InteractionSequenceView(const Interaction* data,
                                    std::size_t size) noexcept
      : data_(data), size_(size) {}
  /// Implicit on purpose: every API taking a view keeps accepting an
  /// InteractionSequence unchanged.
  InteractionSequenceView(const InteractionSequence& sequence) noexcept
      : data_(sequence.interactions().data()),
        size_(sequence.interactions().size()) {}

  Time length() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// Bounds-checked access, mirroring InteractionSequence::at.
  const Interaction& at(Time t) const;

  const Interaction* begin() const noexcept { return data_; }
  const Interaction* end() const noexcept { return data_ + size_; }

  /// Owned copy (for callers that need to outlive the backing storage).
  InteractionSequence materialize() const {
    return InteractionSequence(std::vector<Interaction>(begin(), end()));
  }

 private:
  const Interaction* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace doda::dynagraph
