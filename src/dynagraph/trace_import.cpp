#include "dynagraph/trace_import.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

namespace doda::dynagraph {

namespace {

bool isSeparator(char c) {
  return c == ' ' || c == '\t' || c == ',' || c == ';';
}

/// Splits `line` into fields at runs of separators.
void splitFields(std::string_view line, std::vector<std::string_view>& out) {
  out.clear();
  std::size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && isSeparator(line[pos])) ++pos;
    const std::size_t start = pos;
    while (pos < line.size() && !isSeparator(line[pos])) ++pos;
    if (pos > start) out.push_back(line.substr(start, pos - start));
  }
}

bool parseU64(std::string_view field, std::uint64_t& value) {
  const char* begin = field.data();
  const char* end = begin + field.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  return ec == std::errc() && ptr == end;
}

bool parseDouble(std::string_view field, double& value) {
  const char* begin = field.data();
  const char* end = begin + field.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  // Non-finite timestamps ("nan"/"inf" parse successfully) would break
  // the sort's strict weak ordering — reject them as malformed.
  return ec == std::errc() && ptr == end && std::isfinite(value);
}

/// One accepted event, in file order.
struct ScannedEvent {
  double time = 0.0;
  std::uint64_t u = 0;
  std::uint64_t v = 0;
};

/// Incremental contact-event scanner — the single parsing engine behind
/// both the materialized reader and the streaming two-pass importer. Each
/// next() yields one accepted event (self-loops skipped or rejected per
/// the options, max_events honored) without retaining anything beyond the
/// current line, so a scan is O(1) memory in the event count.
class ContactEventScanner {
 public:
  ContactEventScanner(std::istream& is, const ContactImportOptions& options)
      : is_(is), options_(options) {}

  /// Advances to the next accepted event. Returns false at EOF or once
  /// max_events have been yielded. Throws std::runtime_error with a line
  /// number on malformed input.
  bool next(ScannedEvent& event) {
    if (options_.max_events != 0 && stats_.events >= options_.max_events)
      return false;
    while (std::getline(is_, line_)) {
      ++line_no_;
      ++stats_.lines;
      if (!line_.empty() && line_.back() == '\r') line_.pop_back();
      splitFields(line_, fields_);
      if (fields_.empty() || fields_[0].front() == '#' ||
          fields_[0].front() == '%') {
        ++stats_.skipped;
        continue;
      }
      const int shape =
          fields_.size() >= 3 ? 3 : static_cast<int>(fields_.size());
      event = ScannedEvent{};
      bool numeric;
      if (shape >= 3) {
        numeric = parseDouble(fields_[0], event.time) &&
                  parseU64(fields_[1], event.u) &&
                  parseU64(fields_[2], event.v);
      } else {
        numeric = fields_.size() == 2 && parseU64(fields_[0], event.u) &&
                  parseU64(fields_[1], event.v);
      }
      if (!numeric) {
        // A single leading non-numeric row is a column header; anything
        // after the first event row is malformed data.
        if (!saw_event_row_) {
          ++stats_.skipped;
          continue;
        }
        fail("expected numeric fields ('t u v' or 'u v'): '" + line_ + "'");
      }
      if (column_shape_ == 0) {
        column_shape_ = shape;
      } else if (column_shape_ != shape) {
        fail(
            "inconsistent column count (file mixes 't u v' and 'u v' rows)");
      }
      saw_event_row_ = true;
      if (event.u == event.v) {
        if (!options_.skip_self_loops) fail("self-loop event");
        ++stats_.self_loops;
        continue;
      }
      ++stats_.events;
      if (timestamped()) {
        if (stats_.events == 1) {
          stats_.t_min = stats_.t_max = event.time;
        } else {
          stats_.t_min = std::min(stats_.t_min, event.time);
          stats_.t_max = std::max(stats_.t_max, event.time);
        }
        time_ordered_ = time_ordered_ && event.time >= prev_time_;
        prev_time_ = event.time;
      }
      return true;
    }
    return false;
  }

  bool timestamped() const noexcept { return column_shape_ == 3; }
  /// Whether every timestamp seen so far was non-decreasing (vacuously
  /// true for untimed files).
  bool timeOrdered() const noexcept { return time_ordered_; }
  /// Scan-side statistics (node_count is filled by the caller, which owns
  /// the id universe).
  const ContactImportStats& stats() const noexcept { return stats_; }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("readContactEvents: line " +
                             std::to_string(line_no_) + ": " + why);
  }

  std::istream& is_;
  const ContactImportOptions& options_;
  ContactImportStats stats_;
  std::string line_;
  std::vector<std::string_view> fields_;
  std::size_t line_no_ = 0;
  int column_shape_ = 0;  // 0 = undecided, 2 = "u v", 3 = "t u v"
  bool saw_event_row_ = false;
  bool time_ordered_ = true;
  double prev_time_ = -std::numeric_limits<double>::infinity();
};

struct RawEvent {
  double time;
  std::uint64_t u;
  std::uint64_t v;
  std::uint64_t order;  // file order, the stable-sort tiebreak
};

/// One FNV-1a step of the running import event hash, over the event's
/// (time bits, u, v) as little-endian u64s. Untimed events hash time 0.0,
/// so the hash is well-defined for both column shapes.
std::uint64_t hashContactEvent(std::uint64_t hash, const ScannedEvent& event) {
  unsigned char buf[24];
  std::uint64_t time_bits;
  static_assert(sizeof(time_bits) == sizeof(event.time));
  std::memcpy(&time_bits, &event.time, sizeof(time_bits));
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<unsigned char>((time_bits >> (8 * i)) & 0xff);
    buf[8 + i] = static_cast<unsigned char>((event.u >> (8 * i)) & 0xff);
    buf[16 + i] = static_cast<unsigned char>((event.v >> (8 * i)) & 0xff);
  }
  for (const unsigned char byte : buf) {
    hash ^= byte;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace

ContactTrace readContactEvents(std::istream& is,
                               const ContactImportOptions& options) {
  ContactTrace trace;
  ContactEventScanner scanner(is, options);
  std::vector<RawEvent> raw;
  ScannedEvent event;
  while (scanner.next(event))
    raw.push_back({event.time, event.u, event.v,
                   static_cast<std::uint64_t>(raw.size())});
  trace.stats = scanner.stats();

  if (raw.empty())
    throw std::runtime_error("readContactEvents: no events in input");
  trace.stats.timestamped = scanner.timestamped();
  if (trace.stats.timestamped) {
    // Stability via the explicit file-order tiebreak (equal timestamps
    // keep file order) — plain sort, no temporary buffer.
    std::sort(raw.begin(), raw.end(),
              [](const RawEvent& a, const RawEvent& b) {
                return a.time < b.time ||
                       (a.time == b.time && a.order < b.order);
              });
  }

  // Dense renumbering: sorted external ids -> [0, n).
  trace.external_ids.reserve(raw.size() * 2);
  for (const RawEvent& e : raw) {
    trace.external_ids.push_back(e.u);
    trace.external_ids.push_back(e.v);
  }
  std::sort(trace.external_ids.begin(), trace.external_ids.end());
  trace.external_ids.erase(
      std::unique(trace.external_ids.begin(), trace.external_ids.end()),
      trace.external_ids.end());
  trace.external_ids.shrink_to_fit();
  std::unordered_map<std::uint64_t, NodeId> dense;
  dense.reserve(trace.external_ids.size());
  for (std::size_t i = 0; i < trace.external_ids.size(); ++i)
    dense.emplace(trace.external_ids[i], static_cast<NodeId>(i));

  trace.events.reserve(raw.size());
  for (const RawEvent& e : raw)
    trace.events.emplace_back(dense.at(e.u), dense.at(e.v));
  trace.stats.events = trace.events.size();
  trace.stats.node_count = trace.external_ids.size();
  return trace;
}

ContactTrace loadContactEvents(const std::string& path,
                               const ContactImportOptions& options) {
  std::ifstream in(path);
  if (!in)
    throw std::runtime_error("loadContactEvents: cannot open " + path);
  return readContactEvents(in, options);
}

ContactImportStats importContactTrace(const std::string& input_path,
                                      const std::string& directory,
                                      std::uint32_t shard_count,
                                      const ContactImportOptions& options,
                                      const TraceWriterOptions& writer_options) {
  // Pass 1: one streaming scan to size the store — event count, dense id
  // universe, time order. Memory is O(distinct nodes), never O(events),
  // and max_events stops the scan without materializing anything.
  std::uint64_t events = 0;
  bool timestamped = false;
  bool time_ordered = true;
  ContactImportStats stats;
  std::unordered_set<std::uint64_t> id_set;
  {
    std::ifstream in(input_path);
    if (!in)
      throw std::runtime_error("importContactTrace: cannot open " +
                               input_path);
    ContactEventScanner scanner(in, options);
    ScannedEvent event;
    while (scanner.next(event)) {
      id_set.insert(event.u);
      id_set.insert(event.v);
      ++events;
    }
    stats = scanner.stats();
    timestamped = scanner.timestamped();
    time_ordered = scanner.timeOrdered();
  }
  if (events == 0)
    throw std::runtime_error("readContactEvents: no events in input");
  stats.timestamped = timestamped;
  stats.node_count = id_set.size();

  std::vector<std::uint64_t> external(id_set.begin(), id_set.end());
  std::sort(external.begin(), external.end());
  std::unordered_map<std::uint64_t, NodeId> dense;
  dense.reserve(external.size());
  for (std::size_t i = 0; i < external.size(); ++i)
    dense.emplace(external[i], static_cast<NodeId>(i));

  // Near-equal contiguous split into trials (the first `events % trials`
  // trials take one extra event), mirroring the writer's shard split.
  std::uint64_t trials = options.trials == 0 ? 1 : options.trials;
  trials = std::min<std::uint64_t>(trials, events);
  if (shard_count == 0) shard_count = 1;
  shard_count =
      std::min<std::uint32_t>(shard_count, static_cast<std::uint32_t>(trials));

  TraceStoreWriter writer(directory, stats.node_count, trials, shard_count,
                          writer_options);
  const std::uint64_t base = events / trials;
  const std::uint64_t extra = events % trials;

  if (!timestamped || time_ordered) {
    // Pass 2: re-scan and stream events straight into the writer through
    // the incremental trial API — bounded memory for arbitrarily large
    // datasets. (A non-decreasing file is already in its stable-sorted
    // order, so streaming preserves the materialized path's output.)
    std::ifstream in(input_path);
    if (!in)
      throw std::runtime_error("importContactTrace: cannot reopen " +
                               input_path);
    ContactEventScanner scanner(in, options);
    ScannedEvent event;
    for (std::uint64_t trial = 0; trial < trials; ++trial) {
      const std::uint64_t length = base + (trial < extra ? 1 : 0);
      writer.beginTrial(length);
      for (std::uint64_t k = 0; k < length; ++k) {
        if (!scanner.next(event))
          throw std::runtime_error(
              "importContactTrace: input shrank between passes: " +
              input_path);
        writer.addInteraction(
            Interaction(dense.at(event.u), dense.at(event.v)));
      }
    }
  } else {
    // Out-of-order timestamps need the stable sort, which needs the whole
    // event list — fall back to the materialized path for such files.
    const ContactTrace trace = loadContactEvents(input_path, options);
    // Same shrink guard as the streaming branch: the trial lengths below
    // were sized from the pass-1 count, so a file that changed underneath
    // us must not walk past the re-read event list.
    if (trace.events.size() != events)
      throw std::runtime_error(
          "importContactTrace: input changed between passes: " + input_path);
    std::uint64_t offset = 0;
    for (std::uint64_t trial = 0; trial < trials; ++trial) {
      const std::uint64_t length = base + (trial < extra ? 1 : 0);
      writer.appendTrial(InteractionSequenceView(
          trace.events.data() + offset, static_cast<std::size_t>(length)));
      offset += length;
    }
  }
  writer.finish();
  return stats;
}

ContactAppendPlan planContactAppend(const std::string& path,
                                    const ContactAppendBase& base,
                                    const ContactImportOptions& options) {
  std::ifstream in(path);
  if (!in)
    throw std::runtime_error("planContactAppend: cannot open " + path);
  ContactEventScanner scanner(in, options);
  std::unordered_set<std::uint64_t> known(base.external_ids.begin(),
                                          base.external_ids.end());
  std::unordered_set<std::uint64_t> fresh;
  ContactAppendPlan plan;
  plan.base_events = base.events;
  std::uint64_t count = 0;
  std::uint64_t hash = kContactEventHashSeed;
  std::uint64_t hash_at_base = base.events == 0 ? hash : 0;
  ScannedEvent event;
  while (scanner.next(event)) {
    hash = hashContactEvent(hash, event);
    ++count;
    if (count == base.events) {
      hash_at_base = hash;
    } else if (count > base.events) {
      if (known.find(event.u) == known.end()) fresh.insert(event.u);
      if (known.find(event.v) == known.end()) fresh.insert(event.v);
    }
  }
  if (count < base.events)
    throw std::runtime_error("planContactAppend: " + path + ": log shrank (" +
                             std::to_string(count) + " events, store has " +
                             std::to_string(base.events) + ")");
  if (base.events > 0 && hash_at_base != base.event_hash)
    throw std::runtime_error(
        "planContactAppend: " + path +
        ": log is not an extension of the imported prefix (first " +
        std::to_string(base.events) + " events changed)");
  if (scanner.timestamped() && !scanner.timeOrdered())
    throw std::runtime_error(
        "planContactAppend: " + path +
        ": incremental append requires a time-ordered log (out-of-order "
        "events would re-sort across the committed boundary)");
  plan.new_events = count - base.events;
  plan.event_hash = hash;
  plan.external_ids = base.external_ids;
  std::vector<std::uint64_t> added(fresh.begin(), fresh.end());
  std::sort(added.begin(), added.end());
  plan.external_ids.insert(plan.external_ids.end(), added.begin(),
                           added.end());
  plan.stats = scanner.stats();
  plan.stats.timestamped = scanner.timestamped();
  plan.stats.node_count = plan.external_ids.size();
  return plan;
}

ContactImportStats streamContactAppend(TraceStoreWriter& writer,
                                       const std::string& path,
                                       const ContactAppendPlan& plan,
                                       const ContactImportOptions& options) {
  if (plan.new_events == 0)
    throw std::invalid_argument("streamContactAppend: nothing to append");
  std::unordered_map<std::uint64_t, NodeId> dense;
  dense.reserve(plan.external_ids.size());
  for (std::size_t i = 0; i < plan.external_ids.size(); ++i)
    dense.emplace(plan.external_ids[i], static_cast<NodeId>(i));

  std::ifstream in(path);
  if (!in)
    throw std::runtime_error("streamContactAppend: cannot reopen " + path);
  ContactEventScanner scanner(in, options);
  ScannedEvent event;
  const auto shrank = [&]() -> std::runtime_error {
    return std::runtime_error(
        "streamContactAppend: input shrank between passes: " + path);
  };
  for (std::uint64_t k = 0; k < plan.base_events; ++k)
    if (!scanner.next(event)) throw shrank();

  const std::uint64_t trials = plan.appendTrials(options);
  const std::uint64_t base = plan.new_events / trials;
  const std::uint64_t extra = plan.new_events % trials;
  for (std::uint64_t trial = 0; trial < trials; ++trial) {
    const std::uint64_t length = base + (trial < extra ? 1 : 0);
    writer.beginTrial(length);
    for (std::uint64_t k = 0; k < length; ++k) {
      if (!scanner.next(event)) throw shrank();
      writer.addInteraction(Interaction(dense.at(event.u), dense.at(event.v)));
    }
  }
  ContactImportStats stats = scanner.stats();
  stats.timestamped = scanner.timestamped();
  stats.node_count = plan.external_ids.size();
  return stats;
}

}  // namespace doda::dynagraph
