#include "dynagraph/trace_import.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <fstream>
#include <numeric>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>

namespace doda::dynagraph {

namespace {

bool isSeparator(char c) {
  return c == ' ' || c == '\t' || c == ',' || c == ';';
}

/// Splits `line` into fields at runs of separators.
void splitFields(std::string_view line, std::vector<std::string_view>& out) {
  out.clear();
  std::size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && isSeparator(line[pos])) ++pos;
    const std::size_t start = pos;
    while (pos < line.size() && !isSeparator(line[pos])) ++pos;
    if (pos > start) out.push_back(line.substr(start, pos - start));
  }
}

bool parseU64(std::string_view field, std::uint64_t& value) {
  const char* begin = field.data();
  const char* end = begin + field.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  return ec == std::errc() && ptr == end;
}

bool parseDouble(std::string_view field, double& value) {
  const char* begin = field.data();
  const char* end = begin + field.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  // Non-finite timestamps ("nan"/"inf" parse successfully) would break
  // the sort's strict weak ordering — reject them as malformed.
  return ec == std::errc() && ptr == end && std::isfinite(value);
}

struct RawEvent {
  double time;
  std::uint64_t u;
  std::uint64_t v;
  std::uint64_t order;  // file order, the stable-sort tiebreak
};

}  // namespace

ContactTrace readContactEvents(std::istream& is,
                               const ContactImportOptions& options) {
  ContactTrace trace;
  ContactImportStats& stats = trace.stats;
  std::vector<RawEvent> raw;
  std::vector<std::string_view> fields;
  std::string line;
  std::size_t line_no = 0;
  bool saw_event_row = false;
  int column_shape = 0;  // 0 = undecided, 2 = "u v", 3 = "t u v"
  auto fail = [&](const std::string& why) {
    throw std::runtime_error("readContactEvents: line " +
                             std::to_string(line_no) + ": " + why);
  };

  while (std::getline(is, line)) {
    ++line_no;
    ++stats.lines;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    splitFields(line, fields);
    if (fields.empty() || fields[0].front() == '#' ||
        fields[0].front() == '%') {
      ++stats.skipped;
      continue;
    }
    if (options.max_events != 0 && raw.size() >= options.max_events) break;

    const int shape = fields.size() >= 3 ? 3 : static_cast<int>(fields.size());
    RawEvent event{0.0, 0, 0, static_cast<std::uint64_t>(raw.size())};
    bool numeric;
    if (shape >= 3) {
      numeric = parseDouble(fields[0], event.time) &&
                parseU64(fields[1], event.u) && parseU64(fields[2], event.v);
    } else {
      numeric = fields.size() == 2 && parseU64(fields[0], event.u) &&
                parseU64(fields[1], event.v);
    }
    if (!numeric) {
      // A single leading non-numeric row is a column header; anything
      // after the first event row is malformed data.
      if (!saw_event_row) {
        ++stats.skipped;
        continue;
      }
      fail("expected numeric fields ('t u v' or 'u v'): '" + line + "'");
    }
    if (column_shape == 0) {
      column_shape = shape;
    } else if (column_shape != shape) {
      fail("inconsistent column count (file mixes 't u v' and 'u v' rows)");
    }
    saw_event_row = true;
    if (event.u == event.v) {
      if (!options.skip_self_loops) fail("self-loop event");
      ++stats.self_loops;
      continue;
    }
    raw.push_back(event);
  }

  if (raw.empty())
    throw std::runtime_error("readContactEvents: no events in input");
  stats.timestamped = column_shape == 3;
  if (stats.timestamped) {
    // Stability via the explicit file-order tiebreak (equal timestamps
    // keep file order) — plain sort, no temporary buffer.
    std::sort(raw.begin(), raw.end(),
              [](const RawEvent& a, const RawEvent& b) {
                return a.time < b.time ||
                       (a.time == b.time && a.order < b.order);
              });
    stats.t_min = raw.front().time;
    stats.t_max = raw.back().time;
  }

  // Dense renumbering: sorted external ids -> [0, n).
  trace.external_ids.reserve(raw.size() * 2);
  for (const RawEvent& event : raw) {
    trace.external_ids.push_back(event.u);
    trace.external_ids.push_back(event.v);
  }
  std::sort(trace.external_ids.begin(), trace.external_ids.end());
  trace.external_ids.erase(
      std::unique(trace.external_ids.begin(), trace.external_ids.end()),
      trace.external_ids.end());
  trace.external_ids.shrink_to_fit();
  std::unordered_map<std::uint64_t, NodeId> dense;
  dense.reserve(trace.external_ids.size());
  for (std::size_t i = 0; i < trace.external_ids.size(); ++i)
    dense.emplace(trace.external_ids[i], static_cast<NodeId>(i));

  trace.events.reserve(raw.size());
  for (const RawEvent& event : raw)
    trace.events.emplace_back(dense.at(event.u), dense.at(event.v));
  stats.events = trace.events.size();
  stats.node_count = trace.external_ids.size();
  return trace;
}

ContactTrace loadContactEvents(const std::string& path,
                               const ContactImportOptions& options) {
  std::ifstream in(path);
  if (!in)
    throw std::runtime_error("loadContactEvents: cannot open " + path);
  return readContactEvents(in, options);
}

ContactImportStats importContactTrace(const std::string& input_path,
                                      const std::string& directory,
                                      std::uint32_t shard_count,
                                      const ContactImportOptions& options,
                                      const TraceWriterOptions& writer_options) {
  const ContactTrace trace = loadContactEvents(input_path, options);

  // Near-equal contiguous split into trials (the first `events % trials`
  // trials take one extra event), mirroring the writer's shard split.
  std::size_t trials = options.trials == 0 ? 1 : options.trials;
  trials = std::min(trials, trace.events.size());
  if (shard_count == 0) shard_count = 1;
  shard_count =
      std::min<std::uint32_t>(shard_count, static_cast<std::uint32_t>(trials));

  TraceStoreWriter writer(directory, trace.stats.node_count, trials,
                          shard_count, writer_options);
  const std::size_t base = trace.events.size() / trials;
  const std::size_t extra = trace.events.size() % trials;
  std::size_t offset = 0;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    const std::size_t length = base + (trial < extra ? 1 : 0);
    writer.appendTrial(
        InteractionSequenceView(trace.events.data() + offset, length));
    offset += length;
  }
  writer.finish();
  return trace.stats;
}

}  // namespace doda::dynagraph
