#include "dynagraph/meet_time_index.hpp"

#include <algorithm>
#include <stdexcept>

namespace doda::dynagraph {

MeetTimeIndex::MeetTimeIndex(const InteractionSequence& sequence, NodeId sink,
                             std::size_t node_count)
    : fixed_(&sequence),
      sink_(sink),
      meetings_(node_count),
      cursor_(node_count, 0),
      last_query_(node_count, 0) {
  if (sink >= node_count)
    throw std::out_of_range("MeetTimeIndex: sink out of range");
}

MeetTimeIndex::MeetTimeIndex(LazySequence& sequence, NodeId sink,
                             std::size_t node_count, Time extension_chunk)
    : lazy_(&sequence),
      sink_(sink),
      extension_chunk_(extension_chunk),
      meetings_(node_count),
      cursor_(node_count, 0),
      last_query_(node_count, 0) {
  if (sink >= node_count)
    throw std::out_of_range("MeetTimeIndex: sink out of range");
  if (extension_chunk_ == 0)
    throw std::invalid_argument("MeetTimeIndex: zero extension chunk");
}

const InteractionSequence& MeetTimeIndex::view() const {
  return lazy_ ? lazy_->committed() : *fixed_;
}

void MeetTimeIndex::scanUpTo(Time end) {
  const auto& seq = view();
  end = std::min(end, seq.length());
  for (Time t = scanned_; t < end; ++t) {
    const Interaction& i = seq.at(t);
    if (i.involves(sink_)) {
      const NodeId u = i.other(sink_);
      if (u < meetings_.size()) meetings_[u].push_back(t);
    }
  }
  scanned_ = std::max(scanned_, end);
}

bool MeetTimeIndex::tryExtendBacking() {
  if (!lazy_) return false;
  const Time target = lazy_->generatedLength() + extension_chunk_;
  if (target >= lazy_->maxLength()) return false;
  lazy_->ensure(target - 1);
  return true;
}

Time MeetTimeIndex::meetTime(NodeId u, Time t) {
  if (u >= meetings_.size())
    throw std::out_of_range("MeetTimeIndex: node out of range");
  if (u == sink_) return t;  // s.meetTime is the identity (paper §2.1)
  for (;;) {
    scanUpTo(view().length());
    const auto& times = meetings_[u];
    std::size_t& cursor = cursor_[u];
    if (t < last_query_[u]) {
      // Backwards query (not the engine's access pattern): binary search
      // and reposition the cursor.
      cursor = static_cast<std::size_t>(
          std::upper_bound(times.begin(), times.end(), t) - times.begin());
    } else {
      while (cursor < times.size() && times[cursor] <= t) ++cursor;
    }
    last_query_[u] = t;
    if (cursor < times.size()) return times[cursor];
    if (!tryExtendBacking()) return kNever;
  }
}

const std::vector<Time>& MeetTimeIndex::knownMeetings(NodeId u) const {
  if (u >= meetings_.size())
    throw std::out_of_range("MeetTimeIndex: node out of range");
  return meetings_[u];
}

}  // namespace doda::dynagraph
