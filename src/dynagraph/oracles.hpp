#pragma once

#include <algorithm>

#include "dynagraph/meet_time_index.hpp"

namespace doda::dynagraph {

/// Abstract meetTime knowledge (paper §2.1): u.meetTime(t) is the time of
/// u's next interaction with the sink after t (identity for the sink).
///
/// The paper's concluding remarks ask which knowledge has real impact
/// (remark #1) and whether fixed memory suffices (remark #2). The adapters
/// below degrade the exact oracle along those two axes so the question can
/// be answered empirically (bench_knowledge_ablation):
///  * WindowedMeetTimeOracle — the node only learns meetings at most
///    `window` interactions ahead (bounded foresight);
///  * QuantizedMeetTimeOracle — the node only learns meetTime rounded up
///    to a bucket (log2(horizon/bucket) bits of storage suffice).
class MeetTimeOracle {
 public:
  virtual ~MeetTimeOracle() = default;

  /// The (possibly degraded) meetTime; kNever means "unknown / never",
  /// which algorithms must treat as "later than any horizon".
  virtual Time meetTime(NodeId u, Time t) = 0;
};

/// The exact oracle: a thin adapter over MeetTimeIndex.
class ExactMeetTimeOracle final : public MeetTimeOracle {
 public:
  explicit ExactMeetTimeOracle(MeetTimeIndex& index) : index_(&index) {}

  Time meetTime(NodeId u, Time t) override { return index_->meetTime(u, t); }

 private:
  MeetTimeIndex* index_;
};

/// Bounded foresight: the true meetTime if it falls within `window`
/// interactions of the query time, kNever otherwise. window = 0 destroys
/// the knowledge entirely; window = infinity recovers the exact oracle.
class WindowedMeetTimeOracle final : public MeetTimeOracle {
 public:
  WindowedMeetTimeOracle(MeetTimeIndex& index, Time window)
      : index_(&index), window_(window) {}

  Time meetTime(NodeId u, Time t) override {
    const Time exact = index_->meetTime(u, t);
    if (exact == kNever) return kNever;
    // Guard t + window against overflow near kNever.
    if (window_ != kNever && exact > t && exact - t > window_) return kNever;
    return exact;
  }

  Time window() const noexcept { return window_; }

 private:
  MeetTimeIndex* index_;
  Time window_;
};

/// Fixed-memory knowledge: meetTime rounded UP to a multiple of `bucket`.
/// A node storing its next meeting at this granularity needs only
/// O(log(horizon / bucket)) bits. Rounding up keeps the oracle
/// conservative: a node never believes a meeting is earlier than it is.
class QuantizedMeetTimeOracle final : public MeetTimeOracle {
 public:
  QuantizedMeetTimeOracle(MeetTimeIndex& index, Time bucket)
      : index_(&index), bucket_(std::max<Time>(1, bucket)) {}

  Time meetTime(NodeId u, Time t) override {
    const Time exact = index_->meetTime(u, t);
    if (exact == kNever) return kNever;
    const Time rounded = (exact + bucket_ - 1) / bucket_ * bucket_;
    return rounded < exact ? kNever : rounded;  // overflow guard
  }

  Time bucket() const noexcept { return bucket_; }

 private:
  MeetTimeIndex* index_;
  Time bucket_;
};

}  // namespace doda::dynagraph
