#pragma once

#include <functional>
#include <stdexcept>
#include <vector>

#include "dynagraph/interaction_sequence.hpp"

namespace doda::dynagraph {

/// A growable interaction sequence backed by a generator function.
///
/// The randomized adversary (paper §4) conceptually commits to an infinite
/// random sequence; algorithms with `meetTime` or `future` knowledge read
/// that committed randomness. LazySequence realizes this: interactions are
/// generated on demand and, once generated, never change — so the oracle
/// answers and the actual execution always agree.
///
/// Two generator flavours:
///  * the per-item Generator produces exactly the interactions demanded
///    (generatedLength() == t+1 after ensure(t));
///  * the batched BlockGenerator produces whole chunks, amortizing the
///    std::function dispatch over kChunk interactions — the engine hot
///    path's per-interaction generation cost collapses to a bounds check.
///    Chunked generation commits randomness slightly ahead of demand,
///    which is exactly the committed-randomness model (the values at any
///    given time are identical either way; only how far the prefix has
///    been realized differs).
class LazySequence {
 public:
  using Generator = std::function<Interaction(Time)>;
  /// Appends exactly `count` interactions (times begin, begin+1, ...) to
  /// `out`. Must be a pure function of its own captured state called with
  /// contiguous, strictly increasing blocks.
  using BlockGenerator =
      std::function<void(Time begin, std::size_t count,
                         std::vector<Interaction>& out)>;

  /// Interactions generated per BlockGenerator call.
  static constexpr std::size_t kChunk = 256;

  /// `generator(t)` must return I_t and be called with strictly increasing t.
  /// `max_length` bounds total generation (throws std::length_error beyond
  /// it) as a runaway-experiment guard.
  explicit LazySequence(Generator generator,
                        Time max_length = Time{1} << 34);

  /// Batched flavour: `generator(begin, count, out)` appends the block
  /// [begin, begin + count) in one call.
  explicit LazySequence(BlockGenerator generator,
                        Time max_length = Time{1} << 34);

  /// The interaction at time t, generating it (and everything before it)
  /// if needed.
  const Interaction& at(Time t);

  /// Extends generation so that times [0, t] exist (a block generator may
  /// commit up to a chunk further).
  void ensure(Time t);

  /// How many interactions exist so far.
  Time generatedLength() const noexcept { return buffer_.length(); }

  Time maxLength() const noexcept { return max_length_; }

  /// Read-only view of the committed prefix.
  const InteractionSequence& committed() const noexcept { return buffer_; }

 private:
  Generator generator_;
  BlockGenerator block_generator_;
  InteractionSequence buffer_;
  std::vector<Interaction> chunk_scratch_;
  Time max_length_;
};

}  // namespace doda::dynagraph
