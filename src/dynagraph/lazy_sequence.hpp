#pragma once

#include <functional>
#include <stdexcept>

#include "dynagraph/interaction_sequence.hpp"

namespace doda::dynagraph {

/// A growable interaction sequence backed by a generator function.
///
/// The randomized adversary (paper §4) conceptually commits to an infinite
/// random sequence; algorithms with `meetTime` or `future` knowledge read
/// that committed randomness. LazySequence realizes this: interactions are
/// generated on demand (in chunks) and, once generated, never change — so
/// the oracle answers and the actual execution always agree.
class LazySequence {
 public:
  using Generator = std::function<Interaction(Time)>;

  /// `generator(t)` must return I_t and be called with strictly increasing t.
  /// `max_length` bounds total generation (throws std::length_error beyond
  /// it) as a runaway-experiment guard.
  explicit LazySequence(Generator generator,
                        Time max_length = Time{1} << 34);

  /// The interaction at time t, generating it (and everything before it)
  /// if needed.
  const Interaction& at(Time t);

  /// Extends generation so that times [0, t] exist.
  void ensure(Time t);

  /// How many interactions exist so far.
  Time generatedLength() const noexcept { return buffer_.length(); }

  Time maxLength() const noexcept { return max_length_; }

  /// Read-only view of the committed prefix.
  const InteractionSequence& committed() const noexcept { return buffer_; }

 private:
  Generator generator_;
  InteractionSequence buffer_;
  Time max_length_;
};

}  // namespace doda::dynagraph
