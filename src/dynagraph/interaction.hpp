#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <stdexcept>

#include "graph/static_graph.hpp"

namespace doda::dynagraph {

using graph::NodeId;

/// Discrete time. In this model (paper §1/§2) time *is* the index of an
/// interaction in the sequence: interaction `I_t` happens at time `t`.
using Time = std::uint64_t;

/// Sentinel for "never happens" (e.g. no future meeting with the sink).
inline constexpr Time kNever = static_cast<Time>(-1);

/// A single pairwise interaction I_t = {u, v}.
///
/// The pair is unordered; the constructor normalizes so that a() < b().
/// Self-interactions are invalid.
class Interaction {
 public:
  Interaction(NodeId u, NodeId v) : a_(u), b_(v) {
    if (u == v) throw std::invalid_argument("Interaction: self-interaction");
    if (a_ > b_) std::swap(a_, b_);
  }

  /// Trusted construction for bulk producers whose output is ordered by
  /// construction (decoders, samplers indexing a sorted pair table). Skips
  /// the normalize/throw path of the public constructor, which is
  /// measurable in tight generation loops. Callers must guarantee a < b.
  static Interaction presorted(NodeId a, NodeId b) noexcept {
    return Interaction(a, b, Presorted{});
  }

  NodeId a() const noexcept { return a_; }
  NodeId b() const noexcept { return b_; }

  bool involves(NodeId u) const noexcept { return u == a_ || u == b_; }

  /// The endpoint that is not `u`. Requires involves(u).
  NodeId other(NodeId u) const {
    if (u == a_) return b_;
    if (u == b_) return a_;
    throw std::invalid_argument("Interaction::other: node not involved");
  }

  friend bool operator==(const Interaction&, const Interaction&) = default;
  friend auto operator<=>(const Interaction&, const Interaction&) = default;

 private:
  struct Presorted {};
  Interaction(NodeId a, NodeId b, Presorted) noexcept : a_(a), b_(b) {}

  NodeId a_;
  NodeId b_;
};

std::ostream& operator<<(std::ostream& os, const Interaction& i);

}  // namespace doda::dynagraph
