#pragma once

#include <cstddef>
#include <vector>

#include "dynagraph/interaction_sequence.hpp"
#include "graph/static_graph.hpp"
#include "util/rng.hpp"

namespace doda::dynagraph::traces {

/// Version of the committed random-stream format: how many RNG draws one
/// uniform pair consumes and how the draws map to the pair. Changing the
/// mapping changes every sequence committed from a given seed, so the
/// mapping is versioned: goldens, recorded stores, and published numbers
/// name the format they were produced under, and legacy streams stay
/// reproducible forever by pinning v1.
enum class SeedFormat : std::uint8_t {
  /// Two Lemire draws per pair: u = below(n), then v = below(n-1) with a
  /// skip over u. The format of every stream committed before the v2
  /// sampler landed.
  v1 = 1,
  /// One draw per pair: r = below(n(n-1)/2) decoded to the r-th unordered
  /// pair. Halves the serial RNG dependency chain — the generation
  /// bottleneck of measureOfflineOptimal — at identical uniformity.
  v2 = 2,
};

/// Default stream format committed by the uniform samplers.
inline constexpr SeedFormat kSeedFormat = SeedFormat::v2;

/// One interaction drawn uniformly at random among all n(n-1)/2 pairs —
/// the randomized adversary's distribution (paper §4). Requires n >= 2.
Interaction uniformPair(std::size_t n, util::Rng& rng,
                        SeedFormat format = kSeedFormat);

/// Appends `count` uniform random interactions to `out` in one tight loop —
/// the batched generation primitive behind the randomized adversary and
/// drawAdversarySequence. Draws from `rng` in exactly the order repeated
/// uniformPair calls would under the same SeedFormat, so batched and
/// per-item generation commit bit-identical sequences from the same seed.
void appendUniform(std::size_t n, std::size_t count, util::Rng& rng,
                   std::vector<Interaction>& out,
                   SeedFormat format = kSeedFormat);

/// A fixed-length sequence of uniform random interactions.
InteractionSequence uniformRandom(std::size_t n, Time length, util::Rng& rng,
                                  SeedFormat format = kSeedFormat);

/// Non-uniform randomized adversary (paper's concluding remark #3):
/// node popularity follows a Zipf law with the given exponent; each
/// interaction picks two distinct nodes by popularity-weighted sampling
/// without replacement. exponent = 0 recovers the uniform adversary.
class ZipfPairDistribution {
 public:
  ZipfPairDistribution(std::size_t n, double exponent);

  Interaction sample(util::Rng& rng) const;

  /// Batched counterpart of sample(): appends `count` interactions drawing
  /// from `rng` in exactly the order repeated sample() calls would.
  void append(std::size_t count, util::Rng& rng,
              std::vector<Interaction>& out) const;

  const std::vector<double>& weights() const noexcept { return weights_; }

 private:
  std::vector<double> weights_;
};

InteractionSequence zipfRandom(std::size_t n, Time length, double exponent,
                               util::Rng& rng);

/// Deterministic cyclic activation of every edge of `g`, `rounds` times.
/// Edges are activated in lexicographic order; with enough rounds this
/// makes every underlying-graph edge appear "infinitely often" in the sense
/// of paper Thm 4.
InteractionSequence roundRobin(const graph::StaticGraph& g,
                               std::size_t rounds);

/// Random permutation of every edge of `g`, repeated `rounds` times with
/// independent permutations (a randomized fair scheduler over a topology).
InteractionSequence shuffledRounds(const graph::StaticGraph& g,
                                   std::size_t rounds, util::Rng& rng);

/// Topology builders used by tests, benches, and examples.
graph::StaticGraph pathGraph(std::size_t n);
graph::StaticGraph ringGraph(std::size_t n);
graph::StaticGraph starGraph(std::size_t n, graph::NodeId center);
graph::StaticGraph completeGraph(std::size_t n);
/// Uniform random labelled tree (random attachment to a random earlier node).
graph::StaticGraph randomTree(std::size_t n, util::Rng& rng);
/// Connected Erdős–Rényi-style graph: random tree plus `extra_edges`
/// additional distinct random edges.
graph::StaticGraph randomConnected(std::size_t n, std::size_t extra_edges,
                                   util::Rng& rng);

/// Body-area sensor network trace (motivating scenario of the paper's
/// introduction: "sensors deployed on a human body").
///
/// Node 0 is the hub (sink). Each of the `sensors` nodes gets a contact
/// period drawn from [min_period, max_period]; it meets the hub at every
/// multiple of its period, with +/- jitter. Between hub contacts, adjacent
/// sensors (body-neighbour pairs) meet with probability `peer_contact_rate`
/// per slot. Simultaneous contacts are serialized in id order, matching the
/// one-interaction-per-time-unit model.
struct BodySensorConfig {
  std::size_t sensors = 8;
  Time slots = 1000;           // wall-clock slots to simulate
  Time min_period = 5;
  Time max_period = 20;
  Time jitter = 2;
  double peer_contact_rate = 0.05;
};

InteractionSequence bodySensorTrace(const BodySensorConfig& config,
                                    util::Rng& rng);

/// Vehicular contact trace (the paper's "cars evolving in a city" scenario).
///
/// `cars` vehicles random-walk on a width x height grid of road cells; a
/// road-side unit (the sink, node 0) sits at the grid centre. Whenever two
/// vehicles share a cell, or a vehicle is at the RSU cell, a contact occurs.
/// Contacts within one movement step are serialized deterministically.
struct VehicularConfig {
  std::size_t width = 8;
  std::size_t height = 8;
  std::size_t cars = 12;
  Time steps = 2000;
};

InteractionSequence vehicularTrace(const VehicularConfig& config,
                                   util::Rng& rng);

}  // namespace doda::dynagraph::traces
