#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "dynagraph/trace_codec.hpp"

namespace doda::dynagraph::codec {

// ---------------------------------------------------------------------------
// Entropy codec of the v3 trace block payload (see trace_io.hpp for the
// container format; the v2 adaptive binary range coder in trace_codec.hpp
// stays readable as codec 1).
//
// Where v2 pays ~8 adaptive binary decisions per record byte, v3 codes each
// byte in ONE table-driven rANS step: the writer histograms the block,
// normalizes per-context frequency tables to a 12-bit total, serializes the
// tables into the block, then runs a 2-way interleaved rANS (32-bit states,
// byte-wise renormalization — the ryg_rans construction) over the bytes in
// reverse so the decoder streams them forward. Static tables trade a little
// ratio (quantization + table bytes, amortized over the block) for a decode
// loop that is a mask, two table loads, one multiply and a rare byte refill
// — several times faster than bit-tree adaptation.
//
// Contexts are the v2 record-aware classes with the value-conditioned
// classes bucketed coarser (8 buckets instead of 32), because every used
// context must ship its table in the block header:
//
//   0                length first bytes
//   1                length continuation bytes
//   2                delta continuation bytes
//   3                gap continuation bytes
//   4 .. 11          delta first byte, bucket(prev_a) of 8
//   12 .. 19         gap first byte, bucket(a) of 8
//
// Table serialization (per block, before the rANS payload), per context in
// the fixed order above: varint symbol count (0 = context unused in this
// block), then per present symbol in ascending order a varint symbol delta
// (the first symbol verbatim, then gap-1 to the previous) and varint
// freq-1. Frequencies of a used context sum to exactly kRansTotal.
//
// The rANS payload is u32-LE initial states x0, x1 followed by the renorm
// byte stream; symbol i of the block decodes from state i & 1.
// ---------------------------------------------------------------------------

inline constexpr unsigned kRansScaleBits = 12;
inline constexpr std::uint32_t kRansTotal = 1u << kRansScaleBits;
inline constexpr std::uint32_t kRansLowBound = 1u << 23;  // renorm threshold
inline constexpr std::size_t kRansContextBuckets = 8;
inline constexpr std::size_t kRansContexts = 4 + 2 * kRansContextBuckets;

// Trace format v4 (trace_io.hpp) keeps the block container but swaps this
// codec for its own (block codec id 3, RansV4Block{Encoder,Decoder}
// below): ONE frequency table over every record byte and EIGHT interleaved
// rANS states instead of two. One table is a deliberate ratio-for-speed
// trade — the decoder reconstructs a whole block in a single bulk run with
// no per-symbol context selection or record parsing — and the 8-way
// interleave plus a fused slot table and branchless renormalization keep
// eight dependency chains in flight, so the loop is bounded by execution
// throughput rather than the latency of one serial load-multiply-refill
// chain.
inline constexpr std::size_t kRansV4Interleave = 8;

/// Flat context id of a (class, bucket) pair; the bucket is only
/// significant for the first-byte classes.
inline unsigned ransContext(SymbolClass cls, unsigned bucket) noexcept {
  switch (cls) {
    case SymbolClass::kLengthFirst:
      return 0;
    case SymbolClass::kLengthCont:
      return 1;
    case SymbolClass::kDeltaCont:
      return 2;
    case SymbolClass::kGapCont:
      return 3;
    case SymbolClass::kDeltaFirst:
      return 4 + bucket;
    case SymbolClass::kGapFirst:
    default:
      return 4 + static_cast<unsigned>(kRansContextBuckets) + bucket;
  }
}

namespace rans_detail {

inline void putVarint(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

/// Reads a varint from [pos, size); returns false on overrun or a varint
/// longer than 64 bits.
inline bool takeVarint(const std::uint8_t* data, std::size_t size,
                       std::size_t& pos, std::uint64_t& value) {
  value = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (pos >= size) return false;
    const std::uint8_t byte = data[pos++];
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return true;
  }
  return false;
}

/// Deterministic normalization of one 256-symbol count table to a
/// kRansTotal sum: floor-scale with every present symbol kept >= 1, then
/// hand the rounding residue to the most frequent symbol (lowest index on
/// ties). Returns false when the table is empty (freq/cum zeroed).
inline bool normalizeTable(const std::uint32_t* counts, std::uint32_t* freq,
                           std::uint32_t* cum) noexcept {
  std::uint64_t total = 0;
  std::uint32_t used = 0;
  for (std::size_t s = 0; s < 256; ++s) {
    total += counts[s];
    used += counts[s] != 0;
  }
  if (used == 0) {
    for (std::size_t s = 0; s < 256; ++s) freq[s] = cum[s] = 0;
    return false;
  }
  std::uint32_t assigned = 0;
  std::size_t top = 0;
  for (std::size_t s = 0; s < 256; ++s) {
    if (counts[s] == 0) {
      freq[s] = 0;
      continue;
    }
    freq[s] = 1 + static_cast<std::uint32_t>(
                      static_cast<std::uint64_t>(counts[s]) *
                      (kRansTotal - used) / total);
    assigned += freq[s];
    if (counts[s] > counts[top]) top = s;
  }
  freq[top] += kRansTotal - assigned;
  std::uint32_t running = 0;
  for (std::size_t s = 0; s < 256; ++s) {
    cum[s] = running;
    running += freq[s];
  }
  return true;
}

/// Serializes one normalized table: varint present-symbol count (0 =
/// unused), then per present symbol in ascending order a varint symbol
/// delta (first verbatim, then gap-1) and varint freq-1.
inline void serializeTable(std::vector<std::uint8_t>& out,
                           const std::uint32_t* freq) {
  std::uint32_t present = 0;
  for (std::size_t s = 0; s < 256; ++s) present += freq[s] != 0;
  putVarint(out, present);
  std::uint32_t prev = 0;
  bool first = true;
  for (std::size_t s = 0; s < 256; ++s) {
    if (freq[s] == 0) continue;
    putVarint(out, first ? s : s - prev - 1);
    putVarint(out, freq[s] - 1);
    prev = static_cast<std::uint32_t>(s);
    first = false;
  }
}

}  // namespace rans_detail

/// Encodes one block: collect (byte, context) pairs, then seal() emits the
/// serialized tables followed by the interleaved-rANS payload. Reusable
/// across blocks via reset().
class RansBlockEncoder {
 public:
  void reset() noexcept {
    for (auto& table : counts_) table.fill(0);
  }

  void count(std::uint8_t byte, unsigned ctx) noexcept {
    ++counts_[ctx][byte];
  }

  /// Serializes tables + payload for `bytes` (whose i-th element was
  /// counted with context `contexts[i]`) into `out` (cleared first).
  void seal(const std::uint8_t* bytes, const std::uint8_t* contexts,
            std::size_t size, std::vector<std::uint8_t>& out) {
    out.clear();
    normalizeAll();
    serializeTables(out);

    // rANS runs backwards: encode the last symbol first, collect renorm
    // bytes in emission order, then append them reversed so the decoder
    // reads forward. Symbol i uses state i & 1 on both sides.
    rev_.clear();
    std::uint32_t states[2] = {kRansLowBound, kRansLowBound};
    for (std::size_t i = size; i-- > 0;) {
      const unsigned ctx = contexts[i];
      const std::uint8_t sym = bytes[i];
      const std::uint32_t f = freq_[ctx][sym];
      const std::uint32_t c = cum_[ctx][sym];
      std::uint32_t& x = states[i & 1];
      const std::uint32_t x_max = ((kRansLowBound >> kRansScaleBits) << 8) * f;
      while (x >= x_max) {
        rev_.push_back(static_cast<std::uint8_t>(x));
        x >>= 8;
      }
      x = ((x / f) << kRansScaleBits) + (x % f) + c;
    }
    for (const std::uint32_t x : {states[0], states[1]})
      for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(x >> (8 * i)));
    out.insert(out.end(), rev_.rbegin(), rev_.rend());
  }

 private:
  void normalizeAll() noexcept {
    for (std::size_t ctx = 0; ctx < kRansContexts; ++ctx)
      rans_detail::normalizeTable(counts_[ctx].data(), freq_[ctx].data(),
                                  cum_[ctx].data());
  }

  void serializeTables(std::vector<std::uint8_t>& out) const {
    for (std::size_t ctx = 0; ctx < kRansContexts; ++ctx)
      rans_detail::serializeTable(out, freq_[ctx].data());
  }

  std::array<std::array<std::uint32_t, 256>, kRansContexts> counts_{};
  std::array<std::array<std::uint32_t, 256>, kRansContexts> freq_{};
  std::array<std::array<std::uint32_t, 256>, kRansContexts> cum_{};
  std::vector<std::uint8_t> rev_;
};

/// Decodes one block: start() parses the tables and initial states (false =
/// malformed tables, a corrupt block), then decodeByte() streams the raw
/// bytes forward. Reading past the payload feeds zeros and raises the
/// overrun flag, mirroring RangeDecoder's contract.
class RansBlockDecoder {
 public:
  RansBlockDecoder()
      : lookup_(kRansContexts * kRansTotal, 0),
        freq_(kRansContexts * 256, 0),
        cum_(kRansContexts * 256, 0) {}

  bool start(const std::uint8_t* data, std::size_t size) {
    data_ = data;
    size_ = size;
    pos_ = 0;
    symbols_ = 0;
    overrun_ = false;
    if (!parseTables()) return false;
    for (auto& x : states_) {
      x = 0;
      for (int i = 0; i < 4; ++i)
        x |= static_cast<std::uint32_t>(takeByte()) << (8 * i);
    }
    return !overrun_;
  }

  std::uint8_t decodeByte(unsigned ctx) {
    if (!present_[ctx]) {
      // The record layer asked for a context this block's tables never
      // populated: structurally corrupt. Surface it as an overrun so the
      // caller fails the block.
      overrun_ = true;
      return 0;
    }
    std::uint32_t& x = states_[symbols_++ & 1];
    const std::uint32_t slot = x & (kRansTotal - 1);
    const std::uint8_t sym = lookup_[ctx * kRansTotal + slot];
    const std::size_t at = ctx * 256 + sym;
    x = freq_[at] * (x >> kRansScaleBits) + slot - cum_[at];
    while (x < kRansLowBound)
      x = (x << 8) | takeByte();
    return sym;
  }

  bool overrun() const noexcept { return overrun_; }

 private:
  std::uint8_t takeByte() {
    if (pos_ < size_) return data_[pos_++];
    overrun_ = true;
    return 0;
  }

  bool parseTables() {
    for (std::size_t ctx = 0; ctx < kRansContexts; ++ctx) {
      std::uint64_t present = 0;
      if (!rans_detail::takeVarint(data_, size_, pos_, present)) return false;
      present_[ctx] = present != 0;
      if (present == 0) continue;
      if (present > 256) return false;
      std::uint8_t* const lookup = lookup_.data() + ctx * kRansTotal;
      std::uint32_t* const freq = freq_.data() + ctx * 256;
      std::uint32_t* const cum = cum_.data() + ctx * 256;
      std::uint64_t symbol = 0;
      std::uint32_t running = 0;
      for (std::uint64_t i = 0; i < present; ++i) {
        std::uint64_t delta = 0, f_minus_1 = 0;
        if (!rans_detail::takeVarint(data_, size_, pos_, delta)) return false;
        if (!rans_detail::takeVarint(data_, size_, pos_, f_minus_1))
          return false;
        symbol = i == 0 ? delta : symbol + 1 + delta;
        const std::uint64_t f = f_minus_1 + 1;
        if (symbol > 255 || f > kRansTotal - running) return false;
        const auto sym = static_cast<std::uint8_t>(symbol);
        freq[sym] = static_cast<std::uint32_t>(f);
        cum[sym] = running;
        for (std::uint32_t s = 0; s < f; ++s) lookup[running + s] = sym;
        running += static_cast<std::uint32_t>(f);
      }
      if (running != kRansTotal) return false;
    }
    return true;
  }

  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t pos_ = 0;
  std::uint64_t symbols_ = 0;
  std::uint32_t states_[2] = {0, 0};
  bool overrun_ = false;
  std::array<bool, kRansContexts> present_{};
  std::vector<std::uint8_t> lookup_;   // kRansContexts x kRansTotal
  std::vector<std::uint32_t> freq_;    // kRansContexts x 256
  std::vector<std::uint32_t> cum_;     // kRansContexts x 256
};

// ---------------------------------------------------------------------------
// v4 block codec (block codec id 3): 8-way interleaved rANS over one table.
//
// Payload layout: one serialized frequency table (rans_detail format, same
// as a single v3 context), then kRansV4Interleave u32-LE initial states,
// then the renorm stream of little-endian 16-bit words. Symbol i of the
// block decodes from state i & 7; the encoder runs backward so the decoder
// streams forward. Every record byte of the block — control and value
// alike — is one symbol of the single table.
//
// Unlike the v3 coder's byte-wise renormalization, codec 3 renormalizes
// 16 bits at a time against a 2^16 lower bound: a decode step leaves the
// state >= 2^4, so exactly zero or one refill restores the invariant —
// one flag, one selectable word, no loop.
// ---------------------------------------------------------------------------

inline constexpr std::uint32_t kRansV4LowBound = 1u << 16;

/// Encodes one v4 block: count() histograms the bytes, seal() emits the
/// table + payload. Reusable across blocks via reset().
class RansV4BlockEncoder {
 public:
  void reset() noexcept { counts_.fill(0); }

  void count(std::uint8_t byte) noexcept { ++counts_[byte]; }

  void seal(const std::uint8_t* bytes, std::size_t size,
            std::vector<std::uint8_t>& out) {
    out.clear();
    rans_detail::normalizeTable(counts_.data(), freq_.data(), cum_.data());
    rans_detail::serializeTable(out, freq_.data());
    rev_.clear();
    std::uint32_t states[kRansV4Interleave];
    for (auto& x : states) x = kRansV4LowBound;
    for (std::size_t i = size; i-- > 0;) {
      const std::uint8_t sym = bytes[i];
      const std::uint32_t f = freq_[sym];
      std::uint32_t& x = states[i & (kRansV4Interleave - 1)];
      // u64: f = kRansTotal (a one-symbol table) makes this 2^32.
      const std::uint64_t x_max =
          (std::uint64_t{kRansV4LowBound >> kRansScaleBits} << 16) * f;
      while (x >= x_max) {
        // High byte first: the final whole-stream reversal then leaves
        // each refill word low-byte-first (little-endian) for the decoder.
        rev_.push_back(static_cast<std::uint8_t>(x >> 8));
        rev_.push_back(static_cast<std::uint8_t>(x));
        x >>= 16;
      }
      x = ((x / f) << kRansScaleBits) + (x % f) + cum_[sym];
    }
    for (const std::uint32_t x : states)
      for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(x >> (8 * i)));
    out.insert(out.end(), rev_.rbegin(), rev_.rend());
  }

 private:
  std::array<std::uint32_t, 256> counts_{};
  std::array<std::uint32_t, 256> freq_{};
  std::array<std::uint32_t, 256> cum_{};
  std::vector<std::uint8_t> rev_;
};

/// Decodes one v4 block payload into `dst` (exactly `count` bytes, the
/// frame's raw size). Returns false on malformed tables, a payload
/// overrun, or final states that do not return to the encoder's seed —
/// all the block-corrupt conditions the caller surfaces as one error.
///
/// The hot loop is deliberately branch-free per symbol: a fused slot
/// table packs (freq-1, slot - cum, symbol) into one u32 so each step is
/// a single dependent load, and renormalization selects its (zero or one)
/// 16-bit refill word with mask arithmetic instead of a data-dependent
/// branch — mispredicted refill branches are what bound the 2-way coder
/// above. The unguarded reads stay within the payload because the fast
/// path requires 2 * kRansV4Interleave spare bytes; a guarded tail loop
/// finishes the block.
class RansV4BlockDecoder {
 public:
  RansV4BlockDecoder() : fused_(kRansTotal, 0) {}

  bool decode(const std::uint8_t* data, std::size_t size, std::uint8_t* dst,
              std::size_t count) {
    std::size_t pos = 0;
    if (!parseFusedTable(data, size, pos)) return false;
    if (size - pos < 4 * kRansV4Interleave) return false;
    std::uint32_t x[kRansV4Interleave];
    for (auto& state : x) {
      state = 0;
      for (int i = 0; i < 4; ++i)
        state |= static_cast<std::uint32_t>(data[pos++]) << (8 * i);
    }
    const std::uint32_t* const fused = fused_.data();
    const std::uint8_t* src = data + pos;
    const std::uint8_t* const end = data + size;
    std::size_t i = 0;
    auto step = [&](std::uint32_t& state, std::uint8_t& out) {
      const std::uint32_t e = fused[state & (kRansTotal - 1)];
      out = static_cast<std::uint8_t>(e);
      std::uint32_t s = ((e >> 20) + 1) * (state >> kRansScaleBits) +
                        ((e >> 8) & (kRansTotal - 1));
      // Branchless renorm, exactly zero or one 16-bit refill. Mask
      // arithmetic rather than a ternary (compilers turn those back into
      // mispredicting branches), and the refill flag derives from the
      // stepped state alone — the word load stays OUT of the serial
      // stream-pointer dependency chain.
      const std::uint32_t need = s < kRansV4LowBound;
      const std::uint32_t m = 0u - need;
      const std::uint32_t w =
          (s << 16) | src[0] |
          (static_cast<std::uint32_t>(src[1]) << 8);
      s = (w & m) | (s & ~m);
      src += 2 * need;
      state = s;
    };
    for (; i + kRansV4Interleave <= count &&
           end - src >= 2 * std::ptrdiff_t{kRansV4Interleave};
         i += kRansV4Interleave) {
      step(x[0], dst[i]);
      step(x[1], dst[i + 1]);
      step(x[2], dst[i + 2]);
      step(x[3], dst[i + 3]);
      step(x[4], dst[i + 4]);
      step(x[5], dst[i + 5]);
      step(x[6], dst[i + 6]);
      step(x[7], dst[i + 7]);
    }
    for (; i < count; ++i) {
      std::uint32_t& state = x[i & (kRansV4Interleave - 1)];
      const std::uint32_t e = fused[state & (kRansTotal - 1)];
      dst[i] = static_cast<std::uint8_t>(e);
      state = ((e >> 20) + 1) * (state >> kRansScaleBits) +
              ((e >> 8) & (kRansTotal - 1));
      if (state < kRansV4LowBound) {
        if (end - src < 2) return false;
        state = (state << 16) | src[0] |
                (static_cast<std::uint32_t>(src[1]) << 8);
        src += 2;
      }
    }
    for (const std::uint32_t state : x)
      if (state != kRansV4LowBound) return false;
    return true;
  }

 private:
  /// Parses the single serialized table straight into the fused slot
  /// entries: fused[slot] = (freq-1) << 20 | (slot - cum) << 8 | symbol.
  bool parseFusedTable(const std::uint8_t* data, std::size_t size,
                       std::size_t& pos) {
    std::uint64_t present = 0;
    if (!rans_detail::takeVarint(data, size, pos, present)) return false;
    if (present == 0 || present > 256) return false;
    std::uint64_t symbol = 0;
    std::uint32_t running = 0;
    for (std::uint64_t i = 0; i < present; ++i) {
      std::uint64_t delta = 0, f_minus_1 = 0;
      if (!rans_detail::takeVarint(data, size, pos, delta)) return false;
      if (!rans_detail::takeVarint(data, size, pos, f_minus_1)) return false;
      symbol = i == 0 ? delta : symbol + 1 + delta;
      const std::uint64_t f = f_minus_1 + 1;
      if (symbol > 255 || f > kRansTotal - running) return false;
      const std::uint32_t base =
          (static_cast<std::uint32_t>(f_minus_1) << 20) |
          static_cast<std::uint32_t>(symbol);
      for (std::uint32_t s = 0; s < f; ++s)
        fused_[running + s] = base | (s << 8);
      running += static_cast<std::uint32_t>(f);
    }
    return running == kRansTotal;
  }

  std::vector<std::uint32_t> fused_;  // kRansTotal fused slot entries
};

}  // namespace doda::dynagraph::codec
