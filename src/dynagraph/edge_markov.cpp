#include "dynagraph/edge_markov.hpp"

#include <stdexcept>
#include <vector>

namespace doda::dynagraph::traces {

InteractionSequence edgeMarkovTrace(const EdgeMarkovConfig& config,
                                    util::Rng& rng) {
  if (config.nodes < 2)
    throw std::invalid_argument("edgeMarkovTrace: need >= 2 nodes");
  if (config.p_on <= 0.0 || config.p_on > 1.0 || config.p_off < 0.0 ||
      config.p_off > 1.0)
    throw std::invalid_argument("edgeMarkovTrace: probabilities out of range");

  const std::size_t n = config.nodes;
  // Flat upper-triangular edge-state array: index(u, v) with u < v.
  auto indexOf = [n](std::size_t u, std::size_t v) {
    return u * n + v;  // sparse but simple; n is small
  };
  std::vector<char> alive(n * n, 0);
  const double stationary =
      config.p_on / (config.p_on + config.p_off);
  if (config.stationary_start) {
    for (std::size_t u = 0; u < n; ++u)
      for (std::size_t v = u + 1; v < n; ++v)
        alive[indexOf(u, v)] = rng.chance(stationary) ? 1 : 0;
  }

  std::vector<Interaction> out;
  for (Time step = 0; step < config.steps; ++step) {
    for (std::size_t u = 0; u < n; ++u) {
      for (std::size_t v = u + 1; v < n; ++v) {
        char& state = alive[indexOf(u, v)];
        if (state)
          state = rng.chance(config.p_off) ? 0 : 1;
        else
          state = rng.chance(config.p_on) ? 1 : 0;
        if (state)
          out.emplace_back(static_cast<NodeId>(u), static_cast<NodeId>(v));
      }
    }
  }
  return InteractionSequence(std::move(out));
}

}  // namespace doda::dynagraph::traces
