#pragma once

#include <vector>

#include "dynagraph/interaction_sequence.hpp"
#include "dynagraph/lazy_sequence.hpp"

namespace doda::dynagraph {

/// Realizes the `meetTime` knowledge of the paper (§2.1):
///
///   u.meetTime(t) = smallest t' > t with I_{t'} = {u, s}
///   s.meetTime(t) = t (identity, by definition)
///
/// Two backings are supported:
///  * a fixed InteractionSequence (oblivious adversary, trace replay), where
///    a query past the last meeting returns kNever;
///  * a LazySequence (randomized adversary), where the index extends the
///    committed randomness on demand until a meeting is found or the
///    sequence's max-length guard trips (then kNever).
///
/// Queries keep a monotone cursor per node: during an execution, meetTime
/// is queried with nondecreasing t (the engine's clock only advances), so
/// each query advances the node's cursor by at most the number of meetings
/// skipped — amortized O(1) per query instead of a binary search over the
/// full meeting list. Queries that go *back* in time (tests, analysis) fall
/// back to a binary search and reposition the cursor.
class MeetTimeIndex {
 public:
  /// Index over a fixed sequence. The sequence must outlive the index.
  MeetTimeIndex(const InteractionSequence& sequence, NodeId sink,
                std::size_t node_count);

  /// Index over a lazily generated sequence. The sequence must outlive the
  /// index. `extension_chunk` controls how much new randomness is committed
  /// per failed lookup round.
  MeetTimeIndex(LazySequence& sequence, NodeId sink, std::size_t node_count,
                Time extension_chunk = 1 << 16);

  NodeId sink() const noexcept { return sink_; }

  /// The paper's u.meetTime(t). May extend a lazy backing sequence.
  Time meetTime(NodeId u, Time t);

  /// All sink-meeting times of `u` discovered so far (ascending). Mostly
  /// for tests and analysis (Lemma 1 experiments).
  const std::vector<Time>& knownMeetings(NodeId u) const;

  /// How far the index has scanned the backing sequence.
  Time indexedLength() const noexcept { return scanned_; }

 private:
  void scanUpTo(Time end);       // index [scanned_, end) of the fixed view
  bool tryExtendBacking();       // lazy backing only; false if exhausted
  const InteractionSequence& view() const;

  const InteractionSequence* fixed_ = nullptr;
  LazySequence* lazy_ = nullptr;
  NodeId sink_;
  Time extension_chunk_ = 0;
  Time scanned_ = 0;
  std::vector<std::vector<Time>> meetings_;  // per node, ascending
  // Monotone query cursors: every meeting of u at an index < cursor_[u] is
  // known to be <= last_query_[u], so a query at t >= last_query_[u] only
  // advances the cursor.
  std::vector<std::size_t> cursor_;
  std::vector<Time> last_query_;
};

}  // namespace doda::dynagraph
