#include "dynagraph/lazy_sequence.hpp"

#include <algorithm>

namespace doda::dynagraph {

LazySequence::LazySequence(Generator generator, Time max_length)
    : generator_(std::move(generator)), max_length_(max_length) {
  if (!generator_)
    throw std::invalid_argument("LazySequence: null generator");
}

LazySequence::LazySequence(BlockGenerator generator, Time max_length)
    : block_generator_(std::move(generator)), max_length_(max_length) {
  if (!block_generator_)
    throw std::invalid_argument("LazySequence: null generator");
}

void LazySequence::ensure(Time t) {
  if (t >= max_length_)
    throw std::length_error("LazySequence: exceeded max_length guard");
  if (block_generator_) {
    while (buffer_.length() <= t) {
      const Time begin = buffer_.length();
      const Time want =
          std::min(max_length_, std::max<Time>(t + 1, begin + kChunk));
      chunk_scratch_.clear();
      chunk_scratch_.reserve(static_cast<std::size_t>(want - begin));
      block_generator_(begin, static_cast<std::size_t>(want - begin),
                       chunk_scratch_);
      if (chunk_scratch_.size() != static_cast<std::size_t>(want - begin))
        throw std::logic_error(
            "LazySequence: block generator produced a wrong-sized chunk");
      buffer_.appendSpan(chunk_scratch_);
    }
    return;
  }
  while (buffer_.length() <= t) buffer_.append(generator_(buffer_.length()));
}

const Interaction& LazySequence::at(Time t) {
  ensure(t);
  return buffer_.at(t);
}

}  // namespace doda::dynagraph
