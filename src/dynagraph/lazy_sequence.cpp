#include "dynagraph/lazy_sequence.hpp"

namespace doda::dynagraph {

LazySequence::LazySequence(Generator generator, Time max_length)
    : generator_(std::move(generator)), max_length_(max_length) {
  if (!generator_)
    throw std::invalid_argument("LazySequence: null generator");
}

void LazySequence::ensure(Time t) {
  if (t >= max_length_)
    throw std::length_error("LazySequence: exceeded max_length guard");
  while (buffer_.length() <= t) buffer_.append(generator_(buffer_.length()));
}

const Interaction& LazySequence::at(Time t) {
  ensure(t);
  return buffer_.at(t);
}

}  // namespace doda::dynagraph
