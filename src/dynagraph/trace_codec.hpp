#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace doda::dynagraph::codec {

// ---------------------------------------------------------------------------
// Entropy codec of the v2 trace block payload (see trace_io.hpp for the
// container format).
//
// The coder is a carry-propagating binary range coder (the LZMA
// construction: 32-bit range, 11-bit adaptive probabilities, shift-5
// adaptation) driving bit-tree byte models. Each byte of the v1-equivalent
// record stream (varint bytes of trial lengths, zigzag deltas and gaps) is
// coded as 8 binary decisions through a 255-node probability tree selected
// by the byte's *class* and, for the value-carrying first bytes, a context
// bucket of the record anchor:
//
//   length bytes      one tree for first bytes, one for continuations
//   delta first byte  bucketed by prev_a (delta = a - prev_a, so the
//                     support and shape of the distribution depend on it;
//                     conditioning recovers H(a) instead of H(a - prev_a))
//   gap first byte    bucketed by a (gap = b - a - 1 lives in [0, n-1-a))
//   continuations     one tree each for delta / gap continuation bytes
//
// Buckets split [0, node_count) into kContextBuckets equal ranges (a shift,
// no division). Models adapt within a block and reset at block boundaries,
// so every block decodes independently given the record-layer state
// (prev_a, remaining trial length) carried across the boundary.
// ---------------------------------------------------------------------------

inline constexpr unsigned kProbBits = 11;
inline constexpr std::uint16_t kProbOne = 1u << kProbBits;
inline constexpr std::uint16_t kProbInit = kProbOne / 2;
inline constexpr unsigned kAdaptShift = 5;
inline constexpr std::uint32_t kTopValue = 1u << 24;
inline constexpr std::size_t kContextBuckets = 32;

/// Byte-class of each symbol in the record stream. The writer and reader
/// derive the class (and bucket) from record state, so it is never stored.
enum class SymbolClass : std::uint8_t {
  kLengthFirst,
  kLengthCont,
  kDeltaFirst,
  kDeltaCont,
  kGapFirst,
  kGapCont,
};

/// Right-shift that maps ids in [0, node_count) onto `buckets` buckets
/// (the v2 models use kContextBuckets; the coarser v3 rANS contexts pass
/// their own count).
inline unsigned bucketShiftFor(std::uint64_t node_count,
                               std::size_t buckets = kContextBuckets) noexcept {
  const unsigned bits =
      std::bit_width(node_count > 1 ? node_count - 1 : std::uint64_t{1});
  const unsigned bucket_bits = std::bit_width(buckets - 1);
  return bits > bucket_bits ? bits - bucket_bits : 0;
}

inline unsigned contextBucket(std::uint64_t value, unsigned shift,
                              std::size_t buckets = kContextBuckets) noexcept {
  const std::uint64_t bucket = value >> shift;
  return bucket < buckets ? static_cast<unsigned>(bucket)
                          : static_cast<unsigned>(buckets - 1);
}

/// Adaptive bit-tree model over one byte (255 node probabilities).
struct ByteModel {
  std::array<std::uint16_t, 255> prob;
  void reset() noexcept { prob.fill(kProbInit); }
};

class RangeEncoder {
 public:
  /// (Re)starts the encoder, appending output to `*out`.
  void start(std::vector<std::uint8_t>* out) noexcept {
    out_ = out;
    low_ = 0;
    range_ = 0xFFFFFFFFu;
    cache_ = 0;
    cache_size_ = 1;
  }

  void encodeBit(std::uint16_t& prob, unsigned bit) {
    const std::uint32_t bound = (range_ >> kProbBits) * prob;
    if (bit == 0) {
      range_ = bound;
      prob = static_cast<std::uint16_t>(prob + ((kProbOne - prob) >> kAdaptShift));
    } else {
      low_ += bound;
      range_ -= bound;
      prob = static_cast<std::uint16_t>(prob - (prob >> kAdaptShift));
    }
    while (range_ < kTopValue) {
      shiftLow();
      range_ <<= 8;
    }
  }

  void encodeByte(ByteModel& model, std::uint8_t byte) {
    unsigned ctx = 1;
    for (int i = 7; i >= 0; --i) {
      const unsigned bit = (byte >> i) & 1u;
      encodeBit(model.prob[ctx - 1], bit);
      ctx = (ctx << 1) | bit;
    }
  }

  /// Flushes the coder state; the output is complete afterwards.
  void finish() {
    for (int i = 0; i < 5; ++i) shiftLow();
  }

 private:
  void shiftLow() {
    if (static_cast<std::uint32_t>(low_) < 0xFF000000u || (low_ >> 32) != 0) {
      std::uint8_t carry_byte = cache_;
      const auto carry = static_cast<std::uint8_t>(low_ >> 32);
      do {
        out_->push_back(static_cast<std::uint8_t>(carry_byte + carry));
        carry_byte = 0xFF;
      } while (--cache_size_ != 0);
      cache_ = static_cast<std::uint8_t>(low_ >> 24);
    }
    ++cache_size_;
    low_ = (low_ << 8) & 0xFFFFFFFFull;
  }

  std::vector<std::uint8_t>* out_ = nullptr;
  std::uint64_t low_ = 0;
  std::uint32_t range_ = 0;
  std::uint8_t cache_ = 0;
  std::uint64_t cache_size_ = 0;
};

class RangeDecoder {
 public:
  /// (Re)starts the decoder over `[data, data + size)`. Reading past the
  /// end never faults: it feeds zero bytes and raises the overrun flag,
  /// which the caller must treat as a corrupt block.
  void start(const std::uint8_t* data, std::size_t size) noexcept {
    data_ = data;
    size_ = size;
    pos_ = 0;
    range_ = 0xFFFFFFFFu;
    code_ = 0;
    overrun_ = false;
    takeByte();  // leading zero byte of the encoder's first shiftLow
    for (int i = 0; i < 4; ++i) code_ = (code_ << 8) | takeByte();
  }

  unsigned decodeBit(std::uint16_t& prob) {
    const std::uint32_t bound = (range_ >> kProbBits) * prob;
    unsigned bit;
    if (code_ < bound) {
      range_ = bound;
      prob = static_cast<std::uint16_t>(prob + ((kProbOne - prob) >> kAdaptShift));
      bit = 0;
    } else {
      code_ -= bound;
      range_ -= bound;
      prob = static_cast<std::uint16_t>(prob - (prob >> kAdaptShift));
      bit = 1;
    }
    while (range_ < kTopValue) {
      range_ <<= 8;
      code_ = (code_ << 8) | takeByte();
    }
    return bit;
  }

  std::uint8_t decodeByte(ByteModel& model) {
    unsigned ctx = 1;
    for (int i = 0; i < 8; ++i) ctx = (ctx << 1) | decodeBit(model.prob[ctx - 1]);
    return static_cast<std::uint8_t>(ctx & 0xFFu);
  }

  bool overrun() const noexcept { return overrun_; }

 private:
  std::uint8_t takeByte() {
    if (pos_ < size_) return data_[pos_++];
    overrun_ = true;
    return 0;
  }

  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t pos_ = 0;
  std::uint32_t range_ = 0;
  std::uint32_t code_ = 0;
  bool overrun_ = false;
};

/// The full model set of one trace block (reset at every block boundary).
struct TraceModels {
  ByteModel length_first;
  ByteModel length_cont;
  ByteModel delta_cont;
  ByteModel gap_cont;
  std::array<ByteModel, kContextBuckets> delta_first;
  std::array<ByteModel, kContextBuckets> gap_first;

  void reset() noexcept {
    length_first.reset();
    length_cont.reset();
    delta_cont.reset();
    gap_cont.reset();
    for (auto& model : delta_first) model.reset();
    for (auto& model : gap_first) model.reset();
  }

  ByteModel& select(SymbolClass cls, unsigned bucket) noexcept {
    switch (cls) {
      case SymbolClass::kLengthFirst:
        return length_first;
      case SymbolClass::kLengthCont:
        return length_cont;
      case SymbolClass::kDeltaFirst:
        return delta_first[bucket];
      case SymbolClass::kDeltaCont:
        return delta_cont;
      case SymbolClass::kGapFirst:
        return gap_first[bucket];
      case SymbolClass::kGapCont:
      default:
        return gap_cont;
    }
  }
};

}  // namespace doda::dynagraph::codec
