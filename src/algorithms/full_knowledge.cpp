#include "algorithms/full_knowledge.hpp"

#include "analysis/convergecast.hpp"

namespace doda::algorithms {

FullKnowledgeOptimal::FullKnowledgeOptimal(
    dynagraph::InteractionSequenceView sequence, core::Time start)
    : sequence_(sequence), start_(start) {}

void FullKnowledgeOptimal::reset(const core::SystemInfo& info) {
  plan_.clear();
  const auto schedule = analysis::optimalSchedule(sequence_, info.node_count,
                                                  info.sink, start_);
  for (const auto& rec : schedule) plan_.emplace(rec.time, rec.receiver);
}

std::optional<core::NodeId> FullKnowledgeOptimal::decide(
    const core::Interaction& i, core::Time t,
    const core::ExecutionView& /*view*/) {
  const auto it = plan_.find(t);
  if (it == plan_.end()) return std::nullopt;
  // In a consistent run the planned pair always matches the delivered
  // interaction; if a different adversary is substituted, ignore the plan
  // entry rather than violating the model.
  if (!i.involves(it->second)) return std::nullopt;
  return it->second;
}

}  // namespace doda::algorithms
