#pragma once

#include "core/algorithm.hpp"

namespace doda::algorithms {

/// The Waiting algorithm W (paper §4): a node transmits only when it is
/// connected to the sink. Oblivious, no knowledge.
///
///   W(u1, u2, t) = u_i  if u_i.isSink,   ⊥ otherwise.
///
/// Under the randomized adversary, W terminates in
/// E[X_W] = n(n-1)/2 * H(n-1) = O(n^2 log n) interactions (paper Thm 9).
class Waiting final : public core::DodaAlgorithm {
 public:
  std::string name() const override { return "Waiting"; }
  bool isOblivious() const override { return true; }
  bool isEndpointLocal() const override { return true; }
  std::string knowledge() const override { return "none"; }

  std::optional<core::NodeId> decide(const core::Interaction& i,
                                     core::Time /*t*/,
                                     const core::ExecutionView& view) override {
    const auto sink = view.system().sink;
    if (i.involves(sink)) return sink;
    return std::nullopt;
  }
};

}  // namespace doda::algorithms
