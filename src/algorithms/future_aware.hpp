#pragma once

#include <unordered_map>

#include "core/algorithm.hpp"
#include "dynagraph/interaction_sequence.hpp"

namespace doda::algorithms {

/// The future-knowledge algorithm of paper Thm 6 / Cor 1: each node starts
/// knowing only its *own* future (the interactions it takes part in, with
/// their times). Control information is exchanged on every interaction, so
/// node futures spread epidemically; once a node has collected the futures
/// of all n nodes it knows the entire sequence.
///
/// Every fully-informed node deterministically simulates that very
/// dissemination process to compute t* — the time by which ALL nodes are
/// fully informed — and then follows the optimal offline convergecast
/// schedule computed on the suffix starting at t*+1. All fully-informed
/// nodes compute the same t* and the same schedule, and nobody transmits
/// before t*, so the execution is consistent.
///
/// Cost <= n against any adversary (Thm 6: n-1 convergecasts suffice to
/// broadcast all futures, one more aggregates); under the randomized
/// adversary it terminates in Theta(n log n) interactions w.h.p. (Cor 1).
class FutureAware final : public core::DodaAlgorithm {
 public:
  /// `sequence` is the ground-truth dynamic graph from which each node's
  /// future is derived (the per-node futures are exactly its restriction).
  /// Borrowed: the viewed storage must outlive the algorithm (an
  /// InteractionSequence converts implicitly).
  explicit FutureAware(dynagraph::InteractionSequenceView sequence);
  /// A temporary sequence would dangle behind the borrowed view — name it.
  explicit FutureAware(dynagraph::InteractionSequence&&) = delete;

  std::string name() const override { return "FutureAware"; }
  /// Nodes accumulate received futures between interactions.
  bool isOblivious() const override { return false; }
  std::string knowledge() const override { return "future"; }

  void reset(const core::SystemInfo& info) override;

  std::optional<core::NodeId> decide(const core::Interaction& i,
                                     core::Time t,
                                     const core::ExecutionView& view) override;

  /// Time at which every node is fully informed (kNever if dissemination
  /// does not complete within the sequence). Valid after reset().
  core::Time disseminationComplete() const noexcept { return t_star_; }

  /// True if a convergecast fits after dissemination completes.
  bool feasible() const noexcept { return !plan_.empty(); }

 private:
  dynagraph::InteractionSequenceView sequence_;
  core::Time t_star_ = dynagraph::kNever;
  std::unordered_map<core::Time, core::NodeId> plan_;
};

}  // namespace doda::algorithms
