#include "algorithms/future_aware.hpp"

#include <vector>

#include "analysis/convergecast.hpp"

namespace doda::algorithms {

using core::NodeId;
using core::Time;
using dynagraph::kNever;

FutureAware::FutureAware(dynagraph::InteractionSequenceView sequence)
    : sequence_(sequence) {}

void FutureAware::reset(const core::SystemInfo& info) {
  plan_.clear();
  t_star_ = kNever;

  // Simulate the epidemic dissemination of per-node futures: knows[u][v]
  // means u knows v's future. Initially knows[u] = {u}; every interaction
  // merges both endpoints' knowledge (control information is exchanged on
  // every interaction regardless of data transfers). Represented as
  // 64-bit blocks for O(n/64) merges.
  const std::size_t n = info.node_count;
  const std::size_t blocks = (n + 63) / 64;
  std::vector<std::vector<std::uint64_t>> knows(
      n, std::vector<std::uint64_t>(blocks, 0));
  auto full = [&](const std::vector<std::uint64_t>& k) {
    std::size_t bits = 0;
    for (auto w : k) bits += static_cast<std::size_t>(__builtin_popcountll(w));
    return bits == n;
  };
  for (std::size_t u = 0; u < n; ++u) knows[u][u / 64] |= 1ULL << (u % 64);

  std::size_t fully_informed = n == 1 ? 1 : 0;
  for (Time t = 0; t < sequence_.length() && fully_informed < n; ++t) {
    const auto& i = sequence_.at(t);
    auto& ka = knows[i.a()];
    auto& kb = knows[i.b()];
    const bool a_was_full = full(ka);
    const bool b_was_full = full(kb);
    for (std::size_t w = 0; w < blocks; ++w) {
      const std::uint64_t merged = ka[w] | kb[w];
      ka[w] = merged;
      kb[w] = merged;
    }
    if (!a_was_full && full(ka)) ++fully_informed;
    if (!b_was_full && full(kb)) ++fully_informed;
    if (fully_informed == n) t_star_ = t;
  }
  if (t_star_ == kNever) return;  // dissemination never completes: all wait

  const auto schedule = analysis::optimalSchedule(sequence_, info.node_count,
                                                  info.sink, t_star_ + 1);
  for (const auto& rec : schedule) plan_.emplace(rec.time, rec.receiver);
}

std::optional<NodeId> FutureAware::decide(const core::Interaction& i, Time t,
                                          const core::ExecutionView& /*view*/) {
  if (t_star_ == kNever || t <= t_star_) return std::nullopt;
  const auto it = plan_.find(t);
  if (it == plan_.end()) return std::nullopt;
  if (!i.involves(it->second)) return std::nullopt;
  return it->second;
}

}  // namespace doda::algorithms
