#pragma once

#include "core/algorithm.hpp"

namespace doda::algorithms {

/// The Gathering algorithm GA (paper §4): a node transmits whenever it is
/// connected to the sink or to another node owning data. Oblivious, no
/// knowledge. Symmetry is broken by node identifiers: the smaller-id node
/// (the paper's u1) receives.
///
///   GA(u1, u2, t) = u_i  if u_i.isSink,   u1 otherwise.
///
/// Under the randomized adversary, GA terminates in
/// E[X_G] = n(n-1) * sum 1/(i(i+1)) = O(n^2) interactions (paper Thm 9) —
/// which is optimal for algorithms with no knowledge (Thm 7 / Cor 2).
class Gathering final : public core::DodaAlgorithm {
 public:
  std::string name() const override { return "Gathering"; }
  bool isOblivious() const override { return true; }
  bool isEndpointLocal() const override { return true; }
  std::string knowledge() const override { return "none"; }

  std::optional<core::NodeId> decide(const core::Interaction& i,
                                     core::Time /*t*/,
                                     const core::ExecutionView& view) override {
    const auto sink = view.system().sink;
    if (i.involves(sink)) return sink;
    return i.a();  // interaction endpoints are ordered by id: a() is u1
  }
};

}  // namespace doda::algorithms
