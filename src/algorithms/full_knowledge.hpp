#pragma once

#include <unordered_map>

#include "core/algorithm.hpp"
#include "dynagraph/interaction_sequence.hpp"

namespace doda::algorithms {

/// The full-knowledge optimal algorithm (paper Thm 8): given the entire
/// sequence of interactions in advance, compute an optimal offline
/// convergecast schedule and follow it.
///
/// By construction cost = 1 whenever a convergecast is possible at all, and
/// under the randomized adversary it terminates in Theta(n log n)
/// interactions in expectation and w.h.p.
class FullKnowledgeOptimal final : public core::DodaAlgorithm {
 public:
  /// `sequence` is the full-knowledge oracle: the exact sequence the
  /// adversary will play, *borrowed* — the viewed storage must outlive the
  /// algorithm (an InteractionSequence converts implicitly). Borrowing lets
  /// measurement and replay loops hand the per-trial sequence to the
  /// algorithm without a copy. `start` is the first time the schedule may
  /// use.
  explicit FullKnowledgeOptimal(dynagraph::InteractionSequenceView sequence,
                                core::Time start = 0);
  /// A temporary sequence would dangle behind the borrowed view — name it.
  explicit FullKnowledgeOptimal(dynagraph::InteractionSequence&&,
                                core::Time = 0) = delete;

  std::string name() const override { return "FullKnowledgeOptimal"; }
  bool isOblivious() const override { return true; }
  std::string knowledge() const override { return "full"; }

  void reset(const core::SystemInfo& info) override;

  std::optional<core::NodeId> decide(const core::Interaction& i,
                                     core::Time t,
                                     const core::ExecutionView& view) override;

  /// True if an optimal schedule exists within the known sequence.
  bool feasible() const noexcept { return !plan_.empty(); }

 private:
  dynagraph::InteractionSequenceView sequence_;
  core::Time start_;
  /// time -> receiver of the transfer planned at that time.
  std::unordered_map<core::Time, core::NodeId> plan_;
};

}  // namespace doda::algorithms
