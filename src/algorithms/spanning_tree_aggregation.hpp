#pragma once

#include <optional>

#include "core/algorithm.hpp"
#include "graph/spanning_tree.hpp"
#include "graph/static_graph.hpp"

namespace doda::algorithms {

/// The underlying-graph algorithm of paper Thm 4/5: every node computes the
/// same spanning tree of G̅ rooted at the sink (deterministically, from node
/// identifiers), waits until it has received the data of all its children,
/// then transmits to its parent at the first opportunity.
///
/// * If every recurring interaction occurs infinitely often, the cost is
///   finite (Thm 4) but unbounded in general.
/// * If G̅ is a tree, the algorithm is optimal: cost = 1 (Thm 5).
///
/// The algorithm is oblivious in the paper's sense: the "have I heard from
/// all children?" test reads the source-set of the node's own datum (data
/// content, not per-node control memory).
class SpanningTreeAggregation final : public core::DodaAlgorithm {
 public:
  /// `underlying` is the knowledge G̅ given to every node (paper §3.2). The
  /// graph must be connected.
  explicit SpanningTreeAggregation(graph::StaticGraph underlying)
      : underlying_(std::move(underlying)) {}

  std::string name() const override { return "SpanningTreeAggregation"; }
  bool isOblivious() const override { return true; }
  std::string knowledge() const override { return "underlying graph"; }

  void reset(const core::SystemInfo& info) override {
    tree_ = graph::SpanningTree::bfs(underlying_, info.sink);
  }

  std::optional<core::NodeId> decide(const core::Interaction& i,
                                     core::Time /*t*/,
                                     const core::ExecutionView& view) override {
    if (!tree_) return std::nullopt;
    // A transfer happens only from a child to its tree parent, and only
    // once the child's datum already contains every child of its own.
    if (readyToSend(i.a(), i.b(), view)) return i.b();
    if (readyToSend(i.b(), i.a(), view)) return i.a();
    return std::nullopt;
  }

 private:
  bool readyToSend(core::NodeId child, core::NodeId parent,
                   const core::ExecutionView& view) const {
    if (tree_->parent(child) != parent) return false;
    const auto& datum = view.datumOf(child);
    for (core::NodeId c : tree_->children(child))
      if (!datum.containsSource(c)) return false;
    return true;
  }

  graph::StaticGraph underlying_;
  std::optional<graph::SpanningTree> tree_;
};

}  // namespace doda::algorithms
