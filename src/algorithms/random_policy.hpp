#pragma once

#include "core/algorithm.hpp"
#include "util/rng.hpp"

namespace doda::algorithms {

/// Baseline coin-flip policy: on each interaction, transfer with
/// probability `p`, sending toward the sink when present and otherwise to a
/// uniformly random endpoint. Not from the paper — used as a sanity
/// baseline in benches (anything reasonable should beat it or match it).
class RandomPolicy final : public core::DodaAlgorithm {
 public:
  explicit RandomPolicy(std::uint64_t seed, double transfer_probability = 0.5)
      : seed_(seed), rng_(seed), p_(transfer_probability) {}

  std::string name() const override { return "RandomPolicy"; }
  bool isOblivious() const override { return true; }
  std::string knowledge() const override { return "none"; }

  void reset(const core::SystemInfo& /*info*/) override {
    rng_ = util::Rng(seed_);  // reproducible across runs
  }

  std::optional<core::NodeId> decide(const core::Interaction& i,
                                     core::Time /*t*/,
                                     const core::ExecutionView& view) override {
    const auto sink = view.system().sink;
    if (i.involves(sink)) return sink;  // delivering to the sink never hurts
    if (!rng_.chance(p_)) return std::nullopt;
    return rng_.chance(0.5) ? i.a() : i.b();
  }

 private:
  std::uint64_t seed_;
  util::Rng rng_;
  double p_;
};

}  // namespace doda::algorithms
