#pragma once

#include <optional>

#include "core/algorithm.hpp"
#include "dynagraph/oracles.hpp"

namespace doda::algorithms {

/// The Waiting Greedy algorithm WG_tau (paper §4), using the meetTime
/// knowledge: at interaction {u1, u2} at time t, with m_i = u_i.meetTime(t)
/// (the time of u_i's next interaction with the sink; identity for the sink
/// itself):
///
///   WG_tau(u1, u2, t) = u1 if m1 <= m2 and tau < m2
///                       u2 if m1 >  m2 and tau < m1
///                       ⊥  otherwise
///
/// i.e. the node with the later sink meeting transmits, but only if that
/// meeting falls beyond the horizon tau; nodes meeting the sink before tau
/// keep their data (they will deliver it directly). After time tau the
/// algorithm degenerates to Gathering.
///
/// With tau = Theta(n^{3/2} sqrt(log n)) the algorithm terminates within
/// tau interactions w.h.p. (paper Thm 10 / Cor 3), optimal among all
/// algorithms knowing only meetTime (Thm 11).
///
/// The knowledge is abstracted behind dynagraph::MeetTimeOracle, so the
/// same algorithm runs with exact, windowed (bounded-foresight) or
/// quantized (fixed-memory) meetTime — the ablations suggested by the
/// paper's concluding remarks #1 and #2. A meeting the oracle does not
/// know (kNever) behaves as "later than everything" — the correct limit.
class WaitingGreedy final : public core::DodaAlgorithm {
 public:
  /// Runs with the exact oracle backed by `index` (the paper's setting).
  /// The index must outlive the algorithm and must be backed by the very
  /// sequence the adversary plays.
  WaitingGreedy(dynagraph::MeetTimeIndex& index, core::Time tau)
      : exact_(std::in_place, index), oracle_(&*exact_), tau_(tau) {}

  /// Runs with an arbitrary (possibly degraded) meetTime oracle.
  WaitingGreedy(dynagraph::MeetTimeOracle& oracle, core::Time tau)
      : oracle_(&oracle), tau_(tau) {}

  std::string name() const override { return "WaitingGreedy"; }
  bool isOblivious() const override { return true; }
  std::string knowledge() const override { return "meetTime"; }

  core::Time tau() const noexcept { return tau_; }

  std::optional<core::NodeId> decide(const core::Interaction& i,
                                     core::Time t,
                                     const core::ExecutionView& /*view*/)
      override {
    const core::Time m1 = oracle_->meetTime(i.a(), t);
    const core::Time m2 = oracle_->meetTime(i.b(), t);
    if (m1 <= m2 && tau_ < m2) return i.a();
    if (m1 > m2 && tau_ < m1) return i.b();
    return std::nullopt;
  }

 private:
  std::optional<dynagraph::ExactMeetTimeOracle> exact_;
  dynagraph::MeetTimeOracle* oracle_;
  core::Time tau_;
};

}  // namespace doda::algorithms
