#include "sim/parallel.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "util/rng.hpp"

namespace doda::sim {

void MeasureResult::merge(const MeasureResult& other) {
  interactions.merge(other.interactions);
  cost.merge(other.cost);
  failed_trials += other.failed_trials;
}

std::size_t resolveThreads(std::size_t requested, std::size_t trials) {
  std::size_t threads = requested;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;  // hardware_concurrency may be unknown
  }
  if (trials > 0 && threads > trials) threads = trials;
  return threads > 0 ? threads : 1;
}

void foldOutcome(MeasureResult& out, const TrialOutcome& outcome) {
  if (!outcome.success) {
    ++out.failed_trials;
    return;
  }
  out.interactions.add(outcome.interactions);
  if (outcome.has_cost) out.cost.add(outcome.cost);
}

void runIndexedTasks(std::size_t count, std::size_t threads,
                     const IndexedTask& task) {
  threads = resolveThreads(threads, count);

  if (threads <= 1) {
    // Serial path: same tasks, index order, no thread spawn.
    core::Engine::Scratch scratch;
    for (std::size_t index = 0; index < count; ++index) task(index, scratch);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> stop{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&] {
    core::Engine::Scratch scratch;
    for (;;) {
      const std::size_t index = next.fetch_add(1, std::memory_order_relaxed);
      if (index >= count || stop.load(std::memory_order_relaxed)) return;
      try {
        task(index, scratch);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        stop.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) pool.emplace_back(worker);
  for (auto& thread : pool) thread.join();
  if (first_error) std::rethrow_exception(first_error);
}

MeasureResult runTrials(std::size_t trials, std::uint64_t master_seed,
                        std::size_t threads, const TrialBody& body,
                        const RunControl* control) {
  // Pre-draw every trial seed so randomness is a function of the trial
  // index alone — the determinism anchor of the whole subsystem.
  util::Rng master(master_seed);
  std::vector<std::uint64_t> seeds(trials);
  for (auto& seed : seeds) seed = master();

  const bool observed = control != nullptr && control->progress != nullptr;
  const std::atomic<bool>* cancel =
      control != nullptr ? control->cancel : nullptr;

  MeasureResult out;
  std::vector<TrialOutcome> outcomes(trials);
  // Incremental-fold state (observed runs only): completion flags plus the
  // index of the first trial not yet folded. The fold still advances
  // strictly in trial order — a worker finishing trial 7 before trial 3
  // only parks its outcome until the prefix catches up.
  std::vector<std::uint8_t> done(observed ? trials : 0, 0);
  std::size_t folded = 0;
  std::mutex fold_mutex;

  runIndexedTasks(trials, threads,
                  [&](std::size_t trial, core::Engine::Scratch& scratch) {
                    if (cancel != nullptr &&
                        cancel->load(std::memory_order_relaxed))
                      throw RunCancelled();
                    outcomes[trial] = body(trial, seeds[trial], scratch);
                    if (!observed) return;
                    const std::lock_guard<std::mutex> lock(fold_mutex);
                    done[trial] = 1;
                    while (folded < trials && done[folded]) {
                      foldOutcome(out, outcomes[folded]);
                      ++folded;
                      control->progress(folded, out);
                    }
                  });
  if (observed) return out;

  // Ordered fold: trial 0, 1, 2, ... regardless of which worker ran what,
  // so the floating-point accumulation is identical for every thread
  // count.
  for (const auto& outcome : outcomes) foldOutcome(out, outcome);
  return out;
}

}  // namespace doda::sim
