#include "sim/experiment.hpp"

#include <algorithm>
#include <cmath>

#include "adversary/sequence_adversary.hpp"
#include "analysis/convergecast.hpp"
#include "dynagraph/traces.hpp"
#include "util/rng.hpp"

namespace doda::sim {

using core::SystemInfo;
using core::Time;
using dynagraph::InteractionSequence;
using dynagraph::kNever;

namespace {

SystemInfo systemOf(const MeasureConfig& config) {
  return SystemInfo{config.node_count, config.sink};
}

std::unique_ptr<core::Adversary> makeAdversary(const MeasureConfig& config,
                                               std::uint64_t seed) {
  if (config.zipf_exponent > 0.0)
    return std::make_unique<adversary::NonUniformAdversary>(
        config.node_count, config.zipf_exponent, seed);
  return std::make_unique<adversary::RandomizedAdversary>(config.node_count,
                                                          seed);
}

InteractionSequence drawSequence(const MeasureConfig& config, Time length,
                                 util::Rng& rng) {
  if (config.zipf_exponent > 0.0)
    return dynagraph::traces::zipfRandom(config.node_count, length,
                                         config.zipf_exponent, rng);
  return dynagraph::traces::uniformRandom(config.node_count, length, rng);
}

}  // namespace

MeasureResult measureRandomized(const MeasureConfig& config,
                                const AlgorithmFactory& factory) {
  const SystemInfo info = systemOf(config);
  util::Rng master(config.seed);
  MeasureResult out;
  for (std::size_t trial = 0; trial < config.trials; ++trial) {
    const std::uint64_t trial_seed = master();
    auto adversary = makeAdversary(config, trial_seed);
    // Both adversary flavours expose their committed randomness; build the
    // meetTime oracle on it.
    dynagraph::MeetTimeIndex index =
        config.zipf_exponent > 0.0
            ? static_cast<adversary::NonUniformAdversary&>(*adversary)
                  .makeMeetTimeIndex(config.sink)
            : static_cast<adversary::RandomizedAdversary&>(*adversary)
                  .makeMeetTimeIndex(config.sink);
    TrialContext context{info, *adversary, index};
    const auto algorithm = factory(context);
    core::Engine engine(info, core::AggregationFunction::count());
    core::RunOptions options;
    options.max_interactions = config.max_interactions;
    const auto result = engine.run(*algorithm, *adversary, options);
    if (result.terminated)
      out.interactions.add(
          static_cast<double>(result.interactions_to_terminate));
    else
      ++out.failed_trials;
  }
  return out;
}

MeasureResult measureOfflineOptimal(const MeasureConfig& config) {
  util::Rng master(config.seed);
  MeasureResult out;
  const auto n = static_cast<double>(config.node_count);
  const Time initial = std::max<Time>(
      16, static_cast<Time>(4.0 * n * std::log(std::max(2.0, n))));
  for (std::size_t trial = 0; trial < config.trials; ++trial) {
    util::Rng rng(master());
    InteractionSequence seq = drawSequence(config, initial, rng);
    Time opt = kNever;
    while (true) {
      opt = analysis::optCompletion(seq, config.node_count, config.sink, 0);
      if (opt != kNever || seq.length() >= config.max_interactions) break;
      // Double by appending fresh randomness (the prefix stays committed).
      InteractionSequence more = drawSequence(config, seq.length(), rng);
      seq.appendAll(more);
    }
    if (opt == kNever) {
      ++out.failed_trials;
      continue;
    }
    out.interactions.add(static_cast<double>(opt + 1));
    out.cost.add(1.0);  // the offline optimum has cost 1 by definition
  }
  return out;
}

MeasureResult measureMaterialized(const MeasureConfig& config,
                                  Time initial_length,
                                  const SequenceAlgorithmFactory& factory,
                                  std::size_t max_doublings) {
  const SystemInfo info = systemOf(config);
  util::Rng master(config.seed);
  MeasureResult out;
  for (std::size_t trial = 0; trial < config.trials; ++trial) {
    util::Rng rng(master());
    bool done = false;
    Time length = initial_length;
    for (std::size_t attempt = 0; attempt <= max_doublings && !done;
         ++attempt, length *= 2) {
      const InteractionSequence seq = drawSequence(config, length, rng);
      const auto algorithm = factory(seq, info);
      adversary::SequenceAdversary seq_adversary(seq);
      core::Engine engine(info, core::AggregationFunction::count());
      core::RunOptions options;
      options.max_interactions = std::min<Time>(length, config.max_interactions);
      const auto result = engine.run(*algorithm, seq_adversary, options);
      if (!result.terminated) continue;
      out.interactions.add(
          static_cast<double>(result.interactions_to_terminate));
      out.cost.add(static_cast<double>(analysis::costOf(
          seq, config.node_count, config.sink,
          result.last_transmission_time)));
      done = true;
    }
    if (!done) ++out.failed_trials;
  }
  return out;
}

MeasureResult measureWithCost(const MeasureConfig& config, Time length_hint,
                              const AlgorithmFactory& factory,
                              std::size_t max_doublings) {
  const SystemInfo info = systemOf(config);
  util::Rng master(config.seed);
  MeasureResult out;
  for (std::size_t trial = 0; trial < config.trials; ++trial) {
    util::Rng rng(master());
    InteractionSequence seq = drawSequence(config, length_hint, rng);
    bool done = false;
    for (std::size_t attempt = 0; attempt <= max_doublings && !done;
         ++attempt) {
      adversary::SequenceAdversary seq_adversary(seq);
      dynagraph::MeetTimeIndex index(seq_adversary.sequence(), config.sink,
                                     config.node_count);
      TrialContext context{info, seq_adversary, index};
      const auto algorithm = factory(context);
      core::Engine engine(info, core::AggregationFunction::count());
      core::RunOptions options;
      options.max_interactions =
          std::min<Time>(seq.length(), config.max_interactions);
      const auto result = engine.run(*algorithm, seq_adversary, options);
      if (result.terminated) {
        out.interactions.add(
            static_cast<double>(result.interactions_to_terminate));
        out.cost.add(static_cast<double>(analysis::costOf(
            seq, config.node_count, config.sink,
            result.last_transmission_time)));
        done = true;
      } else {
        // Extend the committed prefix with fresh randomness and rerun.
        seq.appendAll(drawSequence(config, seq.length(), rng));
      }
    }
    if (!done) ++out.failed_trials;
  }
  return out;
}

}  // namespace doda::sim
