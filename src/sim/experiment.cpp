#include "sim/experiment.hpp"

#include <algorithm>
#include <cmath>

#include "adversary/sequence_adversary.hpp"
#include "analysis/convergecast.hpp"
#include "dynagraph/traces.hpp"
#include "sim/trace_replay.hpp"
#include "util/rng.hpp"

namespace doda::sim {

using core::SystemInfo;
using core::Time;
using dynagraph::InteractionSequence;
using dynagraph::kNever;

namespace {

SystemInfo systemOf(const MeasureConfig& config) {
  return SystemInfo{config.node_count, config.sink};
}

std::unique_ptr<core::Adversary> makeAdversary(const MeasureConfig& config,
                                               std::uint64_t seed) {
  if (config.zipf_exponent > 0.0)
    return std::make_unique<adversary::NonUniformAdversary>(
        config.node_count, config.zipf_exponent, seed);
  return std::make_unique<adversary::RandomizedAdversary>(
      config.node_count, seed, core::Time{1} << 34, config.seed_format);
}

core::RunOptions measurementRunOptions(Time max_interactions) {
  core::RunOptions options;
  options.max_interactions = max_interactions;
  options.capture_schedule = false;  // only the scalar outcome is folded
  return options;
}

bool useBlockedEngine(const MeasureConfig& config,
                      const core::DodaAlgorithm& algorithm) {
  return (config.intra_trial_workers != 1 ||
          config.intra_trial_partitions > 1) &&
         algorithm.isEndpointLocal();
}

core::IntraTrialOptions intraOptionsOf(const MeasureConfig& config) {
  core::IntraTrialOptions intra;
  intra.workers = config.intra_trial_workers;
  intra.partitions = config.intra_trial_partitions;
  intra.block_size = config.intra_trial_block;
  return intra;
}

}  // namespace

MeasureResult measureRandomized(const MeasureConfig& config,
                                const AlgorithmFactory& factory) {
  const SystemInfo info = systemOf(config);
  return runTrials(
      config.trials, config.seed, config.threads,
      [&](std::size_t /*trial*/, std::uint64_t seed,
          core::Engine::Scratch& scratch) {
        auto adversary = makeAdversary(config, seed);
        // Both adversary flavours expose their committed randomness; build
        // the meetTime oracle on it.
        dynagraph::MeetTimeIndex index =
            config.zipf_exponent > 0.0
                ? static_cast<adversary::NonUniformAdversary&>(*adversary)
                      .makeMeetTimeIndex(config.sink)
                : static_cast<adversary::RandomizedAdversary&>(*adversary)
                      .makeMeetTimeIndex(config.sink);
        TrialContext context{info, *adversary, index};
        const auto algorithm = factory(context);
        core::Engine engine(info, core::AggregationFunction::count());
        const auto options = measurementRunOptions(config.max_interactions);
        const auto result =
            useBlockedEngine(config, *algorithm)
                ? engine.runBlocked(
                      scratch, *algorithm,
                      config.zipf_exponent > 0.0
                          ? static_cast<adversary::NonUniformAdversary&>(
                                *adversary)
                                .lazySequence()
                          : static_cast<adversary::RandomizedAdversary&>(
                                *adversary)
                                .lazySequence(),
                      options, intraOptionsOf(config))
                : engine.runInto(scratch, *algorithm, *adversary, options);
        TrialOutcome outcome;
        if (!result.terminated) return TrialOutcome::failure();
        outcome.success = true;
        outcome.interactions =
            static_cast<double>(result.interactions_to_terminate);
        return outcome;
      },
      config.control);
}

MeasureResult measureOfflineOptimal(const MeasureConfig& config) {
  // E[opt] = (n-1)H(n-1) (Thm 8); draw a 1.25x margin and extend by
  // doubling on the rare trial whose convergecast doesn't fit. The margin
  // only affects how often the doubling path runs, never the measured
  // statistic: opt is read from the committed prefix either way.
  const Time initial = std::max<Time>(
      16, static_cast<Time>(
              1.25 * util::closed_form::broadcastExpected(config.node_count)));
  return runTrials(
      config.trials, config.seed, config.threads,
      [&, initial](std::size_t /*trial*/, std::uint64_t seed,
                   core::Engine::Scratch& /*scratch*/) {
        util::Rng rng(seed);
        InteractionSequence seq = drawAdversarySequence(config, initial, rng);
        Time opt = kNever;
        while (true) {
          opt = analysis::optCompletion(seq, config.node_count, config.sink,
                                        0);
          if (opt != kNever || seq.length() >= config.max_interactions)
            break;
          // Double by appending fresh randomness (the prefix stays
          // committed).
          InteractionSequence more =
              drawAdversarySequence(config, seq.length(), rng);
          seq.appendAll(more);
        }
        if (opt == kNever) return TrialOutcome::failure();
        TrialOutcome outcome;
        outcome.success = true;
        outcome.interactions = static_cast<double>(opt + 1);
        outcome.cost = 1.0;  // the offline optimum has cost 1 by definition
        outcome.has_cost = true;
        return outcome;
      },
      config.control);
}

MeasureResult measureMaterialized(const MeasureConfig& config,
                                  Time initial_length,
                                  const SequenceAlgorithmFactory& factory,
                                  std::size_t max_doublings) {
  const SystemInfo info = systemOf(config);
  return runTrials(
      config.trials, config.seed, config.threads,
      [&, initial_length](std::size_t /*trial*/, std::uint64_t seed,
                          core::Engine::Scratch& scratch) {
        util::Rng rng(seed);
        Time length = initial_length;
        for (std::size_t attempt = 0; attempt <= max_doublings;
             ++attempt, length *= 2) {
          const InteractionSequence seq =
              drawAdversarySequence(config, length, rng);
          const auto algorithm = factory(seq, info);
          adversary::SequenceViewAdversary seq_adversary{seq};
          core::Engine engine(info, core::AggregationFunction::count());
          const auto result = engine.runInto(
              scratch, *algorithm, seq_adversary,
              measurementRunOptions(
                  std::min<Time>(length, config.max_interactions)));
          if (!result.terminated) continue;
          TrialOutcome outcome;
          outcome.success = true;
          outcome.interactions =
              static_cast<double>(result.interactions_to_terminate);
          outcome.cost = static_cast<double>(
              analysis::costOf(seq, config.node_count, config.sink,
                               result.last_transmission_time));
          outcome.has_cost = true;
          return outcome;
        }
        return TrialOutcome::failure();
      },
      config.control);
}

MeasureResult measureWithCost(const MeasureConfig& config, Time length_hint,
                              const AlgorithmFactory& factory,
                              std::size_t max_doublings) {
  const SystemInfo info = systemOf(config);
  return runTrials(
      config.trials, config.seed, config.threads,
      [&, length_hint](std::size_t /*trial*/, std::uint64_t seed,
                       core::Engine::Scratch& scratch) {
        util::Rng rng(seed);
        InteractionSequence seq =
            drawAdversarySequence(config, length_hint, rng);
        for (std::size_t attempt = 0; attempt <= max_doublings; ++attempt) {
          adversary::SequenceViewAdversary seq_adversary{seq};
          dynagraph::MeetTimeIndex index(seq, config.sink,
                                         config.node_count);
          TrialContext context{info, seq_adversary, index};
          const auto algorithm = factory(context);
          core::Engine engine(info, core::AggregationFunction::count());
          const auto options = measurementRunOptions(
              std::min<Time>(seq.length(), config.max_interactions));
          const auto result =
              useBlockedEngine(config, *algorithm)
                  ? engine.runBlocked(scratch, *algorithm,
                                      dynagraph::InteractionSequenceView(seq),
                                      options, intraOptionsOf(config))
                  : engine.runInto(scratch, *algorithm, seq_adversary,
                                   options);
          if (result.terminated) {
            TrialOutcome outcome;
            outcome.success = true;
            outcome.interactions =
                static_cast<double>(result.interactions_to_terminate);
            outcome.cost = static_cast<double>(
                analysis::costOf(seq, config.node_count, config.sink,
                                 result.last_transmission_time));
            outcome.has_cost = true;
            return outcome;
          }
          // Extend the committed prefix with fresh randomness and rerun.
          seq.appendAll(drawAdversarySequence(config, seq.length(), rng));
        }
        return TrialOutcome::failure();
      },
      config.control);
}

InteractionSequence drawAdversarySequence(const MeasureConfig& config,
                                          Time length, util::Rng& rng) {
  if (config.zipf_exponent > 0.0)
    return dynagraph::traces::zipfRandom(config.node_count, length,
                                         config.zipf_exponent, rng);
  return dynagraph::traces::uniformRandom(config.node_count, length, rng,
                                          config.seed_format);
}

namespace {

ReplayConfig replayConfigOf(const dynagraph::TraceStore& store,
                            const MeasureConfig& config, bool compute_cost) {
  if (store.nodeCount() != config.node_count)
    throw std::invalid_argument(
        "measureReplayed: store records " +
        std::to_string(store.nodeCount()) + " nodes, config expects " +
        std::to_string(config.node_count));
  ReplayConfig replay;
  replay.sink = config.sink;
  replay.threads = config.threads;
  replay.max_interactions = config.max_interactions;
  replay.compute_cost = compute_cost;
  replay.control = config.control;
  return replay;
}

}  // namespace

MeasureResult measureReplayed(const dynagraph::TraceStore& store,
                              const MeasureConfig& config,
                              const AlgorithmFactory& factory) {
  return replayTrace(store, replayConfigOf(store, config, false), factory);
}

MeasureResult measureReplayedWithCost(const dynagraph::TraceStore& store,
                                      const MeasureConfig& config,
                                      const AlgorithmFactory& factory) {
  return replayTrace(store, replayConfigOf(store, config, true), factory);
}

}  // namespace doda::sim
