#pragma once

#include <functional>
#include <memory>

#include "adversary/randomized_adversary.hpp"
#include "core/engine.hpp"
#include "dynagraph/meet_time_index.hpp"
#include "fault/fault_model.hpp"
#include "sim/parallel.hpp"
#include "util/stats.hpp"

namespace doda::dynagraph {
class TraceStore;      // sharded recorded-trace store (dynagraph/trace_io.hpp)
class MeetTimeOracle;  // abstract meetTime knowledge (dynagraph/oracles.hpp)
}

namespace doda::sim {

/// Per-trial context handed to algorithm factories: the randomized
/// adversary for this trial plus a meetTime oracle reading its committed
/// randomness.
struct TrialContext {
  core::SystemInfo info;
  core::Adversary& adversary;
  dynagraph::MeetTimeIndex& meet_time;
  /// Non-null only under measureWithFaults: the fault-aware view of
  /// meet_time (crashed nodes never meet the sink again, Byzantine nodes
  /// lie). Fault-tolerant factories should prefer it over meet_time.
  dynagraph::MeetTimeOracle* oracle = nullptr;
};

/// Builds the algorithm instance for one trial. Invoked concurrently from
/// worker threads when MeasureConfig::threads != 1, so the factory must not
/// mutate shared state (returning a fresh algorithm per call, as every
/// existing factory does, is safe).
using AlgorithmFactory =
    std::function<std::unique_ptr<core::DodaAlgorithm>(TrialContext&)>;

/// Builds an algorithm that needs the materialized sequence up front
/// (FullKnowledgeOptimal, FutureAware). Same concurrency contract as
/// AlgorithmFactory.
using SequenceAlgorithmFactory =
    std::function<std::unique_ptr<core::DodaAlgorithm>(
        const dynagraph::InteractionSequence&, const core::SystemInfo&)>;

/// Configuration of a randomized-adversary measurement (paper §4 setting).
struct MeasureConfig {
  std::size_t node_count = 16;
  core::NodeId sink = 0;
  std::size_t trials = 32;
  std::uint64_t seed = 0x5eed;
  /// Per-trial cap on dispatched interactions (failed trials are counted,
  /// not included in the interaction statistics).
  core::Time max_interactions = core::Time{1} << 32;
  /// Zipf popularity exponent; 0 = the paper's uniform adversary.
  double zipf_exponent = 0.0;
  /// Committed random-stream format of the uniform adversary (see
  /// dynagraph/traces.hpp). The default (v2, one draw per pair) changes the
  /// sequence a given seed commits to; pin SeedFormat::v1 to reproduce
  /// streams and goldens recorded before the v2 sampler landed. Ignored by
  /// the Zipf adversary (its draw order never changed).
  dynagraph::traces::SeedFormat seed_format = dynagraph::traces::kSeedFormat;
  /// Worker threads for the trial fan-out: 0 = hardware concurrency,
  /// 1 = the legacy serial path. Results are bit-identical for every
  /// value (per-trial seeds are pre-drawn and outcomes folded in trial
  /// order — see sim/parallel.hpp).
  std::size_t threads = 0;
  /// Intra-trial engine workers (core::IntraTrialOptions::workers): 1 (the
  /// default) runs each trial through the serial engine loop; any other
  /// value (0 = hardware concurrency) routes endpoint-local algorithms
  /// (DodaAlgorithm::isEndpointLocal) through the block-parallel engine
  /// Engine::runBlocked — the huge-n path, sharding ONE trial across
  /// cores. Algorithms that are not endpoint-local silently keep the
  /// serial loop. Composes with `threads` (total concurrency is roughly
  /// threads x intra_trial_workers — use threads = 1 when sharding a few
  /// huge trials, intra_trial_workers = 1 when fanning out many small
  /// ones). Statistics are bit-identical for every combination.
  std::size_t intra_trial_workers = 1;
  /// Node partitions of the intra-trial engine (0 = the resolved worker
  /// count); any value is bit-identical. Values > 1 engage the blocked
  /// engine even when intra_trial_workers == 1 (single-threaded blocked
  /// execution — the determinism test matrix relies on this).
  std::size_t intra_trial_partitions = 0;
  /// Interactions per intra-trial block (core::IntraTrialOptions).
  core::Time intra_trial_block = core::Time{1} << 16;
  /// Fault regime for measureWithFaults / measureUnderFaults (ignored by
  /// the fault-free measure* family). Defaults to no faults.
  fault::FaultModel faults;
  /// Optional cooperative control (progress observer + cancel flag) for
  /// long-running measurements — the dodad server's job layer hooks in
  /// here. Never affects the statistics (see sim::RunControl). Not owned;
  /// must outlive the measurement.
  const RunControl* control = nullptr;
};

// MeasureResult lives in sim/parallel.hpp (it is the executor's fold type).

/// Runs `trials` independent executions of the factory-built algorithm
/// against the (uniform or Zipf) randomized adversary and aggregates the
/// number of interactions to termination.
MeasureResult measureRandomized(const MeasureConfig& config,
                                const AlgorithmFactory& factory);

/// Measures the offline optimum opt(0) under the randomized adversary
/// (paper Thm 8): generates a fresh random sequence per trial (doubling its
/// length until a convergecast fits) and records opt(0) + 1 interactions.
MeasureResult measureOfflineOptimal(const MeasureConfig& config);

/// Runs a sequence-knowledge algorithm (FullKnowledgeOptimal, FutureAware)
/// under the randomized adversary: materializes a random sequence of
/// `initial_length` (doubling on failure up to `max_doublings`), builds the
/// algorithm from it, and measures interactions to termination; also
/// computes the paper cost of each successful trial.
MeasureResult measureMaterialized(const MeasureConfig& config,
                                  core::Time initial_length,
                                  const SequenceAlgorithmFactory& factory,
                                  std::size_t max_doublings = 8);

/// Measures an online algorithm on a *fixed* per-trial sequence drawn from
/// the randomized adversary and additionally computes the paper cost of
/// each successful trial. `length_hint` sizes the generated sequence (it is
/// extended by doubling until the algorithm terminates or the cap is hit).
MeasureResult measureWithCost(const MeasureConfig& config,
                              core::Time length_hint,
                              const AlgorithmFactory& factory,
                              std::size_t max_doublings = 8);

/// One fixed-length sequence of the (uniform or Zipf) randomized adversary
/// of `config` — the per-trial workload generator shared by the measure*
/// family and the trace recorder (sim/trace_replay, trace_record).
dynagraph::InteractionSequence drawAdversarySequence(
    const MeasureConfig& config, core::Time length, util::Rng& rng);

/// As measureWithCost, but the per-trial sequences come from a recorded
/// trace store instead of a run-time generator: every recorded trial is
/// replayed through the factory-built algorithm via the shard-parallel
/// executor (sim/trace_replay). `config` supplies sink, threads and
/// max_interactions; node_count must match the store (and trials/seed/zipf
/// are ignored — the store fixes the workload). Statistics are
/// bit-identical for every thread count.
MeasureResult measureReplayed(const dynagraph::TraceStore& store,
                              const MeasureConfig& config,
                              const AlgorithmFactory& factory);

/// As measureReplayed, additionally folding the paper cost (§2.3) of each
/// successful trial.
MeasureResult measureReplayedWithCost(const dynagraph::TraceStore& store,
                                      const MeasureConfig& config,
                                      const AlgorithmFactory& factory);

}  // namespace doda::sim
