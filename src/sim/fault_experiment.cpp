#include "sim/fault_experiment.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <utility>

#include "adversary/sequence_adversary.hpp"
#include "analysis/convergecast.hpp"
#include "dynagraph/oracles.hpp"
#include "fault/fault_oracles.hpp"
#include "util/rng.hpp"

namespace doda::sim {

using core::SystemInfo;
using core::Time;
using dynagraph::InteractionSequence;
using dynagraph::kNever;

namespace {

/// Per-trial slot filled by the workers and folded in trial order.
struct FaultTrialSlot {
  core::FaultOutcome outcome;
  double interactions = 0.0;
  double cost_inflation = 0.0;
  bool has_inflation = false;
  bool timed_out = false;
};

FaultTrialSlot runFaultTrial(const MeasureConfig& config,
                             const SystemInfo& info, Time length_hint,
                             const AlgorithmFactory& factory,
                             std::size_t max_doublings, std::uint64_t seed,
                             core::Engine::Scratch& scratch) {
  util::Rng rng(seed);
  // The plan seed is drawn FIRST so the trial's faults are committed before
  // any sequence randomness: extending the sequence by doubling replays the
  // exact same plan (and, via the reseeded loss stream, the exact same
  // per-interaction loss verdicts on the shared prefix).
  const std::uint64_t plan_seed = rng();
  fault::FaultSession session(fault::FaultPlan::draw(
      config.faults, config.node_count, config.sink, plan_seed));

  InteractionSequence seq = drawAdversarySequence(config, length_hint, rng);
  FaultTrialSlot slot;
  for (std::size_t attempt = 0; attempt <= max_doublings; ++attempt) {
    adversary::SequenceViewAdversary seq_adversary{seq};
    dynagraph::MeetTimeIndex index(seq, config.sink, config.node_count);
    dynagraph::ExactMeetTimeOracle exact(index);
    fault::FaultyMeetTimeOracle oracle(exact, session.plan());
    TrialContext context{info, seq_adversary, index, &oracle};
    const auto algorithm = factory(context);
    core::Engine engine(info, core::AggregationFunction::count());
    core::RunOptions options;
    options.max_interactions =
        std::min<Time>(seq.length(), config.max_interactions);
    options.capture_schedule = false;
    options.faults = &session;
    const auto result =
        engine.runInto(scratch, *algorithm, seq_adversary, options);
    slot.outcome = *result.fault;
    if (slot.outcome.completed) {
      slot.interactions =
          static_cast<double>(result.interactions_to_terminate);
      const Time opt = analysis::optCompletion(seq, config.node_count,
                                               config.sink, 0);
      if (opt != kNever) {
        slot.cost_inflation =
            slot.interactions / static_cast<double>(opt + 1);
        slot.has_inflation = true;
      }
      return slot;
    }
    if (slot.outcome.blocked) return slot;  // no future progress possible
    if (seq.length() >= config.max_interactions) break;
    // Extend the committed prefix with fresh randomness and rerun (the
    // faulty prefix replays identically: same plan, same loss stream).
    seq.appendAll(drawAdversarySequence(config, seq.length(), rng));
  }
  slot.timed_out = true;
  return slot;
}

}  // namespace

FaultMeasureResult measureWithFaults(const MeasureConfig& config,
                                     Time length_hint,
                                     const AlgorithmFactory& factory,
                                     std::size_t max_doublings) {
  config.faults.validate();
  const SystemInfo info{config.node_count, config.sink};

  // Mirrors runTrials (sim/parallel.cpp): per-trial seeds pre-drawn from
  // the master generator, outcomes stored in per-trial slots, folded in
  // trial order — bit-identical for every thread count.
  std::vector<std::uint64_t> seeds(config.trials);
  util::Rng master(config.seed);
  for (auto& trial_seed : seeds) trial_seed = master();

  std::vector<FaultTrialSlot> slots(config.trials);

  // Observed runs (RunControl::progress) advance the same trial-order fold
  // incrementally; the observer receives a MeasureResult view of the
  // prefix (interactions over completed trials; everything that did not
  // complete counted as failed). Cancellation unwinds via RunCancelled.
  const RunControl* control = config.control;
  const bool observed = control != nullptr && control->progress != nullptr;
  const std::atomic<bool>* cancel =
      control != nullptr ? control->cancel : nullptr;
  FaultMeasureResult out;
  std::vector<std::uint8_t> done(observed ? config.trials : 0, 0);
  std::size_t folded = 0;
  std::mutex fold_mutex;
  auto fold = [&](const FaultTrialSlot& slot) {
    out.degradation.add(slot.outcome, slot.cost_inflation,
                        slot.has_inflation);
    if (slot.outcome.completed) out.interactions.add(slot.interactions);
    if (slot.timed_out) ++out.timed_out_trials;
  };

  runIndexedTasks(config.trials,
                  resolveThreads(config.threads, config.trials),
                  [&](std::size_t trial, core::Engine::Scratch& scratch) {
                    if (cancel != nullptr &&
                        cancel->load(std::memory_order_relaxed))
                      throw RunCancelled();
                    slots[trial] =
                        runFaultTrial(config, info, length_hint, factory,
                                      max_doublings, seeds[trial], scratch);
                    if (!observed) return;
                    const std::lock_guard<std::mutex> lock(fold_mutex);
                    done[trial] = 1;
                    while (folded < config.trials && done[folded]) {
                      fold(slots[folded]);
                      ++folded;
                      MeasureResult snapshot;
                      snapshot.interactions = out.interactions;
                      snapshot.failed_trials =
                          folded - out.interactions.count();
                      control->progress(folded, snapshot);
                    }
                  });
  if (observed) return out;

  for (const FaultTrialSlot& slot : slots) fold(slot);
  return out;
}

std::vector<FaultSweepResult> measureUnderFaults(
    const MeasureConfig& config, Time length_hint,
    std::span<const FaultSweepPoint> sweep, const AlgorithmFactory& factory,
    std::size_t max_doublings) {
  std::vector<FaultSweepResult> out;
  out.reserve(sweep.size());
  for (const FaultSweepPoint& point : sweep) {
    MeasureConfig point_config = config;
    point_config.faults = point.model;
    out.push_back({point.label, point.model,
                   measureWithFaults(point_config, length_hint, factory,
                                     max_doublings)});
  }
  return out;
}

}  // namespace doda::sim
