#pragma once

#include <span>
#include <string>
#include <vector>

#include "analysis/degradation.hpp"
#include "sim/experiment.hpp"

namespace doda::sim {

/// Aggregate outcome of a faulted measurement. `interactions` covers
/// completed trials only (under faults a trial may never complete);
/// everything else lives in the degradation accumulator, folded over all
/// trials in trial order — bit-identical for every thread count.
struct FaultMeasureResult {
  /// Interactions to complete, over completed trials.
  util::RunningStats interactions;
  analysis::DegradationAccumulator degradation;
  /// Trials that hit max_interactions (or the doubling cap) neither
  /// completed nor blocked.
  std::size_t timed_out_trials = 0;
};

/// One point of a fault-severity sweep.
struct FaultSweepPoint {
  std::string label;
  fault::FaultModel model;
};

/// FaultSweepPoint plus its measurement.
struct FaultSweepResult {
  std::string label;
  fault::FaultModel model;
  FaultMeasureResult result;
};

/// Measures the factory-built algorithm on fixed per-trial sequences under
/// `config.faults`. Per trial, one FaultPlan is pre-drawn from the trial
/// seed (before any sequence randomness, so the plan is invariant under the
/// doubling extension) and the engine runs its faulty loop; completed
/// trials additionally record cost inflation = interactions-to-complete
/// divided by the fault-free offline optimum (opt(0) + 1) of the same
/// sequence. A trial stops extending as soon as it completes or blocks
/// (a blocked run can never make further progress).
FaultMeasureResult measureWithFaults(const MeasureConfig& config,
                                     core::Time length_hint,
                                     const AlgorithmFactory& factory,
                                     std::size_t max_doublings = 8);

/// Runs measureWithFaults once per sweep point (same seed for every point,
/// so the severity axis is the only thing that varies) and returns the
/// degradation curve.
std::vector<FaultSweepResult> measureUnderFaults(
    const MeasureConfig& config, core::Time length_hint,
    std::span<const FaultSweepPoint> sweep, const AlgorithmFactory& factory,
    std::size_t max_doublings = 8);

}  // namespace doda::sim
