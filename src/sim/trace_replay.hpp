#pragma once

#include <functional>
#include <memory>
#include <string>

#include "dynagraph/trace_io.hpp"
#include "sim/experiment.hpp"
#include "util/rng.hpp"

namespace doda::sim {

/// Half-open window [first, last) of *global* trial indices to replay.
/// The default covers every recorded trial; bounds are clamped to the
/// store, so {10'000, 20'000} reads "trials 10k-20k only".
struct ReplayTrialRange {
  std::uint64_t first = 0;
  std::uint64_t last = ~std::uint64_t{0};
};

/// Configuration of a recorded-trace replay measurement.
struct ReplayConfig {
  core::NodeId sink = 0;
  /// Worker threads fanning over trace shards: 0 = hardware concurrency,
  /// 1 = serial. Results are bit-identical for every value (outcomes are
  /// folded in global trial order, exactly like the synthetic path).
  std::size_t threads = 0;
  /// Per-trial cap on dispatched interactions.
  core::Time max_interactions = core::Time{1} << 32;
  /// Whether replayTrace additionally computes the paper cost (§2.3) of
  /// each successful trial (requires the materialized path).
  bool compute_cost = false;
  /// How shard files are read (mmap where available by default). Never
  /// affects the statistics, only the I/O path.
  dynagraph::TraceReadBackend backend = dynagraph::TraceReadBackend::kAuto;
  /// Partial replay window. The statistics of a ranged replay are
  /// bit-identical to folding the same trials out of a full replay: block-
  /// indexed (v3) stores seek straight to the window, v1/v2 stores skip
  /// forward sequentially — the range never changes the statistics, only
  /// the work.
  ReplayTrialRange trial_range;
  /// Intra-trial engine workers for replayTrace's materialized path: 1
  /// (the default) keeps the serial loop; other values (0 = hardware
  /// concurrency) run endpoint-local algorithms through
  /// core::Engine::runBlocked, sharding each replayed trial across cores.
  /// Bit-identical for every value; non-endpoint-local algorithms and the
  /// streaming path silently stay serial. See MeasureConfig for the
  /// threads x intra_trial_workers composition guidance.
  std::size_t intra_trial_workers = 1;
  /// Node partitions of the intra-trial engine (0 = worker count); values
  /// > 1 engage the blocked engine even with one worker.
  std::size_t intra_trial_partitions = 0;
  /// Interactions per intra-trial block.
  core::Time intra_trial_block = core::Time{1} << 16;
  /// Optional cooperative control (progress observer + cancel flag), as
  /// MeasureConfig::control. Not owned; must outlive the replay.
  const RunControl* control = nullptr;
};

/// The work of one replayed trial. `reader` is positioned at the start of
/// the trial's payload (trialLength() interactions pending); the body may
/// stream interactions with next() or materialize them with readRest(),
/// and need not consume the remainder — the executor realigns the shard
/// cursor. Same purity contract as TrialBody: runs concurrently, keyed by
/// `global_trial` only.
using ReplayTrialBody = std::function<TrialOutcome(
    std::size_t global_trial, dynagraph::TraceShardReader& reader,
    core::Engine::Scratch& scratch)>;

/// Deterministic shard-parallel replay executor — the recorded-trace
/// counterpart of runTrials.
///
/// Work splits by the shards' *block indices* where available: a v3
/// shard's selected trials are carved into several contiguous spans (a few
/// per worker) that each seek to their first trial, so trial-level
/// parallelism load-balances inside a shard instead of stopping at shard
/// granularity. v1/v2 shards (no index) stay one span per shard, skipped
/// into sequentially. Each span's trials store their outcome in a
/// per-trial slot; the slots are then folded into the MeasureResult in
/// global trial order. Results are therefore bit-identical for every
/// thread count and every span shape. An exception thrown by any trial
/// body (or a corrupt shard) stops the run and is rethrown.
///
/// `range` restricts the replay to a half-open window of global trials
/// (clamped to the store; empty windows return an empty result).
MeasureResult replayShards(
    const dynagraph::TraceStore& store, std::size_t threads,
    const ReplayTrialBody& body,
    dynagraph::TraceReadBackend backend = dynagraph::TraceReadBackend::kAuto,
    ReplayTrialRange range = {}, const RunControl* control = nullptr);

/// Replays every recorded trial through a factory-built algorithm. Each
/// trial is decoded into a per-trial sequence (one trial resident per
/// worker, never a whole shard), so the factory gets the full TrialContext
/// — including a meetTime oracle over the recorded interactions — exactly
/// like the synthetic measureWithCost path. With `config.compute_cost`,
/// successful trials also fold the paper cost.
MeasureResult replayTrace(const dynagraph::TraceStore& store,
                          const ReplayConfig& config,
                          const AlgorithmFactory& factory);

/// Builds an algorithm that needs only the system shape (no oracle, no
/// materialized future): the pure-online algorithms (Gathering, Waiting).
using StreamedAlgorithmFactory =
    std::function<std::unique_ptr<core::DodaAlgorithm>(
        const core::SystemInfo&)>;

/// Fully streamed replay: interactions flow from the shard's block buffer
/// straight into the engine via a single-use adversary — no trial is ever
/// materialized. For the same store and algorithm the statistics are
/// bit-identical to replayTrace (both run the identical engine loop).
MeasureResult replayTraceStreaming(const dynagraph::TraceStore& store,
                                   const ReplayConfig& config,
                                   const StreamedAlgorithmFactory& factory);

/// Generates the sequence of one recorded trial from its pre-drawn
/// per-trial RNG.
using TrialGenerator = std::function<dynagraph::InteractionSequence(
    std::size_t trial, util::Rng& rng)>;

/// Records `trials` generator-built sequences into a sharded store under
/// `directory`. Per-trial randomness uses the same pre-drawn seed scheme
/// as runTrials (trial i's RNG is seeded with the i-th draw from a master
/// RNG seeded with `master_seed`), the determinism anchor every recorded
/// workload shares. `writer_options` picks the store format (compressed
/// v2 by default); the recorded *content* is identical for every format.
void recordTrials(const std::string& directory, std::size_t node_count,
                  std::size_t trials, std::uint64_t master_seed,
                  std::uint32_t shard_count, const TrialGenerator& generator,
                  dynagraph::TraceWriterOptions writer_options = {});

/// Records the randomized-adversary workload of `config` (uniform or Zipf)
/// as `config.trials` sequences of `length` interactions each, sharded
/// into `shard_count` files under `directory`. Replaying the store is
/// bit-identical to the equivalent in-memory run (measureWithCost with the
/// same config and length, provided no trial needs extension).
void recordSynthetic(const std::string& directory,
                     const MeasureConfig& config, core::Time length,
                     std::uint32_t shard_count,
                     dynagraph::TraceWriterOptions writer_options = {});

}  // namespace doda::sim
