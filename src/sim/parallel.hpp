#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <stdexcept>

#include "core/engine.hpp"
#include "util/stats.hpp"

namespace doda::sim {

/// Aggregate outcome of a measurement (declared here, shared with
/// experiment.hpp).
struct MeasureResult {
  /// Interactions to terminate, over successful trials.
  util::RunningStats interactions;
  /// The paper's cost (§2.3) — only filled by measure functions documented
  /// to compute it (it requires materialized sequences).
  util::RunningStats cost;
  std::size_t failed_trials = 0;

  /// Combines another result into this one (Welford merge of both
  /// accumulators). Exact in the algebraic sense; bit-identity across
  /// different partition shapes is provided by runTrials' ordered fold, not
  /// by merge order.
  void merge(const MeasureResult& other);
};

/// Scalar outcome of one trial, produced by a TrialBody.
struct TrialOutcome {
  bool success = false;
  double interactions = 0.0;
  /// Paper cost of the trial; folded only when has_cost is set.
  double cost = 0.0;
  bool has_cost = false;

  static TrialOutcome failure() { return {}; }
};

/// The work of one trial. Must be a pure function of (trial, seed) — it
/// runs concurrently with other trials and must not touch shared mutable
/// state. `scratch` is a per-worker core::Engine::Scratch for allocation
/// reuse across the trials a worker executes.
using TrialBody = std::function<TrialOutcome(
    std::size_t trial, std::uint64_t seed, core::Engine::Scratch& scratch)>;

/// Thrown by the executors when RunControl::cancel flips to true: the run
/// stops claiming new trials and unwinds to the caller. A cancelled run has
/// no result — partial statistics are never returned.
struct RunCancelled : std::runtime_error {
  RunCancelled() : std::runtime_error("measurement cancelled") {}
};

/// Cooperative control of a long-running measurement, threaded from the
/// dodad server's job layer (src/server/) into the deterministic executors
/// (runTrials, replayShards, measureWithFaults). Neither hook ever changes
/// the statistics: the progress observer watches the same trial-order fold
/// that produces the final result, and cancellation aborts the whole run by
/// throwing RunCancelled.
struct RunControl {
  /// Invoked each time the in-order fold advances: `folded` trials have
  /// been folded (in trial order, exactly as the final result folds them)
  /// and `snapshot` is that folded prefix. Called under the executor's fold
  /// lock from worker threads — must be fast, must not throw, and must not
  /// re-enter the executor.
  std::function<void(std::size_t folded, const MeasureResult& snapshot)>
      progress;
  /// Polled between trials; when it reads true the run throws RunCancelled.
  /// Not owned; may be null.
  const std::atomic<bool>* cancel = nullptr;

  bool engaged() const noexcept {
    return static_cast<bool>(progress) || cancel != nullptr;
  }
};

/// Resolves a MeasureConfig::threads knob: 0 means
/// std::thread::hardware_concurrency(), and the result is clamped to
/// [1, trials] (no point spawning idle workers).
std::size_t resolveThreads(std::size_t requested, std::size_t trials);

/// Folds one trial outcome into the aggregate: failures count, successes
/// add interactions (and cost when present). Shared by every executor so
/// the synthetic and trace-replay folds are the same code.
void foldOutcome(MeasureResult& out, const TrialOutcome& outcome);

/// One unit of pool work, keyed by index. Owns no state; each worker
/// thread supplies one reusable core::Engine::Scratch.
using IndexedTask =
    std::function<void(std::size_t index, core::Engine::Scratch& scratch)>;

/// The shared worker-pool core of runTrials and the trace-replay executor
/// (sim/trace_replay): runs `count` indexed tasks, inline in index order
/// when the resolved thread count is 1, otherwise on a pool of workers
/// pulling indices from a shared counter. The first exception stops the
/// pool (workers drain quickly) and is rethrown to the caller. Tasks must
/// not touch shared mutable state beyond their own index's slots.
void runIndexedTasks(std::size_t count, std::size_t threads,
                     const IndexedTask& task);

/// Deterministic parallel trial executor — the experiment subsystem's core.
///
/// Per-trial seeds are drawn up front from a master RNG seeded with
/// `master_seed` (seed_i = the i-th draw), so a trial's randomness depends
/// only on its index, never on scheduling. Workers pull trial indices from
/// a shared counter and store each TrialOutcome in a per-trial slot; the
/// outcomes are then folded into the MeasureResult in trial order. Results
/// are therefore bit-identical for every thread count, including 1 (which
/// runs inline without spawning).
///
/// An exception thrown by any trial body stops the run (workers drain
/// quickly) and is rethrown to the caller.
///
/// `control` (optional) attaches a progress observer and a cancel flag.
/// With an observer, the fold advances incrementally as the completed
/// prefix grows — same order, same floating-point accumulation, bit-
/// identical final result.
MeasureResult runTrials(std::size_t trials, std::uint64_t master_seed,
                        std::size_t threads, const TrialBody& body,
                        const RunControl* control = nullptr);

}  // namespace doda::sim
