#include "sim/trace_replay.hpp"

#include <algorithm>
#include <atomic>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "adversary/sequence_adversary.hpp"
#include "analysis/convergecast.hpp"
#include "dynagraph/meet_time_index.hpp"
#include "util/rng.hpp"

namespace doda::sim {

using core::SystemInfo;
using core::Time;
using dynagraph::InteractionSequence;
using dynagraph::TraceShardReader;
using dynagraph::TraceStore;

namespace {

/// One contiguous run of selected trials inside one shard — the unit of
/// pool work. Indexed (v3) shards contribute several spans so workers
/// load-balance within a shard; v1/v2 shards contribute exactly one.
struct ReplaySpan {
  std::size_t shard = 0;
  std::uint64_t begin = 0;  // global trial ids, half-open
  std::uint64_t end = 0;
};

/// Runs one span: seek to its first trial (an indexed seek on v3, a
/// sequential skip on v1/v2), then stream its trials through `body`,
/// storing outcomes into the window's slot array. The reader realigns
/// itself at each beginTrial, so a body that stops decoding early
/// (streamed replay terminating before the trace ends) cannot desync the
/// cursor.
void runSpan(const TraceStore& store, const ReplaySpan& span,
             std::uint64_t window_first, const ReplayTrialBody& body,
             core::Engine::Scratch& scratch,
             std::vector<TrialOutcome>& slots,
             dynagraph::TraceReadBackend backend,
             const dynagraph::TraceDecodePool* decode_pool,
             const std::atomic<bool>* cancel,
             const std::function<void(std::uint64_t)>& trial_done) {
  TraceShardReader reader = store.openShard(span.shard, backend);
  reader.setDecodePool(decode_pool);
  if (!reader.seekToTrial(span.begin))
    throw std::runtime_error("replayShards: trial " +
                             std::to_string(span.begin) +
                             " not in shard " + std::to_string(span.shard));
  for (std::uint64_t global = span.begin; global < span.end; ++global) {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed))
      throw RunCancelled();
    if (!reader.beginTrial())
      throw std::runtime_error("replayShards: shard " +
                               std::to_string(span.shard) +
                               " ended before trial " +
                               std::to_string(global));
    slots[static_cast<std::size_t>(global - window_first)] =
        body(static_cast<std::size_t>(global), reader, scratch);
    if (trial_done) trial_done(global);
  }
}

core::RunOptions replayRunOptions(const ReplayConfig& config,
                                  std::uint64_t trial_length) {
  core::RunOptions options;
  options.max_interactions =
      std::min<Time>(trial_length, config.max_interactions);
  options.capture_schedule = false;  // only the scalar outcome is folded
  return options;
}

}  // namespace

MeasureResult replayShards(const TraceStore& store, std::size_t threads,
                           const ReplayTrialBody& body,
                           dynagraph::TraceReadBackend backend,
                           ReplayTrialRange range,
                           const RunControl* control) {
  const std::uint64_t first = std::min(range.first, store.trialCount());
  const std::uint64_t last = std::min(range.last, store.trialCount());
  if (first >= last) return {};
  const auto selected = static_cast<std::size_t>(last - first);

  // Carve the window into spans. Indexed (v3) stores split shards into a
  // few spans per worker so a handful of shards (or one huge one) still
  // feeds the whole pool; without an index a span per shard is the best
  // we can do (each extra span would re-skip the shard's prefix).
  const bool indexed =
      store.formatVersion() >= dynagraph::kTraceFormatVersionV3;
  const std::size_t workers = resolveThreads(threads, selected);
  const std::uint64_t span_target =
      indexed ? std::max<std::uint64_t>(1, (last - first) / (workers * 4))
              : 0;
  std::vector<ReplaySpan> spans;
  for (std::size_t shard = 0; shard < store.shardCount(); ++shard) {
    const auto& header = store.shardHeaders()[shard];
    std::uint64_t begin = std::max(first, header.base_trial);
    const std::uint64_t end =
        std::min(last, header.base_trial + header.trial_count);
    if (begin >= end) continue;
    if (span_target == 0) {
      spans.push_back({shard, begin, end});
      continue;
    }
    while (begin < end) {
      const std::uint64_t stop = std::min(end, begin + span_target);
      spans.push_back({shard, begin, stop});
      begin = stop;
    }
  }

  // When there are more workers than spans (one huge trial, or a window
  // narrower than the pool), lend each span the spare parallelism as a
  // block-decode pool: readRest() on an indexed shard then decodes a
  // single trial's blocks concurrently (TraceShardReader::setDecodePool),
  // bit-identical to sequential decode. runIndexedTasks spawns fresh
  // joined threads per call, so the nesting is safe.
  dynagraph::TraceDecodePool decode_pool;
  if (indexed && workers > spans.size() && !spans.empty()) {
    const std::size_t inner = (workers + spans.size() - 1) / spans.size();
    if (inner >= 2) {
      decode_pool.workers = inner;
      decode_pool.run = [inner](std::size_t count,
                                const std::function<void(std::size_t)>& task) {
        runIndexedTasks(count, inner,
                        [&task](std::size_t i, core::Engine::Scratch&) {
                          task(i);
                        });
      };
    }
  }

  std::vector<TrialOutcome> slots(selected);

  // Incremental in-order fold for observed runs: spans complete their
  // trials out of global order, so completion flags park each outcome
  // until the folded prefix reaches it — same fold order (global trial
  // first, first+1, ...) as the batch path below, bit-identical result.
  const bool observed = control != nullptr && control->progress != nullptr;
  const std::atomic<bool>* cancel =
      control != nullptr ? control->cancel : nullptr;
  MeasureResult out;
  std::vector<std::uint8_t> done(observed ? selected : 0, 0);
  std::size_t folded = 0;
  std::mutex fold_mutex;
  std::function<void(std::uint64_t)> trial_done;
  if (observed)
    trial_done = [&](std::uint64_t global) {
      const std::lock_guard<std::mutex> lock(fold_mutex);
      done[static_cast<std::size_t>(global - first)] = 1;
      while (folded < selected && done[folded]) {
        foldOutcome(out, slots[folded]);
        ++folded;
        control->progress(folded, out);
      }
    };

  runIndexedTasks(spans.size(), threads,
                  [&](std::size_t span, core::Engine::Scratch& scratch) {
                    runSpan(store, spans[span], first, body, scratch, slots,
                            backend, decode_pool ? &decode_pool : nullptr,
                            cancel, trial_done);
                  });
  if (observed) return out;

  // Ordered fold: global trial first, first+1, ... regardless of span
  // placement, so the floating-point accumulation matches the synthetic
  // executor's (and a full replay restricted to the same window).
  for (const auto& outcome : slots) foldOutcome(out, outcome);
  return out;
}

MeasureResult replayTrace(const TraceStore& store, const ReplayConfig& config,
                          const AlgorithmFactory& factory) {
  const SystemInfo info{store.nodeCount(), config.sink};
  return replayShards(
      store, config.threads,
      [&](std::size_t /*global_trial*/, TraceShardReader& reader,
          core::Engine::Scratch& scratch) {
        const std::uint64_t length = reader.trialLength();
        const InteractionSequence seq = reader.readRest();
        adversary::SequenceViewAdversary seq_adversary{seq};
        dynagraph::MeetTimeIndex index(seq, config.sink, info.node_count);
        TrialContext context{info, seq_adversary, index};
        const auto algorithm = factory(context);
        core::Engine engine(info, core::AggregationFunction::count());
        const bool blocked = (config.intra_trial_workers != 1 ||
                              config.intra_trial_partitions > 1) &&
                             algorithm->isEndpointLocal();
        core::IntraTrialOptions intra;
        intra.workers = config.intra_trial_workers;
        intra.partitions = config.intra_trial_partitions;
        intra.block_size = config.intra_trial_block;
        const auto result =
            blocked ? engine.runBlocked(
                          scratch, *algorithm,
                          dynagraph::InteractionSequenceView(seq),
                          replayRunOptions(config, length), intra)
                    : engine.runInto(scratch, *algorithm, seq_adversary,
                                     replayRunOptions(config, length));
        if (!result.terminated) return TrialOutcome::failure();
        TrialOutcome outcome;
        outcome.success = true;
        outcome.interactions =
            static_cast<double>(result.interactions_to_terminate);
        if (config.compute_cost) {
          outcome.cost = static_cast<double>(
              analysis::costOf(seq, info.node_count, config.sink,
                               result.last_transmission_time));
          outcome.has_cost = true;
        }
        return outcome;
      },
      config.backend, config.trial_range, config.control);
}

namespace {

/// Single-use adversary pulling interactions straight from a shard
/// reader's block buffer — the streamed InteractionSequence view the
/// engine consumes during zero-materialization replay.
class StreamedTrialAdversary final : public core::Adversary {
 public:
  explicit StreamedTrialAdversary(TraceShardReader& reader)
      : reader_(reader) {}

  std::string name() const override { return "trace-replay-stream"; }

  std::optional<core::Interaction> next(
      core::Time /*t*/, const core::ExecutionView& /*view*/) override {
    return reader_.next();
  }

 private:
  TraceShardReader& reader_;
};

}  // namespace

MeasureResult replayTraceStreaming(const TraceStore& store,
                                   const ReplayConfig& config,
                                   const StreamedAlgorithmFactory& factory) {
  const SystemInfo info{store.nodeCount(), config.sink};
  return replayShards(
      store, config.threads,
      [&](std::size_t /*global_trial*/, TraceShardReader& reader,
          core::Engine::Scratch& scratch) {
        StreamedTrialAdversary adversary(reader);
        const auto algorithm = factory(info);
        core::Engine engine(info, core::AggregationFunction::count());
        const auto result =
            engine.runInto(scratch, *algorithm, adversary,
                           replayRunOptions(config, reader.trialLength()));
        if (!result.terminated) return TrialOutcome::failure();
        TrialOutcome outcome;
        outcome.success = true;
        outcome.interactions =
            static_cast<double>(result.interactions_to_terminate);
        return outcome;
      },
      config.backend, config.trial_range, config.control);
}

void recordTrials(const std::string& directory, std::size_t node_count,
                  std::size_t trials, std::uint64_t master_seed,
                  std::uint32_t shard_count,
                  const TrialGenerator& generator,
                  dynagraph::TraceWriterOptions writer_options) {
  // Identical seed scheme to runTrials: trial i's randomness is the i-th
  // draw from the master RNG, so recorded sequences match what the
  // in-memory synthetic run generates from the same master seed.
  util::Rng master(master_seed);
  std::vector<std::uint64_t> seeds(trials);
  for (auto& seed : seeds) seed = master();

  dynagraph::TraceStoreWriter writer(directory, node_count, trials,
                                     shard_count, writer_options);
  for (std::size_t trial = 0; trial < trials; ++trial) {
    util::Rng rng(seeds[trial]);
    writer.appendTrial(generator(trial, rng));
  }
  writer.finish();
}

void recordSynthetic(const std::string& directory,
                     const MeasureConfig& config, Time length,
                     std::uint32_t shard_count,
                     dynagraph::TraceWriterOptions writer_options) {
  recordTrials(
      directory, config.node_count, config.trials, config.seed, shard_count,
      [&](std::size_t /*trial*/, util::Rng& rng) {
        return drawAdversarySequence(config, length, rng);
      },
      writer_options);
}

}  // namespace doda::sim
