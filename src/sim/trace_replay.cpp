#include "sim/trace_replay.hpp"

#include <algorithm>
#include <vector>

#include "adversary/sequence_adversary.hpp"
#include "analysis/convergecast.hpp"
#include "dynagraph/meet_time_index.hpp"
#include "util/rng.hpp"

namespace doda::sim {

using core::SystemInfo;
using core::Time;
using dynagraph::InteractionSequence;
using dynagraph::TraceShardReader;
using dynagraph::TraceStore;

namespace {

/// Streams one shard's trials through `body`, storing outcomes into the
/// global slot array. The reader realigns itself at each beginTrial, so a
/// body that stops decoding early (streamed replay terminating before the
/// trace ends) cannot desync the shard cursor.
void runShard(const TraceStore& store, std::size_t shard,
              const ReplayTrialBody& body, core::Engine::Scratch& scratch,
              std::vector<TrialOutcome>& slots,
              dynagraph::TraceReadBackend backend) {
  TraceShardReader reader = store.openShard(shard, backend);
  while (reader.beginTrial()) {
    const std::size_t global = static_cast<std::size_t>(
        reader.header().base_trial + reader.trialsBegun() - 1);
    slots[global] = body(global, reader, scratch);
  }
}

core::RunOptions replayRunOptions(const ReplayConfig& config,
                                  std::uint64_t trial_length) {
  core::RunOptions options;
  options.max_interactions =
      std::min<Time>(trial_length, config.max_interactions);
  options.capture_schedule = false;  // only the scalar outcome is folded
  return options;
}

}  // namespace

MeasureResult replayShards(const TraceStore& store, std::size_t threads,
                           const ReplayTrialBody& body,
                           dynagraph::TraceReadBackend backend) {
  std::vector<TrialOutcome> slots(
      static_cast<std::size_t>(store.trialCount()));
  // One shard per pool task: each shard file is streamed once,
  // sequentially, by one worker.
  runIndexedTasks(store.shardCount(), threads,
                  [&](std::size_t shard, core::Engine::Scratch& scratch) {
                    runShard(store, shard, body, scratch, slots, backend);
                  });

  // Ordered fold: global trial 0, 1, 2, ... regardless of shard placement,
  // so the floating-point accumulation matches the synthetic executor's.
  MeasureResult out;
  for (const auto& outcome : slots) foldOutcome(out, outcome);
  return out;
}

MeasureResult replayTrace(const TraceStore& store, const ReplayConfig& config,
                          const AlgorithmFactory& factory) {
  const SystemInfo info{store.nodeCount(), config.sink};
  return replayShards(
      store, config.threads,
      [&](std::size_t /*global_trial*/, TraceShardReader& reader,
          core::Engine::Scratch& scratch) {
        const std::uint64_t length = reader.trialLength();
        const InteractionSequence seq = reader.readRest();
        adversary::SequenceViewAdversary seq_adversary{seq};
        dynagraph::MeetTimeIndex index(seq, config.sink, info.node_count);
        TrialContext context{info, seq_adversary, index};
        const auto algorithm = factory(context);
        core::Engine engine(info, core::AggregationFunction::count());
        const auto result =
            engine.runInto(scratch, *algorithm, seq_adversary,
                           replayRunOptions(config, length));
        if (!result.terminated) return TrialOutcome::failure();
        TrialOutcome outcome;
        outcome.success = true;
        outcome.interactions =
            static_cast<double>(result.interactions_to_terminate);
        if (config.compute_cost) {
          outcome.cost = static_cast<double>(
              analysis::costOf(seq, info.node_count, config.sink,
                               result.last_transmission_time));
          outcome.has_cost = true;
        }
        return outcome;
      },
      config.backend);
}

namespace {

/// Single-use adversary pulling interactions straight from a shard
/// reader's block buffer — the streamed InteractionSequence view the
/// engine consumes during zero-materialization replay.
class StreamedTrialAdversary final : public core::Adversary {
 public:
  explicit StreamedTrialAdversary(TraceShardReader& reader)
      : reader_(reader) {}

  std::string name() const override { return "trace-replay-stream"; }

  std::optional<core::Interaction> next(
      core::Time /*t*/, const core::ExecutionView& /*view*/) override {
    return reader_.next();
  }

 private:
  TraceShardReader& reader_;
};

}  // namespace

MeasureResult replayTraceStreaming(const TraceStore& store,
                                   const ReplayConfig& config,
                                   const StreamedAlgorithmFactory& factory) {
  const SystemInfo info{store.nodeCount(), config.sink};
  return replayShards(
      store, config.threads,
      [&](std::size_t /*global_trial*/, TraceShardReader& reader,
          core::Engine::Scratch& scratch) {
        StreamedTrialAdversary adversary(reader);
        const auto algorithm = factory(info);
        core::Engine engine(info, core::AggregationFunction::count());
        const auto result =
            engine.runInto(scratch, *algorithm, adversary,
                           replayRunOptions(config, reader.trialLength()));
        if (!result.terminated) return TrialOutcome::failure();
        TrialOutcome outcome;
        outcome.success = true;
        outcome.interactions =
            static_cast<double>(result.interactions_to_terminate);
        return outcome;
      },
      config.backend);
}

void recordTrials(const std::string& directory, std::size_t node_count,
                  std::size_t trials, std::uint64_t master_seed,
                  std::uint32_t shard_count,
                  const TrialGenerator& generator,
                  dynagraph::TraceWriterOptions writer_options) {
  // Identical seed scheme to runTrials: trial i's randomness is the i-th
  // draw from the master RNG, so recorded sequences match what the
  // in-memory synthetic run generates from the same master seed.
  util::Rng master(master_seed);
  std::vector<std::uint64_t> seeds(trials);
  for (auto& seed : seeds) seed = master();

  dynagraph::TraceStoreWriter writer(directory, node_count, trials,
                                     shard_count, writer_options);
  for (std::size_t trial = 0; trial < trials; ++trial) {
    util::Rng rng(seeds[trial]);
    writer.appendTrial(generator(trial, rng));
  }
  writer.finish();
}

void recordSynthetic(const std::string& directory,
                     const MeasureConfig& config, Time length,
                     std::uint32_t shard_count,
                     dynagraph::TraceWriterOptions writer_options) {
  recordTrials(
      directory, config.node_count, config.trials, config.seed, shard_count,
      [&](std::size_t /*trial*/, util::Rng& rng) {
        return drawAdversarySequence(config, length, rng);
      },
      writer_options);
}

}  // namespace doda::sim
