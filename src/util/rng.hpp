#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

namespace doda::util {

/// Stateless 64-bit mixer used to derive independent streams from a seed.
///
/// SplitMix64 is the standard generator recommended for seeding xoshiro
/// state; it passes BigCrush and is a bijection on 64-bit integers.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Returns the next 64-bit value of the stream.
  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Deterministic pseudo-random generator (xoshiro256**).
///
/// All randomness in the library flows through this class so that every
/// experiment is reproducible from a single 64-bit seed. The generator
/// satisfies the C++ UniformRandomBitGenerator concept and can therefore be
/// used with standard <random> distributions, although the member helpers
/// below are preferred (they are portable across standard libraries).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 256-bit state words from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0xdeadbeefcafef00dULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Core xoshiro256** step.
  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  ///
  /// Uses Lemire's nearly-divisionless method with rejection, so the result
  /// is exactly uniform.
  std::uint64_t below(std::uint64_t bound) {
    if (bound == 0) throw std::invalid_argument("Rng::below: bound == 0");
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t between(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) throw std::invalid_argument("Rng::between: lo > hi");
    const auto span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    // span == 0 means the full 64-bit range; any draw is in range.
    if (span == 0) return static_cast<std::int64_t>((*this)());
    return lo + static_cast<std::int64_t>(below(span));
  }

  /// Uniform real in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p) { return uniform() < p; }

  /// Picks an index in [0, weights.size()) proportionally to `weights`.
  /// Requires a non-empty span with a positive total weight.
  std::size_t weighted(std::span<const double> weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[below(i)]);
    }
  }

  /// Derives an independent generator (stream split) for sub-experiments.
  Rng split() { return Rng((*this)()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace doda::util
