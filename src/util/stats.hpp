#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace doda::util {

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// Numerically stable for long streams; O(1) memory. Used by the experiment
/// harness to aggregate per-trial metrics without storing every sample.
class RunningStats {
 public:
  void add(double x) noexcept;

  /// Merges another accumulator into this one (parallel-friendly).
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }
  /// Unbiased sample variance; 0 when fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

  /// Half-width of the ~95% normal-approximation confidence interval.
  double ci95HalfWidth() const noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Point summary of a sample set, computed in one pass over stored values.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p95 = 0.0;
};

/// Computes a Summary from raw samples (copies and sorts internally).
Summary summarize(std::span<const double> samples);

/// Empirical quantile (q in [0,1]) with linear interpolation.
/// Requires a non-empty sample set.
double quantile(std::span<const double> sorted_samples, double q);

/// Least-squares fit of log(y) = slope * log(x) + intercept.
///
/// Used to estimate empirical scaling exponents: if y ~ C * x^a then
/// `slope` recovers `a`. All x and y must be positive.
struct PowerLawFit {
  double slope = 0.0;
  double intercept = 0.0;  // log(C)
  double r2 = 0.0;         // coefficient of determination in log space
};

PowerLawFit fitPowerLaw(std::span<const double> xs, std::span<const double> ys);

/// n-th harmonic number H(n) = 1 + 1/2 + ... + 1/n (H(0) = 0).
double harmonic(std::size_t n) noexcept;

/// Closed-form expectations from the paper (randomized adversary, n nodes).
/// Each matches a theorem and is used by benches/tests as the analytic
/// reference curve.
namespace closed_form {

/// Thm 8: E[interactions] for broadcast/convergecast = (n-1) * H(n-1).
double broadcastExpected(std::size_t n) noexcept;

/// Thm 9: E[X_W] = n(n-1)/2 * H(n-1).
double waitingExpected(std::size_t n) noexcept;

/// Thm 9: E[X_G] = n(n-1) * sum_{i=1}^{n-1} 1/(i(i+1)).
double gatheringExpected(std::size_t n) noexcept;

/// Waiting under Bernoulli message loss p (relaxed retry-on-loss rule):
/// each sink meeting of a node delivers independently with probability
/// 1-p, so the coupon process of Thm 9 is thinned by exactly that factor:
/// E[X_W(p)] = n(n-1)/2 * H(n-1) / (1-p). Requires p in [0, 1).
double waitingLossExpected(std::size_t n, double p) noexcept;

/// Thm 7: expected interactions for the final transmission = n(n-1)/2.
double lastTransmissionExpected(std::size_t n) noexcept;

/// Cor 3: the optimal Waiting Greedy horizon tau = n^{3/2} * sqrt(log n).
double waitingGreedyTau(std::size_t n) noexcept;

}  // namespace closed_form

}  // namespace doda::util
