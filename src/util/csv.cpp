#include "util/csv.hpp"

#include <stdexcept>

namespace doda::util {

CsvWriter::CsvWriter(const std::string& path) : out_(path, std::ios::trunc) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

void CsvWriter::header(std::initializer_list<std::string_view> columns) {
  if (header_written_ || rows_ > 0)
    throw std::logic_error("CsvWriter: header must be first and unique");
  std::vector<std::string> cells;
  cells.reserve(columns.size());
  for (auto c : columns) cells.emplace_back(c);
  writeCells(cells);
  header_written_ = true;
  rows_ = 0;  // header does not count as a data row
}

std::string CsvWriter::escape(std::string_view cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(cell);
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

void CsvWriter::writeCells(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  ++rows_;
}

}  // namespace doda::util
