#include "util/rng.hpp"

#include <numeric>

namespace doda::util {

std::size_t Rng::weighted(std::span<const double> weights) {
  if (weights.empty())
    throw std::invalid_argument("Rng::weighted: empty weights");
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (!(total > 0.0))
    throw std::invalid_argument("Rng::weighted: non-positive total weight");
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  // Floating-point rounding can exhaust `target` slightly past the end;
  // the last positive-weight entry is the correct answer in that case.
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace doda::util
