#pragma once

#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace doda::util {

/// Minimal RFC-4180-style CSV writer used by benches and examples to dump
/// experiment series for external plotting.
///
/// Values containing commas, quotes or newlines are quoted and escaped.
/// The writer owns the output stream; rows are flushed on destruction.
class CsvWriter {
 public:
  /// Opens `path` for writing, truncating any existing file.
  /// Throws std::runtime_error if the file cannot be opened.
  explicit CsvWriter(const std::string& path);

  /// Writes the header row. Must be called at most once, before any row.
  void header(std::initializer_list<std::string_view> columns);

  /// Appends one row; each argument is formatted with operator<<.
  template <typename... Ts>
  void row(const Ts&... values) {
    std::vector<std::string> cells;
    cells.reserve(sizeof...(values));
    (cells.push_back(format(values)), ...);
    writeCells(cells);
  }

  /// Number of data rows written so far (header excluded).
  std::size_t rowsWritten() const noexcept { return rows_; }

 private:
  template <typename T>
  static std::string format(const T& value) {
    std::ostringstream oss;
    oss << value;
    return oss.str();
  }

  static std::string escape(std::string_view cell);
  void writeCells(const std::vector<std::string>& cells);

  std::ofstream out_;
  bool header_written_ = false;
  std::size_t rows_ = 0;
};

}  // namespace doda::util
