#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace doda::util {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  if (columns_.empty()) throw std::invalid_argument("Table: no columns");
}

void Table::addRow(std::vector<std::string> cells) {
  if (cells.size() != columns_.size())
    throw std::invalid_argument("Table: cell count != column count");
  rows_.push_back(std::move(cells));
}

bool Table::looksNumeric(const std::string& cell) {
  if (cell.empty()) return false;
  for (char ch : cell) {
    if (!(std::isdigit(static_cast<unsigned char>(ch)) || ch == '.' ||
          ch == '-' || ch == '+' || ch == 'e' || ch == 'E' || ch == 'x'))
      return false;
  }
  return true;
}

std::string Table::num(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return oss.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c)
    widths[c] = columns_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto printRow = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << "  ";
      if (looksNumeric(cells[c]))
        os << std::setw(static_cast<int>(widths[c])) << std::right << cells[c];
      else
        os << std::setw(static_cast<int>(widths[c])) << std::left << cells[c];
    }
    os << '\n';
  };

  printRow(columns_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    if (c > 0) rule += "  ";
    rule += std::string(widths[c], '-');
  }
  os << rule << '\n';
  for (const auto& row : rows_) printRow(row);
}

}  // namespace doda::util
