#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace doda::util {

/// Fixed-column console table used by examples and bench summaries.
///
/// Collects rows of pre-formatted cells and prints them with aligned
/// columns, a header underline, and right-aligned numeric-looking cells.
class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  /// Appends a row; must contain exactly one cell per column.
  void addRow(std::vector<std::string> cells);

  /// Renders the table to `os`.
  void print(std::ostream& os) const;

  std::size_t rowCount() const noexcept { return rows_.size(); }

  /// Formats a double with `precision` significant decimal places.
  static std::string num(double value, int precision = 2);

 private:
  static bool looksNumeric(const std::string& cell);

  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace doda::util
