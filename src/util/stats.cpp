#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace doda::util {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto total = count_ + other.count_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) /
                         static_cast<double>(total);
  mean_ += delta * static_cast<double>(other.count_) /
           static_cast<double>(total);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ = total;
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::ci95HalfWidth() const noexcept {
  if (count_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(count_));
}

double quantile(std::span<const double> sorted, double q) {
  if (sorted.empty()) throw std::invalid_argument("quantile: empty sample");
  if (q <= 0.0) return sorted.front();
  if (q >= 1.0) return sorted.back();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

Summary summarize(std::span<const double> samples) {
  Summary out;
  out.count = samples.size();
  if (samples.empty()) return out;
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  RunningStats rs;
  for (double x : sorted) rs.add(x);
  out.mean = rs.mean();
  out.stddev = rs.stddev();
  out.min = sorted.front();
  out.max = sorted.back();
  out.median = quantile(sorted, 0.5);
  out.p95 = quantile(sorted, 0.95);
  return out;
}

PowerLawFit fitPowerLaw(std::span<const double> xs,
                        std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2)
    throw std::invalid_argument("fitPowerLaw: need >= 2 matched points");
  const auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (!(xs[i] > 0.0) || !(ys[i] > 0.0))
      throw std::invalid_argument("fitPowerLaw: values must be positive");
    const double lx = std::log(xs[i]);
    const double ly = std::log(ys[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    syy += ly * ly;
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0)
    throw std::invalid_argument("fitPowerLaw: degenerate x values");
  PowerLawFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ssTot = syy - sy * sy / n;
  double ssRes = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double pred = fit.intercept + fit.slope * std::log(xs[i]);
    const double resid = std::log(ys[i]) - pred;
    ssRes += resid * resid;
  }
  fit.r2 = ssTot > 0.0 ? 1.0 - ssRes / ssTot : 1.0;
  return fit;
}

double harmonic(std::size_t n) noexcept {
  double h = 0.0;
  for (std::size_t i = 1; i <= n; ++i) h += 1.0 / static_cast<double>(i);
  return h;
}

namespace closed_form {

double broadcastExpected(std::size_t n) noexcept {
  return static_cast<double>(n - 1) * harmonic(n - 1);
}

double waitingExpected(std::size_t n) noexcept {
  const auto nd = static_cast<double>(n);
  return nd * (nd - 1.0) / 2.0 * harmonic(n - 1);
}

double gatheringExpected(std::size_t n) noexcept {
  const auto nd = static_cast<double>(n);
  double sum = 0.0;
  for (std::size_t i = 1; i + 1 <= n; ++i)
    sum += 1.0 / (static_cast<double>(i) * static_cast<double>(i + 1));
  return nd * (nd - 1.0) * sum;
}

double waitingLossExpected(std::size_t n, double p) noexcept {
  return waitingExpected(n) / (1.0 - p);
}

double lastTransmissionExpected(std::size_t n) noexcept {
  const auto nd = static_cast<double>(n);
  return nd * (nd - 1.0) / 2.0;
}

double waitingGreedyTau(std::size_t n) noexcept {
  const auto nd = static_cast<double>(n);
  return std::pow(nd, 1.5) * std::sqrt(std::log(nd));
}

}  // namespace closed_form

}  // namespace doda::util
