#include "server/job_queue.hpp"

#include <algorithm>

#include "server/protocol.hpp"
#include "sim/parallel.hpp"

namespace doda::server {

JobQueue::JobQueue(JobQueueOptions options) : options_(options) {
  if (options_.workers == 0) options_.workers = 1;
  if (options_.max_open == 0) options_.max_open = 1;
  runners_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i)
    runners_.emplace_back([this] { runnerLoop(); });
}

JobQueue::~JobQueue() {
  drain();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& runner : runners_) runner.join();
}

const char* JobQueue::phaseName(Phase phase) {
  switch (phase) {
    case Phase::kQueued:
      return "queued";
    case Phase::kRunning:
      return "running";
    case Phase::kDone:
      return "done";
    case Phase::kFailed:
      return "failed";
    case Phase::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

std::uint64_t JobQueue::submit(std::string method, std::uint64_t total_trials,
                               JobWork work) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!accepting_)
    throw ProtocolError(ErrorCode::kBusy, "server is draining");
  if (open_ >= options_.max_open)
    throw ProtocolError(ErrorCode::kBusy,
                        "job queue at capacity (" +
                            std::to_string(options_.max_open) +
                            " open jobs)");
  const std::uint64_t id = next_id_++;
  auto job = std::make_unique<Job>();
  job->id = id;
  job->method = std::move(method);
  job->total = total_trials;
  job->work = std::move(work);
  jobs_.emplace(id, std::move(job));
  ++open_;
  return id;
}

void JobQueue::activate(std::uint64_t id) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return;
    Job& job = *it->second;
    if (job.activated || job.phase != Phase::kQueued) return;
    job.activated = true;
    pending_.push_back(id);
  }
  work_cv_.notify_one();
}

Json JobQueue::status(std::uint64_t id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end())
    throw ProtocolError(ErrorCode::kUnknownJob,
                        "unknown job " + std::to_string(id));
  const Job& job = *it->second;
  Json out = Json::object();
  out.set("job", id);
  out.set("state", phaseName(job.phase));
  out.set("folded", job.folded);
  out.set("total", job.total);
  if (job.phase == Phase::kFailed) out.set("error", job.error);
  return out;
}

Json JobQueue::result(std::uint64_t id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end())
    throw ProtocolError(ErrorCode::kUnknownJob,
                        "unknown job " + std::to_string(id));
  const Job& job = *it->second;
  switch (job.phase) {
    case Phase::kDone: {
      Json out = Json::object();
      out.set("job", id);
      out.set("state", "done");
      out.set("stats", job.payload);
      return out;
    }
    case Phase::kFailed:
      throw ProtocolError(ErrorCode::kInternalError,
                          "job " + std::to_string(id) +
                              " failed: " + job.error);
    case Phase::kCancelled:
      throw ProtocolError(ErrorCode::kNotFinished,
                          "job " + std::to_string(id) + " was cancelled");
    default:
      throw ProtocolError(ErrorCode::kNotFinished,
                          "job " + std::to_string(id) + " is " +
                              phaseName(job.phase));
  }
}

bool JobQueue::cancel(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end())
    throw ProtocolError(ErrorCode::kUnknownJob,
                        "unknown job " + std::to_string(id));
  Job& job = *it->second;
  switch (job.phase) {
    case Phase::kQueued: {
      // Not started yet: finish it here and now.
      job.cancel.store(true, std::memory_order_relaxed);
      const auto pos = std::find(pending_.begin(), pending_.end(), id);
      if (pos != pending_.end()) pending_.erase(pos);
      job.phase = Phase::kCancelled;
      finished_order_.push_back(id);
      --open_;
      emitLocked(job, completionFrame(job));
      job.subscribers.clear();
      drain_cv_.notify_all();
      return true;
    }
    case Phase::kRunning:
      // Cooperative: the measurement polls the flag between trials.
      job.cancel.store(true, std::memory_order_relaxed);
      return true;
    default:
      return false;
  }
}

void JobQueue::subscribe(std::uint64_t id, StreamSink sink) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end())
    throw ProtocolError(ErrorCode::kUnknownJob,
                        "unknown job " + std::to_string(id));
  Job& job = *it->second;
  if (job.phase == Phase::kQueued || job.phase == Phase::kRunning) {
    job.subscribers.push_back(std::move(sink));
    return;
  }
  sink(completionFrame(job));  // already finished: terminal frame only
}

void JobQueue::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  accepting_ = false;
  drain_cv_.wait(lock, [this] { return open_ == 0; });
}

std::size_t JobQueue::openJobs() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return open_;
}

void JobQueue::emitLocked(Job& job, const Json& frame) {
  std::erase_if(job.subscribers,
                [&frame](const StreamSink& sink) { return !sink(frame); });
}

Json JobQueue::completionFrame(const Job& job) const {
  Json params = Json::object();
  params.set("job", job.id);
  params.set("state", phaseName(job.phase));
  if (job.phase == Phase::kDone) params.set("stats", job.payload);
  if (job.phase == Phase::kFailed) params.set("error", job.error);
  return makeNotification("job.complete", std::move(params));
}

void JobQueue::runnerLoop() {
  while (true) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock,
                    [this] { return stopping_ || !pending_.empty(); });
      if (pending_.empty()) return;  // stopping_ and no work left
      const std::uint64_t id = pending_.front();
      pending_.pop_front();
      job = jobs_.at(id).get();
      job->phase = Phase::kRunning;
    }
    runJob(*job);  // open jobs are never evicted: the pointer stays valid
  }
}

void JobQueue::runJob(Job& job) {
  JobContext context;
  context.cancel = &job.cancel;
  context.progress = [this, &job](std::uint64_t folded, Json stats) {
    const std::lock_guard<std::mutex> lock(mutex_);
    job.folded = folded;
    if (job.subscribers.empty()) return;
    Json params = Json::object();
    params.set("job", job.id);
    params.set("folded", folded);
    params.set("total", job.total);
    params.set("stats", std::move(stats));
    emitLocked(job, makeNotification("job.progress", std::move(params)));
  };

  Json payload;
  Phase outcome = Phase::kDone;
  std::string error;
  try {
    payload = job.work(context);
  } catch (const sim::RunCancelled&) {
    outcome = Phase::kCancelled;
  } catch (const std::exception& e) {
    outcome = Phase::kFailed;
    error = e.what();
  }

  std::lock_guard<std::mutex> lock(mutex_);
  job.phase = outcome;
  job.payload = std::move(payload);
  job.error = std::move(error);
  finished_order_.push_back(job.id);
  --open_;
  emitLocked(job, completionFrame(job));
  job.subscribers.clear();
  while (finished_order_.size() > options_.retain_finished) {
    jobs_.erase(finished_order_.front());
    finished_order_.pop_front();
  }
  drain_cv_.notify_all();
}

}  // namespace doda::server
