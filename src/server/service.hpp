#pragma once

#include <functional>
#include <memory>
#include <string>

#include "server/job_queue.hpp"
#include "server/protocol.hpp"
#include "server/store_cache.hpp"

namespace doda::server {

struct ServiceOptions {
  /// Job-queue shape (admission cap, runner threads, retention).
  JobQueueOptions queue;
  /// Store-path jail + handle cache.
  StoreCacheOptions stores;
  /// Per-job trial budget: submits asking for more trials fail with
  /// kTrialBudget instead of monopolizing a runner.
  std::uint64_t max_trials_per_job = 1u << 20;
  /// Hard cap on one request line, enforced before parsing.
  std::size_t max_frame_bytes = 1u << 20;
};

/// What Service::handle returns: the response frame to write, plus an
/// optional hook the transport runs AFTER the response is on the wire.
/// Job activation lives in the hook so a submit's first progress frame can
/// never overtake the submit response — the ordering docs/PROTOCOL.md
/// sessions (and their conformance test) rely on.
struct Handled {
  Json response;
  std::function<void()> after_reply;
};

/// The dodad method dispatcher — transport-agnostic (the TCP server and
/// the in-process tests both drive it).
///
/// Methods (docs/PROTOCOL.md is the authoritative spec):
///   ping, server.info,
///   job.submit, job.status, job.result, job.cancel, job.subscribe
class Service {
 public:
  explicit Service(ServiceOptions options = {});

  /// Dispatches one raw frame. Never throws: protocol failures come back
  /// as error frames. `sink` is the caller's connection-bound stream sink,
  /// used by job.subscribe (never invoked before handle returns).
  Handled handle(const std::string& line, const StreamSink& sink);

  /// SIGTERM path: refuse new jobs, wait for open ones.
  void drain();

  JobQueue& jobs() { return jobs_; }
  const ServiceOptions& options() const { return options_; }

 private:
  Handled dispatch(const Request& request, const StreamSink& sink);
  Handled submit(const Request& request);

  ServiceOptions options_;
  StoreCache stores_;
  JobQueue jobs_;
};

}  // namespace doda::server
