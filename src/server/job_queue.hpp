#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/json.hpp"

namespace doda::server {

/// Delivers one notification frame to a subscriber. Returns false when the
/// subscriber is gone (connection closed) — the queue then drops it.
using StreamSink = std::function<bool(const Json&)>;

/// Handed to a job body while it runs.
struct JobContext {
  /// Cancel flag for the measurement's RunControl; flips on job.cancel.
  const std::atomic<bool>* cancel = nullptr;
  /// The body calls this from the measurement's progress observer:
  /// `folded` trials folded so far, `stats` the protocol stats object of
  /// that folded prefix. The queue fans it out to subscribers.
  std::function<void(std::uint64_t folded, Json stats)> progress;
};

/// The work of one job. Runs on a queue runner thread; returns the result
/// payload. Throwing sim::RunCancelled marks the job cancelled; any other
/// exception marks it failed with the exception text.
using JobWork = std::function<Json(JobContext&)>;

struct JobQueueOptions {
  /// Runner threads executing jobs (each job then fans its trials over the
  /// measurement's own worker pool).
  std::size_t workers = 1;
  /// Cap on open jobs (queued + running). Submits beyond it fail with
  /// kBusy instead of queueing unboundedly — admission control, not
  /// backpressure.
  std::size_t max_open = 8;
  /// Finished jobs retained for job.result; the oldest beyond this are
  /// evicted (subsequent lookups: kUnknownJob).
  std::size_t retain_finished = 64;
};

/// Bounded FIFO job queue over dedicated runner threads.
///
/// Lifecycle: submit() admits a job (kBusy beyond max_open) but keeps it
/// dormant until activate(id) — the server activates after writing the
/// submit response, so a subscriber attached right after never races the
/// first progress frame ahead of its own subscribe response. Runners pick
/// activated jobs FIFO. drain() stops admission and blocks until every
/// open job finished — the SIGTERM path.
///
/// Job ids are sequential from 1 per queue instance, which keeps recorded
/// protocol sessions (docs/PROTOCOL.md) deterministic.
class JobQueue {
 public:
  explicit JobQueue(JobQueueOptions options = {});
  ~JobQueue();

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Admits a job. `method` and `total_trials` are surfaced by job.status.
  /// Throws ProtocolError(kBusy) at capacity or after drain().
  std::uint64_t submit(std::string method, std::uint64_t total_trials,
                       JobWork work);

  /// Makes a submitted job eligible to run. Idempotent.
  void activate(std::uint64_t id);

  /// {"job","state","folded","total"} (+"error" when failed).
  Json status(std::uint64_t id) const;

  /// The stored result payload. Throws kUnknownJob / kNotFinished.
  Json result(std::uint64_t id) const;

  /// Requests cancellation; returns true when the job was still open
  /// (queued jobs are cancelled immediately, running jobs cooperatively).
  bool cancel(std::uint64_t id);

  /// Attaches a subscriber. Open jobs stream job.progress frames per
  /// folded trial, then one job.complete; already-finished jobs get their
  /// job.complete immediately.
  void subscribe(std::uint64_t id, StreamSink sink);

  /// Stops admission and waits for every open job. Safe to call twice.
  void drain();

  std::size_t openJobs() const;

 private:
  enum class Phase { kQueued, kRunning, kDone, kFailed, kCancelled };
  static const char* phaseName(Phase phase);

  struct Job {
    std::uint64_t id = 0;
    std::string method;
    std::uint64_t total = 0;
    Phase phase = Phase::kQueued;
    bool activated = false;
    std::atomic<bool> cancel{false};
    JobWork work;
    Json payload;
    std::string error;
    std::uint64_t folded = 0;
    std::vector<StreamSink> subscribers;
  };

  void runnerLoop();
  void runJob(Job& job);
  /// Emits `frame` to the job's subscribers, dropping dead ones. Caller
  /// holds mutex_.
  void emitLocked(Job& job, const Json& frame);
  Json completionFrame(const Job& job) const;

  JobQueueOptions options_;
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   // runners: activated work available
  std::condition_variable drain_cv_;  // drain(): open job count dropped
  std::map<std::uint64_t, std::unique_ptr<Job>> jobs_;
  std::deque<std::uint64_t> pending_;          // activated, not yet running
  std::deque<std::uint64_t> finished_order_;   // eviction order
  std::uint64_t next_id_ = 1;
  std::size_t open_ = 0;
  bool accepting_ = true;
  bool stopping_ = false;
  std::vector<std::thread> runners_;
};

}  // namespace doda::server
