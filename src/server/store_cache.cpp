#include "server/store_cache.hpp"

#include <sys/stat.h>

#include <filesystem>

#include "server/protocol.hpp"
#include "storage/durable_store.hpp"

namespace doda::server {

namespace fs = std::filesystem;

namespace {

[[noreturn]] void storeError(const std::string& message) {
  throw ProtocolError(ErrorCode::kStoreError, message);
}

/// size ^ rotated mtime of one file — changes whenever the file does.
std::uint64_t statToken(const std::string& path) {
  struct ::stat st {};
  if (::stat(path.c_str(), &st) != 0) return 0;
  const auto size = static_cast<std::uint64_t>(st.st_size);
  const auto mtime = static_cast<std::uint64_t>(st.st_mtime);
  return size ^ (mtime << 20) ^ (mtime >> 44);
}

}  // namespace

StoreCache::StoreCache(StoreCacheOptions options)
    : options_(std::move(options)) {
  if (options_.capacity == 0) options_.capacity = 1;
}

std::string StoreCache::resolve(const std::string& path) const {
  if (path.empty()) storeError("store path is empty");
  if (options_.root.empty()) return path;
  const fs::path candidate(path);
  if (candidate.is_absolute())
    storeError("absolute store paths are not allowed under --store-root");
  for (const fs::path& part : candidate)
    if (part == "..")
      storeError("store path may not contain '..' under --store-root");
  return (fs::path(options_.root) / candidate).string();
}

std::uint64_t StoreCache::freshnessOf(const std::string& resolved) {
  // The durable MANIFEST grows on every commit; a plain store's shard 0 is
  // rewritten only when the store is re-recorded. Either way one stat
  // answers "did this store change since we opened it".
  const std::string manifest = resolved + "/MANIFEST";
  const std::uint64_t manifest_token = statToken(manifest);
  if (manifest_token != 0) return manifest_token;
  return statToken(resolved + "/shard-00000.trace");
}

std::shared_ptr<const dynagraph::TraceStore> StoreCache::open(
    const std::string& path) {
  const std::string resolved = resolve(path);
  const std::uint64_t freshness = freshnessOf(resolved);

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->key != resolved) continue;
      if (it->freshness == freshness) {
        entries_.splice(entries_.begin(), entries_, it);
        return entries_.front().store;
      }
      entries_.erase(it);  // stale: reopen below
      break;
    }
  }

  // Open outside the lock: manifest recovery / header validation can take
  // a while and must not serialize unrelated jobs.
  std::shared_ptr<const dynagraph::TraceStore> store;
  try {
    if (storage::DurableTraceStore::isDurableStore(resolved)) {
      const storage::DurableTraceStore durable =
          storage::DurableTraceStore::open(resolved);
      store = std::make_shared<const dynagraph::TraceStore>(
          durable.openStore());
    } else {
      store = std::make_shared<const dynagraph::TraceStore>(
          dynagraph::TraceStore::open(resolved));
    }
  } catch (const std::exception& e) {
    storeError(std::string("cannot open store: ") + e.what());
  }

  const std::lock_guard<std::mutex> lock(mutex_);
  // A concurrent open may have raced us here; latest wins, both handles
  // stay valid for their holders.
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->key == resolved) {
      entries_.erase(it);
      break;
    }
  }
  entries_.push_front({resolved, freshness, store});
  while (entries_.size() > options_.capacity) entries_.pop_back();
  return store;
}

std::size_t StoreCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace doda::server
