#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "server/json.hpp"
#include "sim/experiment.hpp"
#include "sim/fault_experiment.hpp"

namespace doda::server {

/// Protocol error codes (docs/PROTOCOL.md "Errors"). The -327xx range
/// matches JSON-RPC convention; -320xx is the dodad server range.
enum class ErrorCode : int {
  kParseError = -32700,      // frame is not valid JSON
  kInvalidRequest = -32600,  // JSON but not a request object
  kMethodNotFound = -32601,
  kInvalidParams = -32602,
  kInternalError = -32603,
  kBusy = -32000,           // job queue at capacity
  kUnknownJob = -32001,     // job id never existed or already evicted
  kNotFinished = -32002,    // result fetch on a running/queued job
  kTrialBudget = -32003,    // submit exceeds the per-job trial budget
  kStoreError = -32004,     // trace store missing/corrupt/outside root
  kFrameTooLarge = -32005,  // request line exceeded the frame cap
};

/// A request the server failed to serve; carried to the response writer.
struct ProtocolError : std::runtime_error {
  ProtocolError(ErrorCode code_, const std::string& message)
      : std::runtime_error(message), code(code_) {}
  ErrorCode code;
};

/// Hexadecimal floating-point rendering of a double, bit-exact and
/// locale/libc independent (printf %a varies in digit count across libcs).
/// Format: [-]0x1.<13 hex digits>p<decimal exponent>, subnormals
/// renormalized, zero as 0x0p+0. parseHexDouble inverts it (also accepts
/// standard strtod hexfloats).
std::string hexDouble(double value);
double parseHexDouble(const std::string& text);

/// Renders a folded MeasureResult as the protocol's stats object —
/// human-readable decimal fields plus bit-exact hexfloat twins ("*_hex")
/// for the golden comparisons. Shape documented in docs/PROTOCOL.md.
Json statsJson(const sim::MeasureResult& result);

/// Renders a FaultMeasureResult: the interactions stats object plus the
/// degradation block (completion/blocked/timeout rates, cost inflation).
Json faultResultJson(const sim::FaultMeasureResult& result);

/// Builds a response frame: {"id":..,"result":..} on success.
Json makeResponse(Json id, Json result);
/// Builds an error frame: {"id":..,"error":{"code":..,"message":..}}.
Json makeError(Json id, ErrorCode code, const std::string& message);
/// Builds a notification frame: {"method":..,"params":..} (no id).
Json makeNotification(const std::string& method, Json params);

/// One parsed request. `id` may be any JSON scalar; requests without an
/// id are invalid in this dialect (the server always replies).
struct Request {
  Json id;
  std::string method;
  Json params;  // object, possibly empty
};

/// Parses one frame into a Request. Throws ProtocolError with
/// kParseError / kInvalidRequest on malformed input.
Request parseRequest(const std::string& line, std::size_t max_frame_bytes);

}  // namespace doda::server
