#include "server/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace doda::server {

/// The write side of one connection, shared between the reader thread and
/// any subscriber sinks living in the job queue. `mutex` serializes whole
/// frames; `open` flips once a write fails (peer gone) so later frames
/// are dropped instead of retried.
struct Server::WriteHalf {
  int fd = -1;
  std::mutex mutex;
  bool open = true;
};

struct Server::Connection {
  /// Owned by whoever wins the exchange in closeFd — the reader thread on
  /// normal disconnect, stop() at shutdown.
  std::atomic<int> fd{-1};
  std::shared_ptr<WriteHalf> write;
  std::thread reader;
  std::atomic<bool> done{false};

  void closeFd() {
    const int expected = fd.exchange(-1);
    if (expected >= 0) ::close(expected);
  }
};

namespace {

bool sendAll(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    // MSG_NOSIGNAL: a vanished peer must surface as EPIPE, not SIGPIPE.
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Server::Server(Service& service, ServerOptions options)
    : service_(service), options_(std::move(options)) {}

Server::~Server() { stop(); }

void Server::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1)
    throw std::runtime_error("invalid bind address " + options_.bind_address);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0)
    throw std::runtime_error(std::string("bind: ") + std::strerror(errno));
  if (::listen(listen_fd_, 64) != 0)
    throw std::runtime_error(std::string("listen: ") + std::strerror(errno));

  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0)
    throw std::runtime_error(std::string("getsockname: ") +
                             std::strerror(errno));
  port_ = ntohs(addr.sin_port);

  accept_thread_ = std::thread([this] { acceptLoop(); });
}

void Server::stop() {
  {
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  if (listen_fd_ >= 0) {
    // shutdown unblocks accept() on every platform we care about; close
    // finishes the job.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  std::vector<std::shared_ptr<Connection>> connections;
  {
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    connections.swap(connections_);
  }
  for (const auto& connection : connections) {
    const int fd = connection->fd.load();
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);  // unblock the reader
  }
  for (const auto& connection : connections) {
    if (connection->reader.joinable()) connection->reader.join();
    {
      const std::lock_guard<std::mutex> lock(connection->write->mutex);
      connection->write->open = false;
    }
    connection->closeFd();
  }
}

void Server::acceptLoop() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed: shutting down
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto connection = std::make_shared<Connection>();
    connection->fd.store(fd);
    connection->write = std::make_shared<WriteHalf>();
    connection->write->fd = fd;
    {
      const std::lock_guard<std::mutex> lock(connections_mutex_);
      if (stopped_) {
        ::close(fd);
        return;
      }
      // Reap connections whose reader already finished (peer hung up), so
      // the registry tracks live connections, not connection history.
      std::erase_if(connections_,
                    [](const std::shared_ptr<Connection>& c) {
                      if (!c->done.load()) return false;
                      if (c->reader.joinable()) c->reader.join();
                      return true;
                    });
      connections_.push_back(connection);
    }
    connection->reader =
        std::thread([this, connection] { serveConnection(connection); });
  }
}

bool Server::writeFrame(WriteHalf& half, const Json& frame) {
  std::string line = frame.dump();
  line.push_back('\n');
  const std::lock_guard<std::mutex> lock(half.mutex);
  if (!half.open) return false;
  if (!sendAll(half.fd, line.data(), line.size())) {
    half.open = false;
    return false;
  }
  return true;
}

void Server::serveConnection(std::shared_ptr<Connection> connection) {
  const std::shared_ptr<WriteHalf> write = connection->write;
  // The sink outlives the connection thread (subscriptions hold it until
  // the queue drops them on the first failed write).
  const StreamSink sink = [write](const Json& frame) {
    return writeFrame(*write, frame);
  };

  const std::size_t frame_cap = service_.options().max_frame_bytes;
  // Discard-mode threshold: past the cap (plus framing slack) the line can
  // only ever produce kFrameTooLarge, so stop buffering its bytes.
  const std::size_t buffer_cap = frame_cap + 1024;

  std::string buffer;
  bool discarding = false;
  bool peer_alive = true;
  char chunk[4096];
  while (peer_alive) {
    const int fd = connection->fd.load();
    if (fd < 0) break;
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // disconnect or shutdown; partial line is dropped
    for (ssize_t i = 0; i < n && peer_alive; ++i) {
      const char c = chunk[i];
      if (c != '\n') {
        if (discarding) continue;
        buffer.push_back(c);
        if (buffer.size() > buffer_cap) {
          writeFrame(*write,
                     makeError(Json(nullptr), ErrorCode::kFrameTooLarge,
                               "frame exceeds " +
                                   std::to_string(frame_cap) + " bytes"));
          buffer.clear();
          discarding = true;
        }
        continue;
      }
      if (discarding) {  // the oversized line finally ended
        discarding = false;
        continue;
      }
      if (!buffer.empty() && buffer.back() == '\r') buffer.pop_back();
      if (buffer.empty()) continue;  // blank lines are keep-alives
      Handled handled = service_.handle(buffer, sink);
      buffer.clear();
      peer_alive = writeFrame(*write, handled.response);
      // The hook runs even when the peer vanished mid-reply: job
      // activation must not depend on the client still listening.
      if (handled.after_reply) handled.after_reply();
    }
  }
  // Order matters: mark the write half closed under its mutex BEFORE
  // closing the descriptor, so a subscriber sink can never write to a
  // recycled fd number.
  {
    const std::lock_guard<std::mutex> lock(write->mutex);
    write->open = false;
  }
  connection->closeFd();
  connection->done.store(true);
}

}  // namespace doda::server
