#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>

#include "dynagraph/trace_io.hpp"

namespace doda::server {

struct StoreCacheOptions {
  /// When non-empty, every store path is resolved relative to this root
  /// and jailed inside it: absolute paths and ".." components are
  /// rejected. Empty (the default, for tests and trusted local use) takes
  /// paths as given.
  std::string root;
  /// Open handles kept alive; least recently used is evicted beyond this.
  std::size_t capacity = 8;
};

/// LRU cache of open trace-store handles for the dodad server.
///
/// A replay job needs a validated TraceStore (every shard header read and
/// cross-checked — and for a durable store, a full manifest recovery
/// replay); doing that per request would dominate small replays. The cache
/// keys on the resolved path and revalidates freshness with one stat per
/// hit (MANIFEST size+mtime for durable stores, shard 0 for plain ones):
/// a store that grew a commit is transparently reopened.
///
/// Handles are shared_ptr<const TraceStore>: eviction or reopen never
/// invalidates a replay in flight (TraceStore is immutable and holds no
/// file descriptors; shard files are themselves immutable once committed).
class StoreCache {
 public:
  explicit StoreCache(StoreCacheOptions options = {});

  /// Resolves, validates, and opens (or reuses) the store at `path`.
  /// Durable stores (a MANIFEST is present) are recovered and opened as
  /// their composite view; plain directories open directly. Throws
  /// ProtocolError(kStoreError) on jail violations and open failures.
  std::shared_ptr<const dynagraph::TraceStore> open(const std::string& path);

  /// Cached handle count (tests).
  std::size_t size() const;

 private:
  struct Entry {
    std::string key;
    std::uint64_t freshness = 0;
    std::shared_ptr<const dynagraph::TraceStore> store;
  };

  std::string resolve(const std::string& path) const;
  static std::uint64_t freshnessOf(const std::string& resolved);

  StoreCacheOptions options_;
  mutable std::mutex mutex_;
  std::list<Entry> entries_;  // front = most recently used
};

}  // namespace doda::server
