#include "server/protocol.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>

namespace doda::server {

namespace {

/// Emits a RunningStats as an object with decimal fields (shortest
/// round-trip, readable) and their hexfloat twins (bit-exact goldens).
Json runningStatsJson(const util::RunningStats& stats) {
  Json out = Json::object();
  out.set("count", static_cast<std::uint64_t>(stats.count()));
  out.set("mean", stats.mean());
  out.set("stddev", stats.stddev());
  out.set("ci95", stats.ci95HalfWidth());
  if (stats.count() > 0) {
    out.set("min", stats.min());
    out.set("max", stats.max());
  }
  out.set("mean_hex", hexDouble(stats.mean()));
  out.set("stddev_hex", hexDouble(stats.stddev()));
  return out;
}

int hexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string hexDouble(double value) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  const bool negative = (bits >> 63) != 0;
  const int raw_exp = static_cast<int>((bits >> 52) & 0x7FF);
  std::uint64_t mantissa = bits & ((std::uint64_t{1} << 52) - 1);

  std::string out;
  if (negative) out.push_back('-');
  if (raw_exp == 0x7FF) {
    out += mantissa != 0 ? "nan" : "inf";
    return out;
  }
  if (raw_exp == 0 && mantissa == 0) {
    out += "0x0p+0";
    return out;
  }
  int exponent;
  if (raw_exp == 0) {
    // Subnormal: renormalize so the output always reads 0x1.<frac>p<e>.
    exponent = -1022;
    while ((mantissa & (std::uint64_t{1} << 52)) == 0) {
      mantissa <<= 1;
      --exponent;
    }
    mantissa &= (std::uint64_t{1} << 52) - 1;
  } else {
    exponent = raw_exp - 1023;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "0x1.%013llxp%+d",
                static_cast<unsigned long long>(mantissa), exponent);
  out += buf;
  return out;
}

double parseHexDouble(const std::string& text) {
  const char* p = text.c_str();
  bool negative = false;
  if (*p == '+' || *p == '-') {
    negative = *p == '-';
    ++p;
  }
  if (std::strncmp(p, "inf", 3) == 0)
    return negative ? -std::numeric_limits<double>::infinity()
                    : std::numeric_limits<double>::infinity();
  if (std::strncmp(p, "nan", 3) == 0)
    return std::numeric_limits<double>::quiet_NaN();
  if (!(p[0] == '0' && (p[1] == 'x' || p[1] == 'X')))
    throw std::invalid_argument("parseHexDouble: missing 0x in '" + text +
                                "'");
  p += 2;
  // x86's 80-bit long double carries 64 mantissa bits — enough to
  // accumulate 1 + 13 hex digits exactly before the final rounding cast.
  long double value = 0.0L;
  int exponent = 0;
  bool any_digits = false;
  for (int d; (d = hexDigit(*p)) >= 0; ++p) {
    value = value * 16.0L + d;
    any_digits = true;
  }
  if (*p == '.') {
    ++p;
    for (int d; (d = hexDigit(*p)) >= 0; ++p) {
      value = value * 16.0L + d;
      exponent -= 4;
      any_digits = true;
    }
  }
  if (!any_digits)
    throw std::invalid_argument("parseHexDouble: no digits in '" + text +
                                "'");
  if (*p == 'p' || *p == 'P') {
    ++p;
    int exp_sign = 1;
    if (*p == '+' || *p == '-') {
      if (*p == '-') exp_sign = -1;
      ++p;
    }
    if (*p < '0' || *p > '9')
      throw std::invalid_argument("parseHexDouble: bad exponent in '" +
                                  text + "'");
    int e = 0;
    while (*p >= '0' && *p <= '9') e = e * 10 + (*p++ - '0');
    exponent += exp_sign * e;
  }
  if (*p != '\0')
    throw std::invalid_argument("parseHexDouble: trailing characters in '" +
                                text + "'");
  const double result = static_cast<double>(std::ldexp(value, exponent));
  return negative ? -result : result;
}

Json statsJson(const sim::MeasureResult& result) {
  Json out = Json::object();
  out.set("interactions", runningStatsJson(result.interactions));
  if (result.cost.count() > 0) out.set("cost", runningStatsJson(result.cost));
  out.set("failed_trials", static_cast<std::uint64_t>(result.failed_trials));
  return out;
}

Json faultResultJson(const sim::FaultMeasureResult& result) {
  const analysis::DegradationAccumulator& d = result.degradation;
  Json degradation = Json::object();
  degradation.set("trials", static_cast<std::uint64_t>(d.trials()));
  degradation.set("completed", static_cast<std::uint64_t>(d.completed()));
  degradation.set("blocked", static_cast<std::uint64_t>(d.blocked()));
  degradation.set("poisoned", static_cast<std::uint64_t>(d.poisoned()));
  degradation.set("completion_probability", d.completionProbability());
  degradation.set("completion_ci95", d.completionCi95HalfWidth());
  degradation.set("residual", runningStatsJson(d.residual()));
  degradation.set("stranded", runningStatsJson(d.stranded()));
  degradation.set("delivered_fraction",
                  runningStatsJson(d.deliveredFraction()));
  degradation.set("lost", runningStatsJson(d.lost()));
  degradation.set("retransmissions", runningStatsJson(d.retransmissions()));
  degradation.set("cost_inflation", runningStatsJson(d.costInflation()));

  Json out = Json::object();
  out.set("interactions", runningStatsJson(result.interactions));
  out.set("degradation", std::move(degradation));
  out.set("timed_out_trials",
          static_cast<std::uint64_t>(result.timed_out_trials));
  return out;
}

Json makeResponse(Json id, Json result) {
  Json out = Json::object();
  out.set("id", std::move(id));
  out.set("result", std::move(result));
  return out;
}

Json makeError(Json id, ErrorCode code, const std::string& message) {
  Json error = Json::object();
  error.set("code", static_cast<std::int64_t>(code));
  error.set("message", message);
  Json out = Json::object();
  out.set("id", std::move(id));
  out.set("error", std::move(error));
  return out;
}

Json makeNotification(const std::string& method, Json params) {
  Json out = Json::object();
  out.set("method", method);
  out.set("params", std::move(params));
  return out;
}

Request parseRequest(const std::string& line, std::size_t max_frame_bytes) {
  if (line.size() > max_frame_bytes)
    throw ProtocolError(ErrorCode::kFrameTooLarge,
                        "frame exceeds " + std::to_string(max_frame_bytes) +
                            " bytes");
  Json doc;
  try {
    doc = Json::parse(line);
  } catch (const JsonParseError& e) {
    throw ProtocolError(ErrorCode::kParseError,
                        std::string("parse error: ") + e.what());
  }
  if (!doc.isObject())
    throw ProtocolError(ErrorCode::kInvalidRequest,
                        "request must be a JSON object");
  const Json* id = doc.find("id");
  const Json* method = doc.find("method");
  if (id == nullptr || id->isArray() || id->isObject() || id->isNull())
    throw ProtocolError(ErrorCode::kInvalidRequest,
                        "request needs a scalar \"id\"");
  if (method == nullptr || !method->isString())
    throw ProtocolError(ErrorCode::kInvalidRequest,
                        "request needs a string \"method\"");
  Request request;
  request.id = *id;
  request.method = method->asString();
  if (const Json* params = doc.find("params")) {
    if (!params->isObject())
      throw ProtocolError(ErrorCode::kInvalidParams,
                          "\"params\" must be an object");
    request.params = *params;
  } else {
    request.params = Json::object();
  }
  return request;
}

}  // namespace doda::server
