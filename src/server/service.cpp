#include "server/service.hpp"

#include <algorithm>
#include <cmath>

#include "algorithms/gathering.hpp"
#include "algorithms/waiting.hpp"
#include "algorithms/waiting_greedy.hpp"
#include "sim/experiment.hpp"
#include "sim/fault_experiment.hpp"
#include "sim/trace_replay.hpp"
#include "util/stats.hpp"

namespace doda::server {

namespace {

[[noreturn]] void badParams(const std::string& message) {
  throw ProtocolError(ErrorCode::kInvalidParams, message);
}

std::uint64_t uintParam(const Json& params, const char* key,
                        std::uint64_t fallback) {
  const Json* value = params.find(key);
  if (value == nullptr) return fallback;
  if (!value->isInt() || value->asInt() < 0)
    badParams(std::string("\"") + key +
              "\" must be a non-negative integer");
  return static_cast<std::uint64_t>(value->asInt());
}

double numParam(const Json& params, const char* key, double fallback) {
  const Json* value = params.find(key);
  if (value == nullptr) return fallback;
  if (!value->isNumber()) badParams(std::string("\"") + key +
                                    "\" must be a number");
  return value->asDouble();
}

bool boolParam(const Json& params, const char* key, bool fallback) {
  const Json* value = params.find(key);
  if (value == nullptr) return fallback;
  if (!value->isBool()) badParams(std::string("\"") + key +
                                  "\" must be a boolean");
  return value->asBool();
}

std::string stringParam(const Json& params, const char* key,
                        const std::string& fallback) {
  const Json* value = params.find(key);
  if (value == nullptr) return fallback;
  if (!value->isString()) badParams(std::string("\"") + key +
                                    "\" must be a string");
  return value->asString();
}

/// The MeasureConfig keys shared by every synthetic job kind.
sim::MeasureConfig measureConfigOf(const Json& params) {
  sim::MeasureConfig config;
  config.node_count =
      static_cast<std::size_t>(uintParam(params, "n", config.node_count));
  if (config.node_count < 2) badParams("\"n\" must be at least 2");
  config.sink = static_cast<core::NodeId>(uintParam(params, "sink", 0));
  if (config.sink >= config.node_count) badParams("\"sink\" out of range");
  config.trials =
      static_cast<std::size_t>(uintParam(params, "trials", config.trials));
  if (config.trials == 0) badParams("\"trials\" must be positive");
  config.seed = uintParam(params, "seed", config.seed);
  config.threads =
      static_cast<std::size_t>(uintParam(params, "threads", 0));
  config.max_interactions = static_cast<core::Time>(uintParam(
      params, "max_interactions",
      static_cast<std::uint64_t>(config.max_interactions)));
  config.zipf_exponent = numParam(params, "zipf", 0.0);
  if (config.zipf_exponent < 0.0) badParams("\"zipf\" must be >= 0");
  const std::string seed_format = stringParam(params, "seed_format", "v2");
  if (seed_format == "v1")
    config.seed_format = dynagraph::traces::SeedFormat::v1;
  else if (seed_format == "v2")
    config.seed_format = dynagraph::traces::SeedFormat::v2;
  else
    badParams("\"seed_format\" must be \"v1\" or \"v2\"");
  config.intra_trial_workers = static_cast<std::size_t>(
      uintParam(params, "intra_trial_workers", 1));
  config.intra_trial_partitions = static_cast<std::size_t>(
      uintParam(params, "intra_trial_partitions", 0));
  config.intra_trial_block = static_cast<core::Time>(uintParam(
      params, "intra_trial_block",
      static_cast<std::uint64_t>(core::Time{1} << 16)));
  return config;
}

/// Builds the per-trial algorithm factory named by "algorithm". The
/// waiting-greedy horizon defaults to the paper's optimal tau (Cor 3).
sim::AlgorithmFactory algorithmFactoryOf(const Json& params,
                                         std::size_t node_count) {
  const std::string name = stringParam(params, "algorithm", "gathering");
  if (name == "gathering")
    return [](sim::TrialContext&) -> std::unique_ptr<core::DodaAlgorithm> {
      return std::make_unique<algorithms::Gathering>();
    };
  if (name == "waiting")
    return [](sim::TrialContext&) -> std::unique_ptr<core::DodaAlgorithm> {
      return std::make_unique<algorithms::Waiting>();
    };
  if (name == "waiting-greedy") {
    const auto default_tau = static_cast<std::uint64_t>(
        std::ceil(util::closed_form::waitingGreedyTau(node_count)));
    const auto tau =
        static_cast<core::Time>(uintParam(params, "tau", default_tau));
    return [tau](sim::TrialContext& context)
               -> std::unique_ptr<core::DodaAlgorithm> {
      // Fault jobs hand the degraded oracle; prefer it when present.
      if (context.oracle != nullptr)
        return std::make_unique<algorithms::WaitingGreedy>(*context.oracle,
                                                           tau);
      return std::make_unique<algorithms::WaitingGreedy>(context.meet_time,
                                                         tau);
    };
  }
  badParams("unknown \"algorithm\" \"" + name +
            "\" (gathering, waiting, waiting-greedy)");
}

/// Sequence length for the fixed-sequence kinds (cost, faults): long
/// enough that the slowest stock algorithm (Waiting) usually terminates
/// without the doubling path.
core::Time lengthHintOf(const Json& params, std::size_t node_count) {
  const auto fallback = static_cast<std::uint64_t>(std::max(
      1024.0,
      std::ceil(4.0 * util::closed_form::waitingExpected(node_count))));
  return static_cast<core::Time>(
      uintParam(params, "length_hint", fallback));
}

fault::FaultModel faultModelOf(const Json& params) {
  const Json* spec = params.find("faults");
  if (spec == nullptr) badParams("kind \"faults\" needs a \"faults\" object");
  if (!spec->isObject()) badParams("\"faults\" must be an object");
  fault::FaultModel model;
  model.loss_p = numParam(*spec, "loss", 0.0);
  if (const Json* ge = spec->find("gilbert_elliott")) {
    if (!ge->isObject()) badParams("\"gilbert_elliott\" must be an object");
    model.ge_enter_bad = numParam(*ge, "enter_bad", 0.0);
    model.ge_exit_bad = numParam(*ge, "exit_bad", 0.0);
    model.ge_loss_good = numParam(*ge, "loss_good", 0.0);
    model.ge_loss_bad = numParam(*ge, "loss_bad", 1.0);
  }
  if (const Json* crash = spec->find("crash")) {
    if (!crash->isObject()) badParams("\"crash\" must be an object");
    model.crash_fraction = numParam(*crash, "fraction", 0.0);
    model.crash_horizon =
        static_cast<core::Time>(uintParam(*crash, "horizon", 0));
  }
  model.byzantine_fraction = numParam(*spec, "byzantine", 0.0);
  try {
    model.validate();
  } catch (const std::exception& e) {
    badParams(std::string("invalid \"faults\": ") + e.what());
  }
  return model;
}

/// Wires a JobContext into a RunControl for the duration of one job body.
struct ControlBinding {
  explicit ControlBinding(JobContext& context) {
    control.cancel = context.cancel;
    control.progress = [&context](std::size_t folded,
                                  const sim::MeasureResult& snapshot) {
      context.progress(folded, statsJson(snapshot));
    };
  }
  sim::RunControl control;
};

}  // namespace

Service::Service(ServiceOptions options)
    : options_(std::move(options)),
      stores_(options_.stores),
      jobs_(options_.queue) {}

Handled Service::handle(const std::string& line, const StreamSink& sink) {
  Json id;  // null until the frame parses far enough to know it
  try {
    const Request request = parseRequest(line, options_.max_frame_bytes);
    id = request.id;
    return dispatch(request, sink);
  } catch (const ProtocolError& e) {
    return {makeError(std::move(id), e.code, e.what()), nullptr};
  } catch (const std::exception& e) {
    return {makeError(std::move(id), ErrorCode::kInternalError, e.what()),
            nullptr};
  }
}

void Service::drain() { jobs_.drain(); }

Handled Service::dispatch(const Request& request, const StreamSink& sink) {
  if (request.method == "ping") {
    Json result = Json::object();
    result.set("ok", true);
    return {makeResponse(request.id, std::move(result)), nullptr};
  }

  if (request.method == "server.info") {
    Json methods = Json::array();
    for (const char* name :
         {"ping", "server.info", "job.submit", "job.status", "job.result",
          "job.cancel", "job.subscribe"})
      methods.push(name);
    Json result = Json::object();
    result.set("name", "dodad");
    result.set("protocol", 1);
    result.set("methods", std::move(methods));
    result.set("max_trials_per_job", options_.max_trials_per_job);
    result.set("max_frame_bytes",
               static_cast<std::uint64_t>(options_.max_frame_bytes));
    return {makeResponse(request.id, std::move(result)), nullptr};
  }

  if (request.method == "job.submit") return submit(request);

  if (request.method == "job.status") {
    const std::uint64_t id = uintParam(request.params, "job", 0);
    return {makeResponse(request.id, jobs_.status(id)), nullptr};
  }

  if (request.method == "job.result") {
    const std::uint64_t id = uintParam(request.params, "job", 0);
    return {makeResponse(request.id, jobs_.result(id)), nullptr};
  }

  if (request.method == "job.cancel") {
    const std::uint64_t id = uintParam(request.params, "job", 0);
    const bool cancelled = jobs_.cancel(id);
    Json result = Json::object();
    result.set("job", id);
    result.set("cancelled", cancelled);
    return {makeResponse(request.id, std::move(result)), nullptr};
  }

  if (request.method == "job.subscribe") {
    const std::uint64_t id = uintParam(request.params, "job", 0);
    jobs_.status(id);  // surface kUnknownJob in the response, not the hook
    Json result = Json::object();
    result.set("job", id);
    result.set("subscribed", true);
    // Attach after the reply is on the wire: a finished job's immediate
    // job.complete frame must not overtake the subscribe response.
    auto attach = [this, id, sink] {
      try {
        jobs_.subscribe(id, sink);
      } catch (const ProtocolError&) {
        // Evicted between check and attach: nothing to stream.
      }
    };
    return {makeResponse(request.id, std::move(result)), std::move(attach)};
  }

  throw ProtocolError(ErrorCode::kMethodNotFound,
                      "unknown method \"" + request.method + "\"");
}

Handled Service::submit(const Request& request) {
  const Json& params = request.params;
  const std::string kind = stringParam(params, "kind", "");
  if (kind.empty()) badParams("\"kind\" is required");

  JobWork work;
  std::uint64_t total_trials = 0;

  if (kind == "randomized" || kind == "cost" || kind == "offline-opt" ||
      kind == "faults") {
    sim::MeasureConfig config = measureConfigOf(params);
    total_trials = config.trials;
    const auto max_doublings = static_cast<std::size_t>(
        uintParam(params, "max_doublings", 8));
    if (kind == "offline-opt") {
      work = [config](JobContext& context) -> Json {
        ControlBinding binding(context);
        sim::MeasureConfig bound = config;
        bound.control = &binding.control;
        return statsJson(sim::measureOfflineOptimal(bound));
      };
    } else if (kind == "randomized") {
      sim::AlgorithmFactory factory =
          algorithmFactoryOf(params, config.node_count);
      work = [config, factory](JobContext& context) -> Json {
        ControlBinding binding(context);
        sim::MeasureConfig bound = config;
        bound.control = &binding.control;
        return statsJson(sim::measureRandomized(bound, factory));
      };
    } else if (kind == "cost") {
      sim::AlgorithmFactory factory =
          algorithmFactoryOf(params, config.node_count);
      const core::Time length = lengthHintOf(params, config.node_count);
      work = [config, factory, length,
              max_doublings](JobContext& context) -> Json {
        ControlBinding binding(context);
        sim::MeasureConfig bound = config;
        bound.control = &binding.control;
        return statsJson(
            sim::measureWithCost(bound, length, factory, max_doublings));
      };
    } else {  // faults
      config.faults = faultModelOf(params);
      sim::AlgorithmFactory factory =
          algorithmFactoryOf(params, config.node_count);
      const core::Time length = lengthHintOf(params, config.node_count);
      work = [config, factory, length,
              max_doublings](JobContext& context) -> Json {
        ControlBinding binding(context);
        sim::MeasureConfig bound = config;
        bound.control = &binding.control;
        return faultResultJson(
            sim::measureWithFaults(bound, length, factory, max_doublings));
      };
    }
  } else if (kind == "replay") {
    const std::string path = stringParam(params, "store", "");
    if (path.empty()) badParams("kind \"replay\" needs a \"store\" path");
    // Open at submit time: a bad path fails the submit itself (kStoreError)
    // instead of a queued job. The shared_ptr keeps the handle alive for
    // the job even if the cache evicts it.
    std::shared_ptr<const dynagraph::TraceStore> store = stores_.open(path);

    sim::ReplayConfig replay;
    replay.sink = static_cast<core::NodeId>(uintParam(params, "sink", 0));
    if (replay.sink >= store->nodeCount()) badParams("\"sink\" out of range");
    replay.threads =
        static_cast<std::size_t>(uintParam(params, "threads", 0));
    replay.max_interactions = static_cast<core::Time>(uintParam(
        params, "max_interactions",
        static_cast<std::uint64_t>(replay.max_interactions)));
    replay.compute_cost = boolParam(params, "compute_cost", false);
    replay.trial_range.first = uintParam(params, "first", 0);
    replay.trial_range.last =
        uintParam(params, "last", ~std::uint64_t{0});
    replay.intra_trial_workers = static_cast<std::size_t>(
        uintParam(params, "intra_trial_workers", 1));
    replay.intra_trial_partitions = static_cast<std::size_t>(
        uintParam(params, "intra_trial_partitions", 0));
    replay.intra_trial_block = static_cast<core::Time>(uintParam(
        params, "intra_trial_block",
        static_cast<std::uint64_t>(core::Time{1} << 16)));

    const std::uint64_t first =
        std::min(replay.trial_range.first, store->trialCount());
    const std::uint64_t last =
        std::min(replay.trial_range.last, store->trialCount());
    total_trials = last > first ? last - first : 0;

    sim::AlgorithmFactory factory =
        algorithmFactoryOf(params, store->nodeCount());
    work = [store, replay, factory](JobContext& context) -> Json {
      ControlBinding binding(context);
      sim::ReplayConfig bound = replay;
      bound.control = &binding.control;
      return statsJson(sim::replayTrace(*store, bound, factory));
    };
  } else {
    badParams("unknown \"kind\" \"" + kind +
              "\" (randomized, cost, offline-opt, faults, replay)");
  }

  if (total_trials > options_.max_trials_per_job)
    throw ProtocolError(
        ErrorCode::kTrialBudget,
        "job asks for " + std::to_string(total_trials) +
            " trials; the per-job budget is " +
            std::to_string(options_.max_trials_per_job));

  const std::uint64_t id =
      jobs_.submit("job.submit:" + kind, total_trials, std::move(work));
  Json result = Json::object();
  result.set("job", id);
  result.set("state", "queued");
  // Activation happens after the response is written so a notification can
  // never precede it on the wire.
  return {makeResponse(request.id, std::move(result)),
          [this, id] { jobs_.activate(id); }};
}

}  // namespace doda::server
