#include "server/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>

namespace doda::server {

namespace {

bool isJsonWs(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

void appendEscaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);  // UTF-8 bytes pass through untouched
        }
    }
  }
  out.push_back('"');
}

void appendDouble(std::string& out, double v) {
  // NaN/Inf have no JSON spelling; the protocol never produces them (stats
  // over finite samples), but a defensive null beats emitting garbage.
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
  // Keep a double recognizably non-integer on the wire ("1" -> "1e0" would
  // be wrong; to_chars emits "1" for 1.0). Append ".0" when the shortest
  // form looks like an integer so round-tripping preserves the kind.
  const std::string_view text(buf, static_cast<std::size_t>(res.ptr - buf));
  if (text.find('.') == std::string_view::npos &&
      text.find('e') == std::string_view::npos &&
      text.find('E') == std::string_view::npos)
    out += ".0";
}

class Parser {
 public:
  Parser(std::string_view text, std::size_t max_depth)
      : text_(text), max_depth_(max_depth) {}

  Json run() {
    Json value = parseValue();
    skipWs();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonParseError(what, pos_);
  }

  void skipWs() {
    while (pos_ < text_.size() && isJsonWs(text_[pos_])) ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c)
      fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Json parseValue() {
    skipWs();
    switch (peek()) {
      case '{':
        return parseObject();
      case '[':
        return parseArray();
      case '"':
        return Json(parseString());
      case 't':
        if (consumeLiteral("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consumeLiteral("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consumeLiteral("null")) return Json(nullptr);
        fail("invalid literal");
      default:
        return parseNumber();
    }
  }

  Json parseObject() {
    if (++depth_ > max_depth_) fail("nesting too deep");
    expect('{');
    Json::Object members;
    skipWs();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return Json(std::move(members));
    }
    while (true) {
      skipWs();
      if (peek() != '"') fail("expected object key");
      std::string key = parseString();
      skipWs();
      expect(':');
      members.emplace_back(std::move(key), parseValue());
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      --depth_;
      return Json(std::move(members));
    }
  }

  Json parseArray() {
    if (++depth_ > max_depth_) fail("nesting too deep");
    expect('[');
    Json::Array items;
    skipWs();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return Json(std::move(items));
    }
    while (true) {
      items.push_back(parseValue());
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      --depth_;
      return Json(std::move(items));
    }
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          const std::uint32_t cp = parseHex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: require the paired low surrogate.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u')
              fail("unpaired surrogate");
            pos_ += 2;
            const std::uint32_t low = parseHex4();
            if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
            appendUtf8(out,
                       0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00));
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired surrogate");
          } else {
            appendUtf8(out, cp);
          }
          break;
        }
        default:
          fail("invalid escape");
      }
    }
  }

  std::uint32_t parseHex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9')
        value |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f')
        value |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        value |= static_cast<std::uint32_t>(c - 'A' + 10);
      else
        fail("invalid \\u escape");
    }
    return value;
  }

  static void appendUtf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  /// RFC 8259 number grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
  /// Stricter than strtod/from_chars, which tolerate "01", "1." and ".5".
  static bool isJsonNumber(std::string_view token) {
    std::size_t i = 0;
    const auto digit = [&](std::size_t at) {
      return at < token.size() && token[at] >= '0' && token[at] <= '9';
    };
    if (i < token.size() && token[i] == '-') ++i;
    if (!digit(i)) return false;
    if (token[i] == '0') {
      ++i;
    } else {
      while (digit(i)) ++i;
    }
    if (i < token.size() && token[i] == '.') {
      ++i;
      if (!digit(i)) return false;
      while (digit(i)) ++i;
    }
    if (i < token.size() && (token[i] == 'e' || token[i] == 'E')) {
      ++i;
      if (i < token.size() && (token[i] == '+' || token[i] == '-')) ++i;
      if (!digit(i)) return false;
      while (digit(i)) ++i;
    }
    return i == token.size();
  }

  Json parseNumber() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    const std::string_view token = text_.substr(start, pos_ - start);
    if (!isJsonNumber(token)) fail("invalid number");
    const bool integral =
        token.find('.') == std::string_view::npos &&
        token.find('e') == std::string_view::npos &&
        token.find('E') == std::string_view::npos;
    if (integral) {
      std::int64_t value = 0;
      const auto res =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (res.ec == std::errc() && res.ptr == token.data() + token.size())
        return Json(value);
      // Out-of-range integers fall through to double.
    }
    double value = 0.0;
    const auto res =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (res.ec != std::errc() || res.ptr != token.data() + token.size())
      fail("invalid number");
    return Json(value);
  }

  std::string_view text_;
  std::size_t max_depth_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace

Json::Json(std::uint64_t v) {
  if (v <= static_cast<std::uint64_t>(
               std::numeric_limits<std::int64_t>::max())) {
    type_ = Type::kInt;
    int_ = static_cast<std::int64_t>(v);
  } else {
    type_ = Type::kDouble;
    double_ = static_cast<double>(v);
  }
}

Json Json::object(std::initializer_list<Member> members) {
  return Json(Object(members));
}

Json Json::array(std::initializer_list<Json> items) {
  return Json(Array(items));
}

const Json* Json::find(std::string_view key) const noexcept {
  if (type_ != Type::kObject) return nullptr;
  for (const Member& member : object_)
    if (member.first == key) return &member.second;
  return nullptr;
}

void Json::set(std::string key, Json value) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  object_.emplace_back(std::move(key), std::move(value));
}

void Json::push(Json value) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  array_.push_back(std::move(value));
}

void Json::dumpTo(std::string& out) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kInt: {
      char buf[24];
      const auto res = std::to_chars(buf, buf + sizeof(buf), int_);
      out.append(buf, res.ptr);
      break;
    }
    case Type::kDouble:
      appendDouble(out, double_);
      break;
    case Type::kString:
      appendEscaped(out, string_);
      break;
    case Type::kArray: {
      out.push_back('[');
      bool first = true;
      for (const Json& item : array_) {
        if (!first) out.push_back(',');
        first = false;
        item.dumpTo(out);
      }
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      out.push_back('{');
      bool first = true;
      for (const Member& member : object_) {
        if (!first) out.push_back(',');
        first = false;
        appendEscaped(out, member.first);
        out.push_back(':');
        member.second.dumpTo(out);
      }
      out.push_back('}');
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dumpTo(out);
  return out;
}

Json Json::parse(std::string_view text, std::size_t max_depth) {
  return Parser(text, max_depth).run();
}

bool operator==(const Json& a, const Json& b) {
  if (a.isNumber() && b.isNumber()) {
    if (a.type_ == b.type_)
      return a.type_ == Json::Type::kInt ? a.int_ == b.int_
                                         : a.double_ == b.double_;
    return false;  // int 1 != double 1.0: the wire kind matters
  }
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case Json::Type::kNull:
      return true;
    case Json::Type::kBool:
      return a.bool_ == b.bool_;
    case Json::Type::kString:
      return a.string_ == b.string_;
    case Json::Type::kArray:
      return a.array_ == b.array_;
    case Json::Type::kObject: {
      if (a.object_.size() != b.object_.size()) return false;
      for (const Json::Member& member : a.object_) {
        const Json* other = b.find(member.first);
        if (other == nullptr || !(member.second == *other)) return false;
      }
      return true;
    }
    default:
      return false;  // numbers handled above
  }
}

}  // namespace doda::server
