#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/service.hpp"

namespace doda::server {

struct ServerOptions {
  /// Bind address; the default serves localhost only (dodad is a trusted
  /// lab daemon, not an internet service).
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (tests read it via port()).
  std::uint16_t port = 0;
};

/// The dodad TCP transport: line-delimited frames over per-connection
/// reader threads, responses and notifications serialized through one
/// write mutex per connection (a subscriber's progress frames come from
/// job runner threads while the reader writes responses).
///
/// The transport owns no protocol logic — every frame goes through
/// Service::handle; the service's after-reply hook runs once the response
/// bytes are on the wire.
class Server {
 public:
  Server(Service& service, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the accept loop. Throws std::runtime_error
  /// on bind failures.
  void start();

  /// The bound port (valid after start()).
  std::uint16_t port() const noexcept { return port_; }

  /// Closes the listener and every connection, then joins all threads.
  /// Does NOT drain the job queue — the daemon drains first (so running
  /// jobs finish) and stops the transport after. Safe to call twice.
  void stop();

 private:
  struct WriteHalf;
  struct Connection;

  void acceptLoop();
  void serveConnection(std::shared_ptr<Connection> connection);
  static bool writeFrame(WriteHalf& half, const Json& frame);

  Service& service_;
  ServerOptions options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
  std::mutex connections_mutex_;
  std::vector<std::shared_ptr<Connection>> connections_;
  bool stopped_ = false;
};

}  // namespace doda::server
