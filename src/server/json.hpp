#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace doda::server {

/// Error thrown by Json::parse on malformed input. `offset` is the byte
/// position of the first offending character.
struct JsonParseError : std::runtime_error {
  JsonParseError(const std::string& what, std::size_t offset_)
      : std::runtime_error(what), offset(offset_) {}
  std::size_t offset = 0;
};

/// A JSON document — the dodad protocol's only wire type.
///
/// Design constraints, all serving the protocol's determinism contract
/// (docs/PROTOCOL.md):
///  * objects preserve insertion order (a vector of pairs, not a map), so
///    a serialized response is byte-stable across runs and platforms;
///  * integers that fit int64 stay integers end to end (no ".0" drift);
///  * doubles serialize via std::to_chars shortest round-trip — locale-
///    independent and bit-faithful on every IEEE-754 host.
///
/// Lookup is linear in the object size; protocol frames are small.
class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  using Array = std::vector<Json>;
  using Member = std::pair<std::string, Json>;
  using Object = std::vector<Member>;

  Json() = default;
  Json(std::nullptr_t) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(int v) : type_(Type::kInt), int_(v) {}
  Json(unsigned v) : type_(Type::kInt), int_(v) {}
  Json(std::int64_t v) : type_(Type::kInt), int_(v) {}
  Json(std::uint64_t v);
  Json(double v) : type_(Type::kDouble), double_(v) {}
  Json(const char* s) : type_(Type::kString), string_(s) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Json(Array a) : type_(Type::kArray), array_(std::move(a)) {}
  Json(Object o) : type_(Type::kObject), object_(std::move(o)) {}

  /// Builds an object literal: Json::object({{"a", 1}, {"b", "x"}}).
  static Json object(std::initializer_list<Member> members = {});
  static Json array(std::initializer_list<Json> items = {});

  Type type() const noexcept { return type_; }
  bool isNull() const noexcept { return type_ == Type::kNull; }
  bool isBool() const noexcept { return type_ == Type::kBool; }
  bool isInt() const noexcept { return type_ == Type::kInt; }
  bool isNumber() const noexcept {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }
  bool isString() const noexcept { return type_ == Type::kString; }
  bool isArray() const noexcept { return type_ == Type::kArray; }
  bool isObject() const noexcept { return type_ == Type::kObject; }

  bool asBool() const { return bool_; }
  std::int64_t asInt() const { return int_; }
  double asDouble() const {
    return type_ == Type::kInt ? static_cast<double>(int_) : double_;
  }
  const std::string& asString() const { return string_; }
  const Array& asArray() const { return array_; }
  const Object& asObject() const { return object_; }

  /// Object member lookup; nullptr when absent or not an object.
  const Json* find(std::string_view key) const noexcept;
  /// Appends a member (objects only).
  void set(std::string key, Json value);
  /// Appends an element (arrays only).
  void push(Json value);

  /// Serializes to a single line (no newline appended, no whitespace).
  std::string dump() const;

  /// Parses a complete document; trailing non-whitespace is an error.
  /// `max_depth` bounds nesting (arrays + objects) to keep a hostile
  /// frame from exhausting the stack.
  static Json parse(std::string_view text, std::size_t max_depth = 64);

  /// Structural equality (object member ORDER is ignored; numeric kind is
  /// not: the int 1 equals the double 1.0). Used by tests.
  friend bool operator==(const Json& a, const Json& b);

 private:
  void dumpTo(std::string& out) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace doda::server
