#include "analysis/convergecast.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <unordered_map>

#include "analysis/convergecast_frontier.hpp"
#include "dynagraph/interaction.hpp"

namespace doda::analysis {

namespace {

using dynagraph::Interaction;
using dynagraph::kNever;

void checkArgs(InteractionSequenceView sequence, std::size_t node_count,
               NodeId sink) {
  if (sink >= node_count)
    throw std::out_of_range("convergecast: sink out of range");
  // Branchless max-reduce (vectorizes); a() <= b() by normalization.
  NodeId max_b = 0;
  for (const Interaction& i : sequence) max_b = std::max(max_b, i.b());
  if (max_b >= node_count && !sequence.empty())
    throw std::invalid_argument(
        "convergecast: sequence references nodes >= node_count");
}

/// optCompletion after argument validation — the chain/cost loops validate
/// once instead of re-scanning the whole sequence per chain step.
Time optCompletionChecked(InteractionSequenceView sequence,
                          std::size_t node_count, NodeId sink, Time start) {
  if (node_count == 1) return start == 0 ? 0 : start - 1;  // degenerate
  if (start >= sequence.length()) return kNever;
  ConvergecastFrontier frontier(sequence, node_count, sink, start);
  return frontier.firstCompleteEnd();
}

/// The chain loops' segment evaluator: one frontier arena shared across
/// every segment (reset() rewinds it in place), so a chain of k segments
/// allocates the label arrays once instead of k times. Same computation,
/// same integer results, as optCompletionChecked per segment.
class ChainOracle {
 public:
  ChainOracle(InteractionSequenceView sequence, std::size_t node_count,
              NodeId sink)
      : sequence_(sequence), node_count_(node_count), sink_(sink) {}

  Time optCompletion(Time start) {
    if (node_count_ == 1) return start == 0 ? 0 : start - 1;  // degenerate
    if (start >= sequence_.length()) return kNever;
    if (!frontier_) {
      frontier_.emplace(sequence_, node_count_, sink_, start);
    } else {
      frontier_->reset(start);
    }
    return frontier_->firstCompleteEnd();
  }

 private:
  InteractionSequenceView sequence_;
  std::size_t node_count_;
  NodeId sink_;
  std::optional<ConvergecastFrontier> frontier_;
};

}  // namespace

Time optCompletion(InteractionSequenceView sequence, std::size_t node_count,
                   NodeId sink, Time start) {
  checkArgs(sequence, node_count, sink);
  return optCompletionChecked(sequence, node_count, sink, start);
}

std::vector<TransmissionRecord> optimalSchedule(
    InteractionSequenceView sequence, std::size_t node_count, NodeId sink,
    Time start) {
  checkArgs(sequence, node_count, sink);
  if (node_count == 1 || start >= sequence.length()) return {};
  ConvergecastFrontier frontier(sequence, node_count, sink, start);
  if (frontier.firstCompleteEnd() == kNever) return {};
  // Node u with reach time t and informer p transmits at t to p: p's own
  // reach time is strictly later, so at time t both still own data and the
  // schedule is a valid convergecast ending at the minimal window end.
  std::vector<TransmissionRecord> schedule;
  schedule.reserve(node_count - 1);
  for (NodeId u = 0; u < node_count; ++u) {
    if (u == sink) continue;
    schedule.push_back({frontier.reachTime(u), u, frontier.informerOf(u)});
  }
  std::sort(schedule.begin(), schedule.end(),
            [](const TransmissionRecord& x, const TransmissionRecord& y) {
              return x.time < y.time;
            });
  return schedule;
}

std::vector<Time> convergecastChain(InteractionSequenceView sequence,
                                    std::size_t node_count, NodeId sink,
                                    std::size_t max_terms) {
  checkArgs(sequence, node_count, sink);
  std::vector<Time> chain;
  ChainOracle oracle(sequence, node_count, sink);
  Time start = 0;
  while (chain.size() < max_terms) {
    const Time end = oracle.optCompletion(start);
    chain.push_back(end);
    if (end == kNever) break;
    start = end + 1;
  }
  return chain;
}

std::size_t costOf(InteractionSequenceView sequence, std::size_t node_count,
                   NodeId sink, Time ending_time) {
  checkArgs(sequence, node_count, sink);
  ChainOracle oracle(sequence, node_count, sink);
  Time start = 0;
  for (std::size_t i = 1;; ++i) {
    const Time t_i = oracle.optCompletion(start);
    // T(i) = infinity: any finite duration fits, and if the algorithm never
    // terminated this i is the paper's i_max.
    if (t_i == kNever) return i;
    if (ending_time != kNever && ending_time <= t_i) return i;
    start = t_i + 1;
  }
}

Time bruteForceOptCompletion(InteractionSequenceView sequence,
                             std::size_t node_count, NodeId sink,
                             Time start) {
  checkArgs(sequence, node_count, sink);
  if (node_count > 20)
    throw std::invalid_argument("bruteForceOptCompletion: node_count > 20");
  const auto full_mask = (std::uint32_t{1} << node_count) - 1;
  const auto sink_only = std::uint32_t{1} << sink;
  // memo[(t, mask)] = minimal T such that the remaining transfers fit in
  // interactions [t, T); T == t encodes "already done".
  std::unordered_map<std::uint64_t, Time> memo;
  const Time len = sequence.length();

  auto solve = [&](auto&& self, Time t, std::uint32_t mask) -> Time {
    if (mask == sink_only) return t;
    if (t >= len) return kNever;
    const std::uint64_t key = (static_cast<std::uint64_t>(t) << 32) | mask;
    if (auto it = memo.find(key); it != memo.end()) return it->second;
    const Interaction& i = sequence.at(t);
    Time best = self(self, t + 1, mask);  // no transfer
    const bool a_in = mask & (1u << i.a());
    const bool b_in = mask & (1u << i.b());
    if (a_in && b_in) {
      if (i.a() != sink) {
        const Time r = self(self, t + 1, mask & ~(1u << i.a()));
        // The transfer occupies interaction t, so completion is >= t+1.
        if (r != kNever) best = std::min(best, std::max(r, t + 1));
      }
      if (i.b() != sink) {
        const Time r = self(self, t + 1, mask & ~(1u << i.b()));
        if (r != kNever) best = std::min(best, std::max(r, t + 1));
      }
    }
    memo.emplace(key, best);
    return best;
  };

  const Time result = solve(solve, start, full_mask);
  if (result == kNever) return kNever;
  return result - 1;  // ending time = last occupied interaction index
}

}  // namespace doda::analysis
