#include "analysis/convergecast.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "dynagraph/interaction.hpp"

namespace doda::analysis {

namespace {

using dynagraph::Interaction;
using dynagraph::kNever;

/// Greedy broadcast from `sink` over the *time-reversed* window
/// [start, end] of `sequence` (inclusive bounds). Returns, for each node,
/// the original-time index at which it was reached (kNever if not), plus
/// the reached count and the informer of each node.
struct ReversedBroadcast {
  std::vector<Time> reached_at;  // original time indices
  std::vector<std::optional<NodeId>> informer;
  std::size_t reached_count = 0;
};

ReversedBroadcast reversedBroadcast(const InteractionSequence& sequence,
                                    std::size_t node_count, NodeId sink,
                                    Time start, Time end) {
  ReversedBroadcast r;
  r.reached_at.assign(node_count, kNever);
  r.informer.assign(node_count, std::nullopt);
  r.reached_at[sink] = end;  // markers only; sink has no transmission
  r.reached_count = 1;
  for (Time t = end + 1; t-- > start;) {
    if (r.reached_count == node_count) break;
    const Interaction& i = sequence.at(t);
    const bool a_in = r.reached_at[i.a()] != kNever;
    const bool b_in = r.reached_at[i.b()] != kNever;
    if (a_in == b_in) continue;
    const NodeId newly = a_in ? i.b() : i.a();
    r.reached_at[newly] = t;
    r.informer[newly] = a_in ? i.a() : i.b();
    ++r.reached_count;
  }
  return r;
}

void checkArgs(const InteractionSequence& sequence, std::size_t node_count,
               NodeId sink) {
  if (sink >= node_count)
    throw std::out_of_range("convergecast: sink out of range");
  if (sequence.minNodeCount() > node_count)
    throw std::invalid_argument(
        "convergecast: sequence references nodes >= node_count");
}

}  // namespace

Time optCompletion(const InteractionSequence& sequence,
                   std::size_t node_count, NodeId sink, Time start) {
  checkArgs(sequence, node_count, sink);
  if (node_count == 1) return start == 0 ? 0 : start - 1;  // degenerate
  if (start >= sequence.length()) return kNever;
  const Time last = sequence.length() - 1;
  auto feasible = [&](Time end) {
    return reversedBroadcast(sequence, node_count, sink, start, end)
               .reached_count == node_count;
  };
  // Galloping search for the first feasible window end (feasibility is
  // monotone in the end): costs O(w log w) where w is the answer's window
  // size, independent of the sequence length — essential when chaining
  // thousands of convergecasts over long sequences.
  Time span = node_count - 1;  // a convergecast needs >= n-1 interactions
  Time lo = start;             // largest end known infeasible, plus one
  Time hi;
  for (;;) {
    hi = (span >= last - start) ? last : start + span;
    if (feasible(hi)) break;
    if (hi == last) return kNever;
    lo = hi + 1;
    span *= 2;
  }
  // Binary search in [lo, hi]; everything below lo is known infeasible.
  while (lo < hi) {
    const Time mid = lo + (hi - lo) / 2;
    if (feasible(mid))
      hi = mid;
    else
      lo = mid + 1;
  }
  return lo;
}

std::vector<TransmissionRecord> optimalSchedule(
    const InteractionSequence& sequence, std::size_t node_count, NodeId sink,
    Time start) {
  const Time end = optCompletion(sequence, node_count, sink, start);
  if (end == kNever) return {};
  const auto rb = reversedBroadcast(sequence, node_count, sink, start, end);
  // Node u (!= sink) reached at original time t via informer p corresponds
  // to the transfer "u sends to p at time t": p is reached later in
  // reversed time, i.e. transmits at an earlier... (p transmits at a LATER
  // original time than u receives from its own children), so at time t both
  // u and p still own data and the schedule is a valid convergecast.
  std::vector<TransmissionRecord> schedule;
  schedule.reserve(node_count - 1);
  for (NodeId u = 0; u < node_count; ++u) {
    if (u == sink) continue;
    schedule.push_back({rb.reached_at[u], u, *rb.informer[u]});
  }
  std::sort(schedule.begin(), schedule.end(),
            [](const TransmissionRecord& x, const TransmissionRecord& y) {
              return x.time < y.time;
            });
  return schedule;
}

std::vector<Time> convergecastChain(const InteractionSequence& sequence,
                                    std::size_t node_count, NodeId sink,
                                    std::size_t max_terms) {
  std::vector<Time> chain;
  Time start = 0;
  while (chain.size() < max_terms) {
    const Time end = optCompletion(sequence, node_count, sink, start);
    chain.push_back(end);
    if (end == kNever) break;
    start = end + 1;
  }
  return chain;
}

std::size_t costOf(const InteractionSequence& sequence,
                   std::size_t node_count, NodeId sink, Time ending_time) {
  Time start = 0;
  for (std::size_t i = 1;; ++i) {
    const Time t_i = optCompletion(sequence, node_count, sink, start);
    // T(i) = infinity: any finite duration fits, and if the algorithm never
    // terminated this i is the paper's i_max.
    if (t_i == kNever) return i;
    if (ending_time != kNever && ending_time <= t_i) return i;
    start = t_i + 1;
  }
}

Time bruteForceOptCompletion(const InteractionSequence& sequence,
                             std::size_t node_count, NodeId sink,
                             Time start) {
  checkArgs(sequence, node_count, sink);
  if (node_count > 20)
    throw std::invalid_argument("bruteForceOptCompletion: node_count > 20");
  const auto full_mask = (std::uint32_t{1} << node_count) - 1;
  const auto sink_only = std::uint32_t{1} << sink;
  // memo[(t, mask)] = minimal T such that the remaining transfers fit in
  // interactions [t, T); T == t encodes "already done".
  std::unordered_map<std::uint64_t, Time> memo;
  const Time len = sequence.length();

  auto solve = [&](auto&& self, Time t, std::uint32_t mask) -> Time {
    if (mask == sink_only) return t;
    if (t >= len) return kNever;
    const std::uint64_t key = (static_cast<std::uint64_t>(t) << 32) | mask;
    if (auto it = memo.find(key); it != memo.end()) return it->second;
    const Interaction& i = sequence.at(t);
    Time best = self(self, t + 1, mask);  // no transfer
    const bool a_in = mask & (1u << i.a());
    const bool b_in = mask & (1u << i.b());
    if (a_in && b_in) {
      if (i.a() != sink) {
        const Time r = self(self, t + 1, mask & ~(1u << i.a()));
        // The transfer occupies interaction t, so completion is >= t+1.
        if (r != kNever) best = std::min(best, std::max(r, t + 1));
      }
      if (i.b() != sink) {
        const Time r = self(self, t + 1, mask & ~(1u << i.b()));
        if (r != kNever) best = std::min(best, std::max(r, t + 1));
      }
    }
    memo.emplace(key, best);
    return best;
  };

  const Time result = solve(solve, start, full_mask);
  if (result == kNever) return kNever;
  return result - 1;  // ending time = last occupied interaction index
}

}  // namespace doda::analysis
