#include "analysis/broadcast.hpp"

#include <stdexcept>

namespace doda::analysis {

BroadcastResult greedyBroadcast(const InteractionSequence& sequence,
                                std::size_t node_count, NodeId source,
                                Time from) {
  if (source >= node_count)
    throw std::out_of_range("greedyBroadcast: source out of range");
  BroadcastResult r;
  r.informed_at.assign(node_count, dynagraph::kNever);
  r.informer.assign(node_count, std::nullopt);
  r.informed_at[source] = from;
  r.informed_count = 1;

  for (Time t = from; t < sequence.length(); ++t) {
    if (r.informed_count == node_count) break;
    const Interaction& i = sequence.at(t);
    const bool a_in = r.informed_at[i.a()] != dynagraph::kNever &&
                      r.informed_at[i.a()] <= t;
    const bool b_in = r.informed_at[i.b()] != dynagraph::kNever &&
                      r.informed_at[i.b()] <= t;
    if (a_in == b_in) continue;  // both informed or both uninformed
    const NodeId newly = a_in ? i.b() : i.a();
    const NodeId from_node = a_in ? i.a() : i.b();
    r.informed_at[newly] = t;
    r.informer[newly] = from_node;
    ++r.informed_count;
    if (r.informed_count == node_count) r.completion_time = t;
  }
  return r;
}

Time broadcastDuration(const InteractionSequence& sequence,
                       std::size_t node_count, NodeId source, Time from) {
  const auto r = greedyBroadcast(sequence, node_count, source, from);
  if (!r.complete(node_count)) return dynagraph::kNever;
  return r.completion_time - from + 1;
}

}  // namespace doda::analysis
