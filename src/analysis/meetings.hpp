#pragma once

#include <cstddef>
#include <vector>

#include "dynagraph/interaction_sequence.hpp"

namespace doda::analysis {

using dynagraph::InteractionSequence;
using dynagraph::NodeId;
using dynagraph::Time;

/// Number of *distinct* non-sink nodes that interact directly with `sink`
/// within interactions [0, prefix_length). This is the quantity of paper
/// Lemma 1: in n*f(n) uniform random interactions, Theta(f(n)) nodes meet
/// the sink w.h.p.
std::size_t distinctSinkContacts(const InteractionSequence& sequence,
                                 NodeId sink, Time prefix_length);

/// First time each node meets the sink within the sequence (kNever if it
/// never does). Index = node id; entry for the sink itself is 0.
std::vector<Time> firstSinkContact(const InteractionSequence& sequence,
                                   std::size_t node_count, NodeId sink);

}  // namespace doda::analysis
