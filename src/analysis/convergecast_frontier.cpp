#include "analysis/convergecast_frontier.hpp"

#include <algorithm>
#include <stdexcept>

namespace doda::analysis {

using dynagraph::Interaction;
using dynagraph::kNever;

ConvergecastFrontier::ConvergecastFrontier(InteractionSequenceView sequence,
                                           std::size_t node_count,
                                           NodeId sink, Time start)
    : sequence_(sequence), node_count_(node_count), sink_(sink) {
  if (sink >= node_count)
    throw std::out_of_range("ConvergecastFrontier: sink out of range");
  reset(start);
}

void ConvergecastFrontier::reset(Time start) {
  start_ = start;
  scanned_end_ = start == 0 ? kNever : start - 1;  // nothing scanned yet
  first_complete_end_ = kNever;
  covered_count_ = 1;  // the sink
  tree_built_ = false;
  // assign() reuses the arrays' capacity: across a chain of segments the
  // per-segment cost is the fill, never an allocation.
  cover_.assign(node_count_, kNever);
  cover_[sink_] = start;
  if (node_count_ == 1) first_complete_end_ = start == 0 ? 0 : start - 1;
}

void ConvergecastFrontier::coverPass(Time end) {
  const Interaction* const data = sequence_.begin();
  // Each pass starts from scratch: values surviving from a smaller-window
  // pass were recorded at smaller times, so seeding them here would splice
  // a larger edge after a smaller one and break the decreasing-path
  // invariant. The geometric growth keeps total re-scan work linear.
  cover_.assign(node_count_, kNever);
  cover_[sink_] = start_;
  std::size_t covered = 1;  // the sink
  // Backward pass: when edge {x,y} at t is processed, every already-known
  // path (cover_[x] finite) was recorded at a larger time, so its smallest
  // edge exceeds t and appending t keeps the times strictly decreasing.
  const NodeId sink = sink_;
  Time* const cover = cover_.data();
  for (Time t = end + 1; t-- > start_;) {
    const Interaction& i = data[t];
    const NodeId x = i.a();
    const NodeId y = i.b();
    if (y >= node_count_)  // a() <= b() by Interaction's normalization
      throw std::invalid_argument(
          "ConvergecastFrontier: interaction references node >= node_count");
    if (x == sink) {
      if (t < cover[y]) cover[y] = t;  // path of length 1, top time t
    } else if (y == sink) {
      if (t < cover[x]) cover[x] = t;
    } else {
      // Branchless symmetric min: whichever endpoint has the better path,
      // the other inherits it across the edge at t (kNever is the max
      // Time, so uncovered endpoints fall out naturally).
      const Time cx = cover[x];
      const Time cy = cover[y];
      const Time m = cx < cy ? cx : cy;
      cover[x] = m;
      cover[y] = m;
    }
  }
  for (NodeId u = 0; u < node_count_; ++u)
    if (u != sink_ && cover_[u] != kNever) ++covered;
  covered_count_ = covered;
  scanned_end_ = end;
}

Time ConvergecastFrontier::firstCompleteEnd() {
  if (first_complete_end_ != kNever || node_count_ == 1)
    return first_complete_end_;
  if (start_ >= sequence_.length()) return kNever;
  const Time last = sequence_.length() - 1;
  // Geometric window growth: each pass costs one window scan, so the total
  // work is a constant multiple of the final (minimal) window size.
  Time span = node_count_ - 1;  // a convergecast needs >= n-1 interactions
  for (;;) {
    const Time end =
        (span >= last - start_) ? last : start_ + span;
    if (scanned_end_ == kNever || end > scanned_end_) coverPass(end);
    if (complete()) break;
    if (end == last) return kNever;
    span *= 2;
  }
  Time opt = start_;
  for (NodeId u = 0; u < node_count_; ++u)
    if (u != sink_) opt = std::max(opt, cover_[u]);
  first_complete_end_ = opt;
  return opt;
}

void ConvergecastFrontier::ensureTree() {
  if (tree_built_) return;
  if (!complete() || first_complete_end_ == kNever)
    throw std::logic_error(
        "ConvergecastFrontier: schedule queried before completion");
  // Reversed greedy broadcast over the minimal window [start, opt]: the
  // first-infection times in reversed order are per-node transmission
  // slots, distinct by construction (one interaction per time).
  reach_.assign(node_count_, kNever);
  parent_.assign(node_count_, sink_);
  const Interaction* const data = sequence_.begin();
  std::size_t reached = 1;
  for (Time t = first_complete_end_ + 1;
       t-- > start_ && reached < node_count_;) {
    const Interaction& i = data[t];
    const bool a_in = i.a() == sink_ || reach_[i.a()] != kNever;
    const bool b_in = i.b() == sink_ || reach_[i.b()] != kNever;
    if (a_in == b_in) continue;
    const NodeId newly = a_in ? i.b() : i.a();
    reach_[newly] = t;
    parent_[newly] = a_in ? i.a() : i.b();
    ++reached;
  }
  tree_built_ = true;
}

Time ConvergecastFrontier::reachTime(NodeId u) {
  ensureTree();
  return reach_.at(u);
}

NodeId ConvergecastFrontier::informerOf(NodeId u) {
  ensureTree();
  return parent_.at(u);
}

}  // namespace doda::analysis
