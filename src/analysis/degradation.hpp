#pragma once

#include <cstddef>

#include "core/engine.hpp"
#include "util/stats.hpp"

namespace doda::analysis {

/// Folds per-trial core::FaultOutcome records into the graceful-degradation
/// metrics of ROADMAP item 4(b): completion probability, residual
/// undelivered data, stranded data, loss/retransmission traffic and cost
/// inflation versus the fault-free offline optimum.
///
/// Purely sequential: the caller adds outcomes in trial order (the
/// deterministic executors already fold slots that way), so the resulting
/// statistics are bit-identical for any thread count.
class DegradationAccumulator {
 public:
  /// Adds one trial. `cost_inflation` is interactions-to-complete divided
  /// by the fault-free offline optimum of the same sequence; folded only
  /// when `has_inflation` (completed trials with a finite optimum).
  void add(const core::FaultOutcome& outcome, double cost_inflation,
           bool has_inflation);

  std::size_t trials() const noexcept { return trials_; }
  /// Trials where every honest origin reached the sink.
  std::size_t completed() const noexcept { return completed_; }
  /// Trials that ended with no live non-sink owner left (all residual data
  /// stranded for good).
  std::size_t blocked() const noexcept { return blocked_; }
  /// Trials where the sink's aggregate absorbed Byzantine-poisoned data.
  std::size_t poisoned() const noexcept { return poisoned_; }

  double completionProbability() const noexcept;
  /// Half-width of the ~95% normal-approximation CI on the completion
  /// probability (0 when fewer than two trials).
  double completionCi95HalfWidth() const noexcept;

  /// Honest origins never delivered, per trial (all trials).
  const util::RunningStats& residual() const noexcept { return residual_; }
  /// Honest origins stranded on crashed nodes, per trial (all trials).
  const util::RunningStats& stranded() const noexcept { return stranded_; }
  /// Fraction of honest origins delivered, per trial (all trials).
  const util::RunningStats& deliveredFraction() const noexcept {
    return delivered_fraction_;
  }
  /// Lost transmissions per trial (all trials).
  const util::RunningStats& lost() const noexcept { return lost_; }
  /// Applied transfers that retried an earlier lost attempt (all trials).
  const util::RunningStats& retransmissions() const noexcept {
    return retransmissions_;
  }
  /// Cost inflation over completed trials with a known optimum; >= 1 up to
  /// sampling noise.
  const util::RunningStats& costInflation() const noexcept {
    return cost_inflation_;
  }

 private:
  std::size_t trials_ = 0;
  std::size_t completed_ = 0;
  std::size_t blocked_ = 0;
  std::size_t poisoned_ = 0;
  util::RunningStats residual_;
  util::RunningStats stranded_;
  util::RunningStats delivered_fraction_;
  util::RunningStats lost_;
  util::RunningStats retransmissions_;
  util::RunningStats cost_inflation_;
};

}  // namespace doda::analysis
