#pragma once

#include <optional>
#include <vector>

#include "dynagraph/interaction_sequence.hpp"

namespace doda::analysis {

using dynagraph::InteractionSequence;
using dynagraph::NodeId;
using dynagraph::Time;

/// Temporal reachability of a dynamic graph (standard notions from the
/// time-varying-graph literature the paper's model specializes).
///
/// A *journey* from u to v is a path whose edges appear at strictly
/// increasing times; the *foremost* journey arrives earliest. Foremost
/// arrival from a single source is exactly a greedy broadcast. These
/// quantities characterize a trace independent of any algorithm: a DODA
/// execution can never beat the foremost journey of its data, and
/// opt(t) is lower-bounded by the sink's backward eccentricity.
struct ReachabilityReport {
  /// arrival[u][v] = foremost arrival time of a journey u -> v starting at
  /// `start` (kNever if unreachable; arrival[u][u] = start).
  std::vector<std::vector<Time>> arrival;
  /// Fraction of ordered pairs (u, v), u != v, with a journey.
  double reachable_fraction = 0.0;
  /// max_v arrival[source][v]: when a broadcast from `u` completes.
  std::vector<Time> broadcast_completion;
  /// Temporal diameter: max over all pairs of arrival (kNever if any pair
  /// is unreachable).
  Time temporal_diameter = 0;
};

/// Computes all-pairs foremost journeys over interactions
/// [start, sequence.length()). O(n * length).
ReachabilityReport temporalReachability(const InteractionSequence& sequence,
                                        std::size_t node_count,
                                        Time start = 0);

/// Earliest time by which every node has a journey INTO `sink` that starts
/// at or after `start` — the convergecast feasibility horizon. This equals
/// the completion of a reverse (backward-in-time) broadcast from the sink
/// and is a lower bound on opt(start); kNever if some node can never
/// reach the sink. Note: unlike opt(start), journeys may share interactions
/// (no transmit-once constraint), so this bound is not always tight.
Time sinkReachableBy(const InteractionSequence& sequence,
                     std::size_t node_count, NodeId sink, Time start = 0);

}  // namespace doda::analysis
