#pragma once

#include <vector>

#include "core/execution_view.hpp"

namespace doda::analysis {

using core::NodeId;
using core::SystemInfo;
using core::Time;
using core::TransmissionRecord;

/// Routing statistics of a transmission schedule.
///
/// The transfers of an execution form a forest rooted (when terminated) at
/// the sink: each datum travels from its origin along a chain of
/// aggregating nodes. These metrics quantify the shape of that forest —
/// how many hops each origin's datum took and when it reached the sink —
/// which is what distinguishes e.g. Waiting (every datum exactly 1 hop,
/// late) from Gathering (long chains, early).
struct ScheduleMetrics {
  /// Per-origin hop count to the sink; 0 for the sink itself, kNever-like
  /// max value is never used — undelivered origins get hops = 0 and
  /// delivered[origin] = false.
  std::vector<std::size_t> hops;
  /// Per-origin time of the final transfer that brought the datum to the
  /// sink (dynagraph::kNever if it never arrived).
  std::vector<Time> delivery_time;
  std::vector<bool> delivered;

  std::size_t delivered_count = 0;
  std::size_t max_hops = 0;
  double mean_hops = 0.0;       // over delivered non-sink origins
  Time completion_time = 0;      // last delivery (0 if none)
};

/// Computes metrics for `schedule` under system `info`. The schedule must
/// respect transmit-once (as produced by the Engine); it need not be
/// complete.
ScheduleMetrics analyzeSchedule(const std::vector<TransmissionRecord>& schedule,
                                const SystemInfo& info);

}  // namespace doda::analysis
