#pragma once

#include <optional>
#include <vector>

#include "dynagraph/interaction_sequence.hpp"

namespace doda::analysis {

using dynagraph::Interaction;
using dynagraph::InteractionSequence;
using dynagraph::NodeId;
using dynagraph::Time;

/// Result of a (greedy) broadcast over an interaction window.
struct BroadcastResult {
  /// informed_at[u] = first time index (absolute, within the original
  /// sequence) at which u becomes informed; kNever if never.
  std::vector<Time> informed_at;
  /// informer[u] = the node that informed u; kNever-like nullopt for the
  /// source and never-informed nodes.
  std::vector<std::optional<NodeId>> informer;
  /// Time index of the interaction that informed the last node; kNever if
  /// the broadcast does not complete within the window.
  Time completion_time = dynagraph::kNever;
  /// Number of informed nodes at the end of the window.
  std::size_t informed_count = 0;

  bool complete(std::size_t node_count) const {
    return informed_count == node_count;
  }
};

/// Greedy broadcast of a token from `source` over interactions
/// [from, sequence.length()): whenever an informed node interacts with an
/// uninformed one, the latter becomes informed.
///
/// Greedy is optimal for broadcast (being informed earlier never hurts), so
/// the completion time is the minimum possible. In this model a broadcast
/// on the reversed sequence is exactly a convergecast on the original
/// (paper Thm 8 uses precisely this reversal argument).
BroadcastResult greedyBroadcast(const InteractionSequence& sequence,
                                std::size_t node_count, NodeId source,
                                Time from = 0);

/// Convenience: minimum number of interactions (counted from `from`) for a
/// broadcast from `source` to complete; kNever if it does not.
Time broadcastDuration(const InteractionSequence& sequence,
                       std::size_t node_count, NodeId source, Time from = 0);

}  // namespace doda::analysis
