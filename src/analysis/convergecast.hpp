#pragma once

#include <vector>

#include "core/execution_view.hpp"
#include "dynagraph/interaction_sequence.hpp"

namespace doda::analysis {

using core::TransmissionRecord;
using dynagraph::InteractionSequence;
using dynagraph::InteractionSequenceView;
using dynagraph::NodeId;
using dynagraph::Time;

/// Offline-optimal convergecast computations (paper §2.3 and Thm 8).
///
/// A convergecast over a window of interactions is a schedule in which every
/// non-sink node transmits exactly once, each transfer rides an interaction
/// of the window, and transmission times strictly increase along every path
/// to the sink. Reversing time turns such a schedule into a broadcast from
/// the sink, and greedy broadcast is optimal — so the minimum-duration
/// convergecast ("performed by an offline optimal algorithm") is found by
/// growing the window end over an incrementally maintained reverse
/// reachability frontier (analysis/convergecast_frontier.hpp), one linear
/// pass instead of the former per-probe re-broadcasts.
///
/// All entry points take a lightweight InteractionSequenceView so borrowed
/// and streamed trials avoid materializing an owned sequence; an
/// InteractionSequence converts implicitly. The viewed storage must stay
/// alive for the duration of the call.

/// Completion time opt(start): the smallest time index e such that a full
/// convergecast to `sink` fits within interactions [start, e]; kNever if
/// no such e exists within the sequence.
Time optCompletion(InteractionSequenceView sequence, std::size_t node_count,
                   NodeId sink, Time start = 0);

/// An optimal convergecast schedule starting at `start` (empty if
/// impossible). The schedule is valid per validateConvergecastSchedule and
/// its last transmission happens at optCompletion(...).
std::vector<TransmissionRecord> optimalSchedule(
    InteractionSequenceView sequence, std::size_t node_count, NodeId sink,
    Time start = 0);

/// The T(i) chain of paper §2.3: T(1) = opt(0), T(i+1) = opt(T(i)+1).
/// Returns T(1), T(2), ... stopping after the first kNever entry (which is
/// included) or after `max_terms` entries.
std::vector<Time> convergecastChain(InteractionSequenceView sequence,
                                    std::size_t node_count, NodeId sink,
                                    std::size_t max_terms = 1u << 20);

/// The paper's cost function: cost_A(I) = min{ i | duration(A,I) <= T(i) }.
///
/// `ending_time` is the time index of the algorithm's last transmission
/// (kNever if it never terminated). On a finite sequence the result is
/// always finite: if the algorithm did not terminate, this returns
/// i_max = min{ i | T(i) = infinity } as defined in the paper. cost == 1
/// iff the algorithm matched the offline optimum.
std::size_t costOf(InteractionSequenceView sequence, std::size_t node_count,
                   NodeId sink, Time ending_time);

/// Exact optimal convergecast completion by exhaustive search with
/// memoization over (time, set-of-data-owners). Exponential: requires
/// node_count <= 20 and a short sequence. Used to cross-validate
/// optCompletion in tests.
Time bruteForceOptCompletion(InteractionSequenceView sequence,
                             std::size_t node_count, NodeId sink,
                             Time start = 0);

}  // namespace doda::analysis
