#include "analysis/degradation.hpp"

#include <cmath>

namespace doda::analysis {

void DegradationAccumulator::add(const core::FaultOutcome& outcome,
                                 double cost_inflation, bool has_inflation) {
  ++trials_;
  if (outcome.completed) ++completed_;
  if (outcome.blocked) ++blocked_;
  if (outcome.sink_poisoned) ++poisoned_;
  residual_.add(static_cast<double>(outcome.residual()));
  stranded_.add(static_cast<double>(outcome.stranded_honest));
  delivered_fraction_.add(
      outcome.honest_total == 0
          ? 1.0
          : static_cast<double>(outcome.delivered_honest) /
                static_cast<double>(outcome.honest_total));
  lost_.add(static_cast<double>(outcome.lost_transmissions));
  retransmissions_.add(static_cast<double>(outcome.retransmissions));
  if (has_inflation) cost_inflation_.add(cost_inflation);
}

double DegradationAccumulator::completionProbability() const noexcept {
  return trials_ == 0
             ? 0.0
             : static_cast<double>(completed_) / static_cast<double>(trials_);
}

double DegradationAccumulator::completionCi95HalfWidth() const noexcept {
  if (trials_ < 2) return 0.0;
  const double p = completionProbability();
  return 1.96 * std::sqrt(p * (1.0 - p) / static_cast<double>(trials_));
}

}  // namespace doda::analysis
