#pragma once

#include <cstdint>
#include <vector>

#include "dynagraph/interaction_sequence.hpp"

namespace doda::analysis {

using dynagraph::InteractionSequenceView;
using dynagraph::NodeId;
using dynagraph::Time;

/// Incremental informed-frontier for offline-optimal convergecast queries
/// (paper §2.3 / Thm 8) over a growing window [start, end].
///
/// A convergecast over [start, e] exists iff every node has a
/// decreasing-time path from the sink whose top (first, largest) time is
/// <= e — the reversal argument: reading such a path forward gives each
/// node a transmission slot with strictly increasing times toward the
/// sink. The frontier therefore maintains, per node, the *cover time*
///
///     m(u) = minimal top time over all decreasing-time paths sink -> u,
///
/// i.e. the window end at which the growing frontier first covers u; the
/// set covered by window end e is exactly { u : m(u) <= e } and
/// opt(start) = max_u m(u).
///
/// All cover times are computed together by one backward label pass over
/// the window (per edge {x,y} at t: a path may extend x -> y, giving y the
/// candidate top m(x), or start at the sink, giving top t). One pass costs
/// exactly one reversed-broadcast scan; the window grows geometrically
/// until every node is covered, so the whole computation costs O(opt)
/// sequential work — replacing the former galloping + binary search whose
/// per-probe re-broadcasts cost O(opt log opt).
class ConvergecastFrontier {
 public:
  /// The viewed storage must outlive the frontier. Interactions inside the
  /// processed window must reference ids < node_count (checked while
  /// scanning; throws std::invalid_argument).
  ConvergecastFrontier(InteractionSequenceView sequence,
                       std::size_t node_count, NodeId sink, Time start = 0);

  /// Rewinds the frontier to a fresh query at `start` over the same
  /// sequence/sink, reusing the label arrays — the chain loops in
  /// costOf/convergecastChain share one arena across segments instead of
  /// reallocating per segment. Equivalent to constructing a new frontier.
  void reset(Time start);

  /// Grows the window until every node is covered and returns the minimal
  /// feasible window end opt(start); kNever if the sequence is exhausted
  /// first. Idempotent (the answer is cached).
  Time firstCompleteEnd();

  /// Nodes covered by the largest window examined so far.
  std::size_t coveredCount() const noexcept { return covered_count_; }
  bool complete() const noexcept { return covered_count_ == node_count_; }

  /// The cover time m(u) over the examined window (kNever if uncovered;
  /// `start` for the sink, which is covered from the outset).
  Time coverTime(NodeId u) const { return cover_.at(u); }

  /// The time of the interaction carrying `u`'s transmission in an optimal
  /// schedule ending at firstCompleteEnd() (kNever for the sink, which
  /// never transmits). Requires a complete frontier.
  Time reachTime(NodeId u);

  /// The receiver of `u`'s transmission (parent toward the sink) in that
  /// schedule. Requires a complete frontier.
  NodeId informerOf(NodeId u);

 private:
  /// One backward label pass over [start_, end]; updates cover_ and
  /// covered_count_. Monotone in `end` (recomputation over a larger window
  /// only lowers cover times), driven geometrically by firstCompleteEnd.
  void coverPass(Time end);
  /// Builds the transmission forest (reach_/parent_) for the minimal
  /// window via one reversed greedy broadcast.
  void ensureTree();

  InteractionSequenceView sequence_;
  std::size_t node_count_;
  NodeId sink_;
  Time start_;
  Time scanned_end_;          // largest window end a cover pass has seen
  Time first_complete_end_;   // kNever until coverage is complete
  std::size_t covered_count_ = 1;  // the sink
  std::vector<Time> cover_;
  bool tree_built_ = false;
  std::vector<Time> reach_;
  std::vector<NodeId> parent_;
};

}  // namespace doda::analysis
