#include "analysis/reachability.hpp"

#include <algorithm>

#include "analysis/broadcast.hpp"

namespace doda::analysis {

using dynagraph::kNever;

ReachabilityReport temporalReachability(const InteractionSequence& sequence,
                                        std::size_t node_count, Time start) {
  ReachabilityReport report;
  report.arrival.assign(node_count, std::vector<Time>(node_count, kNever));
  report.broadcast_completion.assign(node_count, kNever);

  std::size_t reachable_pairs = 0;
  Time diameter = 0;
  bool all_reachable = true;
  for (NodeId u = 0; u < node_count; ++u) {
    const auto b = greedyBroadcast(sequence, node_count, u, start);
    report.arrival[u] = b.informed_at;
    if (b.complete(node_count)) report.broadcast_completion[u] =
        b.completion_time;
    for (NodeId v = 0; v < node_count; ++v) {
      if (v == u) continue;
      if (b.informed_at[v] != kNever) {
        ++reachable_pairs;
        diameter = std::max(diameter, b.informed_at[v]);
      } else {
        all_reachable = false;
      }
    }
  }
  const auto total_pairs =
      static_cast<double>(node_count) * static_cast<double>(node_count - 1);
  report.reachable_fraction =
      total_pairs > 0 ? static_cast<double>(reachable_pairs) / total_pairs
                      : 1.0;
  report.temporal_diameter = all_reachable ? diameter : kNever;
  return report;
}

Time sinkReachableBy(const InteractionSequence& sequence,
                     std::size_t node_count, NodeId sink, Time start) {
  // Independent of the reverse-broadcast machinery on purpose: foremost
  // journeys INTO the sink computed with one forward broadcast per source.
  // The maximum over sources equals opt(start) (the reversal argument of
  // paper Thm 8 — the equality is cross-checked in tests).
  Time worst = start;
  for (NodeId u = 0; u < node_count; ++u) {
    if (u == sink) continue;
    const auto b = greedyBroadcast(sequence, node_count, u, start);
    const Time arrival = b.informed_at[sink];
    if (arrival == kNever) return kNever;
    worst = std::max(worst, arrival);
  }
  return worst;
}

}  // namespace doda::analysis
