#include "analysis/schedule_metrics.hpp"

#include <stdexcept>

#include "dynagraph/interaction.hpp"

namespace doda::analysis {

ScheduleMetrics analyzeSchedule(
    const std::vector<TransmissionRecord>& schedule, const SystemInfo& info) {
  const std::size_t n = info.node_count;
  // Per node: its (unique) outgoing transfer, if any.
  std::vector<Time> sent_at(n, dynagraph::kNever);
  std::vector<NodeId> sent_to(n, 0);
  for (const auto& rec : schedule) {
    if (rec.sender >= n || rec.receiver >= n)
      throw std::invalid_argument("analyzeSchedule: node out of range");
    if (sent_at[rec.sender] != dynagraph::kNever)
      throw std::invalid_argument("analyzeSchedule: node transmits twice");
    sent_at[rec.sender] = rec.time;
    sent_to[rec.sender] = rec.receiver;
  }

  ScheduleMetrics m;
  m.hops.assign(n, 0);
  m.delivery_time.assign(n, dynagraph::kNever);
  m.delivered.assign(n, false);

  double hop_sum = 0.0;
  for (NodeId origin = 0; origin < n; ++origin) {
    if (origin == info.sink) {
      m.delivered[origin] = true;
      m.delivery_time[origin] = 0;
      continue;
    }
    // Follow the datum from its origin through aggregating carriers. The
    // chain is strictly time-increasing (a carrier transmits after it
    // received), so it cannot loop; n steps bound it regardless.
    NodeId carrier = origin;
    std::size_t hops = 0;
    Time last = 0;
    bool reached = false;
    for (std::size_t step = 0; step < n; ++step) {
      if (sent_at[carrier] == dynagraph::kNever) break;  // datum parked here
      last = sent_at[carrier];
      carrier = sent_to[carrier];
      ++hops;
      if (carrier == info.sink) {
        reached = true;
        break;
      }
    }
    if (reached) {
      m.delivered[origin] = true;
      m.delivery_time[origin] = last;
      m.hops[origin] = hops;
      ++m.delivered_count;
      hop_sum += static_cast<double>(hops);
      m.max_hops = std::max(m.max_hops, hops);
      if (last > m.completion_time) m.completion_time = last;
    }
  }
  if (m.delivered_count > 0)
    m.mean_hops = hop_sum / static_cast<double>(m.delivered_count);
  return m;
}

}  // namespace doda::analysis
