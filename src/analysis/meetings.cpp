#include "analysis/meetings.hpp"

#include <algorithm>
#include <unordered_set>

namespace doda::analysis {

std::size_t distinctSinkContacts(const InteractionSequence& sequence,
                                 NodeId sink, Time prefix_length) {
  std::unordered_set<NodeId> met;
  const Time end = std::min<Time>(prefix_length, sequence.length());
  for (Time t = 0; t < end; ++t) {
    const auto& i = sequence.at(t);
    if (i.involves(sink)) met.insert(i.other(sink));
  }
  return met.size();
}

std::vector<Time> firstSinkContact(const InteractionSequence& sequence,
                                   std::size_t node_count, NodeId sink) {
  std::vector<Time> first(node_count, dynagraph::kNever);
  first[sink] = 0;
  for (Time t = 0; t < sequence.length(); ++t) {
    const auto& i = sequence.at(t);
    if (!i.involves(sink)) continue;
    const NodeId u = i.other(sink);
    if (u < node_count && first[u] == dynagraph::kNever) first[u] = t;
  }
  return first;
}

}  // namespace doda::analysis
