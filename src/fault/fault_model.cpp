#include "fault/fault_model.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>

namespace doda::fault {

using dynagraph::kNever;

namespace {

bool isProbability(double p) noexcept {
  return std::isfinite(p) && p >= 0.0 && p <= 1.0;
}

void requireProbability(double p, const char* what) {
  if (!isProbability(p))
    throw std::invalid_argument(std::string("FaultModel: ") + what +
                                " must be a probability in [0, 1]");
}

}  // namespace

bool FaultModel::faultFree() const noexcept {
  const bool lossy =
      (loss == LossKind::kBernoulli && loss_p > 0.0) ||
      (loss == LossKind::kGilbertElliott &&
       (ge_loss_good > 0.0 || (ge_enter_bad > 0.0 && ge_loss_bad > 0.0)));
  return !lossy && crash_fraction <= 0.0 && byzantine_fraction <= 0.0;
}

FaultModel FaultModel::bernoulliLoss(double p) noexcept {
  FaultModel m;
  m.loss = LossKind::kBernoulli;
  m.loss_p = p;
  return m;
}

FaultModel FaultModel::gilbertElliott(double enter_bad, double exit_bad,
                                      double loss_good,
                                      double loss_bad) noexcept {
  FaultModel m;
  m.loss = LossKind::kGilbertElliott;
  m.ge_enter_bad = enter_bad;
  m.ge_exit_bad = exit_bad;
  m.ge_loss_good = loss_good;
  m.ge_loss_bad = loss_bad;
  return m;
}

FaultModel FaultModel::crashStop(double fraction, Time horizon) noexcept {
  FaultModel m;
  m.crash_fraction = fraction;
  m.crash_horizon = horizon;
  return m;
}

FaultModel FaultModel::byzantine(double fraction) noexcept {
  FaultModel m;
  m.byzantine_fraction = fraction;
  return m;
}

void FaultModel::validate() const {
  if (loss != LossKind::kNone && loss != LossKind::kBernoulli &&
      loss != LossKind::kGilbertElliott)
    throw std::invalid_argument("FaultModel: unknown loss kind");
  requireProbability(loss_p, "loss_p");
  requireProbability(ge_enter_bad, "ge_enter_bad");
  requireProbability(ge_exit_bad, "ge_exit_bad");
  requireProbability(ge_loss_good, "ge_loss_good");
  requireProbability(ge_loss_bad, "ge_loss_bad");
  requireProbability(crash_fraction, "crash_fraction");
  requireProbability(byzantine_fraction, "byzantine_fraction");
  if (crash_fraction > 0.0 && crash_horizon == 0)
    throw std::invalid_argument(
        "FaultModel: crash_fraction > 0 needs crash_horizon > 0");
}

FaultPlan FaultPlan::draw(const FaultModel& model, std::size_t node_count,
                          NodeId sink, std::uint64_t plan_seed) {
  model.validate();
  if (node_count < 2)
    throw std::invalid_argument("FaultPlan::draw: need at least 2 nodes");
  if (sink >= node_count)
    throw std::invalid_argument("FaultPlan::draw: sink out of range");

  FaultPlan plan;
  plan.loss = model.loss;
  plan.loss_p = model.loss_p;
  plan.ge_enter_bad = model.ge_enter_bad;
  plan.ge_exit_bad = model.ge_exit_bad;
  plan.ge_loss_good = model.ge_loss_good;
  plan.ge_loss_bad = model.ge_loss_bad;
  plan.crash_times.assign(node_count, kNever);
  plan.byzantine.assign(node_count, 0);

  // Fixed draw order (loss stream seed, then per non-sink node: Byzantine
  // flag, then crash flag + time) makes the plan a pure function of
  // (model, node_count, sink, plan_seed).
  util::Rng rng(plan_seed);
  plan.loss_seed = rng();
  for (NodeId u = 0; u < node_count; ++u) {
    if (u == sink) continue;
    if (model.byzantine_fraction > 0.0 &&
        rng.chance(model.byzantine_fraction)) {
      plan.byzantine[u] = 1;
      continue;  // Byzantine nodes never crash — they stay to do damage
    }
    if (model.crash_fraction > 0.0 && rng.chance(model.crash_fraction))
      plan.crash_times[u] = static_cast<Time>(
          rng.below(static_cast<std::uint64_t>(model.crash_horizon)));
  }
  return plan;
}

namespace {

constexpr std::uint32_t kPlanMagic = 0x46504c31;  // "FPL1" little-endian
constexpr std::size_t kHeaderBytes = 4 + 1 + 5 * 8 + 8 + 8;

template <typename T>
void appendLe(std::vector<std::uint8_t>& out, T value) {
  std::uint64_t bits;
  if constexpr (sizeof(T) == 8) {
    std::memcpy(&bits, &value, 8);
    for (int i = 0; i < 8; ++i)
      out.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
  } else {
    static_assert(sizeof(T) == 4);
    std::uint32_t b;
    std::memcpy(&b, &value, 4);
    for (int i = 0; i < 4; ++i)
      out.push_back(static_cast<std::uint8_t>(b >> (8 * i)));
  }
}

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint32_t u32() { return static_cast<std::uint32_t>(raw(4)); }
  std::uint64_t u64() { return raw(8); }
  std::uint8_t u8() { return static_cast<std::uint8_t>(raw(1)); }
  double f64() {
    const std::uint64_t bits = raw(8);
    double value;
    std::memcpy(&value, &bits, 8);
    return value;
  }
  bool done() const noexcept { return pos_ == bytes_.size(); }

 private:
  std::uint64_t raw(std::size_t count) {
    if (bytes_.size() - pos_ < count)
      throw std::runtime_error("FaultPlan::parse: truncated input");
    std::uint64_t value = 0;
    for (std::size_t i = 0; i < count; ++i)
      value |= static_cast<std::uint64_t>(bytes_[pos_ + i]) << (8 * i);
    pos_ += count;
    return value;
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

double parsedProbability(ByteReader& reader, const char* what) {
  const double p = reader.f64();
  if (!(std::isfinite(p) && p >= 0.0 && p <= 1.0))
    throw std::runtime_error(std::string("FaultPlan::parse: ") + what +
                             " out of range");
  return p;
}

}  // namespace

std::vector<std::uint8_t> FaultPlan::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + crash_times.size() * 9);
  appendLe(out, kPlanMagic);
  out.push_back(static_cast<std::uint8_t>(loss));
  appendLe(out, loss_p);
  appendLe(out, ge_enter_bad);
  appendLe(out, ge_exit_bad);
  appendLe(out, ge_loss_good);
  appendLe(out, ge_loss_bad);
  appendLe(out, loss_seed);
  appendLe(out, static_cast<std::uint64_t>(crash_times.size()));
  for (const Time t : crash_times) appendLe(out, static_cast<std::uint64_t>(t));
  for (const std::uint8_t b : byzantine) out.push_back(b);
  return out;
}

FaultPlan FaultPlan::parse(std::span<const std::uint8_t> bytes) {
  ByteReader reader(bytes);
  if (reader.u32() != kPlanMagic)
    throw std::runtime_error("FaultPlan::parse: bad magic");
  FaultPlan plan;
  const std::uint8_t kind = reader.u8();
  if (kind > static_cast<std::uint8_t>(LossKind::kGilbertElliott))
    throw std::runtime_error("FaultPlan::parse: unknown loss kind");
  plan.loss = static_cast<LossKind>(kind);
  plan.loss_p = parsedProbability(reader, "loss_p");
  plan.ge_enter_bad = parsedProbability(reader, "ge_enter_bad");
  plan.ge_exit_bad = parsedProbability(reader, "ge_exit_bad");
  plan.ge_loss_good = parsedProbability(reader, "ge_loss_good");
  plan.ge_loss_bad = parsedProbability(reader, "ge_loss_bad");
  plan.loss_seed = reader.u64();
  const std::uint64_t n = reader.u64();
  if (n < 2 || n > (std::uint64_t{1} << 32))
    throw std::runtime_error("FaultPlan::parse: node count out of range");
  plan.crash_times.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i)
    plan.crash_times.push_back(static_cast<Time>(reader.u64()));
  plan.byzantine.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint8_t flag = reader.u8();
    if (flag > 1)
      throw std::runtime_error("FaultPlan::parse: bad Byzantine flag");
    plan.byzantine.push_back(flag);
  }
  if (!reader.done())
    throw std::runtime_error("FaultPlan::parse: trailing bytes");
  for (std::size_t u = 0; u < plan.crash_times.size(); ++u)
    if (plan.byzantine[u] && plan.crash_times[u] != kNever)
      throw std::runtime_error(
          "FaultPlan::parse: Byzantine node with a crash time");
  return plan;
}

FaultSession::FaultSession(FaultPlan plan) : plan_(std::move(plan)) {
  if (plan_.crash_times.size() != plan_.byzantine.size())
    throw std::invalid_argument("FaultSession: inconsistent plan sizes");
}

void FaultSession::reset(const core::SystemInfo& info) {
  if (plan_.nodeCount() != info.node_count)
    throw std::invalid_argument("FaultSession: plan drawn for " +
                                std::to_string(plan_.nodeCount()) +
                                " nodes, run has " +
                                std::to_string(info.node_count));
  loss_rng_ = util::Rng(plan_.loss_seed);
  ge_bad_ = false;
  verdict_ = false;
}

void FaultSession::beginInteraction(Time /*t*/) {
  // Exactly one advance per dispatched interaction, transfer or not: the
  // verdict for time t is a pure function of (loss_seed, t), independent of
  // what the algorithm does — the determinism contract the golden tests pin.
  switch (plan_.loss) {
    case LossKind::kNone:
      verdict_ = false;
      break;
    case LossKind::kBernoulli:
      verdict_ = loss_rng_.chance(plan_.loss_p);
      break;
    case LossKind::kGilbertElliott:
      verdict_ =
          loss_rng_.chance(ge_bad_ ? plan_.ge_loss_bad : plan_.ge_loss_good);
      ge_bad_ = loss_rng_.chance(ge_bad_ ? 1.0 - plan_.ge_exit_bad
                                         : plan_.ge_enter_bad);
      break;
  }
}

bool FaultSession::transmissionLost(Time /*t*/) { return verdict_; }

}  // namespace doda::fault
