#pragma once

#include "dynagraph/oracles.hpp"
#include "fault/fault_model.hpp"

namespace doda::fault {

/// meetTime knowledge as it exists in a faulted system, wrapping any base
/// oracle (exact, windowed, quantized):
///  * crash-aware — a crashed node never meets the sink again, so a query
///    whose true answer falls at or after u's crash time returns kNever
///    (the meeting happens, but u is no longer there to use it);
///  * Byzantine — a Byzantine node lies about its own meetTime, claiming
///    t + 1 ("I meet the sink next"). Under WaitingGreedy the node with the
///    earlier meetTime receives, so the lie turns the liar into a black
///    hole that honest data flows into and never leaves.
class FaultyMeetTimeOracle final : public dynagraph::MeetTimeOracle {
 public:
  FaultyMeetTimeOracle(dynagraph::MeetTimeOracle& base, const FaultPlan& plan)
      : base_(&base), plan_(&plan) {}

  Time meetTime(NodeId u, Time t) override {
    if (u < plan_->byzantine.size() && plan_->byzantine[u]) return t + 1;
    const Time exact = base_->meetTime(u, t);
    if (exact == dynagraph::kNever) return exact;
    if (u < plan_->crash_times.size() && plan_->crash_times[u] <= exact)
      return dynagraph::kNever;
    return exact;
  }

 private:
  dynagraph::MeetTimeOracle* base_;
  const FaultPlan* plan_;
};

}  // namespace doda::fault
