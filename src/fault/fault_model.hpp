#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/engine.hpp"
#include "util/rng.hpp"

namespace doda::fault {

using core::NodeId;
using core::Time;

/// Loss process applied to individual transmissions.
enum class LossKind : std::uint8_t {
  kNone = 0,
  /// Independent loss with probability `loss_p` per attempt.
  kBernoulli = 1,
  /// Two-state Gilbert–Elliott burst model: a good/bad channel Markov
  /// chain advanced once per interaction, with per-state loss rates.
  kGilbertElliott = 2,
};

/// Declarative description of a fault regime. A FaultModel is the sweep
/// axis (what kind/severity of faults); the randomness is only committed
/// when a FaultPlan is drawn from it for one trial.
struct FaultModel {
  LossKind loss = LossKind::kNone;
  /// Bernoulli per-attempt loss probability.
  double loss_p = 0.0;
  /// Gilbert–Elliott transition probabilities (good->bad, bad->good) and
  /// per-state loss rates. Defaults give classic bursts: rare entry, quick
  /// exit, near-perfect good state, lossy bad state.
  double ge_enter_bad = 0.0;
  double ge_exit_bad = 0.0;
  double ge_loss_good = 0.0;
  double ge_loss_bad = 1.0;
  /// Each non-sink, non-Byzantine node crash-stops independently with this
  /// probability, at a time drawn uniformly from [0, crash_horizon).
  double crash_fraction = 0.0;
  Time crash_horizon = 0;
  /// Each non-sink node is Byzantine with this probability (drawn before
  /// the crash draw; a Byzantine node never crashes — it stays around to
  /// do damage).
  double byzantine_fraction = 0.0;

  /// True iff a plan drawn from this model can never fault anything — the
  /// measurement layer then skips fault bookkeeping entirely and stays on
  /// the bit-identical fault-free path.
  bool faultFree() const noexcept;

  static FaultModel none() noexcept { return {}; }
  static FaultModel bernoulliLoss(double p) noexcept;
  static FaultModel gilbertElliott(double enter_bad, double exit_bad,
                                   double loss_good, double loss_bad) noexcept;
  static FaultModel crashStop(double fraction, Time horizon) noexcept;
  static FaultModel byzantine(double fraction) noexcept;

  /// Throws std::invalid_argument unless every probability is a finite
  /// value in [0, 1] and crash parameters are consistent.
  void validate() const;
};

/// The committed randomness of one trial's faults, pre-drawn from a single
/// plan seed so every injector answer is a pure function of the plan —
/// trials stay bit-identical for any thread count.
struct FaultPlan {
  /// Loss process parameters copied from the model (the loss stream itself
  /// is generated online from `loss_seed`, one draw per interaction).
  LossKind loss = LossKind::kNone;
  double loss_p = 0.0;
  double ge_enter_bad = 0.0;
  double ge_exit_bad = 0.0;
  double ge_loss_good = 0.0;
  double ge_loss_bad = 1.0;
  std::uint64_t loss_seed = 0;
  /// Per-node crash times (dynagraph::kNever = never crashes) and
  /// Byzantine flags; the sink's entries are always kNever / 0.
  std::vector<Time> crash_times;
  std::vector<std::uint8_t> byzantine;

  std::size_t nodeCount() const noexcept { return crash_times.size(); }

  /// Draws a plan for an n-node system from `plan_seed`. Deterministic:
  /// the draw order is fixed (per node: Byzantine flag, then crash), so a
  /// given (model, n, sink, seed) always yields the same plan.
  static FaultPlan draw(const FaultModel& model, std::size_t node_count,
                        NodeId sink, std::uint64_t plan_seed);

  /// Compact binary encoding (magic + version + fields, little-endian).
  /// Exists so plans can be logged next to results and so the decoder can
  /// be fuzzed like the trace codecs.
  std::vector<std::uint8_t> serialize() const;

  /// Inverse of serialize(). Throws std::runtime_error on truncated or
  /// corrupt input (bad magic, out-of-range kind or probability,
  /// inconsistent sizes); never reads past `bytes`.
  static FaultPlan parse(std::span<const std::uint8_t> bytes);

  friend bool operator==(const FaultPlan& a, const FaultPlan& b) = default;
};

/// core::FaultInjector over a pre-drawn FaultPlan. The loss stream is
/// re-seeded from the plan on every reset(), so one session can serve many
/// runs of the same trial (doubling extensions replay the same faults for
/// the shared prefix of interactions).
class FaultSession final : public core::FaultInjector {
 public:
  explicit FaultSession(FaultPlan plan);

  void reset(const core::SystemInfo& info) override;
  Time crashTime(NodeId u) const override { return plan_.crash_times[u]; }
  bool isByzantine(NodeId u) const override {
    return plan_.byzantine[u] != 0;
  }
  void beginInteraction(Time t) override;
  bool transmissionLost(Time t) override;

  const FaultPlan& plan() const noexcept { return plan_; }

 private:
  FaultPlan plan_;
  util::Rng loss_rng_{0};  // reseeded from plan_.loss_seed on reset()
  bool ge_bad_ = false;
  bool verdict_ = false;
};

}  // namespace doda::fault
