#pragma once

#include <optional>
#include <vector>

#include "graph/static_graph.hpp"

namespace doda::graph {

/// Rooted spanning tree of a StaticGraph.
///
/// All nodes of the system compute the same tree from the same underlying
/// graph (the construction is deterministic), which is what the paper's
/// Thm 4/5 algorithms rely on: "nodes can compute a spanning tree T rooted
/// at s (they compute the same tree, using node identifiers)".
class SpanningTree {
 public:
  /// Builds the BFS spanning tree of `g` rooted at `root`, visiting
  /// neighbors in ascending id order (hence deterministic).
  /// Throws std::invalid_argument if `g` is not connected.
  static SpanningTree bfs(const StaticGraph& g, NodeId root);

  NodeId root() const noexcept { return root_; }
  std::size_t nodeCount() const noexcept { return parent_.size(); }

  /// Parent of `u`; std::nullopt for the root.
  std::optional<NodeId> parent(NodeId u) const;

  /// Children of `u`, ascending by id.
  const std::vector<NodeId>& children(NodeId u) const;

  /// Depth of `u` (root has depth 0).
  std::size_t depth(NodeId u) const;

  /// Number of nodes in the subtree rooted at `u` (including `u`).
  std::size_t subtreeSize(NodeId u) const;

  /// Height of the whole tree (max depth).
  std::size_t height() const;

  /// Nodes in a post-order traversal (children before parents); useful for
  /// computing the optimal bottom-up aggregation order.
  std::vector<NodeId> postOrder() const;

 private:
  SpanningTree() = default;

  NodeId root_ = 0;
  std::vector<std::optional<NodeId>> parent_;
  std::vector<std::vector<NodeId>> children_;
  std::vector<std::size_t> depth_;
};

}  // namespace doda::graph
