#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

namespace doda::graph {

/// Node identifier. Nodes of an n-node system are numbered 0..n-1; by
/// convention in this library the sink is a specific id chosen by the caller
/// (examples use 0).
using NodeId = std::uint32_t;

/// Simple undirected graph with adjacency lists, used to represent the
/// *underlying graph* G̅ of a dynamic graph (paper §3.2) and to build
/// deterministic spanning trees shared by all nodes.
///
/// Parallel edges are collapsed; self-loops are rejected. Adjacency lists
/// are kept sorted by id so that traversals are deterministic.
class StaticGraph {
 public:
  /// Creates a graph with `node_count` isolated nodes.
  explicit StaticGraph(std::size_t node_count);

  std::size_t nodeCount() const noexcept { return adj_.size(); }
  std::size_t edgeCount() const noexcept { return edge_count_; }

  /// Adds the undirected edge {u, v}. Idempotent. Throws on self-loop or
  /// out-of-range endpoint.
  void addEdge(NodeId u, NodeId v);

  bool hasEdge(NodeId u, NodeId v) const;

  /// Neighbors of `u`, sorted ascending by id.
  std::span<const NodeId> neighbors(NodeId u) const;

  std::size_t degree(NodeId u) const;

  /// All edges as (min, max) pairs, lexicographically sorted.
  std::vector<std::pair<NodeId, NodeId>> edges() const;

  /// True if all nodes are reachable from node 0 (vacuously true for n<=1).
  bool isConnected() const;

  /// True if connected with exactly n-1 edges.
  bool isTree() const;

  /// BFS distances from `source`; unreachable nodes get std::nullopt.
  std::vector<std::optional<std::size_t>> bfsDistances(NodeId source) const;

 private:
  void checkNode(NodeId u) const;

  std::vector<std::vector<NodeId>> adj_;
  std::size_t edge_count_ = 0;
};

}  // namespace doda::graph
