#include "graph/spanning_tree.hpp"

#include <queue>
#include <stdexcept>

namespace doda::graph {

SpanningTree SpanningTree::bfs(const StaticGraph& g, NodeId root) {
  if (root >= g.nodeCount())
    throw std::out_of_range("SpanningTree::bfs: root out of range");
  if (!g.isConnected())
    throw std::invalid_argument("SpanningTree::bfs: graph is not connected");

  SpanningTree t;
  t.root_ = root;
  const std::size_t n = g.nodeCount();
  t.parent_.assign(n, std::nullopt);
  t.children_.assign(n, {});
  t.depth_.assign(n, 0);

  std::vector<bool> visited(n, false);
  std::queue<NodeId> frontier;
  visited[root] = true;
  frontier.push(root);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v : g.neighbors(u)) {  // ascending ids => deterministic
      if (visited[v]) continue;
      visited[v] = true;
      t.parent_[v] = u;
      t.children_[u].push_back(v);
      t.depth_[v] = t.depth_[u] + 1;
      frontier.push(v);
    }
  }
  return t;
}

std::optional<NodeId> SpanningTree::parent(NodeId u) const {
  if (u >= parent_.size())
    throw std::out_of_range("SpanningTree::parent: node out of range");
  return parent_[u];
}

const std::vector<NodeId>& SpanningTree::children(NodeId u) const {
  if (u >= children_.size())
    throw std::out_of_range("SpanningTree::children: node out of range");
  return children_[u];
}

std::size_t SpanningTree::depth(NodeId u) const {
  if (u >= depth_.size())
    throw std::out_of_range("SpanningTree::depth: node out of range");
  return depth_[u];
}

std::size_t SpanningTree::height() const {
  std::size_t h = 0;
  for (std::size_t d : depth_) h = std::max(h, d);
  return h;
}

std::size_t SpanningTree::subtreeSize(NodeId u) const {
  if (u >= parent_.size())
    throw std::out_of_range("SpanningTree::subtreeSize: node out of range");
  std::size_t count = 0;
  std::vector<NodeId> stack{u};
  while (!stack.empty()) {
    const NodeId x = stack.back();
    stack.pop_back();
    ++count;
    for (NodeId c : children_[x]) stack.push_back(c);
  }
  return count;
}

std::vector<NodeId> SpanningTree::postOrder() const {
  std::vector<NodeId> order;
  order.reserve(parent_.size());
  // Iterative post-order: push (node, child-index) frames.
  std::vector<std::pair<NodeId, std::size_t>> stack{{root_, 0}};
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < children_[node].size()) {
      const NodeId child = children_[node][next_child++];
      stack.emplace_back(child, 0);
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
  return order;
}

}  // namespace doda::graph
