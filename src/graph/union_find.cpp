#include "graph/union_find.hpp"

#include <numeric>
#include <stdexcept>
#include <utility>

namespace doda::graph {

UnionFind::UnionFind(std::size_t count)
    : parent_(count), size_(count, 1), sets_(count) {
  std::iota(parent_.begin(), parent_.end(), std::size_t{0});
}

void UnionFind::checkIndex(std::size_t x) const {
  if (x >= parent_.size())
    throw std::out_of_range("UnionFind: index out of range");
}

std::size_t UnionFind::find(std::size_t x) {
  checkIndex(x);
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool UnionFind::unite(std::size_t a, std::size_t b) {
  std::size_t ra = find(a);
  std::size_t rb = find(b);
  if (ra == rb) return false;
  if (size_[ra] < size_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  --sets_;
  return true;
}

std::size_t UnionFind::setSize(std::size_t x) { return size_[find(x)]; }

}  // namespace doda::graph
