#include "graph/static_graph.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace doda::graph {

StaticGraph::StaticGraph(std::size_t node_count) : adj_(node_count) {}

void StaticGraph::checkNode(NodeId u) const {
  if (u >= adj_.size())
    throw std::out_of_range("StaticGraph: node id out of range");
}

void StaticGraph::addEdge(NodeId u, NodeId v) {
  checkNode(u);
  checkNode(v);
  if (u == v) throw std::invalid_argument("StaticGraph: self-loop");
  auto& nu = adj_[u];
  auto it = std::lower_bound(nu.begin(), nu.end(), v);
  if (it != nu.end() && *it == v) return;  // already present
  nu.insert(it, v);
  auto& nv = adj_[v];
  nv.insert(std::lower_bound(nv.begin(), nv.end(), u), u);
  ++edge_count_;
}

bool StaticGraph::hasEdge(NodeId u, NodeId v) const {
  checkNode(u);
  checkNode(v);
  const auto& nu = adj_[u];
  return std::binary_search(nu.begin(), nu.end(), v);
}

std::span<const NodeId> StaticGraph::neighbors(NodeId u) const {
  checkNode(u);
  return adj_[u];
}

std::size_t StaticGraph::degree(NodeId u) const {
  checkNode(u);
  return adj_[u].size();
}

std::vector<std::pair<NodeId, NodeId>> StaticGraph::edges() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(edge_count_);
  for (NodeId u = 0; u < adj_.size(); ++u)
    for (NodeId v : adj_[u])
      if (u < v) out.emplace_back(u, v);
  return out;
}

std::vector<std::optional<std::size_t>> StaticGraph::bfsDistances(
    NodeId source) const {
  checkNode(source);
  std::vector<std::optional<std::size_t>> dist(adj_.size());
  std::queue<NodeId> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v : adj_[u]) {
      if (!dist[v]) {
        dist[v] = *dist[u] + 1;
        frontier.push(v);
      }
    }
  }
  return dist;
}

bool StaticGraph::isConnected() const {
  if (adj_.size() <= 1) return true;
  const auto dist = bfsDistances(0);
  return std::all_of(dist.begin(), dist.end(),
                     [](const auto& d) { return d.has_value(); });
}

bool StaticGraph::isTree() const {
  return isConnected() && edge_count_ + 1 == adj_.size();
}

}  // namespace doda::graph
