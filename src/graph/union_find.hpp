#pragma once

#include <cstddef>
#include <vector>

namespace doda::graph {

/// Disjoint-set union with path halving and union by size.
///
/// Used by the trace generators to build connected random topologies and by
/// tests to check reachability invariants incrementally.
class UnionFind {
 public:
  explicit UnionFind(std::size_t count);

  /// Representative of `x`'s set.
  std::size_t find(std::size_t x);

  /// Merges the sets of `a` and `b`; returns true if they were distinct.
  bool unite(std::size_t a, std::size_t b);

  bool connected(std::size_t a, std::size_t b) { return find(a) == find(b); }

  /// Number of disjoint sets remaining.
  std::size_t setCount() const noexcept { return sets_; }

  /// Size of the set containing `x`.
  std::size_t setSize(std::size_t x);

 private:
  void checkIndex(std::size_t x) const;

  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
  std::size_t sets_;
};

}  // namespace doda::graph
