#include "storage/manifest.hpp"

#include <cstring>
#include <filesystem>
#include <limits>
#include <stdexcept>

namespace doda::storage {

namespace {

std::uint64_t fnv1a(const unsigned char* data, std::size_t size) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void putU16(std::vector<unsigned char>& out, std::uint16_t value) {
  out.push_back(static_cast<unsigned char>(value & 0xff));
  out.push_back(static_cast<unsigned char>(value >> 8));
}

void putU32(std::vector<unsigned char>& out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<unsigned char>((value >> (8 * i)) & 0xff));
}

void putU64(std::vector<unsigned char>& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<unsigned char>((value >> (8 * i)) & 0xff));
}

std::uint16_t loadU16(const unsigned char* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t loadU32(const unsigned char* p) {
  std::uint32_t value = 0;
  for (int i = 3; i >= 0; --i) value = (value << 8) | p[i];
  return value;
}

std::uint64_t loadU64(const unsigned char* p) {
  std::uint64_t value = 0;
  for (int i = 7; i >= 0; --i) value = (value << 8) | p[i];
  return value;
}

void putString(std::vector<unsigned char>& out, const std::string& s) {
  if (s.size() > std::numeric_limits<std::uint16_t>::max())
    throw std::invalid_argument("manifest: name too long: " + s);
  putU16(out, static_cast<std::uint16_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

std::vector<unsigned char> encodeSnapshot(const ManifestVersion& version) {
  std::vector<unsigned char> payload;
  putU64(payload, version.generation);
  putU64(payload, version.node_count);
  putU64(payload, version.total_trials);
  putU64(payload, version.imported_events);
  putU64(payload, version.import_event_hash);
  putString(payload, version.id_map_file);
  putU32(payload, static_cast<std::uint32_t>(version.segments.size()));
  for (const ManifestSegment& segment : version.segments) {
    putString(payload, segment.name);
    putU64(payload, segment.base_trial);
    putU64(payload, segment.trials);
  }
  return payload;
}

/// Decodes a snapshot payload; false on any structural overrun (a record
/// whose checksum verified but whose payload is malformed counts as
/// corruption and ends the valid prefix).
bool decodeSnapshot(const unsigned char* p, std::size_t size,
                    ManifestVersion& version) {
  std::size_t at = 0;
  const auto need = [&](std::size_t n) { return size - at >= n; };
  const auto takeString = [&](std::string& out) {
    if (!need(2)) return false;
    const std::uint16_t len = loadU16(p + at);
    at += 2;
    if (!need(len)) return false;
    out.assign(reinterpret_cast<const char*>(p + at), len);
    at += len;
    return true;
  };
  if (!need(5 * 8)) return false;
  version.generation = loadU64(p + at);
  version.node_count = loadU64(p + at + 8);
  version.total_trials = loadU64(p + at + 16);
  version.imported_events = loadU64(p + at + 24);
  version.import_event_hash = loadU64(p + at + 32);
  at += 5 * 8;
  if (!takeString(version.id_map_file)) return false;
  if (!need(4)) return false;
  const std::uint32_t count = loadU32(p + at);
  at += 4;
  version.segments.clear();
  version.segments.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ManifestSegment segment;
    if (!takeString(segment.name)) return false;
    if (!need(16)) return false;
    segment.base_trial = loadU64(p + at);
    segment.trials = loadU64(p + at + 8);
    at += 16;
    version.segments.push_back(std::move(segment));
  }
  return at == size;
}

std::vector<unsigned char> encodeRecord(const ManifestVersion& version) {
  const std::vector<unsigned char> payload = encodeSnapshot(version);
  std::vector<unsigned char> record;
  record.reserve(16 + payload.size());
  putU32(record, static_cast<std::uint32_t>(payload.size()));
  putU32(record, kManifestRecordSnapshot);
  putU64(record, fnv1a(payload.data(), payload.size()));
  record.insert(record.end(), payload.begin(), payload.end());
  return record;
}

std::string manifestPath(const std::string& dir) {
  return (std::filesystem::path(dir) / kManifestFileName).string();
}

}  // namespace

ManifestReadResult readManifest(Env& env, const std::string& path) {
  const std::string bytes = env.readFile(path);
  const auto* data = reinterpret_cast<const unsigned char*>(bytes.data());
  if (bytes.size() < 8 || std::memcmp(data, kManifestMagic, 8) != 0)
    throw std::runtime_error("readManifest: " + path +
                             ": not a doda manifest (bad magic)");
  ManifestReadResult result;
  result.file_bytes = bytes.size();
  std::size_t at = 8;
  result.valid_bytes = at;
  while (bytes.size() - at >= 16) {
    const std::uint32_t len = loadU32(data + at);
    const std::uint32_t type = loadU32(data + at + 4);
    const std::uint64_t checksum = loadU64(data + at + 8);
    if (bytes.size() - at - 16 < len) break;  // torn payload
    const unsigned char* payload = data + at + 16;
    if (fnv1a(payload, len) != checksum) break;  // torn or corrupt record
    if (type == kManifestRecordSnapshot) {
      ManifestVersion version;
      if (!decodeSnapshot(payload, len, version)) break;
      result.version = std::move(version);
    }
    // Unknown record types are checksum-verified and skipped, so a newer
    // writer can add record kinds without breaking this reader.
    at += 16 + len;
    result.valid_bytes = at;
  }
  result.tail_torn = result.valid_bytes < result.file_bytes;
  return result;
}

void writeManifestSnapshot(Env& env, const std::string& dir,
                           const ManifestVersion& version) {
  const std::string tmp =
      (std::filesystem::path(dir) / "tmp-MANIFEST").string();
  const std::vector<unsigned char> record = encodeRecord(version);
  {
    auto file = env.newWritableFile(tmp);
    file->append(kManifestMagic, 8);
    file->append(record.data(), record.size());
    file->sync();
    file->close();
  }
  env.renameFile(tmp, manifestPath(dir));
  env.syncDir(dir);
}

void appendManifestSnapshot(Env& env, const std::string& dir,
                            const ManifestVersion& version) {
  const std::vector<unsigned char> record = encodeRecord(version);
  auto file = env.newWritableFile(manifestPath(dir), /*truncate=*/false);
  file->append(record.data(), record.size());
  file->sync();
  file->close();
}

}  // namespace doda::storage
