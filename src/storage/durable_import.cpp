#include "storage/durable_import.hpp"

#include <algorithm>

namespace doda::storage {

DurableImportResult importContactTraceDurable(
    const std::string& input_path, const std::string& store_dir,
    std::uint32_t shard_count, const dynagraph::ContactImportOptions& options,
    const dynagraph::TraceWriterOptions& writer_options, Env* env) {
  DurableImportResult result;
  DurableTraceStore store = [&] {
    if (DurableTraceStore::isDurableStore(store_dir, env))
      return DurableTraceStore::open(store_dir, {}, env);
    result.created = true;
    return DurableTraceStore::create(store_dir, env);
  }();

  dynagraph::ContactAppendBase base;
  base.external_ids = store.loadIdMap();
  base.events = store.version().imported_events;
  if (base.events > 0) base.event_hash = store.version().import_event_hash;

  const dynagraph::ContactAppendPlan plan =
      dynagraph::planContactAppend(input_path, base, options);
  result.total_events = plan.base_events + plan.new_events;
  result.stats = plan.stats;
  if (plan.new_events == 0) return result;  // store already up to date

  const std::uint64_t trials = plan.appendTrials(options);
  std::uint32_t shards = shard_count == 0 ? 1 : shard_count;
  shards = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(shards, trials));
  // A store can mix recorded and imported segments, so the node universe
  // is the larger of the id map and whatever was recorded before.
  const std::size_t node_count = std::max<std::size_t>(
      plan.external_ids.size(),
      static_cast<std::size_t>(store.nodeCount()));

  DurableTraceStore::ImportDelta delta;
  delta.events = result.total_events;
  delta.event_hash = plan.event_hash;
  delta.external_ids = plan.external_ids;
  store.commitSegment(
      node_count, trials, shards, writer_options,
      [&](dynagraph::TraceStoreWriter& writer) {
        result.stats =
            dynagraph::streamContactAppend(writer, input_path, plan, options);
      },
      &delta);
  result.appended_events = plan.new_events;
  result.appended_trials = trials;
  return result;
}

}  // namespace doda::storage
