#include "storage/env.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#define DODA_ENV_HAS_FSYNC 1
#include <fcntl.h>
#include <unistd.h>
#endif

namespace doda::storage {

namespace fs = std::filesystem;

namespace {

[[noreturn]] void ioFail(const std::string& what, const std::string& path) {
  throw std::runtime_error("storage::Env: " + what + ": " + path);
}

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hashPath(const std::string& path) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : path) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string parentOf(const std::string& path) {
  return fs::path(path).parent_path().string();
}

// --------------------------------------------------------------- posix env

/// Buffered stdio writer with fsync-backed sync(); writeAt preserves the
/// append position so the shard writer's header reseal composes with
/// further appends (the manifest never needs it).
class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(std::string path, bool truncate) : path_(std::move(path)) {
    // "ab" would force every write to the end (POSIX append mode), which
    // writeAt must escape — so append mode opens r+ and seeks instead.
    if (truncate) {
      f_ = std::fopen(path_.c_str(), "wb");
    } else if ((f_ = std::fopen(path_.c_str(), "rb+")) != nullptr) {
      if (std::fseek(f_, 0, SEEK_END) != 0) {
        std::fclose(f_);
        f_ = nullptr;
      }
    } else {
      f_ = std::fopen(path_.c_str(), "wb");  // append to a missing file
    }
    if (f_ == nullptr) ioFail("cannot open for writing", path_);
  }

  ~PosixWritableFile() override {
    if (f_ != nullptr) std::fclose(f_);
  }

  void append(const void* data, std::size_t size) override {
    if (f_ == nullptr) ioFail("write after close", path_);
    if (std::fwrite(data, 1, size, f_) != size) ioFail("write failed", path_);
  }

  void writeAt(std::uint64_t offset, const void* data,
               std::size_t size) override {
    if (f_ == nullptr) ioFail("write after close", path_);
    if (std::fflush(f_) != 0) ioFail("flush failed", path_);
    if (std::fseek(f_, static_cast<long>(offset), SEEK_SET) != 0)
      ioFail("seek failed", path_);
    if (std::fwrite(data, 1, size, f_) != size) ioFail("write failed", path_);
    if (std::fseek(f_, 0, SEEK_END) != 0) ioFail("seek failed", path_);
  }

  void sync() override {
    if (f_ == nullptr) ioFail("sync after close", path_);
    if (std::fflush(f_) != 0) ioFail("flush failed", path_);
#if DODA_ENV_HAS_FSYNC
    if (::fsync(::fileno(f_)) != 0) ioFail("fsync failed", path_);
#endif
  }

  void close() override {
    if (f_ == nullptr) return;
    const int rc = std::fclose(f_);
    f_ = nullptr;
    if (rc != 0) ioFail("close failed", path_);
  }

 private:
  std::string path_;
  std::FILE* f_ = nullptr;
};

class PosixEnv final : public Env {
 public:
  std::unique_ptr<WritableFile> newWritableFile(const std::string& path,
                                                bool truncate) override {
    return std::make_unique<PosixWritableFile>(path, truncate);
  }

  void mkdirs(const std::string& path) override {
    std::error_code ec;
    fs::create_directories(path, ec);
    if (ec) ioFail("cannot create directory (" + ec.message() + ")", path);
  }

  void renameFile(const std::string& from, const std::string& to) override {
    std::error_code ec;
    fs::rename(from, to, ec);
    if (ec) ioFail("rename to " + to + " failed (" + ec.message() + ")", from);
  }

  void removeFile(const std::string& path) override {
    std::error_code ec;
    if (!fs::remove(path, ec) || ec) ioFail("cannot remove", path);
  }

  void removeDirRecursive(const std::string& path) override {
    std::error_code ec;
    fs::remove_all(path, ec);
    if (ec) ioFail("cannot remove directory (" + ec.message() + ")", path);
  }

  void syncDir([[maybe_unused]] const std::string& path) override {
#if DODA_ENV_HAS_FSYNC
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) ioFail("cannot open directory for fsync", path);
    const int rc = ::fsync(fd);
    ::close(fd);
    // Some filesystems refuse directory fsync (EINVAL); that is the
    // platform's durability ceiling, not a store error.
    if (rc != 0 && errno != EINVAL) ioFail("directory fsync failed", path);
#endif
  }

  bool exists(const std::string& path) const override {
    std::error_code ec;
    return fs::exists(path, ec);
  }

  bool isDirectory(const std::string& path) const override {
    std::error_code ec;
    return fs::is_directory(path, ec);
  }

  std::uint64_t fileSize(const std::string& path) const override {
    std::error_code ec;
    const auto size = fs::file_size(path, ec);
    if (ec) ioFail("cannot stat", path);
    return size;
  }

  std::vector<std::string> listDir(const std::string& path) const override {
    std::vector<std::string> names;
    std::error_code ec;
    fs::directory_iterator it(path, ec), end;
    if (ec) ioFail("cannot list directory (" + ec.message() + ")", path);
    for (; it != end; it.increment(ec)) {
      if (ec) ioFail("cannot list directory (" + ec.message() + ")", path);
      names.push_back(it->path().filename().string());
    }
    std::sort(names.begin(), names.end());
    return names;
  }

  std::string readFile(const std::string& path) const override {
    std::ifstream in(path, std::ios::binary);
    if (!in) ioFail("cannot open for reading", path);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    if (in.bad()) ioFail("read failed", path);
    return content;
  }
};

}  // namespace

Env& defaultEnv() {
  static PosixEnv env;
  return env;
}

// --------------------------------------------------------------- fault env

FaultyEnvPlan FaultyEnvPlan::draw(std::uint64_t seed, std::uint64_t max_ops,
                                  double p_fault) {
  FaultyEnvPlan plan;
  plan.seed = seed;
  std::uint64_t state = seed ^ 0xfa017ULL;
  for (std::uint64_t op = 0; op < max_ops; ++op) {
    const double roll =
        static_cast<double>(splitmix64(state) >> 11) * 0x1p-53;
    const auto kind = static_cast<Fault>(splitmix64(state) % 4);
    if (roll < p_fault) plan.faults.emplace_back(op, kind);
  }
  return plan;
}

/// Fault-wrapping writable file: reports every write/sync to the env for
/// op accounting and fault injection, and keeps the env's durable-content
/// bookkeeping in step with honest syncs. Lives in doda::storage (not the
/// anonymous namespace) so FaultyEnv's friend declaration names it.
class FaultyWritableFile final : public WritableFile {
 public:
  FaultyWritableFile(FaultyEnv& env, std::string path,
                     std::unique_ptr<WritableFile> base)
      : env_(env), path_(std::move(path)), base_(std::move(base)) {}

  void append(const void* data, std::size_t size) override {
    bool crash_now = false;
    const auto fault = env_.beginOp(crash_now);
    if (crash_now || fault == FaultyEnvPlan::Fault::kTornWrite ||
        fault == FaultyEnvPlan::Fault::kEnospc) {
      // Torn prefix for the crash and torn-write faults; nothing for
      // ENOSPC (the write never started).
      std::size_t keep = 0;
      if (fault != FaultyEnvPlan::Fault::kEnospc && size > 0)
        keep = static_cast<std::size_t>(env_.drawU64(hashPath(path_) + size) %
                                        (size + 1));
      if (keep > 0) base_->append(data, keep);
      if (crash_now) env_.crash("append to " + path_);
      throw std::runtime_error(
          fault == FaultyEnvPlan::Fault::kEnospc
              ? "FaultyEnv: injected ENOSPC appending to " + path_
              : "FaultyEnv: injected torn write appending to " + path_);
    }
    base_->append(data, size);
  }

  void writeAt(std::uint64_t offset, const void* data,
               std::size_t size) override {
    bool crash_now = false;
    const auto fault = env_.beginOp(crash_now);
    if (crash_now || fault == FaultyEnvPlan::Fault::kTornWrite ||
        fault == FaultyEnvPlan::Fault::kEnospc) {
      std::size_t keep = 0;
      if (fault != FaultyEnvPlan::Fault::kEnospc && size > 0)
        keep = static_cast<std::size_t>(
            env_.drawU64(hashPath(path_) + offset) % (size + 1));
      if (keep > 0) base_->writeAt(offset, data, keep);
      if (crash_now) env_.crash("writeAt on " + path_);
      throw std::runtime_error(
          fault == FaultyEnvPlan::Fault::kEnospc
              ? "FaultyEnv: injected ENOSPC writing " + path_
              : "FaultyEnv: injected torn write on " + path_);
    }
    base_->writeAt(offset, data, size);
  }

  void sync() override {
    bool crash_now = false;
    const auto fault = env_.beginOp(crash_now);
    if (crash_now) env_.crash("sync of " + path_);
    if (fault == FaultyEnvPlan::Fault::kDroppedSync) return;  // the lie
    if (fault == FaultyEnvPlan::Fault::kEnospc)
      throw std::runtime_error("FaultyEnv: injected sync failure on " + path_);
    base_->sync();
    env_.markDurable(path_);
  }

  void close() override { base_->close(); }

 private:
  FaultyEnv& env_;
  std::string path_;
  std::unique_ptr<WritableFile> base_;
};

FaultyEnv::FaultyEnv(FaultyEnvPlan plan, Env* base)
    : plan_(std::move(plan)), base_(resolveEnv(base)) {
  std::sort(plan_.faults.begin(), plan_.faults.end());
}

FaultyEnv::~FaultyEnv() = default;

std::optional<FaultyEnvPlan::Fault> FaultyEnv::beginOp(bool& crash_now) {
  if (crashed_) throw EnvCrash("FaultyEnv: operation after the crash");
  const std::uint64_t op = op_count_++;
  crash_now = op == plan_.crash_at_op;
  const auto it = std::lower_bound(
      plan_.faults.begin(), plan_.faults.end(), op,
      [](const auto& entry, std::uint64_t value) { return entry.first < value; });
  if (it != plan_.faults.end() && it->first == op) return it->second;
  return std::nullopt;
}

void FaultyEnv::crash(const std::string& what) {
  crashed_ = true;
  throw EnvCrash("FaultyEnv: simulated crash at op " +
                 std::to_string(op_count_ - 1) + " (" + what + ")");
}

std::uint64_t FaultyEnv::drawU64(std::uint64_t salt) const {
  std::uint64_t state = plan_.seed ^ (salt * 0x9e3779b97f4a7c15ULL);
  return splitmix64(state);
}

void FaultyEnv::markDurable(const std::string& path) {
  durable_[path] = base_.readFile(path);
}

void FaultyEnv::noteCreated(const std::string& path, PendingEntry::Kind kind) {
  pending_.push_back({kind, path, {}});
}

void FaultyEnv::rekeyTracked(const std::string& from, const std::string& to) {
  // A directory rename moves every tracked path under it.
  const std::string prefix = from + "/";
  std::unordered_map<std::string, std::string> rekeyed;
  for (auto& [path, content] : durable_) {
    std::string key = path;
    if (key == from) {
      key = to;
    } else if (key.compare(0, prefix.size(), prefix) == 0) {
      key = to + "/" + key.substr(prefix.size());
    }
    rekeyed.emplace(std::move(key), std::move(content));
  }
  durable_ = std::move(rekeyed);
  for (PendingEntry& entry : pending_) {
    if (entry.path == from) {
      entry.path = to;
    } else if (entry.path.compare(0, prefix.size(), prefix) == 0) {
      entry.path = to + "/" + entry.path.substr(prefix.size());
    }
  }
}

std::unique_ptr<WritableFile> FaultyEnv::newWritableFile(
    const std::string& path, bool truncate) {
  bool crash_now = false;
  const auto fault = beginOp(crash_now);
  if (crash_now) {
    // Coin: a NEW file's dir entry may or may not have appeared. A
    // pre-existing file (append mode, or truncate not yet applied) is
    // left untouched — it must not gain a rollbackable create entry.
    if (!base_.exists(path) && (drawU64(hashPath(path)) & 1)) {
      base_.newWritableFile(path, truncate)->close();
      noteCreated(path, PendingEntry::Kind::kCreateFile);
    }
    crash("create of " + path);
  }
  if (fault == FaultyEnvPlan::Fault::kEnospc)
    throw std::runtime_error("FaultyEnv: injected ENOSPC creating " + path);
  const bool existed = base_.exists(path);
  auto file = base_.newWritableFile(path, truncate);
  if (!existed) {
    noteCreated(path, PendingEntry::Kind::kCreateFile);
  } else if (!truncate && durable_.find(path) == durable_.end()) {
    // Appending to a file that predates this env: its current content is
    // durable (it survived whatever created it).
    markDurable(path);
  }
  if (existed && truncate) durable_.erase(path);
  return std::make_unique<FaultyWritableFile>(*this, path, std::move(file));
}

void FaultyEnv::mkdirs(const std::string& path) {
  bool crash_now = false;
  const auto fault = beginOp(crash_now);
  if (crash_now) {
    if (!base_.exists(path) && (drawU64(hashPath(path)) & 1)) {
      base_.mkdirs(path);
      noteCreated(path, PendingEntry::Kind::kCreateDir);
    }
    crash("mkdirs of " + path);
  }
  if (fault == FaultyEnvPlan::Fault::kEnospc)
    throw std::runtime_error("FaultyEnv: injected ENOSPC creating dir " + path);
  const bool existed = base_.exists(path);
  base_.mkdirs(path);
  if (!existed) noteCreated(path, PendingEntry::Kind::kCreateDir);
}

void FaultyEnv::renameFile(const std::string& from, const std::string& to) {
  bool crash_now = false;
  const auto fault = beginOp(crash_now);
  if (crash_now) {
    if (drawU64(hashPath(from) ^ hashPath(to)) & 1) {
      base_.renameFile(from, to);
      rekeyTracked(from, to);
      pending_.push_back({PendingEntry::Kind::kRename, to, from});
    }
    crash("rename of " + from);
  }
  if (fault == FaultyEnvPlan::Fault::kRenameFail ||
      fault == FaultyEnvPlan::Fault::kEnospc)
    throw std::runtime_error("FaultyEnv: injected rename failure: " + from +
                             " -> " + to);
  base_.renameFile(from, to);
  rekeyTracked(from, to);
  pending_.push_back({PendingEntry::Kind::kRename, to, from});
}

void FaultyEnv::removeFile(const std::string& path) {
  bool crash_now = false;
  const auto fault = beginOp(crash_now);
  if (crash_now) crash("remove of " + path);
  if (fault == FaultyEnvPlan::Fault::kEnospc)
    throw std::runtime_error("FaultyEnv: injected remove failure: " + path);
  base_.removeFile(path);
  durable_.erase(path);
}

void FaultyEnv::removeDirRecursive(const std::string& path) {
  bool crash_now = false;
  const auto fault = beginOp(crash_now);
  if (crash_now) crash("remove of " + path);
  if (fault == FaultyEnvPlan::Fault::kEnospc)
    throw std::runtime_error("FaultyEnv: injected remove failure: " + path);
  base_.removeDirRecursive(path);
  const std::string prefix = path + "/";
  for (auto it = durable_.begin(); it != durable_.end();) {
    if (it->first == path || it->first.compare(0, prefix.size(), prefix) == 0)
      it = durable_.erase(it);
    else
      ++it;
  }
}

void FaultyEnv::syncDir(const std::string& path) {
  bool crash_now = false;
  const auto fault = beginOp(crash_now);
  if (crash_now) crash("syncDir of " + path);
  if (fault == FaultyEnvPlan::Fault::kDroppedSync) return;  // the lie
  if (fault == FaultyEnvPlan::Fault::kEnospc)
    throw std::runtime_error("FaultyEnv: injected syncDir failure: " + path);
  base_.syncDir(path);
  // Entries directly inside `path` are now durable dir entries.
  pending_.erase(std::remove_if(pending_.begin(), pending_.end(),
                                [&](const PendingEntry& entry) {
                                  return parentOf(entry.path) == path;
                                }),
                 pending_.end());
}

void FaultyEnv::loseUnsyncedData() {
  if (!crashed_ || lost_) return;
  lost_ = true;
  // Roll back unsynced dir entries first, newest first, each by its own
  // drawn coin (a real crash persists an arbitrary subset of unsynced
  // metadata). A rolled-back rename moves the file's content bookkeeping
  // with it.
  for (auto it = pending_.rbegin(); it != pending_.rend(); ++it) {
    const std::uint64_t coin = drawU64(hashPath(it->path) ^ 0xd1eULL);
    if ((coin & 1) == 0) continue;  // this entry survived the crash
    if (!base_.exists(it->path)) continue;
    switch (it->kind) {
      case PendingEntry::Kind::kCreateFile:
        base_.removeFile(it->path);
        durable_.erase(it->path);
        break;
      case PendingEntry::Kind::kCreateDir:
        base_.removeDirRecursive(it->path);
        break;
      case PendingEntry::Kind::kRename:
        base_.renameFile(it->path, it->from);
        rekeyTracked(it->path, it->from);
        break;
    }
  }
  pending_.clear();
  // Apply per-file data loss to whatever files survived: durable content,
  // full current content, or durable plus a torn prefix of the unsynced
  // tail.
  for (const auto& [path, durable] : durable_) {
    if (!base_.exists(path)) continue;
    const std::string current = base_.readFile(path);
    if (current.size() <= durable.size()) continue;  // nothing unsynced
    const std::uint64_t pick = drawU64(hashPath(path) ^ 0x105eULL);
    std::string kept;
    switch (pick % 3) {
      case 0:  // every unsynced byte lost
        kept = durable;
        break;
      case 1:  // every unsynced byte survived
        continue;
      default: {  // torn: durable content plus a prefix of the tail
        const std::uint64_t tail = current.size() - durable.size();
        kept = durable + current.substr(durable.size(),
                                        drawU64(pick) % (tail + 1));
        break;
      }
    }
    auto file = base_.newWritableFile(path, true);
    if (!kept.empty()) file->append(kept.data(), kept.size());
    file->close();
  }
  // Files written but never honestly synced: any prefix of their content
  // may survive (their dir entry fate was decided above).
  // durable_ only tracks synced files, so walk is complete: an unsynced
  // file either had a pending create entry (handled) or predated the env.
}

bool FaultyEnv::exists(const std::string& path) const {
  return base_.exists(path);
}

bool FaultyEnv::isDirectory(const std::string& path) const {
  return base_.isDirectory(path);
}

std::uint64_t FaultyEnv::fileSize(const std::string& path) const {
  return base_.fileSize(path);
}

std::vector<std::string> FaultyEnv::listDir(const std::string& path) const {
  return base_.listDir(path);
}

std::string FaultyEnv::readFile(const std::string& path) const {
  return base_.readFile(path);
}

}  // namespace doda::storage
