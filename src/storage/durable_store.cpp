#include "storage/durable_store.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>

namespace doda::storage {

namespace {

constexpr char kIdMapMagic[9] = "DODAIDM1";

std::uint64_t fnv1a(const unsigned char* data, std::size_t size) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void putU64(std::vector<unsigned char>& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<unsigned char>((value >> (8 * i)) & 0xff));
}

std::uint64_t loadU64(const unsigned char* p) {
  std::uint64_t value = 0;
  for (int i = 7; i >= 0; --i) value = (value << 8) | p[i];
  return value;
}

bool startsWith(const std::string& name, const char* prefix) {
  return name.rfind(prefix, 0) == 0;
}

}  // namespace

std::string DurableTraceStore::segmentName(std::uint64_t generation) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "seg-%06llu",
                static_cast<unsigned long long>(generation));
  return buf;
}

std::string DurableTraceStore::idMapName(std::uint64_t generation) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "idmap-%06llu.map",
                static_cast<unsigned long long>(generation));
  return buf;
}

std::string DurableTraceStore::childPath(const std::string& name) const {
  return (std::filesystem::path(dir_) / name).string();
}

bool DurableTraceStore::isDurableStore(const std::string& dir, Env* env) {
  return resolveEnv(env).exists(
      (std::filesystem::path(dir) / kManifestFileName).string());
}

DurableTraceStore DurableTraceStore::create(const std::string& dir, Env* env) {
  DurableTraceStore store(dir, env);
  store.env().mkdirs(dir);
  if (isDurableStore(dir, env))
    throw std::runtime_error("DurableTraceStore::create: " + dir +
                             " already carries a MANIFEST");
  writeManifestSnapshot(store.env(), dir, store.version_);
  return store;
}

DurableTraceStore DurableTraceStore::open(const std::string& dir,
                                          const DurableOpenOptions& options,
                                          Env* env) {
  DurableTraceStore store(dir, env);
  Env& fs = store.env();
  if (!fs.isDirectory(dir))
    throw std::runtime_error("DurableTraceStore::open: " + dir +
                             ": no such store directory");
  const std::string manifest = store.childPath(kManifestFileName);
  if (!fs.exists(manifest))
    throw std::runtime_error("DurableTraceStore::open: " + dir +
                             ": not a durable store (no MANIFEST)");
  const ManifestReadResult read = readManifest(fs, manifest);
  if (!read.version)
    throw std::runtime_error("DurableTraceStore::open: " + manifest +
                             ": no intact manifest snapshot");
  store.version_ = *read.version;
  if (read.tail_torn && options.repair) {
    // Drop the torn trailing record atomically (temp + rename) so future
    // commits append behind a clean tail.
    writeManifestSnapshot(fs, dir, store.version_);
    store.repaired_tail_ = true;
  }
  if (options.repair) {
    // Remove in-flight leftovers of crashed commits: temp files and
    // generations or id maps the adopted version does not reference.
    // Names outside the store's own patterns are left alone.
    for (const std::string& name : fs.listDir(dir)) {
      if (name == kManifestFileName) continue;
      if (name == store.version_.id_map_file) continue;
      const bool referenced_segment =
          std::any_of(store.version_.segments.begin(),
                      store.version_.segments.end(),
                      [&](const ManifestSegment& s) { return s.name == name; });
      if (referenced_segment) continue;
      if (!startsWith(name, "tmp-") && !startsWith(name, "seg-") &&
          !startsWith(name, "idmap-"))
        continue;
      const std::string path = store.childPath(name);
      if (fs.isDirectory(path))
        fs.removeDirRecursive(path);
      else
        fs.removeFile(path);
      store.removed_orphans_.push_back(path);
    }
  }
  return store;
}

DurableTraceStore DurableTraceStore::openOrCreate(
    const std::string& dir, const DurableOpenOptions& options, Env* env) {
  return isDurableStore(dir, env) ? open(dir, options, env) : create(dir, env);
}

std::vector<std::string> DurableTraceStore::segmentDirs() const {
  std::vector<std::string> dirs;
  dirs.reserve(version_.segments.size());
  for (const ManifestSegment& segment : version_.segments)
    dirs.push_back(childPath(segment.name));
  return dirs;
}

dynagraph::TraceStore DurableTraceStore::openStore(
    const dynagraph::TraceStoreOpenOptions& options) const {
  if (version_.segments.empty())
    throw std::runtime_error("DurableTraceStore: " + dir_ +
                             ": store has no committed segments yet");
  return dynagraph::TraceStore::openComposite(segmentDirs(), options);
}

std::vector<std::uint64_t> DurableTraceStore::loadIdMap() const {
  if (version_.id_map_file.empty()) return {};
  const std::string path = childPath(version_.id_map_file);
  const std::string bytes = env().readFile(path);
  const auto* data = reinterpret_cast<const unsigned char*>(bytes.data());
  const auto fail = [&](const std::string& why) {
    throw std::runtime_error("DurableTraceStore: " + path + ": " + why);
  };
  if (bytes.size() < 24 || std::memcmp(data, kIdMapMagic, 8) != 0)
    fail("not an id-map file (bad magic)");
  const std::uint64_t count = loadU64(data + 8);
  if (bytes.size() != 24 + count * 8) fail("id-map size mismatch");
  if (loadU64(data + 16 + count * 8) != fnv1a(data + 8, 8 + count * 8))
    fail("id-map checksum mismatch");
  std::vector<std::uint64_t> ids(static_cast<std::size_t>(count));
  for (std::size_t i = 0; i < ids.size(); ++i)
    ids[i] = loadU64(data + 16 + i * 8);
  return ids;
}

void DurableTraceStore::writeIdMap(
    const std::string& name, const std::vector<std::uint64_t>& ids) const {
  std::vector<unsigned char> bytes;
  bytes.reserve(24 + ids.size() * 8);
  bytes.insert(bytes.end(), kIdMapMagic, kIdMapMagic + 8);
  putU64(bytes, ids.size());
  for (const std::uint64_t id : ids) putU64(bytes, id);
  const std::uint64_t checksum = fnv1a(bytes.data() + 8, bytes.size() - 8);
  putU64(bytes, checksum);
  const std::string tmp = childPath("tmp-" + name);
  {
    auto file = env().newWritableFile(tmp);
    file->append(bytes.data(), bytes.size());
    file->sync();
    file->close();
  }
  env().renameFile(tmp, childPath(name));
  // The rename becomes durable with the directory fsync in commitVersion.
}

void DurableTraceStore::commitVersion(const std::string& tmp_seg,
                                      const std::string& seg_name,
                                      ManifestVersion next) {
  // The shard files were fsynced by the writer, but their *directory
  // entries* live in the segment directory — fsync it too, or a crash
  // after the commit can lose a shard out of a committed generation.
  env().syncDir(tmp_seg);
  env().renameFile(tmp_seg, childPath(seg_name));
  env().syncDir(dir_);
  // The commit point: everything before this is invisible to recovery
  // until this snapshot lands intact.
  appendManifestSnapshot(env(), dir_, next);
  version_ = std::move(next);
}

void DurableTraceStore::commitSegment(
    std::size_t node_count, std::uint64_t trials, std::uint32_t shard_count,
    dynagraph::TraceWriterOptions writer_options, const SegmentFill& fill,
    const ImportDelta* import) {
  if (trials == 0)
    throw std::invalid_argument("DurableTraceStore::commitSegment: no trials");
  if (node_count < version_.node_count)
    throw std::invalid_argument(
        "DurableTraceStore::commitSegment: node universe may only grow (" +
        std::to_string(node_count) + " < " +
        std::to_string(version_.node_count) + ")");
  const std::uint64_t gen = version_.generation + 1;
  const std::string seg_name = segmentName(gen);
  const std::string tmp_seg = childPath("tmp-" + seg_name);
  if (env().exists(tmp_seg)) env().removeDirRecursive(tmp_seg);

  writer_options.env = env_;
  writer_options.sync_on_close = true;
  writer_options.base_trial = version_.total_trials;
  {
    dynagraph::TraceStoreWriter writer(tmp_seg, node_count, trials,
                                       shard_count, writer_options);
    fill(writer);
    writer.finish();
  }

  ManifestVersion next = version_;
  next.generation = gen;
  next.node_count = node_count;
  next.total_trials += trials;
  next.segments.push_back({seg_name, version_.total_trials, trials});
  if (import != nullptr) {
    next.imported_events = import->events;
    next.import_event_hash = import->event_hash;
    next.id_map_file = idMapName(gen);
    writeIdMap(next.id_map_file, import->external_ids);
  }
  commitVersion(tmp_seg, seg_name, std::move(next));
}

void DurableTraceStore::compact(dynagraph::TraceWriterOptions writer_options,
                                std::uint32_t shard_count) {
  if (version_.segments.empty())
    throw std::runtime_error("DurableTraceStore::compact: " + dir_ +
                             ": nothing to compact");
  // Strict open: compacting around a quarantined shard would silently
  // drop its trials from the rewritten generation.
  const dynagraph::TraceStore store = openStore();
  if (shard_count == 0)
    shard_count = store.shardHeaders().front().shard_count;
  shard_count = static_cast<std::uint32_t>(std::min<std::uint64_t>(
      shard_count, store.trialCount()));

  const std::uint64_t gen = version_.generation + 1;
  const std::string seg_name = segmentName(gen);
  const std::string tmp_seg = childPath("tmp-" + seg_name);
  if (env().exists(tmp_seg)) env().removeDirRecursive(tmp_seg);

  writer_options.env = env_;
  writer_options.sync_on_close = true;
  writer_options.base_trial = 0;
  {
    dynagraph::TraceStoreWriter writer(tmp_seg, store.nodeCount(),
                                       store.trialCount(), shard_count,
                                       writer_options);
    for (std::size_t i = 0; i < store.shardCount(); ++i) {
      dynagraph::TraceShardReader reader = store.openShard(i);
      while (reader.beginTrial()) {
        writer.beginTrial(reader.trialLength());
        while (const auto interaction = reader.next())
          writer.addInteraction(*interaction);
      }
    }
    writer.finish();
  }

  const std::vector<ManifestSegment> old_segments = version_.segments;
  ManifestVersion next = version_;
  next.generation = gen;
  next.segments = {{seg_name, 0, store.trialCount()}};
  commitVersion(tmp_seg, seg_name, std::move(next));
  // The old generations are garbage now; a crash mid-removal just leaves
  // orphans for the next open() to sweep.
  for (const ManifestSegment& segment : old_segments)
    env().removeDirRecursive(childPath(segment.name));
}

}  // namespace doda::storage
