#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "storage/env.hpp"

namespace doda::storage {

// ---------------------------------------------------------------------------
// MANIFEST — the durable store's commit log (RocksDB version-set style).
//
// On disk:
//
//   bytes 0..7    magic "DODAMFT1"
//   then records: u32 payload_len | u32 record_type | u64 fnv1a(payload)
//                 | payload
//
// Record type 1 is a *version snapshot*: the complete current state of the
// store (segment list, trial totals, import bookkeeping). Every commit
// appends one snapshot and fsyncs; recovery scans forward and adopts the
// last record whose checksum verifies, so a crash mid-append — a torn
// trailing record — silently falls back to the previous version. All
// integers are little-endian.
//
// Snapshot payload:
//
//   u64 generation            monotonically increasing commit counter
//   u64 node_count            0 until the first segment fixes it
//   u64 total_trials          sum of the segments' trial counts
//   u64 imported_events       contact events ingested so far (0 = none)
//   u64 import_event_hash     running fnv1a over the imported event stream
//   u16 id_map_file length + bytes   import dense-id map file ("" = none)
//   u32 segment count
//   per segment: u16 name length + bytes | u64 base_trial | u64 trials
// ---------------------------------------------------------------------------

inline constexpr char kManifestFileName[] = "MANIFEST";
inline constexpr char kManifestMagic[9] = "DODAMFT1";
inline constexpr std::uint32_t kManifestRecordSnapshot = 1;

/// One immutable shard-generation directory of a durable store.
struct ManifestSegment {
  std::string name;  ///< directory name under the store root ("seg-000003")
  std::uint64_t base_trial = 0;
  std::uint64_t trials = 0;
};

/// One committed version of a durable store.
struct ManifestVersion {
  std::uint64_t generation = 0;
  std::uint64_t node_count = 0;
  std::uint64_t total_trials = 0;
  std::uint64_t imported_events = 0;
  std::uint64_t import_event_hash = 0;
  std::string id_map_file;  ///< "" when nothing was imported
  std::vector<ManifestSegment> segments;
};

/// What a manifest scan found.
struct ManifestReadResult {
  /// Last snapshot whose record checksum verified; nullopt when the file
  /// holds a valid magic but no complete record yet.
  std::optional<ManifestVersion> version;
  /// Bytes of the valid prefix (magic plus every intact record).
  std::uint64_t valid_bytes = 0;
  std::uint64_t file_bytes = 0;
  /// Bytes past valid_bytes exist — a torn trailing record from a crash
  /// mid-append. Recovery rewrites the manifest to drop them.
  bool tail_torn = false;
};

/// Scans the manifest at `path`. Throws std::runtime_error when the file
/// is missing, shorter than the magic, or carries the wrong magic — those
/// mean "not a manifest", which no recovery can repair. A torn or corrupt
/// record merely ends the valid prefix (tail_torn).
ManifestReadResult readManifest(Env& env, const std::string& path);

/// Atomically (re)writes `dir`/MANIFEST to hold exactly one snapshot:
/// temp file, fsync, rename over the manifest, directory fsync. Used for
/// the initial commit and to repair a torn tail; ongoing commits append.
void writeManifestSnapshot(Env& env, const std::string& dir,
                           const ManifestVersion& version);

/// Appends one snapshot record to `dir`/MANIFEST and fsyncs it — the
/// commit point of every segment commit. The caller must have repaired a
/// torn tail first (DurableTraceStore::open does), or the new record
/// would sit behind garbage and never be read.
void appendManifestSnapshot(Env& env, const std::string& dir,
                            const ManifestVersion& version);

}  // namespace doda::storage
