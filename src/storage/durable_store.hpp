#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "dynagraph/trace_io.hpp"
#include "storage/env.hpp"
#include "storage/manifest.hpp"

namespace doda::storage {

// ---------------------------------------------------------------------------
// DurableTraceStore — an LSM-style crash-safe trace store.
//
// Layout under the store root:
//
//   MANIFEST            append-only commit log (storage/manifest.hpp)
//   seg-NNNNNN/         one immutable shard generation per commit
//     shard-00000.trace …
//   idmap-NNNNNN.map    import dense-id map of generation N (if imported)
//   tmp-*               in-flight commits; orphans after a crash
//
// Commit discipline (commitSegment): write every shard of the new segment
// into tmp-seg-NNNNNN with fsync-on-close, write + fsync the new id-map
// file (imports), atomically rename the segment into place, fsync the
// root directory, then append + fsync one manifest snapshot. The manifest
// append is the commit point: a crash anywhere earlier leaves only
// unreferenced temp/orphan files and the previous version; a crash after
// leaves the new version. Nothing in between is ever observable.
//
// open() recovers: it replays the MANIFEST (adopting the last intact
// snapshot, repairing a torn tail), removes orphan temp files and
// unreferenced generations, and serves the committed segments as one
// logical TraceStore (TraceStore::openComposite), composing with the
// existing quarantine path (allow_partial) for media corruption inside a
// committed shard.
// ---------------------------------------------------------------------------

/// Options of DurableTraceStore::open. (Shard-level options — partial
/// opens, payload verification — are TraceStoreOpenOptions, passed to
/// openStore().)
struct DurableOpenOptions {
  /// Repair on open: rewrite a torn manifest tail and delete orphan
  /// temp files / unreferenced generations. With repair off the store
  /// still opens read-only-safely (orphans are ignored, not removed).
  bool repair = true;
};

class DurableTraceStore {
 public:
  /// Import bookkeeping carried by a commit: the grown event totals and
  /// the full updated dense-id map to persist.
  struct ImportDelta {
    std::uint64_t events = 0;
    std::uint64_t event_hash = 0;
    std::vector<std::uint64_t> external_ids;
  };

  /// Appends the new segment's trials through the writer it is given.
  using SegmentFill = std::function<void(dynagraph::TraceStoreWriter&)>;

  /// Whether `dir` carries a durable-store manifest.
  static bool isDurableStore(const std::string& dir, Env* env = nullptr);

  /// Opens and recovers the store at `dir` (see class comment). Throws
  /// std::runtime_error when the directory or its MANIFEST is missing or
  /// when no intact manifest snapshot exists.
  static DurableTraceStore open(const std::string& dir,
                                const DurableOpenOptions& options = {},
                                Env* env = nullptr);

  /// Creates an empty durable store at `dir` (generation 0, no
  /// segments). Throws when `dir` already carries a manifest.
  static DurableTraceStore create(const std::string& dir, Env* env = nullptr);

  /// open() when a manifest exists, create() otherwise.
  static DurableTraceStore openOrCreate(const std::string& dir,
                                        const DurableOpenOptions& options = {},
                                        Env* env = nullptr);

  const std::string& directory() const noexcept { return dir_; }
  const ManifestVersion& version() const noexcept { return version_; }
  std::uint64_t trialCount() const noexcept { return version_.total_trials; }
  std::uint64_t nodeCount() const noexcept { return version_.node_count; }

  /// Committed segment directories, oldest first (absolute paths).
  std::vector<std::string> segmentDirs() const;

  /// Opens the committed segments as one logical TraceStore. Throws when
  /// the store has no segments yet.
  dynagraph::TraceStore openStore(
      const dynagraph::TraceStoreOpenOptions& options = {}) const;

  /// The persisted import dense-id map (dense id -> external id); empty
  /// when nothing was imported. Validated against its checksum.
  std::vector<std::uint64_t> loadIdMap() const;

  /// Recovery report: orphan paths open() removed, and whether it
  /// rewrote a torn manifest tail.
  const std::vector<std::string>& removedOrphans() const noexcept {
    return removed_orphans_;
  }
  bool repairedManifestTail() const noexcept { return repaired_tail_; }

  /// Commits one new immutable segment of `trials` trials (see class
  /// comment for the discipline). `node_count` must be >= the store's
  /// current node count (the universe may only grow). `import` carries
  /// the updated import bookkeeping when the segment ingests contact
  /// events. The writer handed to `fill` already has the right global
  /// base trial, env, and fsync-on-close; `fill` must append exactly
  /// `trials` trials.
  void commitSegment(std::size_t node_count, std::uint64_t trials,
                     std::uint32_t shard_count,
                     dynagraph::TraceWriterOptions writer_options,
                     const SegmentFill& fill,
                     const ImportDelta* import = nullptr);

  /// Offline compaction: rewrites the whole store — every committed
  /// segment, whatever its format — into one new segment written in the
  /// format `writer_options` selects (default: indexed v4), then commits
  /// it as a replacement generation and deletes the old segments. The
  /// source must open strictly (a store with quarantined shards cannot
  /// be compacted without deciding about the gap). shard_count 0 keeps
  /// the first segment's recorded shard count.
  void compact(dynagraph::TraceWriterOptions writer_options = {},
               std::uint32_t shard_count = 0);

 private:
  DurableTraceStore(std::string dir, Env* env) : dir_(std::move(dir)), env_(env) {}

  Env& env() const { return resolveEnv(env_); }
  std::string segmentName(std::uint64_t generation) const;
  std::string idMapName(std::uint64_t generation) const;
  std::string childPath(const std::string& name) const;
  void writeIdMap(const std::string& name,
                  const std::vector<std::uint64_t>& ids) const;
  /// Shared tail of commitSegment/compact: stage a segment + optional id
  /// map, rename into place, commit `next` to the manifest.
  void commitVersion(const std::string& tmp_seg, const std::string& seg_name,
                     ManifestVersion next);

  std::string dir_;
  Env* env_ = nullptr;  // null = the real filesystem
  ManifestVersion version_;
  std::vector<std::string> removed_orphans_;
  bool repaired_tail_ = false;
};

}  // namespace doda::storage
