#pragma once

#include <cstdint>
#include <string>

#include "dynagraph/trace_import.hpp"
#include "storage/durable_store.hpp"

namespace doda::storage {

/// Result of a durable (incremental) contact import.
struct DurableImportResult {
  bool created = false;  ///< the store did not exist before this call
  std::uint64_t appended_events = 0;
  std::uint64_t appended_trials = 0;
  /// Imported events in the store after the call (prefix + appended).
  std::uint64_t total_events = 0;
  dynagraph::ContactImportStats stats;
};

/// Imports the contact log at `input_path` into the durable store at
/// `store_dir`, incrementally: a store that already imported a prefix of
/// the log (verified by the manifest's running event hash) gains one new
/// segment holding only the new events, with dense ids of returning nodes
/// preserved by the persisted id map; a fresh directory becomes a new
/// durable store holding the whole log. A log identical to what the store
/// imported is a no-op (appended_events == 0). `options` must match the
/// original import's filtering; options.trials and `shard_count` shape
/// the appended segment only. Throws like planContactAppend when the log
/// is not an extension of the imported prefix.
DurableImportResult importContactTraceDurable(
    const std::string& input_path, const std::string& store_dir,
    std::uint32_t shard_count,
    const dynagraph::ContactImportOptions& options = {},
    const dynagraph::TraceWriterOptions& writer_options = {},
    Env* env = nullptr);

}  // namespace doda::storage
