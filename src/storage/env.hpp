#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace doda::storage {

// ---------------------------------------------------------------------------
// Pluggable filesystem abstraction — the seam between the trace store and
// the operating system. Every byte the store persists flows through an Env
// (TraceWriterOptions::env for shard writers, DurableTraceStore for
// manifest commits and recovery), so durability behavior is testable: the
// production PosixEnv issues real write/fsync/rename syscalls, while
// FaultyEnv wraps any base env with seed-pre-drawn failpoints — torn
// writes, dropped fsyncs, failed renames, ENOSPC, crash-at-op-k — the same
// committed-randomness technique src/fault/ uses for message loss.
//
// The write-side methods (newWritableFile, mkdirs, renameFile, removeFile,
// removeDirRecursive, syncDir, and every WritableFile method except
// close) are *failpoints*: FaultyEnv counts them as one operation each, in
// issue order, and injects its plan's faults by that operation index.
// Read-side methods (exists, fileSize, listDir, readFile) never fault.
// ---------------------------------------------------------------------------

/// Thrown by FaultyEnv for the crash-at-op-k failpoint and by every
/// operation issued after it: the simulated machine is gone. Distinct from
/// std::runtime_error so tests can tell a planned crash from a real I/O
/// failure.
class EnvCrash : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A file opened for writing. Methods throw std::runtime_error on I/O
/// failure; the destructor closes quietly (so stack unwinding after an
/// injected fault never terminates).
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  /// Appends `size` bytes at the current end of file.
  virtual void append(const void* data, std::size_t size) = 0;
  /// Overwrites `size` bytes at `offset` (the shard writer's header
  /// reseal); the append position is preserved.
  virtual void writeAt(std::uint64_t offset, const void* data,
                       std::size_t size) = 0;
  /// Flushes and fsyncs: on return the data written so far is durable.
  virtual void sync() = 0;
  /// Flushes and closes. Idempotent; not a failpoint (a close after a
  /// simulated crash must not throw during unwinding).
  virtual void close() = 0;
};

class Env {
 public:
  virtual ~Env() = default;

  /// Opens `path` for writing: truncated when `truncate`, positioned at
  /// the current end otherwise (the append-only manifest).
  virtual std::unique_ptr<WritableFile> newWritableFile(
      const std::string& path, bool truncate = true) = 0;
  virtual void mkdirs(const std::string& path) = 0;
  virtual void renameFile(const std::string& from, const std::string& to) = 0;
  virtual void removeFile(const std::string& path) = 0;
  virtual void removeDirRecursive(const std::string& path) = 0;
  /// fsyncs a directory so renames/creations inside it are durable (no-op
  /// on platforms without directory fsync).
  virtual void syncDir(const std::string& path) = 0;

  virtual bool exists(const std::string& path) const = 0;
  virtual bool isDirectory(const std::string& path) const = 0;
  virtual std::uint64_t fileSize(const std::string& path) const = 0;
  /// Entry names (not paths) of a directory, sorted ascending.
  virtual std::vector<std::string> listDir(const std::string& path) const = 0;
  /// Whole file contents. Throws std::runtime_error when unreadable.
  virtual std::string readFile(const std::string& path) const = 0;
};

/// The process-wide real filesystem (POSIX write/fsync/rename semantics;
/// directory fsync where the platform has it).
Env& defaultEnv();

/// Resolves the TraceWriterOptions convention: null means the real env.
inline Env& resolveEnv(Env* env) { return env != nullptr ? *env : defaultEnv(); }

// ------------------------------------------------------------- fault env

/// Pre-drawn fault plan of a FaultyEnv. All randomness is committed up
/// front (draw(), seeded) or fixed explicitly (the kill-point sweep sets
/// crash_at_op directly), so a run is bit-reproducible from the plan
/// alone and independent of everything but the operation sequence.
struct FaultyEnvPlan {
  static constexpr std::uint64_t kNever = ~std::uint64_t{0};

  /// Transient single-operation faults. An intent fires only when it is
  /// compatible with the operation it lands on (a rename-failure intent on
  /// an append is inert), so a drawn plan stays meaningful for any write
  /// schedule.
  enum class Fault : std::uint8_t {
    kEnospc,       ///< append/writeAt/create/mkdirs/remove: fails, no effect
    kTornWrite,    ///< append/writeAt: writes a drawn prefix, then fails
    kDroppedSync,  ///< sync/syncDir: reports success without syncing
    kRenameFail,   ///< renameFile: fails, no effect
  };

  /// Operation index that crashes: the op takes partial effect (a drawn
  /// prefix of a write; a coin-flip for a rename or create) and throws
  /// EnvCrash, as does every mutating operation after it.
  std::uint64_t crash_at_op = kNever;
  /// Seeds the drawn crash outcomes (torn-prefix lengths, which unsynced
  /// dir entries survive) and transient torn-write prefixes.
  std::uint64_t seed = 1;
  /// Transient faults by operation index (at most one per op).
  std::vector<std::pair<std::uint64_t, Fault>> faults;

  /// Draws a transient-fault plan: every operation index below `max_ops`
  /// independently faults with probability `p_fault`, with a uniformly
  /// drawn fault kind. crash_at_op stays kNever; set it separately for
  /// crash tests.
  static FaultyEnvPlan draw(std::uint64_t seed, std::uint64_t max_ops,
                            double p_fault);
};

/// A fault-injecting Env wrapping a base env (the real filesystem in
/// tests). Tracks, per file it has written, the bytes guaranteed durable
/// (content at the last honest sync) and, per directory, the entries
/// created or renamed since the directory's last sync. After the plan's
/// crash fires, loseUnsyncedData() applies a drawn crash outcome to the
/// real filesystem: each touched file keeps its durable content, its full
/// current content, or its durable content plus a torn prefix of the
/// unsynced tail; each unsynced dir entry survives or is rolled back.
/// Recovery code is then exercised against exactly the states a power
/// loss can leave behind.
class FaultyEnv : public Env {
 public:
  explicit FaultyEnv(FaultyEnvPlan plan, Env* base = nullptr);
  ~FaultyEnv() override;

  /// Mutating operations issued so far (the write schedule length when no
  /// fault fired — run once fault-free to size a kill-point sweep).
  std::uint64_t opCount() const noexcept { return op_count_; }
  bool crashed() const noexcept { return crashed_; }

  /// Applies the drawn data-loss outcome of the crash to the base
  /// filesystem (see class comment). Call after the crash fired and every
  /// writer is destroyed; idempotent. No-op if the crash never fired.
  void loseUnsyncedData();

  std::unique_ptr<WritableFile> newWritableFile(const std::string& path,
                                                bool truncate = true) override;
  void mkdirs(const std::string& path) override;
  void renameFile(const std::string& from, const std::string& to) override;
  void removeFile(const std::string& path) override;
  void removeDirRecursive(const std::string& path) override;
  void syncDir(const std::string& path) override;

  bool exists(const std::string& path) const override;
  bool isDirectory(const std::string& path) const override;
  std::uint64_t fileSize(const std::string& path) const override;
  std::vector<std::string> listDir(const std::string& path) const override;
  std::string readFile(const std::string& path) const override;

 private:
  friend class FaultyWritableFile;

  /// What a pending (unsynced) directory entry was: rollback needs to know
  /// whether to remove or rename back.
  struct PendingEntry {
    enum class Kind : std::uint8_t { kCreateFile, kCreateDir, kRename };
    Kind kind;
    std::string path;  ///< the entry's current path
    std::string from;  ///< kRename: where a rollback moves it back to
  };

  /// Checks the plan at the next operation index. Returns the transient
  /// fault to inject at this op (if any); throws EnvCrash for ops after
  /// the crash. `crash_now` is set when THIS op is the crash point.
  std::optional<FaultyEnvPlan::Fault> beginOp(bool& crash_now);
  [[noreturn]] void crash(const std::string& what);
  std::uint64_t drawU64(std::uint64_t salt) const;
  void markDurable(const std::string& path);
  void noteCreated(const std::string& path, PendingEntry::Kind kind);
  void rekeyTracked(const std::string& from, const std::string& to);

  FaultyEnvPlan plan_;
  Env& base_;
  std::uint64_t op_count_ = 0;
  bool crashed_ = false;
  bool lost_ = false;
  /// path -> content guaranteed durable (snapshot at last honest sync;
  /// absent = nothing of the file is durable).
  std::unordered_map<std::string, std::string> durable_;
  /// Directory entries created or renamed since their parent's last
  /// honest syncDir, oldest first (rollback walks it in reverse).
  std::vector<PendingEntry> pending_;
};

}  // namespace doda::storage
