#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graph/static_graph.hpp"

namespace doda::core {

using graph::NodeId;

/// Set of origin node ids carried by a Datum, engineered for the engine's
/// hot path: every transfer unions the sender's set into the receiver's and
/// must prove the two sets disjoint.
///
/// Two representations, switched automatically:
///  * small: up to kInlineCapacity ids stored inline (no heap at all) —
///    covers every datum early in a run and whole systems with n <= 8;
///  * spilled: a word bitset (one bit per node id), giving O(words/64)
///    disjointness check + merge for large sets.
/// The bitset buffer is never released by reset(): a Datum living inside an
/// Engine::Scratch keeps its words across trials, so after the first trial
/// at a given size the engine performs no per-transfer allocation at all
/// (the Scratch's datum vector is the pool the word buffers live in).
class SourceSet {
 public:
  /// Ids held without heap storage. 8 keeps SourceSet at two cache lines
  /// and makes every n <= 8 system allocation-free end to end.
  static constexpr std::size_t kInlineCapacity = 8;

  SourceSet() = default;
  explicit SourceSet(NodeId origin) {
    inline_[0] = origin;
    size_ = 1;
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// True while the set is in the inline (small) representation. Exposed so
  /// tests can pin the crossover behaviour.
  bool isInline() const noexcept { return !spilled_; }

  bool contains(NodeId id) const noexcept;

  /// True iff the two sets share at least one id. This is the check a
  /// mergeDisjoint performs before mutating, exposed so callers that must
  /// *reject* an overlapping merge (the engine rolling back a Byzantine
  /// replay) can test first instead of catching the exception.
  bool intersects(const SourceSet& other) const noexcept;

  /// Makes this the singleton {origin}, keeping any spilled word buffer's
  /// capacity for later reuse (the engine resets every datum per trial).
  void reset(NodeId origin) noexcept {
    spilled_ = false;
    bits_.clear();
    size_ = 1;
    inline_[0] = origin;
  }

  /// Adds one id. Throws std::invalid_argument if already present.
  void insert(NodeId id);

  /// Disjoint union: folds `other` into *this. Throws std::invalid_argument
  /// if the sets overlap, leaving *this unchanged (the check runs before
  /// any mutation).
  void mergeDisjoint(const SourceSet& other);

  /// The ids in ascending order (test/reporting helper, allocates).
  std::vector<NodeId> toSortedVector() const;

  /// Set equality, independent of representation.
  friend bool operator==(const SourceSet& lhs, const SourceSet& rhs);

 private:
  static constexpr std::size_t wordsFor(NodeId id) noexcept {
    return static_cast<std::size_t>(id) / 64 + 1;
  }
  NodeId maxInlineId() const noexcept;
  /// Converts inline -> bitset with at least `words` words (zeroed).
  void spill(std::size_t words);
  void setBit(NodeId id) noexcept {
    bits_[id >> 6] |= std::uint64_t{1} << (id & 63);
  }
  bool testBit(NodeId id) const noexcept {
    const std::size_t w = id >> 6;
    return w < bits_.size() && ((bits_[w] >> (id & 63)) & 1u);
  }

  std::uint32_t size_ = 0;
  bool spilled_ = false;
  std::array<NodeId, kInlineCapacity> inline_{};
  // Invariant: empty() sized while inline (so copies of small sets never
  // touch the heap), >= wordsFor(max id) words while spilled. clear() keeps
  // capacity, which is what makes trial-over-trial reuse allocation-free.
  std::vector<std::uint64_t> bits_;
};

/// The datum a node owns: a numeric payload plus the set of origin nodes
/// whose initial data have been folded into it.
///
/// The source set is part of the *data* (not node control memory): it lets
/// tests verify the fundamental aggregation invariant (the sink ends up
/// with every origin exactly once) and lets the spanning-tree algorithm of
/// paper Thm 4/5 stay oblivious — "have I heard from all my children?" is
/// answered by the datum itself.
struct Datum {
  double value = 0.0;
  SourceSet sources;

  /// A fresh datum originating at `origin`.
  static Datum origin(NodeId node, double value);

  bool containsSource(NodeId node) const { return sources.contains(node); }
};

/// An associative, commutative fold of two data into one (paper §1: "an
/// aggregation function takes two data as input and gives one data as
/// output", size-preserving — min, max, sum, ...).
class AggregationFunction {
 public:
  using Combine = std::function<double(double, double)>;

  /// Builds a custom aggregation. `combine` must be associative and
  /// commutative for results to be schedule-independent.
  AggregationFunction(std::string name, Combine combine);

  static AggregationFunction sum();
  static AggregationFunction min();
  static AggregationFunction max();
  /// Count of aggregated origins; meaningful when every node starts at 1.
  static AggregationFunction count();

  const std::string& name() const noexcept { return name_; }

  /// Folds `incoming` into `target`: combines values and unions source
  /// sets. Throws std::invalid_argument if the source sets overlap (a datum
  /// would be double-counted — impossible in a valid execution).
  void aggregateInto(Datum& target, const Datum& incoming) const;

 private:
  std::string name_;
  Combine combine_;
};

}  // namespace doda::core
