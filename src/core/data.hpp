#pragma once

#include <functional>
#include <string>
#include <vector>

#include "graph/static_graph.hpp"

namespace doda::core {

using graph::NodeId;

/// The datum a node owns: a numeric payload plus the set of origin nodes
/// whose initial data have been folded into it.
///
/// The source set is part of the *data* (not node control memory): it lets
/// tests verify the fundamental aggregation invariant (the sink ends up
/// with every origin exactly once) and lets the spanning-tree algorithm of
/// paper Thm 4/5 stay oblivious — "have I heard from all my children?" is
/// answered by the datum itself.
struct Datum {
  double value = 0.0;
  std::vector<NodeId> sources;  // sorted, unique

  /// A fresh datum originating at `origin`.
  static Datum origin(NodeId node, double value);

  bool containsSource(NodeId node) const;
};

/// An associative, commutative fold of two data into one (paper §1: "an
/// aggregation function takes two data as input and gives one data as
/// output", size-preserving — min, max, sum, ...).
class AggregationFunction {
 public:
  using Combine = std::function<double(double, double)>;

  /// Builds a custom aggregation. `combine` must be associative and
  /// commutative for results to be schedule-independent.
  AggregationFunction(std::string name, Combine combine);

  static AggregationFunction sum();
  static AggregationFunction min();
  static AggregationFunction max();
  /// Count of aggregated origins; meaningful when every node starts at 1.
  static AggregationFunction count();

  const std::string& name() const noexcept { return name_; }

  /// Folds `incoming` into `target`: combines values and unions source
  /// sets. Throws std::invalid_argument if the source sets overlap (a datum
  /// would be double-counted — impossible in a valid execution).
  void aggregateInto(Datum& target, const Datum& incoming) const;

 private:
  std::string name_;
  Combine combine_;
};

}  // namespace doda::core
