// Intra-trial block-parallel engine (Engine::runBlocked).
//
// Shards ONE execution over a fixed interaction sequence. Soundness rests
// on the model's monotonicity: a node transmits at most once, so ownership
// only ever decreases. Each block of the sequence goes through three
// stages:
//
//  * Stage A — candidate scan. Worker chunks scan the block against the
//    ownership flags frozen at block start. An interaction is a candidate
//    iff both endpoints owned data at block start; monotonicity guarantees
//    every real transfer of the block is among the candidates (the scan
//    may keep candidates that go stale mid-block, never the reverse).
//    Candidate density collapses as owners drain — for Gathering on the
//    randomized adversary the whole run has ~n live candidates against an
//    O(n^2) sequence — so the scan is the parallel bulk and resolution is
//    the cheap remainder.
//
//  * Stage B1 — optimistic partition-local execution. Nodes are split
//    into contiguous id ranges; each partition walks the (time-ordered)
//    candidate list and applies the candidates internal to it, with a
//    hazard rule: a cross-partition candidate marks its local endpoint
//    hazardous, a deferred internal candidate marks both endpoints, and an
//    internal candidate executes only while neither endpoint is hazardous.
//    Hazards are sticky within the block, so a partition executes a
//    node's transfers only up to the first interaction that couples the
//    node to another partition — everything after is deferred. Partitions
//    therefore write disjoint per-node state (ownership bytes, data,
//    hazard bytes) and per-candidate slots owned by exactly one partition.
//
//  * Stage B2 — serial handoff. The deferred candidates are resolved in
//    time order against the now-merged state. The hazard rule guarantees
//    that for every node, all B1-applied transfers precede all
//    B2-applied transfers in time, so each node's (and in particular each
//    receiver's floating-point aggregation) order equals global time
//    order — the blocked engine is bit-identical to the serial loop, not
//    merely equivalent up to reassociation.
//
// Model violations (out-of-range ids, non-endpoint receivers, sink
// transmissions) are detected optimistically and min-merged by time; the
// run throws exactly when the serial loop would (i.e. unless the
// convergecast completes strictly before the earliest violation).

#include <algorithm>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "core/engine_scratch.hpp"
#include "dynagraph/lazy_sequence.hpp"

namespace doda::core {
namespace {

constexpr Time kNoViolation = dynagraph::kNever;

/// The ExecutionView handed to endpoint-local decide() calls. Only
/// system() and now() are live; the state accessors throw, enforcing the
/// isEndpointLocal() contract (an algorithm reading execution state here
/// would observe speculative mid-block state and lose determinism).
class DecisionView final : public ExecutionView {
 public:
  explicit DecisionView(const SystemInfo& info) : info_(info) {}

  const SystemInfo& system() const override { return info_; }
  Time now() const override { return now_; }
  void setNow(Time t) { now_ = t; }

  bool ownsData(NodeId) const override { throw contractBreach(); }
  const Datum& datumOf(NodeId) const override { throw contractBreach(); }
  std::size_t ownerCount() const override { throw contractBreach(); }
  const std::vector<TransmissionRecord>& schedule() const override {
    throw contractBreach();
  }

 private:
  static ModelViolation contractBreach() {
    return ModelViolation(
        "endpoint-local algorithm read execution state during runBlocked");
  }

  const SystemInfo& info_;
  Time now_ = 0;
};

/// One trial of the blocked engine. Construction validates options and
/// resets the state; run() drives the block loop over a fixed view or a
/// lazily generated sequence.
class BlockedRun {
 public:
  BlockedRun(const SystemInfo& info, const AggregationFunction& aggregation,
             DodaAlgorithm& algorithm, Engine::Scratch::Impl& scratch,
             const RunOptions& options, const IntraTrialOptions& intra)
      : info_(info),
        aggregation_(aggregation),
        algorithm_(algorithm),
        scratch_(scratch),
        bs_(scratch.block),
        options_(options),
        n_(info.node_count) {
    if (options.faults)
      throw std::invalid_argument(
          "Engine::runBlocked: fault injection requires the serial loop");
    if (!algorithm.isEndpointLocal())
      throw std::invalid_argument(
          "Engine::runBlocked: algorithm is not endpoint-local");
    if (intra.block_size == 0)
      throw std::invalid_argument(
          "Engine::runBlocked: block_size must be positive");
    if (!options.initial_values.empty() &&
        options.initial_values.size() != n_)
      throw std::invalid_argument(
          "Engine::run: initial_values size mismatch");

    workers_ = intra.workers != 0
                   ? intra.workers
                   : std::max<std::size_t>(
                         1, std::thread::hardware_concurrency());
    partitions_ = intra.partitions != 0 ? intra.partitions : workers_;
    // Candidate offsets are stored as 32-bit block offsets; clamping the
    // block size is invisible in the results (any blocking is).
    block_ = std::min<Time>(intra.block_size, Time{1} << 31);
    chunk_count_ = workers_;

    scratch_.data.resize(n_);
    for (NodeId u = 0; u < n_; ++u) {
      Datum& d = scratch_.data[u];
      d.value = options.initial_values.empty() ? 1.0
                                               : options.initial_values[u];
      d.sources.reset(u);
    }
    bs_.owner.assign(n_, 1);
    owner_count_ = n_;
    scratch_.schedule.clear();
    bs_.chunk_candidates.resize(chunk_count_);
    bs_.chunk_bad_time.resize(chunk_count_);
    bs_.partition_transfers.resize(partitions_);
    partition_stop_time_.assign(partitions_, kNoViolation);
    partition_stop_message_.assign(partitions_, nullptr);

    if (workers_ > 1) {
      if (!bs_.pool || bs_.pool->threadCount() != workers_)
        bs_.pool = std::make_unique<BlockWorkerPool>(workers_);
      pool_ = bs_.pool.get();
    }

    algorithm_.reset(info_);
  }

  ExecutionResult run(dynagraph::InteractionSequenceView view) {
    const Time limit = std::min<Time>(view.length(),
                                      options_.max_interactions);
    Time t0 = 0;
    while (t0 < limit && !terminated_) {
      const auto count =
          static_cast<std::size_t>(std::min<Time>(block_, limit - t0));
      launchScan(view.begin() + t0, count, t0);
      if (pool_) pool_->wait();
      resolveBlock(view.begin() + t0, count, t0);
      t0 += count;
    }
    return finish(limit);
  }

  ExecutionResult run(dynagraph::LazySequence& lazy) {
    const Time hard_limit =
        std::min<Time>(lazy.maxLength(), options_.max_interactions);
    // Blocks are copied out of the committed prefix before scanning: the
    // next block's generation (overlapped with this block's scan) may
    // reallocate the backing buffer.
    const auto realize = [&](Time begin, std::vector<Interaction>& out) {
      out.clear();
      const Time end = std::min<Time>(begin + block_, hard_limit);
      if (begin >= end) return;
      lazy.ensure(end - 1);
      const auto& all = lazy.committed().interactions();
      out.assign(all.begin() + static_cast<std::ptrdiff_t>(begin),
                 all.begin() + static_cast<std::ptrdiff_t>(end));
    };

    auto& front = bs_.block_front;
    auto& back = bs_.block_back;
    realize(0, front);
    Time t0 = 0;
    while (!front.empty()) {
      const std::size_t count = front.size();
      launchScan(front.data(), count, t0);
      if (pool_) {
        // Generate block k+1 on this thread while the pool scans block k.
        try {
          realize(t0 + count, back);
        } catch (...) {
          pool_->wait();
          throw;
        }
        pool_->wait();
      }
      resolveBlock(front.data(), count, t0);
      if (terminated_) break;
      if (!pool_) realize(t0 + count, back);
      t0 += count;
      std::swap(front, back);
    }
    if (!terminated_ && t0 >= hard_limit &&
        hard_limit < options_.max_interactions) {
      // The serial loop's next draw would trip the generator's max_length
      // guard; reproduce its std::length_error exactly.
      lazy.ensure(lazy.maxLength());
    }
    return finish(hard_limit);
  }

 private:
  std::size_t partitionOf(NodeId u) const noexcept {
    return static_cast<std::size_t>(u) * partitions_ / n_;
  }

  /// Stage A over [t0, t0 + count): fills per-chunk candidate lists and
  /// per-chunk first-bad-id times. Parallel when a pool exists, inline as
  /// one chunk otherwise (bit-identical either way: candidate lists are
  /// concatenated in chunk order, which is time order).
  void launchScan(const Interaction* base, std::size_t count, Time t0) {
    chunks_used_ = pool_ ? chunk_count_ : 1;
    if (pool_) {
      pool_->launch(chunks_used_, [this, base, count, t0](std::size_t c) {
        scanChunk(c, base, count, t0);
      });
    } else {
      scanChunk(0, base, count, t0);
    }
  }

  void scanChunk(std::size_t c, const Interaction* base, std::size_t count,
                 Time t0) {
    auto& out = bs_.chunk_candidates[c];
    out.clear();
    const std::size_t begin = count * c / chunks_used_;
    const std::size_t end = count * (c + 1) / chunks_used_;
    const char* owner = bs_.owner.data();
    Time bad = kNoViolation;
    for (std::size_t i = begin; i < end; ++i) {
      const NodeId a = base[i].a();
      const NodeId b = base[i].b();
      if (a >= n_ || b >= n_) {
        // Everything past the first bad id in this chunk is moot: the run
        // either throws at (or before) this time or terminated earlier.
        bad = t0 + i;
        break;
      }
      if (owner[a] && owner[b]) out.push_back(static_cast<std::uint32_t>(i));
    }
    bs_.chunk_bad_time[c] = bad;
  }

  /// Stage B1 for partition p: applies internal candidates under the
  /// hazard rule. Writes only partition-local bytes (ownership, data and
  /// hazard flags of p's nodes; status slots of p-internal candidates).
  void partitionStep(std::size_t p, const Interaction* base, Time t0,
                     Time scan_stop) {
    auto& applied = bs_.partition_transfers[p];
    applied.clear();
    DecisionView view(info_);
    char* owner = bs_.owner.data();
    char* hazard = bs_.hazard.data();
    char* status = bs_.status.data();
    const auto& candidates = bs_.candidates;
    Time stop_time = kNoViolation;
    const char* stop_message = nullptr;
    for (std::size_t k = 0; k < candidates.size(); ++k) {
      const std::uint32_t offset = candidates[k];
      const Time t = t0 + offset;
      if (t >= scan_stop) break;
      const Interaction& i = base[offset];
      const NodeId a = i.a();
      const NodeId b = i.b();
      const std::size_t pa = partitionOf(a);
      const std::size_t pb = partitionOf(b);
      if (pa != p && pb != p) continue;
      if (pa != p || pb != p) {
        // Cross-partition: the local endpoint is coupled to another
        // partition from here on; its remaining transfers go to the
        // handoff (the other partition marks the other endpoint).
        hazard[pa == p ? a : b] = 1;
        continue;
      }
      // Ownership of p's own nodes is exact here: a hazardous node is
      // never written by B1, so false means "transmitted before t" in
      // both engines and is final (monotonicity).
      if (!owner[a] || !owner[b]) {
        status[k] = 1;  // stale candidate; the serial loop skips it too
        continue;
      }
      if (hazard[a] || hazard[b]) {
        hazard[a] = 1;
        hazard[b] = 1;
        continue;  // deferred to the handoff, endpoints now coupled
      }
      view.setNow(t);
      const auto receiver = algorithm_.decide(i, t, view);
      if (!receiver) {
        status[k] = 1;
        continue;
      }
      if (!i.involves(*receiver)) {
        stop_time = t;
        stop_message = "receiver is not an interaction endpoint";
        break;
      }
      const NodeId sender = i.other(*receiver);
      if (sender == info_.sink) {
        stop_time = t;
        stop_message = "the sink must never transmit";
        break;
      }
      aggregation_.aggregateInto(scratch_.data[*receiver],
                                 scratch_.data[sender]);
      owner[sender] = 0;
      applied.push_back({t, sender, *receiver});
      status[k] = 1;
    }
    partition_stop_time_[p] = stop_time;
    partition_stop_message_[p] = stop_message;
  }

  void resolveBlock(const Interaction* base, std::size_t count, Time t0) {
    (void)count;
    // Fold the scan: flatten candidates, min-merge bad-id times.
    Time stop_time = kNoViolation;
    const char* stop_message = nullptr;
    const auto noteStop = [&](Time t, const char* message) {
      if (t < stop_time) {
        stop_time = t;
        stop_message = message;
      }
    };
    auto& candidates = bs_.candidates;
    candidates.clear();
    for (std::size_t c = 0; c < chunks_used_; ++c) {
      if (bs_.chunk_bad_time[c] != kNoViolation)
        noteStop(bs_.chunk_bad_time[c], "node id out of range");
      const auto& chunk = bs_.chunk_candidates[c];
      candidates.insert(candidates.end(), chunk.begin(), chunk.end());
    }

    const std::size_t nc = candidates.size();
    bs_.status.assign(nc, 0);
    if (partitions_ > 1 && nc != 0) {
      bs_.hazard.assign(n_, 0);
      const Time scan_stop = stop_time;
      if (pool_) {
        pool_->launch(partitions_, [this, base, t0, scan_stop](std::size_t p) {
          partitionStep(p, base, t0, scan_stop);
        });
        pool_->wait();
      } else {
        for (std::size_t p = 0; p < partitions_; ++p)
          partitionStep(p, base, t0, scan_stop);
      }
      for (std::size_t p = 0; p < partitions_; ++p) {
        owner_count_ -= bs_.partition_transfers[p].size();
        if (partition_stop_time_[p] != kNoViolation)
          noteStop(partition_stop_time_[p], partition_stop_message_[p]);
      }
    } else {
      for (auto& applied : bs_.partition_transfers) applied.clear();
    }

    // Stage B2: serial time-ordered handoff of everything still pending.
    // Pending endpoints' state is exact (all their block transfers so far
    // are earlier in time — the hazard rule), so this is the serial loop
    // verbatim, restricted to the deferred candidates.
    auto& handoff = bs_.handoff_transfers;
    handoff.clear();
    DecisionView view(info_);
    char* owner = bs_.owner.data();
    for (std::size_t k = 0; k < nc; ++k) {
      if (bs_.status[k]) continue;
      const std::uint32_t offset = candidates[k];
      const Time t = t0 + offset;
      if (t >= stop_time) break;
      if (owner_count_ == 1) break;  // nothing left that could transfer
      const Interaction& i = base[offset];
      const NodeId a = i.a();
      const NodeId b = i.b();
      if (!owner[a] || !owner[b]) continue;
      view.setNow(t);
      const auto receiver = algorithm_.decide(i, t, view);
      if (!receiver) continue;
      if (!i.involves(*receiver)) {
        noteStop(t, "receiver is not an interaction endpoint");
        break;
      }
      const NodeId sender = i.other(*receiver);
      if (sender == info_.sink) {
        noteStop(t, "the sink must never transmit");
        break;
      }
      aggregation_.aggregateInto(scratch_.data[*receiver],
                                 scratch_.data[sender]);
      owner[sender] = 0;
      --owner_count_;
      handoff.push_back({t, sender, *receiver});
    }

    // Block-boundary merge: per-partition lists and the handoff are each
    // time-ordered and pairwise disjoint in time; one sort restores the
    // global schedule order.
    auto& merged = bs_.merged;
    merged.clear();
    for (const auto& applied : bs_.partition_transfers)
      merged.insert(merged.end(), applied.begin(), applied.end());
    merged.insert(merged.end(), handoff.begin(), handoff.end());
    std::sort(merged.begin(), merged.end(),
              [](const TransmissionRecord& x, const TransmissionRecord& y) {
                return x.time < y.time;
              });
    scratch_.schedule.insert(scratch_.schedule.end(), merged.begin(),
                             merged.end());

    // Verdict. A pending violation is thrown exactly when the serial loop
    // would reach it: unless the convergecast completed strictly before
    // it. Optimistic transfers at or past the violation time disqualify
    // the completion (the serial loop would have thrown first) — and can
    // only exist when real completion did not happen before it.
    bool terminated = owner_count_ == 1;
    if (terminated && stop_time != kNoViolation && !merged.empty() &&
        merged.back().time >= stop_time)
      terminated = false;
    if (!terminated && stop_time != kNoViolation)
      throw ModelViolation(stop_message);
    terminated_ = terminated;
  }

  ExecutionResult finish(Time dispatched_limit) {
    ExecutionResult result;
    result.terminated = terminated_;
    if (terminated_) {
      const Time last = scratch_.schedule.back().time;
      result.last_transmission_time = last;
      result.interactions_to_terminate = last + 1;
      result.interactions_dispatched = last + 1;
    } else {
      result.interactions_dispatched = dispatched_limit;
      if (!scratch_.schedule.empty())
        result.last_transmission_time = scratch_.schedule.back().time;
    }
    if (options_.capture_schedule) result.schedule = scratch_.schedule;
    result.sink_datum = scratch_.data[info_.sink];
    return result;
  }

  const SystemInfo& info_;
  const AggregationFunction& aggregation_;
  DodaAlgorithm& algorithm_;
  Engine::Scratch::Impl& scratch_;
  BlockScratch& bs_;
  const RunOptions& options_;
  std::size_t n_;
  std::size_t workers_ = 1;
  std::size_t partitions_ = 1;
  Time block_ = 0;
  std::size_t chunk_count_ = 1;
  std::size_t chunks_used_ = 1;
  BlockWorkerPool* pool_ = nullptr;
  std::size_t owner_count_ = 0;
  bool terminated_ = false;
  std::vector<Time> partition_stop_time_;
  std::vector<const char*> partition_stop_message_;
};

}  // namespace

ExecutionResult Engine::runBlocked(Scratch& scratch, DodaAlgorithm& algorithm,
                                   dynagraph::InteractionSequenceView sequence,
                                   const RunOptions& options,
                                   const IntraTrialOptions& intra) {
  BlockedRun run(info_, aggregation_, algorithm, *scratch.impl_, options,
                 intra);
  return run.run(sequence);
}

ExecutionResult Engine::runBlocked(Scratch& scratch, DodaAlgorithm& algorithm,
                                   dynagraph::LazySequence& sequence,
                                   const RunOptions& options,
                                   const IntraTrialOptions& intra) {
  BlockedRun run(info_, aggregation_, algorithm, *scratch.impl_, options,
                 intra);
  return run.run(sequence);
}

}  // namespace doda::core
