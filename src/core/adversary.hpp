#pragma once

#include <optional>
#include <string>

#include "core/execution_view.hpp"

namespace doda::core {

/// Interface of the adversary that controls the dynamic graph (paper §2.2):
/// the adversary decides which pairwise interaction occurs at each time.
///
/// The engine pulls interaction t from the adversary *after* the effects of
/// interaction t-1 are visible in the ExecutionView, which is exactly the
/// power of the online adaptive adversary. Oblivious and randomized
/// adversaries simply ignore the view.
class Adversary {
 public:
  virtual ~Adversary() = default;

  virtual std::string name() const = 0;

  /// Called once before each execution.
  virtual void reset(const SystemInfo& /*info*/) {}

  /// The interaction at time t, or std::nullopt if the adversary has no
  /// further interactions to offer (finite sequences only; the engine then
  /// stops without termination).
  virtual std::optional<Interaction> next(Time t,
                                          const ExecutionView& view) = 0;
};

}  // namespace doda::core
