#include "core/data.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace doda::core {

bool SourceSet::contains(NodeId id) const noexcept {
  if (spilled_) return testBit(id);
  for (std::uint32_t i = 0; i < size_; ++i)
    if (inline_[i] == id) return true;
  return false;
}

NodeId SourceSet::maxInlineId() const noexcept {
  NodeId max_id = 0;
  for (std::uint32_t i = 0; i < size_; ++i)
    max_id = std::max(max_id, inline_[i]);
  return max_id;
}

void SourceSet::spill(std::size_t words) {
  bits_.assign(words, 0);  // reuses retained capacity when large enough
  for (std::uint32_t i = 0; i < size_; ++i) setBit(inline_[i]);
  spilled_ = true;
}

void SourceSet::insert(NodeId id) {
  if (contains(id))
    throw std::invalid_argument("SourceSet::insert: id already present");
  if (!spilled_) {
    if (size_ < kInlineCapacity) {
      inline_[size_++] = id;
      return;
    }
    spill(std::max(wordsFor(maxInlineId()), wordsFor(id)));
  } else if (bits_.size() < wordsFor(id)) {
    bits_.resize(wordsFor(id), 0);
  }
  setBit(id);
  ++size_;
}

bool SourceSet::intersects(const SourceSet& other) const noexcept {
  if (empty() || other.empty()) return false;
  if (this == &other) return true;
  if (!other.spilled_) {
    for (std::uint32_t i = 0; i < other.size_; ++i)
      if (contains(other.inline_[i])) return true;
    return false;
  }
  if (!spilled_) {
    for (std::uint32_t i = 0; i < size_; ++i)
      if (other.testBit(inline_[i])) return true;
    return false;
  }
  const std::size_t shared = std::min(bits_.size(), other.bits_.size());
  for (std::size_t w = 0; w < shared; ++w)
    if (bits_[w] & other.bits_[w]) return true;
  return false;
}

void SourceSet::mergeDisjoint(const SourceSet& other) {
  // Disjointness is checked fully before any mutation so a violation (a
  // model bug in the caller, or a faulty transfer the engine rolls back)
  // leaves the target intact — representation included.
  if (intersects(other))
    throw std::invalid_argument("SourceSet::mergeDisjoint: sets overlap");
  if (!spilled_ && !other.spilled_ &&
      size_ + other.size_ <= kInlineCapacity) {
    for (std::uint32_t i = 0; i < other.size_; ++i)
      inline_[size_++] = other.inline_[i];
    return;
  }

  if (other.spilled_) {
    if (!spilled_)
      spill(std::max(size_ ? wordsFor(maxInlineId()) : 1,
                     other.bits_.size()));
    else if (bits_.size() < other.bits_.size())
      bits_.resize(other.bits_.size(), 0);
    for (std::size_t w = 0; w < other.bits_.size(); ++w)
      bits_[w] |= other.bits_[w];
    size_ += other.size_;
    return;
  }

  // `other` is inline; *this must spill (or already is spilled).
  const std::size_t other_words =
      other.size_ ? wordsFor(other.maxInlineId()) : 1;
  if (!spilled_)
    spill(std::max(size_ ? wordsFor(maxInlineId()) : 1, other_words));
  else if (bits_.size() < other_words)
    bits_.resize(other_words, 0);
  for (std::uint32_t i = 0; i < other.size_; ++i) setBit(other.inline_[i]);
  size_ += other.size_;
}

std::vector<NodeId> SourceSet::toSortedVector() const {
  std::vector<NodeId> out;
  out.reserve(size_);
  if (!spilled_) {
    out.assign(inline_.begin(), inline_.begin() + size_);
    std::sort(out.begin(), out.end());
    return out;
  }
  for (std::size_t w = 0; w < bits_.size(); ++w) {
    std::uint64_t word = bits_[w];
    while (word) {
      const int bit = std::countr_zero(word);
      out.push_back(static_cast<NodeId>(w * 64 + bit));
      word &= word - 1;
    }
  }
  return out;
}

bool operator==(const SourceSet& lhs, const SourceSet& rhs) {
  if (lhs.size_ != rhs.size_) return false;
  if (!lhs.spilled_) {
    for (std::uint32_t i = 0; i < lhs.size_; ++i)
      if (!rhs.contains(lhs.inline_[i])) return false;
    return true;
  }
  return lhs.toSortedVector() == rhs.toSortedVector();
}

Datum Datum::origin(NodeId node, double value) {
  return Datum{value, SourceSet(node)};
}

AggregationFunction::AggregationFunction(std::string name, Combine combine)
    : name_(std::move(name)), combine_(std::move(combine)) {
  if (!combine_)
    throw std::invalid_argument("AggregationFunction: null combine");
}

AggregationFunction AggregationFunction::sum() {
  return AggregationFunction("sum", [](double a, double b) { return a + b; });
}

AggregationFunction AggregationFunction::min() {
  return AggregationFunction(
      "min", [](double a, double b) { return std::min(a, b); });
}

AggregationFunction AggregationFunction::max() {
  return AggregationFunction(
      "max", [](double a, double b) { return std::max(a, b); });
}

AggregationFunction AggregationFunction::count() {
  return AggregationFunction("count",
                             [](double a, double b) { return a + b; });
}

void AggregationFunction::aggregateInto(Datum& target,
                                        const Datum& incoming) const {
  target.sources.mergeDisjoint(incoming.sources);
  target.value = combine_(target.value, incoming.value);
}

}  // namespace doda::core
