#include "core/data.hpp"

#include <algorithm>
#include <stdexcept>

namespace doda::core {

Datum Datum::origin(NodeId node, double value) {
  return Datum{value, {node}};
}

bool Datum::containsSource(NodeId node) const {
  return std::binary_search(sources.begin(), sources.end(), node);
}

AggregationFunction::AggregationFunction(std::string name, Combine combine)
    : name_(std::move(name)), combine_(std::move(combine)) {
  if (!combine_)
    throw std::invalid_argument("AggregationFunction: null combine");
}

AggregationFunction AggregationFunction::sum() {
  return AggregationFunction("sum", [](double a, double b) { return a + b; });
}

AggregationFunction AggregationFunction::min() {
  return AggregationFunction(
      "min", [](double a, double b) { return std::min(a, b); });
}

AggregationFunction AggregationFunction::max() {
  return AggregationFunction(
      "max", [](double a, double b) { return std::max(a, b); });
}

AggregationFunction AggregationFunction::count() {
  return AggregationFunction("count",
                             [](double a, double b) { return a + b; });
}

void AggregationFunction::aggregateInto(Datum& target,
                                        const Datum& incoming) const {
  std::vector<NodeId> merged;
  merged.reserve(target.sources.size() + incoming.sources.size());
  std::merge(target.sources.begin(), target.sources.end(),
             incoming.sources.begin(), incoming.sources.end(),
             std::back_inserter(merged));
  if (std::adjacent_find(merged.begin(), merged.end()) != merged.end())
    throw std::invalid_argument(
        "AggregationFunction: overlapping source sets");
  target.value = combine_(target.value, incoming.value);
  target.sources = std::move(merged);
}

}  // namespace doda::core
