#pragma once

#include <memory>
#include <stdexcept>
#include <vector>

#include "core/adversary.hpp"
#include "core/algorithm.hpp"
#include "core/data.hpp"
#include "core/execution_view.hpp"
#include "dynagraph/interaction_sequence.hpp"

namespace doda::core {

/// Thrown when an algorithm (or adversary) violates the model: making the
/// sink transmit, naming a non-endpoint as receiver, or interacting with an
/// out-of-range node. These are programming errors in the algorithm under
/// test, never recoverable conditions.
class ModelViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Outcome of one execution.
struct ExecutionResult {
  /// True iff the sink ended as the only data owner.
  bool terminated = false;
  /// Time index of the last transmission; kNever if no transmission.
  Time last_transmission_time = dynagraph::kNever;
  /// "Terminates in X interactions": number of interactions up to and
  /// including the terminating one (only meaningful when terminated).
  Time interactions_to_terminate = dynagraph::kNever;
  /// Interactions dispatched in total (== the above when terminated).
  Time interactions_dispatched = 0;
  /// Every applied transfer, in time order (size == n-1 iff terminated).
  /// Left empty when RunOptions::capture_schedule is false.
  std::vector<TransmissionRecord> schedule;
  /// The sink's datum at the end of the run.
  Datum sink_datum;
};

/// Options for one execution.
struct RunOptions {
  /// Hard cap on dispatched interactions (guards non-terminating runs).
  Time max_interactions = Time{1} << 32;
  /// Initial per-node values; empty means every node starts at 1.0.
  std::vector<double> initial_values;
  /// Whether to copy the transmission schedule into the result. The
  /// schedule is always recorded during the run (algorithms and adversaries
  /// may consult ExecutionView::schedule()); measurement loops that only
  /// need the scalar outcome skip the copy.
  bool capture_schedule = true;
};

/// Executes a DODA algorithm against an adversary and enforces the model
/// (paper §2): each node transmits at most once, a transfer requires both
/// endpoints to own data, the sink never transmits, transfers take one time
/// unit (one interaction).
class Engine {
 public:
  /// Reusable per-execution storage (node data, ownership flags, schedule).
  /// A Scratch handed to consecutive runInto() calls lets the engine reuse
  /// vector capacity instead of reallocating every trial; each worker
  /// thread of a parallel measurement owns one. A Scratch must not be used
  /// by two runs concurrently.
  class Scratch {
   public:
    struct Impl;  // defined in engine.cpp

    Scratch();
    ~Scratch();
    Scratch(Scratch&&) noexcept;
    Scratch& operator=(Scratch&&) noexcept;

   private:
    friend class Engine;
    std::unique_ptr<Impl> impl_;
  };

  Engine(SystemInfo info, AggregationFunction aggregation);

  const SystemInfo& system() const noexcept { return info_; }

  /// Runs `algorithm` against `adversary` until the sink is the only data
  /// owner, the adversary is exhausted, or `options.max_interactions` is
  /// reached.
  ExecutionResult run(DodaAlgorithm& algorithm, Adversary& adversary,
                      const RunOptions& options = {});

  /// As run(), but reusing `scratch`'s storage for the execution state.
  ExecutionResult runInto(Scratch& scratch, DodaAlgorithm& algorithm,
                          Adversary& adversary,
                          const RunOptions& options = {});

 private:
  SystemInfo info_;
  AggregationFunction aggregation_;
};

/// Reusable storage for validateConvergecastSchedule's transmitted bitmap.
/// Callers validating many schedules (replay loops, fuzzers) hand the same
/// scratch to every call so the success path performs no allocation.
struct ScheduleValidationScratch {
  std::vector<char> transmitted;
};

/// Validates that `schedule` is a correct convergecast for an n-node system
/// over `sequence`: every transfer matches the interaction at its time,
/// times strictly increase, no node transmits twice or after transmitting,
/// the sink never transmits, and all n-1 non-sink nodes transmit.
/// Returns true iff valid; if `error` is non-null, stores the reason.
/// Takes a lightweight view so replayed (streamed / borrowed) trials can be
/// validated without materializing an owned sequence; an
/// InteractionSequence converts implicitly.
bool validateConvergecastSchedule(
    const std::vector<TransmissionRecord>& schedule,
    dynagraph::InteractionSequenceView sequence, const SystemInfo& info,
    ScheduleValidationScratch& scratch, std::string* error = nullptr);

/// Convenience overload allocating a fresh scratch per call.
bool validateConvergecastSchedule(
    const std::vector<TransmissionRecord>& schedule,
    dynagraph::InteractionSequenceView sequence, const SystemInfo& info,
    std::string* error = nullptr);

}  // namespace doda::core
