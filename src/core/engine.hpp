#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "core/adversary.hpp"
#include "core/algorithm.hpp"
#include "core/data.hpp"
#include "core/execution_view.hpp"
#include "dynagraph/interaction_sequence.hpp"

namespace doda::dynagraph {
class LazySequence;
}

namespace doda::core {

/// Thrown when an algorithm (or adversary) violates the model: making the
/// sink transmit, naming a non-endpoint as receiver, or interacting with an
/// out-of-range node. These are programming errors in the algorithm under
/// test, never recoverable conditions.
class ModelViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Per-execution fault-injection hooks (paper concluding remarks / ROADMAP
/// item 4b). Implemented by fault::FaultSession over a pre-drawn
/// fault::FaultPlan; the engine consults the injector on its faulty run
/// loop only — a null RunOptions::faults leaves the fault-free path (and
/// its golden statistics) untouched.
///
/// Determinism contract: after reset(), every answer must be a pure
/// function of its arguments and of the injector's pre-drawn state. The
/// engine calls beginInteraction exactly once per dispatched interaction,
/// in time order, so stateful loss processes (Gilbert–Elliott bursts)
/// advance identically for every thread count.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  /// Called once before the run starts.
  virtual void reset(const SystemInfo& info) = 0;

  /// Time at which node u crash-stops (it neither transmits nor receives
  /// during interactions at or after this time); dynagraph::kNever means
  /// the node never crashes. Must be constant over the run and never name
  /// the sink.
  virtual Time crashTime(NodeId u) const = 0;

  /// Whether node u is Byzantine: it lies to meetTime oracles (see
  /// fault::FaultyMeetTimeOracle), poisons every datum it transmits, and
  /// keeps a ghost copy of transmitted data that it may maliciously replay
  /// (the engine rolls overlapping replays back). Never the sink.
  virtual bool isByzantine(NodeId u) const = 0;

  /// Advances the per-interaction loss process to time t (called for every
  /// dispatched interaction, transfer or not).
  virtual void beginInteraction(Time t) = 0;

  /// Whether the transmission attempted during interaction t is lost. Only
  /// meaningful after beginInteraction(t); must not consume randomness
  /// (the verdict for t is pre-drawn by beginInteraction).
  virtual bool transmissionLost(Time t) = 0;
};

/// Degradation bookkeeping of one faulty execution. "Honest" counts
/// non-Byzantine origins; the sink's own origin is trivially delivered.
struct FaultOutcome {
  /// Transmissions the algorithm ordered (lost + rejected + applied).
  std::uint64_t attempted_transmissions = 0;
  /// Attempts dropped by the loss process (sender keeps its data and may
  /// retry — the relaxed transmit-once rule).
  std::uint64_t lost_transmissions = 0;
  /// Applied transfers whose sender had at least one earlier lost attempt.
  std::uint64_t retransmissions = 0;
  /// Interactions skipped because an endpoint had crash-stopped while both
  /// endpoints still owned data (a transfer might otherwise have happened).
  std::uint64_t crash_blocked_interactions = 0;
  /// Byzantine ghost replays rolled back because the receiver already held
  /// an overlapping source set.
  std::uint64_t rejected_transfers = 0;
  /// Non-Byzantine origins in the system, the sink's included.
  std::size_t honest_total = 0;
  /// Honest origins aggregated at the sink by the end of the run.
  std::size_t delivered_honest = 0;
  /// Honest origins stranded at the end: undelivered and held only by
  /// crash-stopped nodes.
  std::size_t stranded_honest = 0;
  /// Whether a datum that passed through a Byzantine node reached the sink.
  bool sink_poisoned = false;
  /// Every honest origin reached the sink (completion under faults; the
  /// aggregate is still only trustworthy when !sink_poisoned).
  bool completed = false;
  /// The run stopped early because no live non-sink node owned data any
  /// more — every undelivered honest origin is stranded for good.
  bool blocked = false;

  /// Honest origins that never reached the sink.
  std::size_t residual() const noexcept {
    return honest_total - delivered_honest;
  }
};

/// Outcome of one execution.
struct ExecutionResult {
  /// True iff the sink ended as the only data owner.
  bool terminated = false;
  /// Time index of the last transmission; kNever if no transmission.
  Time last_transmission_time = dynagraph::kNever;
  /// "Terminates in X interactions": number of interactions up to and
  /// including the terminating one (only meaningful when terminated).
  Time interactions_to_terminate = dynagraph::kNever;
  /// Interactions dispatched in total (== the above when terminated).
  Time interactions_dispatched = 0;
  /// Every applied transfer, in time order (size == n-1 iff terminated).
  /// Left empty when RunOptions::capture_schedule is false.
  std::vector<TransmissionRecord> schedule;
  /// The sink's datum at the end of the run.
  Datum sink_datum;
  /// Degradation bookkeeping; engaged iff the run used RunOptions::faults.
  /// In a faulty run `terminated` means completion under faults (every
  /// honest origin delivered), not owner_count == 1.
  std::optional<FaultOutcome> fault;
};

/// Options for one execution.
struct RunOptions {
  /// Hard cap on dispatched interactions (guards non-terminating runs).
  Time max_interactions = Time{1} << 32;
  /// Initial per-node values; empty means every node starts at 1.0.
  std::vector<double> initial_values;
  /// Whether to copy the transmission schedule into the result. The
  /// schedule is always recorded during the run (algorithms and adversaries
  /// may consult ExecutionView::schedule()); measurement loops that only
  /// need the scalar outcome skip the copy.
  bool capture_schedule = true;
  /// When non-null, the engine runs its faulty loop: transmissions may be
  /// lost (the sender stays live and may transmit again later — an explicit
  /// relaxation of the transmit-once rule, tracked in FaultOutcome),
  /// crash-stopped nodes strand the data they hold, and Byzantine nodes
  /// poison what they transmit. Null (the default) is the exact paper
  /// model, bit-identical to pre-fault builds. The injector must outlive
  /// the run and is reset by the engine.
  FaultInjector* faults = nullptr;
};

/// Tuning of the intra-trial block-parallel engine (Engine::runBlocked).
///
/// The blocked engine shards ONE execution: nodes are split into
/// `partitions` contiguous id ranges, the interaction sequence is processed
/// in blocks of `block_size`, and each block goes through three stages —
/// a parallel candidate scan against block-start ownership (sound because
/// ownership only ever decreases), an optimistic partition-local execution
/// step in which each partition applies its internal candidates while
/// marking nodes touched by cross-partition or deferred candidates as
/// hazardous, and a serial time-ordered handoff that resolves everything
/// deferred. The hazard rule keeps every node's transfer order equal to
/// global time order, so the transmission schedule, the ExecutionResult
/// and the (floating-point order sensitive) aggregate are bit-identical to
/// the serial loop for EVERY workers/partitions/block_size choice.
struct IntraTrialOptions {
  /// Scan/partition worker threads: 1 (the default) runs every stage
  /// inline on the calling thread; 0 resolves to hardware_concurrency.
  std::size_t workers = 1;
  /// Node groups of the optimistic execution step; 0 resolves to the
  /// worker count. Any value yields bit-identical results — it only moves
  /// work between the optimistic step and the serial handoff.
  std::size_t partitions = 0;
  /// Interactions per block. Any positive value is bit-identical; larger
  /// blocks amortize the per-block barriers, smaller ones tighten the
  /// speculative window (fewer candidates stale by cross-block transfers).
  Time block_size = Time{1} << 16;
};

/// Executes a DODA algorithm against an adversary and enforces the model
/// (paper §2): each node transmits at most once, a transfer requires both
/// endpoints to own data, the sink never transmits, transfers take one time
/// unit (one interaction).
class Engine {
 public:
  /// Reusable per-execution storage (node data, ownership flags, schedule).
  /// A Scratch handed to consecutive runInto() calls lets the engine reuse
  /// vector capacity instead of reallocating every trial; each worker
  /// thread of a parallel measurement owns one. A Scratch must not be used
  /// by two runs concurrently.
  class Scratch {
   public:
    struct Impl;  // defined in engine_scratch.hpp (internal)

    Scratch();
    ~Scratch();
    Scratch(Scratch&&) noexcept;
    Scratch& operator=(Scratch&&) noexcept;

   private:
    friend class Engine;
    std::unique_ptr<Impl> impl_;
  };

  Engine(SystemInfo info, AggregationFunction aggregation);

  const SystemInfo& system() const noexcept { return info_; }

  /// Runs `algorithm` against `adversary` until the sink is the only data
  /// owner, the adversary is exhausted, or `options.max_interactions` is
  /// reached.
  ExecutionResult run(DodaAlgorithm& algorithm, Adversary& adversary,
                      const RunOptions& options = {});

  /// As run(), but reusing `scratch`'s storage for the execution state.
  ExecutionResult runInto(Scratch& scratch, DodaAlgorithm& algorithm,
                          Adversary& adversary,
                          const RunOptions& options = {});

  /// Intra-trial block-parallel execution of ONE trial over a fixed
  /// (oblivious-adversary) interaction sequence. Requires
  /// `algorithm.isEndpointLocal()` and a fault-free run
  /// (`options.faults == nullptr`); throws std::invalid_argument
  /// otherwise. The result — transmission schedule, every ExecutionResult
  /// field, and the sink's aggregate — is bit-identical to runInto() over
  /// a sequence adversary replaying the same view, for every
  /// workers/partitions/block_size choice (see IntraTrialOptions).
  ExecutionResult runBlocked(Scratch& scratch, DodaAlgorithm& algorithm,
                             dynagraph::InteractionSequenceView sequence,
                             const RunOptions& options = {},
                             const IntraTrialOptions& intra = {});

  /// As above over a lazily generated sequence (the committed-randomness
  /// model): blocks are realized on the calling thread, overlapping the
  /// scan of the previous block, and the sequence may end up realized
  /// slightly past the stopping point — immaterial under committed
  /// randomness, where the whole sequence is a pure function of the seed.
  /// Exhausting the generator's max_length guard before termination throws
  /// the same std::length_error as the serial path.
  ExecutionResult runBlocked(Scratch& scratch, DodaAlgorithm& algorithm,
                             dynagraph::LazySequence& sequence,
                             const RunOptions& options = {},
                             const IntraTrialOptions& intra = {});

 private:
  SystemInfo info_;
  AggregationFunction aggregation_;
};

/// Reusable storage for validateConvergecastSchedule's transmitted bitmap.
/// Callers validating many schedules (replay loops, fuzzers) hand the same
/// scratch to every call so the success path performs no allocation.
struct ScheduleValidationScratch {
  std::vector<char> transmitted;
};

/// Validates that `schedule` is a correct convergecast for an n-node system
/// over `sequence`: every transfer matches the interaction at its time,
/// times strictly increase, no node transmits twice or after transmitting,
/// the sink never transmits, and all n-1 non-sink nodes transmit.
/// Returns true iff valid; if `error` is non-null, stores the reason.
/// Takes a lightweight view so replayed (streamed / borrowed) trials can be
/// validated without materializing an owned sequence; an
/// InteractionSequence converts implicitly.
bool validateConvergecastSchedule(
    const std::vector<TransmissionRecord>& schedule,
    dynagraph::InteractionSequenceView sequence, const SystemInfo& info,
    ScheduleValidationScratch& scratch, std::string* error = nullptr);

/// Convenience overload allocating a fresh scratch per call.
bool validateConvergecastSchedule(
    const std::vector<TransmissionRecord>& schedule,
    dynagraph::InteractionSequenceView sequence, const SystemInfo& info,
    std::string* error = nullptr);

}  // namespace doda::core
