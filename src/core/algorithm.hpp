#pragma once

#include <optional>
#include <string>

#include "core/execution_view.hpp"

namespace doda::core {

/// Interface of a distributed online data aggregation (DODA) algorithm
/// (paper §2.1).
///
/// A DODA algorithm is invoked on each interaction I_t = {u, v} in which
/// *both* endpoints still own data, and outputs either the receiver (the
/// other node transmits, aggregates its datum into the receiver, and is out
/// of the computation for good) or nothing (no transfer).
///
/// The engine guarantees:
///  * decide() is only called when both endpoints own data;
///  * the interaction is normalized with a() < b() (the paper's "nodes are
///    given ordered by their identifiers" symmetry-breaking convention).
///
/// The engine enforces (throws ModelViolation on): returning a node that is
/// not an endpoint, and making the sink transmit.
///
/// Implementations that keep no per-node state between interactions are
/// *oblivious* (the paper's D∅ODA class) and report it via isOblivious().
class DodaAlgorithm {
 public:
  virtual ~DodaAlgorithm() = default;

  virtual std::string name() const = 0;

  /// True when the algorithm uses no persistent node memory (D∅ODA).
  virtual bool isOblivious() const { return true; }

  /// True when decide() is a pure function of (interaction, time,
  /// SystemInfo): it mutates no internal state and reads nothing from the
  /// ExecutionView beyond system() and now(). Endpoint-local algorithms
  /// (Gathering, Waiting) can be executed by the intra-trial block-parallel
  /// engine (Engine::runBlocked), which may invoke decide() concurrently
  /// from several workers and in a different order than the serial loop —
  /// both immaterial exactly when this contract holds. Algorithms that
  /// consult oracles with stateful cursors (WaitingGreedy over
  /// MeetTimeIndex), draw randomness per decision, or inspect datum
  /// contents must leave this false.
  virtual bool isEndpointLocal() const { return false; }

  /// Human-readable description of the knowledge oracle(s) used, e.g.
  /// "none", "meetTime", "underlying graph", "future", "full".
  virtual std::string knowledge() const { return "none"; }

  /// Called once before each execution; resets any per-execution state.
  virtual void reset(const SystemInfo& /*info*/) {}

  /// Decision for interaction `i` at time `t`: the receiver id, or
  /// std::nullopt for no transfer.
  virtual std::optional<NodeId> decide(const Interaction& i, Time t,
                                       const ExecutionView& view) = 0;
};

}  // namespace doda::core
