#include "core/engine.hpp"

#include <algorithm>
#include <sstream>

namespace doda::core {

namespace {

/// Mutable execution state, exposed read-only through ExecutionView.
class State final : public ExecutionView {
 public:
  State(const SystemInfo& info, const AggregationFunction& aggregation,
        const std::vector<double>& initial_values)
      : info_(info), aggregation_(aggregation) {
    data_.reserve(info.node_count);
    for (NodeId u = 0; u < info.node_count; ++u) {
      const double v =
          initial_values.empty() ? 1.0 : initial_values.at(u);
      data_.push_back(Datum::origin(u, v));
    }
    owns_.assign(info.node_count, true);
    owner_count_ = info.node_count;
  }

  const SystemInfo& system() const override { return info_; }

  bool ownsData(NodeId u) const override {
    checkNode(u);
    return owns_[u];
  }

  const Datum& datumOf(NodeId u) const override {
    checkNode(u);
    return data_[u];
  }

  std::size_t ownerCount() const override { return owner_count_; }

  const std::vector<TransmissionRecord>& schedule() const override {
    return schedule_;
  }

  Time now() const override { return now_; }

  void advance() { ++now_; }

  void checkNode(NodeId u) const {
    if (u >= info_.node_count)
      throw ModelViolation("node id out of range");
  }

  bool terminated() const {
    return owner_count_ == 1;  // the sink never transmits, so it is the one
  }

  void transfer(Time t, NodeId sender, NodeId receiver) {
    if (sender == info_.sink)
      throw ModelViolation("the sink must never transmit");
    if (!owns_[sender] || !owns_[receiver])
      throw ModelViolation("transfer requires both endpoints to own data");
    aggregation_.aggregateInto(data_[receiver], data_[sender]);
    owns_[sender] = false;
    --owner_count_;
    schedule_.push_back({t, sender, receiver});
  }

 private:
  const SystemInfo& info_;
  const AggregationFunction& aggregation_;
  std::vector<Datum> data_;
  std::vector<bool> owns_;
  std::size_t owner_count_ = 0;
  std::vector<TransmissionRecord> schedule_;
  Time now_ = 0;
};

}  // namespace

Engine::Engine(SystemInfo info, AggregationFunction aggregation)
    : info_(info), aggregation_(std::move(aggregation)) {
  if (info_.node_count < 2)
    throw std::invalid_argument("Engine: need at least 2 nodes");
  if (info_.sink >= info_.node_count)
    throw std::invalid_argument("Engine: sink id out of range");
}

ExecutionResult Engine::run(DodaAlgorithm& algorithm, Adversary& adversary,
                            const RunOptions& options) {
  if (!options.initial_values.empty() &&
      options.initial_values.size() != info_.node_count)
    throw std::invalid_argument("Engine::run: initial_values size mismatch");

  State state(info_, aggregation_, options.initial_values);
  algorithm.reset(info_);
  adversary.reset(info_);

  ExecutionResult result;
  while (!state.terminated() && state.now() < options.max_interactions) {
    const Time t = state.now();
    const auto interaction = adversary.next(t, state);
    if (!interaction) break;  // adversary exhausted
    state.checkNode(interaction->a());
    state.checkNode(interaction->b());
    state.advance();

    // A transfer is only possible when both endpoints still own data
    // (paper §2: "if both nodes still own data, then one of the nodes has
    // the possibility to transmit").
    if (!state.ownsData(interaction->a()) ||
        !state.ownsData(interaction->b()))
      continue;

    const auto receiver = algorithm.decide(*interaction, t, state);
    if (!receiver) continue;
    if (!interaction->involves(*receiver))
      throw ModelViolation("receiver is not an interaction endpoint");
    const NodeId sender = interaction->other(*receiver);
    state.transfer(t, sender, *receiver);
    if (state.terminated()) {
      result.last_transmission_time = t;
      result.interactions_to_terminate = t + 1;
    }
  }

  result.terminated = state.terminated();
  result.interactions_dispatched = state.now();
  result.schedule = state.schedule();
  result.sink_datum = state.datumOf(info_.sink);
  if (!result.schedule.empty() && !result.terminated)
    result.last_transmission_time = result.schedule.back().time;
  return result;
}

bool validateConvergecastSchedule(
    const std::vector<TransmissionRecord>& schedule,
    const dynagraph::InteractionSequence& sequence, const SystemInfo& info,
    std::string* error) {
  auto fail = [&](const std::string& why) {
    if (error) *error = why;
    return false;
  };
  std::vector<bool> transmitted(info.node_count, false);
  Time prev = 0;
  bool first = true;
  for (const auto& rec : schedule) {
    std::ostringstream at;
    at << "t=" << rec.time << ": ";
    if (!first && rec.time <= prev)
      return fail(at.str() + "times not strictly increasing");
    first = false;
    prev = rec.time;
    if (rec.time >= sequence.length())
      return fail(at.str() + "time beyond sequence");
    if (rec.sender >= info.node_count || rec.receiver >= info.node_count)
      return fail(at.str() + "node out of range");
    if (rec.sender == info.sink)
      return fail(at.str() + "sink transmitted");
    const Interaction expected(rec.sender, rec.receiver);
    if (sequence.at(rec.time) != expected)
      return fail(at.str() + "transfer does not match interaction");
    if (transmitted[rec.sender])
      return fail(at.str() + "sender transmitted twice");
    if (transmitted[rec.receiver])
      return fail(at.str() + "receiver already transmitted");
    transmitted[rec.sender] = true;
  }
  const auto count = static_cast<std::size_t>(
      std::count(transmitted.begin(), transmitted.end(), true));
  if (count != info.node_count - 1)
    return fail("not all non-sink nodes transmitted");
  return true;
}

}  // namespace doda::core
