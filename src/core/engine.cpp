#include "core/engine.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "core/engine_scratch.hpp"

namespace doda::core {

Engine::Scratch::Scratch() : impl_(std::make_unique<Impl>()) {}
Engine::Scratch::~Scratch() = default;
Engine::Scratch::Scratch(Scratch&&) noexcept = default;
Engine::Scratch& Engine::Scratch::operator=(Scratch&&) noexcept = default;

namespace {

/// Mutable execution state over a Scratch's storage, exposed read-only
/// through ExecutionView. Resets the storage in place so repeated trials
/// reuse vector capacity (including each Datum's source-set buffer).
class State final : public ExecutionView {
 public:
  State(const SystemInfo& info, const AggregationFunction& aggregation,
        const std::vector<double>& initial_values,
        Engine::Scratch::Impl& scratch)
      : info_(info), aggregation_(aggregation), scratch_(scratch) {
    scratch_.data.resize(info.node_count);
    for (NodeId u = 0; u < info.node_count; ++u) {
      Datum& d = scratch_.data[u];
      d.value = initial_values.empty() ? 1.0 : initial_values.at(u);
      d.sources.reset(u);
    }
    scratch_.owns.assign(info.node_count, true);
    scratch_.schedule.clear();
    owner_count_ = info.node_count;
  }

  const SystemInfo& system() const override { return info_; }

  bool ownsData(NodeId u) const override {
    checkNode(u);
    return scratch_.owns[u];
  }

  const Datum& datumOf(NodeId u) const override {
    checkNode(u);
    return scratch_.data[u];
  }

  std::size_t ownerCount() const override { return owner_count_; }

  const std::vector<TransmissionRecord>& schedule() const override {
    return scratch_.schedule;
  }

  Time now() const override { return now_; }

  void advance() { ++now_; }

  void checkNode(NodeId u) const {
    if (u >= info_.node_count)
      throw ModelViolation("node id out of range");
  }

  bool terminated() const {
    return owner_count_ == 1;  // the sink never transmits, so it is the one
  }

  void transfer(Time t, NodeId sender, NodeId receiver) {
    if (sender == info_.sink)
      throw ModelViolation("the sink must never transmit");
    if (!scratch_.owns[sender] || !scratch_.owns[receiver])
      throw ModelViolation("transfer requires both endpoints to own data");
    aggregation_.aggregateInto(scratch_.data[receiver],
                               scratch_.data[sender]);
    scratch_.owns[sender] = false;
    --owner_count_;
    scratch_.schedule.push_back({t, sender, receiver});
  }

  /// Faulty-mode transfer. The caller has already verified ownership, the
  /// sink rule and source disjointness. A Byzantine `ghost_sender` keeps a
  /// ghost copy of its datum (it lies about having transmitted) and stays
  /// an owner — the relaxation the fault model tracks explicitly.
  void transferFaulty(Time t, NodeId sender, NodeId receiver,
                      bool ghost_sender) {
    aggregation_.aggregateInto(scratch_.data[receiver],
                               scratch_.data[sender]);
    if (!ghost_sender) {
      scratch_.owns[sender] = false;
      --owner_count_;
    }
    scratch_.schedule.push_back({t, sender, receiver});
  }

  Engine::Scratch::Impl& scratch() { return scratch_; }

 private:
  const SystemInfo& info_;
  const AggregationFunction& aggregation_;
  Engine::Scratch::Impl& scratch_;
  std::size_t owner_count_ = 0;
  Time now_ = 0;
};

/// The engine loop under fault injection (RunOptions::faults non-null).
/// Kept fully separate from the fault-free loop so the paper-exact path
/// stays bit-identical to pre-fault builds. Semantics (README "Fault
/// models"): a lost transmission leaves the sender live to retry later; a
/// crash-stopped node neither transmits nor receives and strands the data
/// it holds; a Byzantine sender poisons what it delivers and keeps a ghost
/// copy it may replay (overlapping replays are rolled back before any
/// mutation). Termination means completion under faults: every honest
/// (non-Byzantine) origin aggregated at the sink.
ExecutionResult runFaulty(const SystemInfo& info, State& state,
                          DodaAlgorithm& algorithm, Adversary& adversary,
                          const RunOptions& options, FaultInjector& faults) {
  faults.reset(info);
  if (faults.crashTime(info.sink) != dynagraph::kNever)
    throw ModelViolation("fault plan crashes the sink");
  if (faults.isByzantine(info.sink))
    throw ModelViolation("fault plan makes the sink Byzantine");

  Engine::Scratch::Impl& scratch = state.scratch();
  const std::size_t n = info.node_count;
  scratch.poisoned.assign(n, 0);
  scratch.lost_attempt.assign(n, 0);
  scratch.byzantine_ids.clear();
  scratch.crash_events.clear();
  for (NodeId u = 0; u < n; ++u) {
    if (faults.isByzantine(u)) {
      scratch.byzantine_ids.push_back(u);
      scratch.poisoned[u] = 1;
    }
    const Time c = faults.crashTime(u);
    if (c != dynagraph::kNever) scratch.crash_events.emplace_back(c, u);
  }
  std::sort(scratch.crash_events.begin(), scratch.crash_events.end());

  // Honest origins currently in a source set: everything but the (few)
  // Byzantine ids. Exact on sink merges because those are disjoint.
  const auto honestIn = [&scratch](const SourceSet& sources) {
    std::size_t count = sources.size();
    for (const NodeId b : scratch.byzantine_ids)
      if (sources.contains(b)) --count;
    return count;
  };

  FaultOutcome fo;
  fo.honest_total = n - scratch.byzantine_ids.size();
  fo.delivered_honest = 1;  // the sink's own origin (the sink is honest)

  ExecutionResult result;
  std::size_t crash_cursor = 0;
  std::size_t live_nonsink_owners = n - 1;
  if (fo.delivered_honest == fo.honest_total) {
    // Degenerate plan: every non-sink node is Byzantine, nothing honest to
    // collect.
    fo.completed = true;
    result.interactions_to_terminate = 0;
  }

  while (!fo.completed && state.now() < options.max_interactions) {
    const Time t = state.now();
    const auto interaction = adversary.next(t, state);
    if (!interaction) break;
    state.checkNode(interaction->a());
    state.checkNode(interaction->b());
    state.advance();
    faults.beginInteraction(t);

    // Crash-stop events due at or before t: a node that still owned data
    // strands it (live-owner accounting feeds the blocked early-exit).
    while (crash_cursor < scratch.crash_events.size() &&
           scratch.crash_events[crash_cursor].first <= t) {
      const NodeId u = scratch.crash_events[crash_cursor].second;
      ++crash_cursor;
      if (u != info.sink && state.ownsData(u)) --live_nonsink_owners;
    }

    const NodeId a = interaction->a();
    const NodeId b = interaction->b();
    const bool a_dead = faults.crashTime(a) <= t;
    const bool b_dead = faults.crashTime(b) <= t;
    if (a_dead || b_dead) {
      if (state.ownsData(a) && state.ownsData(b))
        ++fo.crash_blocked_interactions;
      if (live_nonsink_owners == 0) break;
      continue;
    }
    if (!state.ownsData(a) || !state.ownsData(b)) continue;

    const auto receiver = algorithm.decide(*interaction, t, state);
    if (!receiver) continue;
    if (!interaction->involves(*receiver))
      throw ModelViolation("receiver is not an interaction endpoint");
    const NodeId sender = interaction->other(*receiver);
    if (sender == info.sink)
      throw ModelViolation("the sink must never transmit");

    ++fo.attempted_transmissions;
    if (faults.transmissionLost(t)) {
      // The attempt consumed nothing: the sender stays live and may
      // transmit again later (the relaxed transmit-once rule).
      ++fo.lost_transmissions;
      scratch.lost_attempt[sender] = 1;
      continue;
    }
    if (state.datumOf(*receiver).sources.intersects(
            state.datumOf(sender).sources)) {
      // A Byzantine ghost replaying data the receiver (transitively)
      // already aggregated — rolled back before any mutation.
      ++fo.rejected_transfers;
      continue;
    }

    const bool ghost = faults.isByzantine(sender);
    std::size_t incoming_honest = 0;
    if (*receiver == info.sink)
      incoming_honest = honestIn(state.datumOf(sender).sources);
    state.transferFaulty(t, sender, *receiver, ghost);
    if (scratch.poisoned[sender]) scratch.poisoned[*receiver] = 1;
    if (scratch.lost_attempt[sender]) {
      ++fo.retransmissions;
      scratch.lost_attempt[sender] = 0;
    }
    if (!ghost) --live_nonsink_owners;
    if (*receiver == info.sink) {
      fo.delivered_honest += incoming_honest;
      if (fo.delivered_honest == fo.honest_total) {
        fo.completed = true;
        result.last_transmission_time = t;
        result.interactions_to_terminate = t + 1;
      }
    }
    if (!fo.completed && live_nonsink_owners == 0) break;
  }
  if (!fo.completed && live_nonsink_owners == 0) fo.blocked = true;

  // Stranded accounting: honest origins the sink lacks, held by a node
  // that has already crash-stopped. O(residual x crash events).
  const Datum& sink_datum = state.datumOf(info.sink);
  for (NodeId o = 0; o < n; ++o) {
    if (faults.isByzantine(o)) continue;
    if (sink_datum.sources.contains(o)) continue;
    for (const auto& [crash_time, u] : scratch.crash_events) {
      if (crash_time > state.now()) break;  // sorted: rest still live
      if (u == info.sink || !state.ownsData(u)) continue;
      if (state.datumOf(u).sources.contains(o)) {
        ++fo.stranded_honest;
        break;
      }
    }
  }
  fo.sink_poisoned = scratch.poisoned[info.sink] != 0;

  result.terminated = fo.completed;
  result.interactions_dispatched = state.now();
  if (options.capture_schedule) result.schedule = state.schedule();
  result.sink_datum = state.datumOf(info.sink);
  if (!state.schedule().empty() && !result.terminated)
    result.last_transmission_time = state.schedule().back().time;
  result.fault = fo;
  return result;
}

}  // namespace

Engine::Engine(SystemInfo info, AggregationFunction aggregation)
    : info_(info), aggregation_(std::move(aggregation)) {
  if (info_.node_count < 2)
    throw std::invalid_argument("Engine: need at least 2 nodes");
  if (info_.sink >= info_.node_count)
    throw std::invalid_argument("Engine: sink id out of range");
}

ExecutionResult Engine::run(DodaAlgorithm& algorithm, Adversary& adversary,
                            const RunOptions& options) {
  Scratch scratch;
  return runInto(scratch, algorithm, adversary, options);
}

ExecutionResult Engine::runInto(Scratch& scratch, DodaAlgorithm& algorithm,
                                Adversary& adversary,
                                const RunOptions& options) {
  if (!options.initial_values.empty() &&
      options.initial_values.size() != info_.node_count)
    throw std::invalid_argument("Engine::run: initial_values size mismatch");

  State state(info_, aggregation_, options.initial_values, *scratch.impl_);
  algorithm.reset(info_);
  adversary.reset(info_);

  if (options.faults)
    return runFaulty(info_, state, algorithm, adversary, options,
                     *options.faults);

  ExecutionResult result;
  while (!state.terminated() && state.now() < options.max_interactions) {
    const Time t = state.now();
    const auto interaction = adversary.next(t, state);
    if (!interaction) break;  // adversary exhausted
    state.checkNode(interaction->a());
    state.checkNode(interaction->b());
    state.advance();

    // A transfer is only possible when both endpoints still own data
    // (paper §2: "if both nodes still own data, then one of the nodes has
    // the possibility to transmit").
    if (!state.ownsData(interaction->a()) ||
        !state.ownsData(interaction->b()))
      continue;

    const auto receiver = algorithm.decide(*interaction, t, state);
    if (!receiver) continue;
    if (!interaction->involves(*receiver))
      throw ModelViolation("receiver is not an interaction endpoint");
    const NodeId sender = interaction->other(*receiver);
    state.transfer(t, sender, *receiver);
    if (state.terminated()) {
      result.last_transmission_time = t;
      result.interactions_to_terminate = t + 1;
    }
  }

  result.terminated = state.terminated();
  result.interactions_dispatched = state.now();
  if (options.capture_schedule) result.schedule = state.schedule();
  result.sink_datum = state.datumOf(info_.sink);
  if (!state.schedule().empty() && !result.terminated)
    result.last_transmission_time = state.schedule().back().time;
  return result;
}

bool validateConvergecastSchedule(
    const std::vector<TransmissionRecord>& schedule,
    dynagraph::InteractionSequenceView sequence, const SystemInfo& info,
    ScheduleValidationScratch& scratch, std::string* error) {
  // Error strings are only materialized on the failure path; the success
  // path does no formatting and, with a reused scratch, no allocation.
  auto fail = [&](Time t, const char* why) {
    if (error) *error = "t=" + std::to_string(t) + ": " + why;
    return false;
  };
  std::vector<char>& transmitted = scratch.transmitted;
  transmitted.assign(info.node_count, 0);
  Time prev = 0;
  bool first = true;
  for (const auto& rec : schedule) {
    if (!first && rec.time <= prev)
      return fail(rec.time, "times not strictly increasing");
    first = false;
    prev = rec.time;
    if (rec.time >= sequence.length())
      return fail(rec.time, "time beyond sequence");
    if (rec.sender >= info.node_count || rec.receiver >= info.node_count)
      return fail(rec.time, "node out of range");
    if (rec.sender == info.sink)
      return fail(rec.time, "sink transmitted");
    const Interaction expected(rec.sender, rec.receiver);
    if (sequence.at(rec.time) != expected)
      return fail(rec.time, "transfer does not match interaction");
    if (transmitted[rec.sender])
      return fail(rec.time, "sender transmitted twice");
    if (transmitted[rec.receiver])
      return fail(rec.time, "receiver already transmitted");
    transmitted[rec.sender] = 1;
  }
  const auto count = static_cast<std::size_t>(
      std::count(transmitted.begin(), transmitted.end(), char{1}));
  if (count != info.node_count - 1) {
    if (error) *error = "not all non-sink nodes transmitted";
    return false;
  }
  return true;
}

bool validateConvergecastSchedule(
    const std::vector<TransmissionRecord>& schedule,
    dynagraph::InteractionSequenceView sequence, const SystemInfo& info,
    std::string* error) {
  ScheduleValidationScratch scratch;
  return validateConvergecastSchedule(schedule, sequence, info, scratch,
                                      error);
}

}  // namespace doda::core
