#include "core/engine.hpp"

#include <algorithm>
#include <string>

namespace doda::core {

struct Engine::Scratch::Impl {
  std::vector<Datum> data;
  std::vector<bool> owns;
  std::vector<TransmissionRecord> schedule;
};

Engine::Scratch::Scratch() : impl_(std::make_unique<Impl>()) {}
Engine::Scratch::~Scratch() = default;
Engine::Scratch::Scratch(Scratch&&) noexcept = default;
Engine::Scratch& Engine::Scratch::operator=(Scratch&&) noexcept = default;

namespace {

/// Mutable execution state over a Scratch's storage, exposed read-only
/// through ExecutionView. Resets the storage in place so repeated trials
/// reuse vector capacity (including each Datum's source-set buffer).
class State final : public ExecutionView {
 public:
  State(const SystemInfo& info, const AggregationFunction& aggregation,
        const std::vector<double>& initial_values,
        Engine::Scratch::Impl& scratch)
      : info_(info), aggregation_(aggregation), scratch_(scratch) {
    scratch_.data.resize(info.node_count);
    for (NodeId u = 0; u < info.node_count; ++u) {
      Datum& d = scratch_.data[u];
      d.value = initial_values.empty() ? 1.0 : initial_values.at(u);
      d.sources.reset(u);
    }
    scratch_.owns.assign(info.node_count, true);
    scratch_.schedule.clear();
    owner_count_ = info.node_count;
  }

  const SystemInfo& system() const override { return info_; }

  bool ownsData(NodeId u) const override {
    checkNode(u);
    return scratch_.owns[u];
  }

  const Datum& datumOf(NodeId u) const override {
    checkNode(u);
    return scratch_.data[u];
  }

  std::size_t ownerCount() const override { return owner_count_; }

  const std::vector<TransmissionRecord>& schedule() const override {
    return scratch_.schedule;
  }

  Time now() const override { return now_; }

  void advance() { ++now_; }

  void checkNode(NodeId u) const {
    if (u >= info_.node_count)
      throw ModelViolation("node id out of range");
  }

  bool terminated() const {
    return owner_count_ == 1;  // the sink never transmits, so it is the one
  }

  void transfer(Time t, NodeId sender, NodeId receiver) {
    if (sender == info_.sink)
      throw ModelViolation("the sink must never transmit");
    if (!scratch_.owns[sender] || !scratch_.owns[receiver])
      throw ModelViolation("transfer requires both endpoints to own data");
    aggregation_.aggregateInto(scratch_.data[receiver],
                               scratch_.data[sender]);
    scratch_.owns[sender] = false;
    --owner_count_;
    scratch_.schedule.push_back({t, sender, receiver});
  }

 private:
  const SystemInfo& info_;
  const AggregationFunction& aggregation_;
  Engine::Scratch::Impl& scratch_;
  std::size_t owner_count_ = 0;
  Time now_ = 0;
};

}  // namespace

Engine::Engine(SystemInfo info, AggregationFunction aggregation)
    : info_(info), aggregation_(std::move(aggregation)) {
  if (info_.node_count < 2)
    throw std::invalid_argument("Engine: need at least 2 nodes");
  if (info_.sink >= info_.node_count)
    throw std::invalid_argument("Engine: sink id out of range");
}

ExecutionResult Engine::run(DodaAlgorithm& algorithm, Adversary& adversary,
                            const RunOptions& options) {
  Scratch scratch;
  return runInto(scratch, algorithm, adversary, options);
}

ExecutionResult Engine::runInto(Scratch& scratch, DodaAlgorithm& algorithm,
                                Adversary& adversary,
                                const RunOptions& options) {
  if (!options.initial_values.empty() &&
      options.initial_values.size() != info_.node_count)
    throw std::invalid_argument("Engine::run: initial_values size mismatch");

  State state(info_, aggregation_, options.initial_values, *scratch.impl_);
  algorithm.reset(info_);
  adversary.reset(info_);

  ExecutionResult result;
  while (!state.terminated() && state.now() < options.max_interactions) {
    const Time t = state.now();
    const auto interaction = adversary.next(t, state);
    if (!interaction) break;  // adversary exhausted
    state.checkNode(interaction->a());
    state.checkNode(interaction->b());
    state.advance();

    // A transfer is only possible when both endpoints still own data
    // (paper §2: "if both nodes still own data, then one of the nodes has
    // the possibility to transmit").
    if (!state.ownsData(interaction->a()) ||
        !state.ownsData(interaction->b()))
      continue;

    const auto receiver = algorithm.decide(*interaction, t, state);
    if (!receiver) continue;
    if (!interaction->involves(*receiver))
      throw ModelViolation("receiver is not an interaction endpoint");
    const NodeId sender = interaction->other(*receiver);
    state.transfer(t, sender, *receiver);
    if (state.terminated()) {
      result.last_transmission_time = t;
      result.interactions_to_terminate = t + 1;
    }
  }

  result.terminated = state.terminated();
  result.interactions_dispatched = state.now();
  if (options.capture_schedule) result.schedule = state.schedule();
  result.sink_datum = state.datumOf(info_.sink);
  if (!state.schedule().empty() && !result.terminated)
    result.last_transmission_time = state.schedule().back().time;
  return result;
}

bool validateConvergecastSchedule(
    const std::vector<TransmissionRecord>& schedule,
    dynagraph::InteractionSequenceView sequence, const SystemInfo& info,
    ScheduleValidationScratch& scratch, std::string* error) {
  // Error strings are only materialized on the failure path; the success
  // path does no formatting and, with a reused scratch, no allocation.
  auto fail = [&](Time t, const char* why) {
    if (error) *error = "t=" + std::to_string(t) + ": " + why;
    return false;
  };
  std::vector<char>& transmitted = scratch.transmitted;
  transmitted.assign(info.node_count, 0);
  Time prev = 0;
  bool first = true;
  for (const auto& rec : schedule) {
    if (!first && rec.time <= prev)
      return fail(rec.time, "times not strictly increasing");
    first = false;
    prev = rec.time;
    if (rec.time >= sequence.length())
      return fail(rec.time, "time beyond sequence");
    if (rec.sender >= info.node_count || rec.receiver >= info.node_count)
      return fail(rec.time, "node out of range");
    if (rec.sender == info.sink)
      return fail(rec.time, "sink transmitted");
    const Interaction expected(rec.sender, rec.receiver);
    if (sequence.at(rec.time) != expected)
      return fail(rec.time, "transfer does not match interaction");
    if (transmitted[rec.sender])
      return fail(rec.time, "sender transmitted twice");
    if (transmitted[rec.receiver])
      return fail(rec.time, "receiver already transmitted");
    transmitted[rec.sender] = 1;
  }
  const auto count = static_cast<std::size_t>(
      std::count(transmitted.begin(), transmitted.end(), char{1}));
  if (count != info.node_count - 1) {
    if (error) *error = "not all non-sink nodes transmitted";
    return false;
  }
  return true;
}

bool validateConvergecastSchedule(
    const std::vector<TransmissionRecord>& schedule,
    dynagraph::InteractionSequenceView sequence, const SystemInfo& info,
    std::string* error) {
  ScheduleValidationScratch scratch;
  return validateConvergecastSchedule(schedule, sequence, info, scratch,
                                      error);
}

}  // namespace doda::core
