#pragma once

// Internal header shared by engine.cpp (the serial loop) and
// block_engine.cpp (the intra-trial block-parallel loop). Everything here
// is reachable only through Engine::Scratch — it is not part of the public
// surface and may change freely between the two translation units.

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "core/engine.hpp"

namespace doda::core {

/// Persistent worker pool of the intra-trial engine. One pool lives inside
/// each Engine::Scratch (created lazily on the first runBlocked with more
/// than one worker, recreated when the requested worker count changes), so
/// a measurement worker thread reuses its pool across every trial it
/// executes instead of spawning threads per block.
///
/// Usage is strictly launch()/wait() pairs from a single driver thread.
/// launch() hands out task indices [0, tasks) to the pool's threads via a
/// shared counter; wait() blocks until every index completed and rethrows
/// the first exception any task raised.
class BlockWorkerPool {
 public:
  explicit BlockWorkerPool(std::size_t thread_count) {
    threads_.reserve(thread_count);
    for (std::size_t i = 0; i < thread_count; ++i)
      threads_.emplace_back([this] { workerLoop(); });
  }

  ~BlockWorkerPool() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (auto& thread : threads_) thread.join();
  }

  std::size_t threadCount() const noexcept { return threads_.size(); }

  /// Starts a batch of `tasks` indexed tasks; returns immediately.
  void launch(std::size_t tasks, std::function<void(std::size_t)> fn) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      fn_ = std::move(fn);
      task_count_ = tasks;
      next_task_ = 0;
      remaining_ = tasks;
      error_ = nullptr;
      ++generation_;
    }
    work_cv_.notify_all();
  }

  /// Blocks until the launched batch drained; rethrows the first task
  /// exception (remaining tasks still run to completion — a block's
  /// partition workers write disjoint state, so draining is safe).
  void wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return remaining_ == 0; });
    fn_ = nullptr;
    if (error_) {
      std::exception_ptr error = error_;
      error_ = nullptr;
      std::rethrow_exception(error);
    }
  }

 private:
  void workerLoop() {
    // All batch state is read and written under the mutex; tasks are
    // coarse (a chunk scan or a partition walk), so the per-task lock
    // round-trip is noise. The driver wait()s for remaining_ == 0 before
    // the next launch(), so the generation cannot advance while any task
    // of the current batch is still running.
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      while (next_task_ < task_count_) {
        const std::size_t index = next_task_++;
        std::exception_ptr error;
        lock.unlock();
        try {
          fn_(index);
        } catch (...) {
          error = std::current_exception();
        }
        lock.lock();
        if (error && !error_) error_ = error;
        if (--remaining_ == 0) done_cv_.notify_all();
      }
    }
  }

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::function<void(std::size_t)> fn_;
  std::size_t task_count_ = 0;
  std::size_t next_task_ = 0;
  std::size_t remaining_ = 0;
  std::uint64_t generation_ = 0;
  std::exception_ptr error_;
  bool stop_ = false;
};

/// Reusable storage of the intra-trial block-parallel loop. All vectors
/// keep their capacity across blocks and trials, mirroring the
/// zero-steady-state-allocation policy of the serial scratch.
struct BlockScratch {
  /// One byte per node (not vector<bool>: partition workers write their own
  /// nodes' flags concurrently, and distinct bytes are distinct memory
  /// locations while distinct bits of a packed word are not).
  std::vector<char> owner;
  /// Per-node hazard marks of the current block's partition step.
  std::vector<char> hazard;
  /// Stage-A candidate indices (offsets into the block), one list per scan
  /// chunk; concatenation in chunk order is time order.
  std::vector<std::vector<std::uint32_t>> chunk_candidates;
  /// Flattened candidate list of the current block.
  std::vector<std::uint32_t> candidates;
  /// Per-candidate resolution state (kCandidatePending / kCandidateHandled).
  std::vector<char> status;
  /// First out-of-range-node time found by each scan chunk (kNever if none).
  std::vector<Time> chunk_bad_time;
  /// Transfers applied by each partition's optimistic step, time-ordered
  /// within a partition.
  std::vector<std::vector<TransmissionRecord>> partition_transfers;
  /// Transfers applied by the serial block-boundary handoff, time-ordered.
  std::vector<TransmissionRecord> handoff_transfers;
  /// Block-boundary merge buffer (all of the above, sorted by time).
  std::vector<TransmissionRecord> merged;
  /// Double-buffered block storage of the lazy-generation path (the
  /// generator may reallocate the committed buffer while workers scan, so
  /// blocks are copied out before scanning).
  std::vector<dynagraph::Interaction> block_front;
  std::vector<dynagraph::Interaction> block_back;
  std::unique_ptr<BlockWorkerPool> pool;
};

struct Engine::Scratch::Impl {
  std::vector<Datum> data;
  std::vector<bool> owns;
  std::vector<TransmissionRecord> schedule;
  // Faulty-run bookkeeping (untouched by the fault-free path; capacity is
  // retained across trials like everything else in the scratch).
  std::vector<char> poisoned;
  std::vector<char> lost_attempt;
  std::vector<std::pair<Time, NodeId>> crash_events;
  std::vector<NodeId> byzantine_ids;
  // Intra-trial block-parallel state (untouched by the serial paths).
  BlockScratch block;
};

}  // namespace doda::core
