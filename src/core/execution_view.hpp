#pragma once

#include <vector>

#include "core/data.hpp"
#include "dynagraph/interaction.hpp"

namespace doda::core {

using dynagraph::Interaction;
using dynagraph::Time;

/// One applied data transfer: `sender` gave its datum to `receiver` during
/// interaction I_time. The full list of records is the execution's
/// transmission schedule.
struct TransmissionRecord {
  Time time;
  NodeId sender;
  NodeId receiver;

  friend bool operator==(const TransmissionRecord&,
                         const TransmissionRecord&) = default;
};

/// Static facts about the system, available to every algorithm (paper §2.1:
/// every node knows its ID and isSink by default; n is fixed).
struct SystemInfo {
  std::size_t node_count = 0;
  NodeId sink = 0;
};

/// Read-only view of an execution in progress.
///
/// This is what the *adversary* observes (the online adaptive adversary
/// "can use the past execution of the algorithm to construct the next
/// interaction", paper §2.2) and what algorithms may consult about the two
/// interacting nodes. It never exposes node-private memory.
class ExecutionView {
 public:
  virtual ~ExecutionView() = default;

  virtual const SystemInfo& system() const = 0;

  /// Whether `u` still owns a datum.
  virtual bool ownsData(NodeId u) const = 0;

  /// The datum currently held at `u` (last-held datum if `u` transmitted).
  /// Algorithms may inspect the data of the two *interacting* nodes — data
  /// content travels with the interaction — but must not use it as remote
  /// knowledge about third parties. The returned reference points into
  /// engine scratch storage: query it (containsSource, size), don't copy
  /// it per decision — the SourceSet copy may heap-allocate for large n.
  virtual const Datum& datumOf(NodeId u) const = 0;

  /// Number of nodes still owning data.
  virtual std::size_t ownerCount() const = 0;

  /// All transfers applied so far, in time order.
  virtual const std::vector<TransmissionRecord>& schedule() const = 0;

  /// Interactions dispatched so far (including no-transfer ones).
  virtual Time now() const = 0;
};

}  // namespace doda::core
