#pragma once

/// Umbrella header: the full public API of the DODA library, a C++20
/// implementation of "Distributed Online Data Aggregation in Dynamic
/// Graphs" (Bramas, Masuzawa, Tixeuil — ICDCS 2016).
///
/// Layers (each usable on its own):
///  * util      — RNG, statistics, CSV/table output
///  * graph     — static graphs, spanning trees
///  * dynagraph — interaction sequences, traces, knowledge oracles
///  * core      — the execution model: algorithms, adversaries, engine
///  * adversary — oblivious / randomized / adaptive adversaries
///  * analysis  — offline-optimal convergecast, cost, degradation metrics
///  * algorithms— Waiting, Gathering, WaitingGreedy, and friends
///  * fault     — deterministic fault injection (loss/crash/Byzantine)
///  * sim       — randomized-adversary experiment harness

#include "adversary/adaptive_adversaries.hpp"
#include "adversary/randomized_adversary.hpp"
#include "adversary/sequence_adversary.hpp"
#include "adversary/thm2_builder.hpp"
#include "algorithms/full_knowledge.hpp"
#include "algorithms/future_aware.hpp"
#include "algorithms/gathering.hpp"
#include "algorithms/random_policy.hpp"
#include "algorithms/spanning_tree_aggregation.hpp"
#include "algorithms/waiting.hpp"
#include "algorithms/waiting_greedy.hpp"
#include "analysis/broadcast.hpp"
#include "analysis/convergecast.hpp"
#include "analysis/convergecast_frontier.hpp"
#include "analysis/degradation.hpp"
#include "analysis/meetings.hpp"
#include "analysis/reachability.hpp"
#include "analysis/schedule_metrics.hpp"
#include "core/engine.hpp"
#include "dynagraph/edge_markov.hpp"
#include "dynagraph/meet_time_index.hpp"
#include "dynagraph/oracles.hpp"
#include "dynagraph/trace_io.hpp"
#include "dynagraph/traces.hpp"
#include "fault/fault_model.hpp"
#include "fault/fault_oracles.hpp"
#include "graph/spanning_tree.hpp"
#include "sim/experiment.hpp"
#include "sim/fault_experiment.hpp"
#include "sim/trace_replay.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
