#!/usr/bin/env python3
"""Conformance test of the unified examples/ CLI convention (examples/cli.hpp).

For every binary passed on the command line:
  * ``--help`` must exit 0 and print ``usage:`` plus (when the program has
    flags) a ``flags:`` table of ``--name <placeholders>  description``
    rows;
  * every documented flag must PARSE: the probe ``--flag VALUE... --help``
    (probe values synthesized from the placeholder vocabulary — <path>,
    <n>, <float>, <str>, <range>, <fmt>, <addr>) must still exit 0, so a
    documented-but-unimplemented flag fails here as "unknown flag" and an
    implemented-but-undocumented vocabulary drifts loudly;
  * an unknown flag must exit 2 and name itself on stderr.

Usage: check_cli_help.py <binary> [<binary>...]
"""

import re
import subprocess
import sys
import tempfile
from pathlib import Path

FLAG_ROW = re.compile(r"^  (--[\w-]+)((?:\s+<[\w.]+>)*)\s\s+\S")
PLACEHOLDER = re.compile(r"^<([\w.]+)>$")

# Repeated numeric placeholders in one flag take increasing values, so a
# range-shaped flag (e.g. --replay-range <n> <n>) probes as a valid window.
PROBE_VALUES = {
    "path": None,  # filled with a scratch path per run
    "n": ["4", "8", "16", "32"],
    "float": ["0.25", "0.5", "0.75"],
    "str": ["gathering"],
    "fmt": ["v2"],
    "addr": ["127.0.0.1"],
}


def run(argv):
    return subprocess.run(argv, capture_output=True, text=True, timeout=120)


def probe_args(arg_spec, scratch):
    """Synthesizes one argv value per placeholder token of a flag spec."""
    values = []
    counts = {}
    for token in arg_spec.split():
        placeholder = PLACEHOLDER.match(token)
        if not placeholder:
            raise ValueError(f"unknown placeholder token {token!r}")
        name = placeholder.group(1)
        index = counts.get(name, 0)
        counts[name] = index + 1
        if name == "path":
            values.append(str(scratch / "probe"))
            continue
        pool = PROBE_VALUES.get(name)
        if not pool:
            raise ValueError(f"no probe value for <{name}>")
        values.append(pool[min(index, len(pool) - 1)])
    return values


def check_binary(binary, scratch):
    errors = []
    help_run = run([binary, "--help"])
    if help_run.returncode != 0:
        return [f"{binary}: --help exited {help_run.returncode}"]
    if not help_run.stdout.startswith("usage: "):
        errors.append(f"{binary}: --help does not start with 'usage: '")

    flags = []
    in_table = False
    for line in help_run.stdout.splitlines():
        if line == "flags:":
            in_table = True
            continue
        if in_table:
            row = FLAG_ROW.match(line)
            if row:
                flags.append((row.group(1), row.group(2).strip()))

    for name, arg_spec in flags:
        try:
            values = probe_args(arg_spec, scratch) if arg_spec else []
        except ValueError as error:
            errors.append(f"{binary}: {name}: {error}")
            continue
        probe = run([binary, name] + values + ["--help"])
        if probe.returncode != 0:
            errors.append(
                f"{binary}: documented flag {name} did not parse "
                f"(exit {probe.returncode}): {probe.stderr.strip()}")

    unknown = run([binary, "--definitely-not-a-flag"])
    if unknown.returncode != 2:
        errors.append(f"{binary}: unknown flag exited "
                      f"{unknown.returncode}, want 2")
    elif "unknown flag" not in unknown.stderr:
        errors.append(f"{binary}: unknown-flag message missing: "
                      f"{unknown.stderr.strip()!r}")
    return errors, len(flags)


def main():
    binaries = sys.argv[1:]
    if not binaries:
        print("usage: check_cli_help.py <binary> [<binary>...]",
              file=sys.stderr)
        sys.exit(2)
    failures = []
    probed = 0
    with tempfile.TemporaryDirectory(prefix="doda_cli_help_") as scratch:
        for binary in binaries:
            result = check_binary(binary, Path(scratch))
            if isinstance(result, list):
                failures.extend(result)
            else:
                errors, count = result
                failures.extend(errors)
                probed += count
    for failure in failures:
        print(f"check_cli_help: {failure}", file=sys.stderr)
    if failures:
        sys.exit(1)
    print(f"check_cli_help: OK ({len(binaries)} binaries, "
          f"{probed} documented flags probed)")


if __name__ == "__main__":
    main()
