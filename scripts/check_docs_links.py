#!/usr/bin/env python3
"""Checks every relative markdown link in the repo's documentation.

For each ``[text](target)`` in the checked files:
  * http(s)/mailto targets are skipped (no network in CI);
  * ``path`` must exist relative to the linking file;
  * ``path#anchor`` additionally requires a heading in the target file
    whose GitHub slug equals the anchor (``#anchor`` alone checks the
    linking file itself).

Usage: check_docs_links.py [files...]   (default: all tracked *.md)
"""

import re
import subprocess
import sys
from pathlib import Path

LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
FENCE = re.compile(r"```.*?```", re.DOTALL)


def github_slug(heading):
    heading = re.sub(r"[`*_]", "", heading.strip().lower())
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def anchors_of(path):
    text = FENCE.sub("", path.read_text(encoding="utf-8"))
    return {github_slug(match) for match in HEADING.findall(text)}


def tracked_markdown():
    out = subprocess.run(["git", "ls-files", "*.md"], capture_output=True,
                         text=True, check=True)
    return [Path(line) for line in out.stdout.splitlines() if line]


def main():
    files = ([Path(arg) for arg in sys.argv[1:]] if len(sys.argv) > 1
             else tracked_markdown())
    errors = []
    checked = 0
    for source in files:
        text = FENCE.sub("", source.read_text(encoding="utf-8"))
        for match in LINK.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            checked += 1
            path_part, _, anchor = target.partition("#")
            dest = (source if not path_part
                    else (source.parent / path_part).resolve())
            if not dest.exists():
                errors.append(f"{source}: broken link: {target}")
                continue
            if anchor and dest.suffix == ".md":
                if github_slug(anchor) not in anchors_of(dest):
                    errors.append(
                        f"{source}: missing anchor #{anchor} in {dest}")
    for error in errors:
        print(f"check_docs_links: {error}", file=sys.stderr)
    if errors:
        sys.exit(1)
    print(f"check_docs_links: OK ({checked} links in {len(files)} files)")


if __name__ == "__main__":
    main()
