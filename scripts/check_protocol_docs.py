#!/usr/bin/env python3
"""Replays the session examples of docs/PROTOCOL.md against a live dodad.

Every fenced block tagged ``jsonrpc`` in the doc is an executable session:

    ```jsonrpc
    $ dodad --max-open 1            # optional: extra dodad flags (one line)
    --> {"id":1,"method":"ping"}    # sent to the server verbatim
    <-- {"id":1,"result":{"ok":true}}   # next frame must match exactly
    <~~ {"method":"job.progress","params":"..."}  # skip 0+ matching frames
    ```

Matching is structural JSON (object order ignored); the string "..." in an
expected frame matches any value. A ``<~~`` line consumes frames matching
its pattern until one does not — that frame is then matched against the
next ``<--`` line.

Each session runs against a freshly started dodad on an ephemeral port,
with --store-root pointing at a scratch directory that holds ``docstore``
— a store recorded by the exact trace_record invocation PROTOCOL.md
documents — so replay examples work verbatim.

Usage:
    check_protocol_docs.py --doc docs/PROTOCOL.md \
        --dodad build/dodad --trace-record build/trace_record [--update]

--update rewrites every ``<--`` line in the doc with the frame actually
received (lines whose expected JSON contains "..." keep their wildcards
when they match), making golden refreshes mechanical after an intentional
protocol change.
"""

import argparse
import json
import re
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

RECV_TIMEOUT_S = 60

# The doc store every replay example assumes. Keep in sync with the
# trace_record command quoted in docs/PROTOCOL.md.
DOC_STORE_ARGS = ["--n", "16", "--trials", "4", "--length", "2048",
                  "--seed", "7"]


def fail(message):
    print(f"check_protocol_docs: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def json_matches(expected, actual):
    """Structural match; the string "..." in `expected` matches anything."""
    if expected == "...":
        return True
    if isinstance(expected, dict):
        if not isinstance(actual, dict):
            return False
        if set(expected) != set(actual):
            return False
        return all(json_matches(expected[k], actual[k]) for k in expected)
    if isinstance(expected, list):
        return (isinstance(actual, list) and len(expected) == len(actual)
                and all(json_matches(e, a)
                        for e, a in zip(expected, actual)))
    if isinstance(expected, bool) or isinstance(actual, bool):
        return expected is actual
    return expected == actual


class Session:
    def __init__(self, start_line):
        self.start_line = start_line  # 1-based line of the opening fence
        self.flags = []
        self.steps = []  # (kind, doc_line_index, payload)


def parse_doc(text):
    sessions = []
    lines = text.split("\n")
    session = None
    for index, line in enumerate(lines):
        stripped = line.strip()
        if session is None:
            if stripped == "```jsonrpc":
                session = Session(index + 1)
            continue
        if stripped == "```":
            sessions.append(session)
            session = None
            continue
        if not stripped or stripped.startswith("#"):
            continue
        if stripped.startswith("$ dodad"):
            session.flags = stripped[len("$ dodad"):].split()
        elif stripped.startswith("--> "):
            session.steps.append(("send", index, stripped[4:]))
        elif stripped.startswith("<-- "):
            session.steps.append(("expect", index, stripped[4:]))
        elif stripped.startswith("<~~ "):
            session.steps.append(("skip", index, stripped[4:]))
        else:
            fail(f"line {index + 1}: unrecognized session line: {line!r}")
    if session is not None:
        fail(f"unterminated ```jsonrpc block at line {session.start_line}")
    return lines, sessions


class Dodad:
    """One dodad process on an ephemeral port, plus a client connection."""

    def __init__(self, binary, store_root, flags):
        self.proc = subprocess.Popen(
            [str(binary), "--port", "0", "--store-root", str(store_root)]
            + flags,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        banner = self.proc.stdout.readline().strip()
        match = re.match(r"dodad listening on (\S+):(\d+)$", banner)
        if not match:
            self.proc.kill()
            fail(f"unexpected dodad banner: {banner!r}")
        self.sock = socket.create_connection(
            (match.group(1), int(match.group(2))), timeout=RECV_TIMEOUT_S)
        self.buffer = b""

    def send(self, line):
        self.sock.sendall(line.encode() + b"\n")

    def recv_frame(self):
        while b"\n" not in self.buffer:
            chunk = self.sock.recv(65536)
            if not chunk:
                fail("server closed the connection mid-session")
            self.buffer += chunk
        line, self.buffer = self.buffer.split(b"\n", 1)
        return json.loads(line)

    def stop(self):
        self.sock.close()
        self.proc.terminate()  # SIGTERM: dodad drains, then exits
        try:
            self.proc.wait(timeout=RECV_TIMEOUT_S)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            fail("dodad did not drain and exit after SIGTERM")


def run_session(session, binary, store_root, lines, update):
    server = Dodad(binary, store_root, session.flags)
    mismatches = 0
    pending = None  # a frame consumed by a skip that did not match
    try:
        for kind, doc_index, payload in session.steps:
            if kind == "send":
                server.send(payload)
                continue
            expected = json.loads(payload)
            if kind == "skip":
                while True:
                    frame = (pending if pending is not None
                             else server.recv_frame())
                    pending = None
                    if not json_matches(expected, frame):
                        pending = frame
                        break
                continue
            frame = pending if pending is not None else server.recv_frame()
            pending = None
            if json_matches(expected, frame):
                continue
            if update:
                lines[doc_index] = (
                    lines[doc_index][:lines[doc_index].index("<-- ")]
                    + "<-- " + json.dumps(frame, separators=(",", ":")))
                continue
            mismatches += 1
            print(f"line {doc_index + 1}: frame mismatch\n"
                  f"  expected: {payload}\n"
                  f"  received: {json.dumps(frame, separators=(',', ':'))}",
                  file=sys.stderr)
    finally:
        server.stop()
    return mismatches


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--doc", default="docs/PROTOCOL.md", type=Path)
    parser.add_argument("--dodad", default="build/dodad", type=Path)
    parser.add_argument("--trace-record", default="build/trace_record",
                        type=Path)
    parser.add_argument("--update", action="store_true",
                        help="rewrite <-- lines with the received frames")
    args = parser.parse_args()

    text = args.doc.read_text()
    lines, sessions = parse_doc(text)
    if not sessions:
        fail(f"{args.doc} has no ```jsonrpc blocks")

    with tempfile.TemporaryDirectory(prefix="doda_protocol_docs_") as root:
        store = subprocess.run(
            [str(args.trace_record), "--out", str(Path(root) / "docstore")]
            + DOC_STORE_ARGS, capture_output=True, text=True)
        if store.returncode != 0:
            fail(f"doc store recording failed:\n{store.stdout}"
                 f"{store.stderr}")
        total = 0
        for session in sessions:
            total += run_session(session, args.dodad, root, lines,
                                 args.update)

    if args.update:
        args.doc.write_text("\n".join(lines))
        print(f"check_protocol_docs: updated {args.doc} "
              f"({len(sessions)} sessions)")
        return
    if total:
        fail(f"{total} frame mismatch(es)")
    print(f"check_protocol_docs: OK ({len(sessions)} sessions, "
          f"{sum(len(s.steps) for s in sessions)} steps)")


if __name__ == "__main__":
    main()
