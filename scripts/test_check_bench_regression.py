#!/usr/bin/env python3
"""Unit tests for the CI perf-regression gate (check_bench_regression.py).

Run directly (``python3 scripts/test_check_bench_regression.py``) or via
unittest discovery; CI runs this as a workflow step before the gate itself
so a gate change can't silently break the perf guardrail.

Covers the gate's behavioral surface:
* pass / regression verdicts around the tolerance band,
* per-leg tolerance overrides (``--leg-tolerance LEG=TOL``),
* best-of-N re-runs (``--retries N --rerun-cmd CMD``) keeping the max per
  metric, including a rerun command that keeps failing,
* missing legs and missing metrics counting as regressions,
* malformed inputs (non-JSON / empty results) exiting 2,
* missing input files exiting 3 with an actionable message (a baseline
  that was never generated is distinct from one that is broken),
* argument validation (bad tolerances, retries without a rerun command),
* ``--parallel-leg`` skipping (single-core runs skip the named legs with
  a notice; multi-core runs still gate them),
* ``--min-speedup LEG/METRIC=FLOOR`` scaling floors (enforced on
  multi-core runs, skipped with a notice on single-core runs, missing
  legs/metrics fail, floor failures trigger the best-of-N retry loop),
* the hardware_concurrency mismatch warning,
* the markdown step-summary renderer and its ``GITHUB_STEP_SUMMARY``
  integration.
"""

from __future__ import annotations

import contextlib
import importlib.util
import io
import json
import os
import sys
import tempfile
import unittest

_HERE = os.path.dirname(os.path.abspath(__file__))
_SPEC = importlib.util.spec_from_file_location(
    "check_bench_regression",
    os.path.join(_HERE, "check_bench_regression.py"))
gate = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(gate)


def bench_doc(legs: dict[str, dict[str, float]],
              hardware_concurrency: int | None = None) -> dict:
    doc = {
        "bench": "unit-test",
        "results": [{"leg": name, **metrics} for name, metrics in legs.items()],
    }
    if hardware_concurrency is not None:
        doc["hardware_concurrency"] = hardware_concurrency
    return doc


class GateHarness(unittest.TestCase):
    """Runs the gate's main() against temp JSON files."""

    def setUp(self):
        self._dir = tempfile.TemporaryDirectory()
        self.addCleanup(self._dir.cleanup)

    def path(self, name: str) -> str:
        return os.path.join(self._dir.name, name)

    def write(self, name: str, doc) -> str:
        target = self.path(name)
        with open(target, "w", encoding="utf-8") as fh:
            if isinstance(doc, str):
                fh.write(doc)
            else:
                json.dump(doc, fh)
        return target

    def run_gate(self, *argv: str) -> int:
        old_argv = sys.argv
        sys.argv = ["check_bench_regression.py", *argv]
        try:
            return gate.main()
        except SystemExit as exc:  # load_results exits directly
            return int(exc.code)
        finally:
            sys.argv = old_argv

    @contextlib.contextmanager
    def assertLogsStderr(self, expected: str):
        """Captures stderr across the block; asserts `expected` appears.

        Yields a dict whose 'text' key holds the captured output once the
        block exits, for further assertions.
        """
        buffer = io.StringIO()
        captured: dict[str, str] = {}
        with contextlib.redirect_stderr(buffer):
            yield captured
        captured["text"] = buffer.getvalue()
        self.assertIn(expected, captured["text"])


class VerdictTests(GateHarness):
    def test_within_tolerance_passes(self):
        base = self.write("base.json",
                          bench_doc({"a": {"x_per_sec": 100.0}}))
        cur = self.write("cur.json", bench_doc({"a": {"x_per_sec": 80.0}}))
        self.assertEqual(self.run_gate(base, cur, "--tolerance", "0.25"), 0)

    def test_beyond_tolerance_fails(self):
        base = self.write("base.json",
                          bench_doc({"a": {"x_per_sec": 100.0}}))
        cur = self.write("cur.json", bench_doc({"a": {"x_per_sec": 70.0}}))
        self.assertEqual(self.run_gate(base, cur, "--tolerance", "0.25"), 1)

    def test_faster_than_baseline_passes(self):
        base = self.write("base.json",
                          bench_doc({"a": {"x_per_sec": 100.0}}))
        cur = self.write("cur.json", bench_doc({"a": {"x_per_sec": 400.0}}))
        self.assertEqual(self.run_gate(base, cur), 0)

    def test_non_per_sec_metrics_are_ignored(self):
        base = self.write(
            "base.json",
            bench_doc({"a": {"x_per_sec": 100.0, "bytes": 5000.0}}))
        cur = self.write(
            "cur.json",
            bench_doc({"a": {"x_per_sec": 99.0, "bytes": 1.0}}))
        self.assertEqual(self.run_gate(base, cur), 0)

    def test_keyed_by_n_when_no_leg(self):
        base = self.write(
            "base.json",
            {"results": [{"n": 64, "trials_per_sec": 100.0}]})
        cur = self.write(
            "cur.json",
            {"results": [{"n": 64, "trials_per_sec": 50.0}]})
        self.assertEqual(self.run_gate(base, cur), 1)


class LegToleranceTests(GateHarness):
    def test_override_widens_one_leg_only(self):
        base = self.write("base.json", bench_doc({
            "noisy": {"x_per_sec": 100.0},
            "stable": {"x_per_sec": 100.0},
        }))
        # Both at -30%: default band (25%) fails, the override (40%) passes.
        cur_both = bench_doc({
            "noisy": {"x_per_sec": 70.0},
            "stable": {"x_per_sec": 70.0},
        })
        cur = self.write("cur.json", cur_both)
        self.assertEqual(
            self.run_gate(base, cur, "--leg-tolerance", "noisy=0.4"), 1,
            "the non-overridden leg must still fail")
        cur_noisy_only = bench_doc({
            "noisy": {"x_per_sec": 70.0},
            "stable": {"x_per_sec": 100.0},
        })
        self.write("cur.json", cur_noisy_only)
        self.assertEqual(
            self.run_gate(base, cur, "--leg-tolerance", "noisy=0.4"), 0,
            "the override must absorb the noisy leg's slack")

    def test_bad_override_spec_is_rejected(self):
        base = self.write("base.json",
                          bench_doc({"a": {"x_per_sec": 1.0}}))
        cur = self.write("cur.json", bench_doc({"a": {"x_per_sec": 1.0}}))
        self.assertEqual(
            self.run_gate(base, cur, "--leg-tolerance", "nodelimiter"), 2)
        self.assertEqual(
            self.run_gate(base, cur, "--leg-tolerance", "a=1.5"), 2)

    def test_tolerance_out_of_range_is_rejected(self):
        base = self.write("base.json",
                          bench_doc({"a": {"x_per_sec": 1.0}}))
        cur = self.write("cur.json", bench_doc({"a": {"x_per_sec": 1.0}}))
        self.assertEqual(self.run_gate(base, cur, "--tolerance", "1.5"), 2)
        self.assertEqual(self.run_gate(base, cur, "--tolerance", "-0.1"), 2)


class RetryTests(GateHarness):
    def test_rerun_recovers_from_transient_dip(self):
        base = self.write("base.json",
                          bench_doc({"a": {"x_per_sec": 100.0}}))
        cur = self.write("cur.json", bench_doc({"a": {"x_per_sec": 10.0}}))
        good = self.write("good.json", bench_doc({"a": {"x_per_sec": 95.0}}))
        rerun = f"cp {good} {cur}"
        self.assertEqual(
            self.run_gate(base, cur, "--retries", "2", "--rerun-cmd", rerun),
            0)

    def test_best_of_n_keeps_max_per_metric(self):
        # Re-run is better on one metric, worse on the other; best-of-N
        # must combine the maxima and pass.
        base = self.write("base.json", bench_doc(
            {"a": {"x_per_sec": 100.0, "y_per_sec": 100.0}}))
        cur = self.write("cur.json", bench_doc(
            {"a": {"x_per_sec": 95.0, "y_per_sec": 10.0}}))
        second = self.write("second.json", bench_doc(
            {"a": {"x_per_sec": 10.0, "y_per_sec": 95.0}}))
        rerun = f"cp {second} {cur}"
        self.assertEqual(
            self.run_gate(base, cur, "--retries", "1", "--rerun-cmd", rerun),
            0)

    def test_persistent_regression_still_fails(self):
        base = self.write("base.json",
                          bench_doc({"a": {"x_per_sec": 100.0}}))
        cur = self.write("cur.json", bench_doc({"a": {"x_per_sec": 10.0}}))
        # The re-run rewrites the same regressed numbers.
        bad = self.write("bad.json", bench_doc({"a": {"x_per_sec": 12.0}}))
        rerun = f"cp {bad} {cur}"
        self.assertEqual(
            self.run_gate(base, cur, "--retries", "2", "--rerun-cmd", rerun),
            1)

    def test_failing_rerun_command_exits_2(self):
        base = self.write("base.json",
                          bench_doc({"a": {"x_per_sec": 100.0}}))
        cur = self.write("cur.json", bench_doc({"a": {"x_per_sec": 10.0}}))
        self.assertEqual(
            self.run_gate(base, cur, "--retries", "1", "--rerun-cmd",
                          "exit 7"),
            2)

    def test_retries_without_rerun_cmd_is_rejected(self):
        base = self.write("base.json",
                          bench_doc({"a": {"x_per_sec": 1.0}}))
        cur = self.write("cur.json", bench_doc({"a": {"x_per_sec": 1.0}}))
        self.assertEqual(self.run_gate(base, cur, "--retries", "1"), 2)
        self.assertEqual(self.run_gate(base, cur, "--retries", "-1"), 2)


class MissingDataTests(GateHarness):
    def test_missing_leg_is_a_regression(self):
        base = self.write("base.json", bench_doc({
            "a": {"x_per_sec": 100.0},
            "gone": {"x_per_sec": 100.0},
        }))
        cur = self.write("cur.json", bench_doc({"a": {"x_per_sec": 100.0}}))
        self.assertEqual(self.run_gate(base, cur), 1)

    def test_missing_metric_is_a_regression(self):
        base = self.write("base.json", bench_doc(
            {"a": {"x_per_sec": 100.0, "y_per_sec": 100.0}}))
        cur = self.write("cur.json", bench_doc({"a": {"x_per_sec": 100.0}}))
        self.assertEqual(self.run_gate(base, cur), 1)

    def test_extra_current_legs_are_ignored(self):
        # A new bench leg without a baseline entry must not fail the gate
        # (the baseline is refreshed in the same PR that adds the leg).
        base = self.write("base.json", bench_doc({"a": {"x_per_sec": 100.0}}))
        cur = self.write("cur.json", bench_doc({
            "a": {"x_per_sec": 100.0},
            "new": {"x_per_sec": 1.0},
        }))
        self.assertEqual(self.run_gate(base, cur), 0)

    def test_no_comparable_metrics_exits_2(self):
        base = self.write("base.json", bench_doc({"a": {"bytes": 5.0}}))
        cur = self.write("cur.json", bench_doc({"a": {"bytes": 5.0}}))
        self.assertEqual(self.run_gate(base, cur), 2)


class ParallelLegTests(GateHarness):
    def test_parallel_leg_skipped_on_single_core_runner(self):
        # The parallel leg regressed hard, but the current run only had one
        # core: it must be skipped with a notice, and the gate must pass on
        # the remaining legs.
        base = self.write("base.json", bench_doc({
            "serial": {"x_per_sec": 100.0},
            "pool": {"x_per_sec": 100.0},
        }, hardware_concurrency=1))
        cur = self.write("cur.json", bench_doc({
            "serial": {"x_per_sec": 100.0},
            "pool": {"x_per_sec": 5.0},
        }, hardware_concurrency=1))
        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            code = self.run_gate(base, cur, "--parallel-leg", "pool")
        self.assertEqual(code, 0)
        self.assertIn("skipping parallel leg(s) ['pool']", buffer.getvalue())
        self.assertIn("1 leg(s)/floor(s) skipped", buffer.getvalue())

    def test_parallel_leg_still_gated_on_multi_core_runner(self):
        base = self.write("base.json", bench_doc(
            {"pool": {"x_per_sec": 100.0}}, hardware_concurrency=8))
        cur = self.write("cur.json", bench_doc(
            {"pool": {"x_per_sec": 5.0}}, hardware_concurrency=8))
        self.assertEqual(
            self.run_gate(base, cur, "--parallel-leg", "pool"), 1)

    def test_skipped_leg_missing_from_current_is_not_a_regression(self):
        # A single-core run may not even emit the parallel leg; skipping
        # must win over the missing-leg regression rule.
        base = self.write("base.json", bench_doc({
            "serial": {"x_per_sec": 100.0},
            "pool": {"x_per_sec": 100.0},
        }, hardware_concurrency=4))
        cur = self.write("cur.json", bench_doc(
            {"serial": {"x_per_sec": 100.0}}, hardware_concurrency=1))
        self.assertEqual(
            self.run_gate(base, cur, "--parallel-leg", "pool"), 0)

    def test_concurrency_mismatch_warns(self):
        base = self.write("base.json", bench_doc(
            {"a": {"x_per_sec": 100.0}}, hardware_concurrency=8))
        cur = self.write("cur.json", bench_doc(
            {"a": {"x_per_sec": 100.0}}, hardware_concurrency=2))
        with self.assertLogsStderr("hardware_concurrency=8") as captured:
            self.assertEqual(self.run_gate(base, cur), 0)
        self.assertIn("reports 2", captured["text"])
        self.assertIn("not comparable", captured["text"])

    def test_matching_concurrency_does_not_warn(self):
        base = self.write("base.json", bench_doc(
            {"a": {"x_per_sec": 100.0}}, hardware_concurrency=4))
        cur = self.write("cur.json", bench_doc(
            {"a": {"x_per_sec": 100.0}}, hardware_concurrency=4))
        buffer = io.StringIO()
        with contextlib.redirect_stderr(buffer):
            self.assertEqual(self.run_gate(base, cur), 0)
        self.assertNotIn("warning", buffer.getvalue())


class MinSpeedupTests(GateHarness):
    FLAG = "intra/intra_speedup_t8=1.5"

    def legs(self, speedup: float) -> dict:
        return {"intra": {"x_per_sec": 100.0,
                          "intra_speedup_t8": speedup}}

    def test_floor_met_passes_on_multi_core(self):
        base = self.write("base.json",
                          bench_doc(self.legs(3.0), hardware_concurrency=8))
        cur = self.write("cur.json",
                         bench_doc(self.legs(2.1), hardware_concurrency=8))
        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            code = self.run_gate(base, cur, "--min-speedup", self.FLAG)
        self.assertEqual(code, 0)
        self.assertIn("1 floor(s) checked", buffer.getvalue())

    def test_below_floor_fails_on_multi_core(self):
        base = self.write("base.json",
                          bench_doc(self.legs(2.0), hardware_concurrency=8))
        cur = self.write("cur.json",
                         bench_doc(self.legs(1.1), hardware_concurrency=8))
        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            code = self.run_gate(base, cur, "--min-speedup", self.FLAG)
        self.assertEqual(code, 1)
        self.assertIn("1 floor failure(s)", buffer.getvalue())

    def test_floor_skipped_on_single_core_runner(self):
        # The speedup is a property of the machine, not the code: a
        # single-core runner can't scale, so the floor must be waived.
        base = self.write("base.json",
                          bench_doc(self.legs(2.0), hardware_concurrency=1))
        cur = self.write("cur.json",
                         bench_doc(self.legs(0.9), hardware_concurrency=1))
        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            code = self.run_gate(base, cur, "--min-speedup", self.FLAG)
        self.assertEqual(code, 0)
        self.assertIn("scaling floors (--min-speedup) are skipped",
                      buffer.getvalue())

    def test_missing_leg_fails(self):
        base = self.write("base.json", bench_doc(
            {"a": {"x_per_sec": 1.0}}, hardware_concurrency=8))
        cur = self.write("cur.json", bench_doc(
            {"a": {"x_per_sec": 1.0}}, hardware_concurrency=8))
        self.assertEqual(
            self.run_gate(base, cur, "--min-speedup", self.FLAG), 1)

    def test_missing_metric_fails(self):
        legs = {"intra": {"x_per_sec": 1.0}}  # leg exists, metric doesn't
        base = self.write("base.json",
                          bench_doc(legs, hardware_concurrency=8))
        cur = self.write("cur.json", bench_doc(legs, hardware_concurrency=8))
        self.assertEqual(
            self.run_gate(base, cur, "--min-speedup", self.FLAG), 1)

    def test_bad_specs_are_rejected(self):
        base = self.write("base.json", bench_doc({"a": {"x_per_sec": 1.0}}))
        cur = self.write("cur.json", bench_doc({"a": {"x_per_sec": 1.0}}))
        for spec in ("nodelimiter", "leg/metric", "leg/=1.5",
                     "/metric=1.5", "leg/metric=zero", "leg/metric=-1"):
            self.assertEqual(
                self.run_gate(base, cur, "--min-speedup", spec), 2,
                f"spec {spec!r} must be rejected")

    def test_floor_failure_triggers_retry_and_best_of_n_recovers(self):
        # First run is below the floor, the re-run clears it: the retry
        # loop must fire on floor failures (not just *_per_sec deltas) and
        # merge_best must fold the floored metric, not only *_per_sec.
        base = self.write("base.json",
                          bench_doc(self.legs(2.0), hardware_concurrency=8))
        cur = self.write("cur.json",
                         bench_doc(self.legs(1.2), hardware_concurrency=8))
        good = self.write("good.json",
                          bench_doc(self.legs(1.8), hardware_concurrency=8))
        rerun = f"cp {good} {cur}"
        with contextlib.redirect_stdout(io.StringIO()):
            code = self.run_gate(base, cur, "--min-speedup", self.FLAG,
                                 "--retries", "1", "--rerun-cmd", rerun)
        self.assertEqual(code, 0)

    def test_floor_only_gate_does_not_exit_2(self):
        # A gate invoked purely as a scaling-floor check (no *_per_sec
        # overlap with the baseline) must not trip the "no comparable
        # metrics" guard.
        base = self.write("base.json", bench_doc(
            {"intra": {"bytes": 1.0}}, hardware_concurrency=8))
        cur = self.write("cur.json", bench_doc(
            {"intra": {"intra_speedup_t8": 2.0}}, hardware_concurrency=8))
        with contextlib.redirect_stdout(io.StringIO()):
            self.assertEqual(
                self.run_gate(base, cur, "--min-speedup", self.FLAG), 0)

    def test_summary_marks_floor_rows(self):
        base = self.write("base.json",
                          bench_doc(self.legs(2.0), hardware_concurrency=8))
        cur = self.write("cur.json",
                         bench_doc(self.legs(1.1), hardware_concurrency=8))
        summary = self.path("summary.md")
        os.environ["GITHUB_STEP_SUMMARY"] = summary
        try:
            with contextlib.redirect_stdout(io.StringIO()):
                self.assertEqual(
                    self.run_gate(base, cur, "--min-speedup", self.FLAG), 1)
        finally:
            del os.environ["GITHUB_STEP_SUMMARY"]
        with open(summary, "r", encoding="utf-8") as fh:
            text = fh.read()
        self.assertIn("❌ BELOW FLOOR 1.5", text)


class MarkdownSummaryTests(GateHarness):
    def render(self, base_legs, cur_legs, expect_code, *argv):
        base = self.write("base.json", bench_doc(base_legs,
                                                 hardware_concurrency=1))
        cur = self.write("cur.json", bench_doc(cur_legs,
                                               hardware_concurrency=1))
        summary = self.path("summary.md")
        os.environ["GITHUB_STEP_SUMMARY"] = summary
        try:
            with contextlib.redirect_stdout(io.StringIO()):
                self.assertEqual(self.run_gate(base, cur, *argv), expect_code)
        finally:
            del os.environ["GITHUB_STEP_SUMMARY"]
        with open(summary, "r", encoding="utf-8") as fh:
            return fh.read()

    def test_summary_table_written_on_pass(self):
        text = self.render({"a": {"x_per_sec": 100.0}},
                           {"a": {"x_per_sec": 95.0}}, 0)
        self.assertIn("### Perf gate — `unit-test`: ✅ pass", text)
        self.assertIn("| entry | metric | baseline | current | delta "
                      "| verdict |", text)
        self.assertIn("| a | x_per_sec | 100 | 95 | -5.0% | ✅ ok", text)

    def test_summary_table_written_on_fail(self):
        text = self.render({"a": {"x_per_sec": 100.0}},
                           {"a": {"x_per_sec": 50.0}}, 1)
        self.assertIn("❌ **FAIL**", text)
        self.assertIn("-50.0%", text)
        self.assertIn("❌ REGRESSION (band 25%)", text)

    def test_summary_marks_skipped_and_faster_rows(self):
        text = self.render(
            {"pool": {"x_per_sec": 100.0}, "a": {"x_per_sec": 100.0}},
            {"pool": {"x_per_sec": 1.0}, "a": {"x_per_sec": 400.0}},
            0, "--parallel-leg", "pool")
        self.assertIn("⏭️ skipped (single-core runner)", text)
        self.assertIn("🔼 faster", text)

    def test_no_summary_env_means_no_write(self):
        base = self.write("base.json", bench_doc({"a": {"x_per_sec": 1.0}}))
        cur = self.write("cur.json", bench_doc({"a": {"x_per_sec": 1.0}}))
        os.environ.pop("GITHUB_STEP_SUMMARY", None)
        with contextlib.redirect_stdout(io.StringIO()):
            self.assertEqual(self.run_gate(base, cur), 0)
        self.assertFalse(os.path.exists(self.path("summary.md")))

    def test_renderer_formats_missing_values_as_dashes(self):
        rows = [{"entry": "leg=gone", "metric": "*",
                 "verdict": "missing from current"}]
        text = gate.render_markdown("b", rows, ok=False)
        self.assertIn("| gone | * | — | — | — | ❌ missing from current |",
                      text)


class MalformedInputTests(GateHarness):
    def test_missing_baseline_exits_3_with_hint(self):
        # A baseline that was never generated/committed is a setup problem,
        # not a data problem: distinct exit code and an actionable message.
        cur = self.write("cur.json", bench_doc({"a": {"x_per_sec": 1.0}}))
        with self.assertLogsStderr("baseline file") as captured:
            self.assertEqual(self.run_gate(self.path("absent.json"), cur), 3)
        self.assertIn("does not exist", captured["text"])
        self.assertIn("--out", captured["text"])

    def test_missing_current_exits_3(self):
        base = self.write("base.json", bench_doc({"a": {"x_per_sec": 1.0}}))
        with self.assertLogsStderr("current file") as captured:
            self.assertEqual(self.run_gate(base, self.path("absent.json")), 3)
        self.assertIn("does not exist", captured["text"])

    def test_non_json_baseline_exits_2(self):
        # Present but broken is NOT exit 3: it deserves investigation.
        base = self.write("base.json", "this is not json {")
        cur = self.write("cur.json", bench_doc({"a": {"x_per_sec": 1.0}}))
        self.assertEqual(self.run_gate(base, cur), 2)

    def test_non_json_current_exits_2(self):
        base = self.write("base.json", bench_doc({"a": {"x_per_sec": 1.0}}))
        cur = self.write("cur.json", "this is not json {")
        self.assertEqual(self.run_gate(base, cur), 2)

    def test_empty_results_exits_2(self):
        base = self.write("base.json", {"results": []})
        cur = self.write("cur.json", bench_doc({"a": {"x_per_sec": 1.0}}))
        self.assertEqual(self.run_gate(base, cur), 2)

    def test_results_not_a_list_exits_2(self):
        base = self.write("base.json", {"results": {"a": 1}})
        cur = self.write("cur.json", bench_doc({"a": {"x_per_sec": 1.0}}))
        self.assertEqual(self.run_gate(base, cur), 2)


if __name__ == "__main__":
    unittest.main(verbosity=2)
