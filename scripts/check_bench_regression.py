#!/usr/bin/env python3
"""CI perf-regression gate for the plain-binary benches.

Compares a freshly produced bench JSON (bench_throughput --quick,
bench_trace_replay --quick, bench_offline_optimal --quick) against a
committed baseline and fails when any throughput metric regressed beyond
the tolerance band.

Matching: entries of the top-level ``results`` array are keyed by their
``leg`` field if present, otherwise by ``n``. Within a matched pair,
every numeric field ending in ``_per_sec`` (higher is better) is
compared; a current value below ``baseline * (1 - tolerance)`` is a
regression. Faster-than-baseline results always pass (print a note so
baselines can be refreshed when hardware improves).

Noise hardening (the CI container is 1-2 shared cores):

* ``--leg-tolerance LEG=TOL`` (repeatable) widens the band for an
  individually noisy leg (short legs such as ``record_v1`` jitter more
  than long replay legs) without loosening the whole gate.
* ``--retries N --rerun-cmd CMD`` re-runs the bench command when a
  regression is found and keeps the *best* value seen per metric
  (best-of-N): a transient scheduling hiccup must lose to the gate, a
  real regression must survive it. CMD is run through the shell and must
  rewrite the CURRENT json in place.

Usage:
    check_bench_regression.py BASELINE CURRENT [--tolerance 0.25]
        [--leg-tolerance LEG=TOL ...] [--retries N] [--rerun-cmd CMD]

Refreshing a baseline after an intentional perf change:
    ./build/bench_throughput --quick --out ci/baselines/bench_throughput_ci.json
    ./build/bench_trace_replay --quick --out ci/baselines/bench_trace_replay_ci.json

Exit codes: 0 ok, 1 regression detected, 2 bad input (malformed JSON,
missing metrics, bad flags), 3 input file does not exist. The distinct
code 3 lets CI tell "nobody committed / produced the file" (typically a
new bench whose baseline was never generated) apart from "the file is
there but broken", which deserves investigation rather than a refresh.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys


def entry_key(entry: dict) -> str:
    if "leg" in entry:
        return f"leg={entry['leg']}"
    if "n" in entry:
        return f"n={entry['n']}"
    return "?"


def load_results(path: str, role: str = "input") -> tuple[dict, dict[str, dict]]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except FileNotFoundError:
        # Distinct from malformed input: the file simply is not there.
        hint = (" — generate it with the bench's --out flag and commit it"
                if role == "baseline" else " — did the bench run?")
        print(f"error: {role} file {path} does not exist{hint}",
              file=sys.stderr)
        sys.exit(3)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {role} file {path}: {exc}",
              file=sys.stderr)
        sys.exit(2)
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        print(f"error: {path} has no 'results' array", file=sys.stderr)
        sys.exit(2)
    table = {entry_key(e): e for e in results if isinstance(e, dict)}
    return doc, table


def merge_best(best: dict[str, dict], fresh: dict[str, dict]) -> None:
    """Folds a re-run into ``best``, keeping the max of every metric."""
    for key, fresh_entry in fresh.items():
        entry = best.setdefault(key, dict(fresh_entry))
        for metric, value in fresh_entry.items():
            if not metric.endswith("_per_sec"):
                continue
            if not isinstance(value, (int, float)):
                continue
            old = entry.get(metric)
            if not isinstance(old, (int, float)) or value > old:
                entry[metric] = value


def tolerance_for(key: str, default: float, overrides: dict[str, float]) -> float:
    """Per-leg override: keys look like 'leg=replay_streaming_serial'."""
    name = key.split("=", 1)[1] if "=" in key else key
    return overrides.get(name, default)


def evaluate(baseline: dict[str, dict], current: dict[str, dict],
             default_tolerance: float,
             overrides: dict[str, float]) -> tuple[int, int]:
    regressions = 0
    compared = 0
    header = (f"{'entry':<34} {'metric':<24} {'baseline':>12} "
              f"{'current':>12} {'ratio':>7}")
    print(header)
    print("-" * len(header))
    for key, base_entry in baseline.items():
        tolerance = tolerance_for(key, default_tolerance, overrides)
        floor_factor = 1.0 - tolerance
        cur_entry = current.get(key)
        if cur_entry is None:
            print(f"{key:<34} {'<missing from current>':<24}")
            regressions += 1
            continue
        for metric, base_value in base_entry.items():
            if not metric.endswith("_per_sec"):
                continue
            if not isinstance(base_value, (int, float)) or base_value <= 0:
                continue
            cur_value = cur_entry.get(metric)
            if not isinstance(cur_value, (int, float)):
                print(f"{key:<34} {metric:<24} {'<missing metric>':>12}")
                regressions += 1
                continue
            compared += 1
            ratio = cur_value / base_value
            verdict = ""
            if cur_value < base_value * floor_factor:
                verdict = f"  REGRESSION (band {tolerance:.0%})"
                regressions += 1
            elif ratio > 1.0 / floor_factor:
                verdict = "  (faster — consider refreshing baseline)"
            print(f"{key:<34} {metric:<24} {base_value:>12.1f} "
                  f"{cur_value:>12.1f} {ratio:>6.2f}x{verdict}")
    return regressions, compared


def parse_leg_tolerance(spec: str) -> tuple[str, float]:
    if "=" not in spec:
        raise argparse.ArgumentTypeError(
            f"--leg-tolerance expects LEG=TOL, got '{spec}'")
    name, _, value = spec.partition("=")
    try:
        tol = float(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"--leg-tolerance {spec}: bad tolerance") from exc
    if not 0.0 <= tol < 1.0:
        raise argparse.ArgumentTypeError(
            f"--leg-tolerance {spec}: tolerance must be in [0, 1)")
    return name, tol


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("current", help="freshly produced bench JSON")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional slowdown before failing (default 0.25)",
    )
    parser.add_argument(
        "--leg-tolerance",
        type=parse_leg_tolerance,
        action="append",
        default=[],
        metavar="LEG=TOL",
        help="per-leg tolerance override (repeatable), e.g. record_v1=0.4",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        help="re-run the bench up to N times on regression, keeping the "
             "best value per metric (requires --rerun-cmd)",
    )
    parser.add_argument(
        "--rerun-cmd",
        default="",
        help="shell command that regenerates CURRENT in place",
    )
    args = parser.parse_args()
    if not 0.0 <= args.tolerance < 1.0:
        print("error: --tolerance must be in [0, 1)", file=sys.stderr)
        return 2
    if args.retries < 0:
        print("error: --retries must be >= 0", file=sys.stderr)
        return 2
    if args.retries > 0 and not args.rerun_cmd:
        print("error: --retries needs --rerun-cmd", file=sys.stderr)
        return 2
    overrides = dict(args.leg_tolerance)

    base_doc, baseline = load_results(args.baseline, "baseline")
    _, current = load_results(args.current, "current")

    bench = base_doc.get("bench", "?")
    print(f"bench '{bench}': comparing {args.current} against "
          f"{args.baseline} (tolerance {args.tolerance:.0%}"
          + (f", overrides {overrides}" if overrides else "") + ")")

    best = {key: dict(entry) for key, entry in current.items()}
    attempt = 0
    while True:
        regressions, compared = evaluate(baseline, best, args.tolerance,
                                         overrides)
        if compared == 0:
            print("error: no comparable *_per_sec metrics found",
                  file=sys.stderr)
            return 2
        if regressions == 0:
            print(f"\nOK: {compared} metrics within tolerance"
                  + (f" (after {attempt} re-run(s))" if attempt else ""))
            return 0
        if attempt >= args.retries:
            print(f"\nFAIL: {regressions} regression(s) beyond the "
                  f"tolerance band"
                  + (f" (best of {attempt + 1} runs)" if attempt else ""))
            return 1
        attempt += 1
        print(f"\nregression detected — re-running bench "
              f"({attempt}/{args.retries}): {args.rerun_cmd}")
        proc = subprocess.run(args.rerun_cmd, shell=True)
        if proc.returncode != 0:
            print(f"error: re-run command failed with exit "
                  f"{proc.returncode}", file=sys.stderr)
            return 2
        _, fresh = load_results(args.current, "current")
        merge_best(best, fresh)


if __name__ == "__main__":
    sys.exit(main())
