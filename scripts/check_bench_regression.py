#!/usr/bin/env python3
"""CI perf-regression gate for the plain-binary benches.

Compares a freshly produced bench JSON (bench_throughput --quick,
bench_trace_replay --quick, bench_offline_optimal --quick) against a
committed baseline and fails when any throughput metric regressed beyond
the tolerance band.

Matching: entries of the top-level ``results`` array are keyed by their
``leg`` field if present, otherwise by ``n``. Within a matched pair,
every numeric field ending in ``_per_sec`` (higher is better) is
compared; a current value below ``baseline * (1 - tolerance)`` is a
regression. Faster-than-baseline results always pass (print a note so
baselines can be refreshed when hardware improves).

Noise hardening (the CI container is 1-2 shared cores):

* ``--leg-tolerance LEG=TOL`` (repeatable) widens the band for an
  individually noisy leg (short legs such as ``record_v1`` jitter more
  than long replay legs) without loosening the whole gate.
* ``--retries N --rerun-cmd CMD`` re-runs the bench command when a
  regression is found and keeps the *best* value seen per metric
  (best-of-N): a transient scheduling hiccup must lose to the gate, a
  real regression must survive it. CMD is run through the shell and must
  rewrite the CURRENT json in place.
* ``--parallel-leg LEG`` (repeatable) names legs whose throughput only
  means anything with real cores behind it (thread-pool decode, parallel
  replay). When the CURRENT run reports ``hardware_concurrency`` 1 those
  legs are skipped with a visible notice instead of gating on what is
  effectively a serialized run.
* A ``hardware_concurrency`` mismatch between baseline and current run is
  warned about: deltas on parallel legs across different core counts are
  apples to oranges and the baseline deserves a refresh.

Scaling floors: ``--min-speedup LEG/METRIC=FLOOR`` (repeatable) checks an
*absolute* property of the CURRENT run rather than a delta against the
baseline: the named metric (e.g. the intra-trial engine's
``intra_speedup_t8``) must be at least FLOOR. This is the multi-core
scaling-curve gate — a baseline delta cannot express "8 workers must
actually beat the serial loop", only "no slower than last time". Floors
are skipped with a notice when the current run reports
``hardware_concurrency`` 1 (a speedup on a single core is meaningless),
and a floor failure triggers the same best-of-N retry loop as a
regression (keeping the max of the named metric across re-runs).

When the ``GITHUB_STEP_SUMMARY`` environment variable is set (GitHub
Actions sets it for every step) a markdown verdict table — leg, baseline,
current, delta, verdict — is appended to that file so the gate's outcome
is readable from the run's Summary page without digging through logs.

Usage:
    check_bench_regression.py BASELINE CURRENT [--tolerance 0.25]
        [--leg-tolerance LEG=TOL ...] [--parallel-leg LEG ...]
        [--min-speedup LEG/METRIC=FLOOR ...]
        [--retries N] [--rerun-cmd CMD]

Refreshing a baseline after an intentional perf change:
    ./build/bench_throughput --quick --out ci/baselines/bench_throughput_ci.json
    ./build/bench_trace_replay --quick --out ci/baselines/bench_trace_replay_ci.json

Exit codes: 0 ok, 1 regression detected, 2 bad input (malformed JSON,
missing metrics, bad flags), 3 input file does not exist. The distinct
code 3 lets CI tell "nobody committed / produced the file" (typically a
new bench whose baseline was never generated) apart from "the file is
there but broken", which deserves investigation rather than a refresh.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys


def entry_key(entry: dict) -> str:
    if "leg" in entry:
        return f"leg={entry['leg']}"
    if "n" in entry:
        return f"n={entry['n']}"
    return "?"


def load_results(path: str, role: str = "input") -> tuple[dict, dict[str, dict]]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except FileNotFoundError:
        # Distinct from malformed input: the file simply is not there.
        hint = (" — generate it with the bench's --out flag and commit it"
                if role == "baseline" else " — did the bench run?")
        print(f"error: {role} file {path} does not exist{hint}",
              file=sys.stderr)
        sys.exit(3)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {role} file {path}: {exc}",
              file=sys.stderr)
        sys.exit(2)
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        print(f"error: {path} has no 'results' array", file=sys.stderr)
        sys.exit(2)
    table = {entry_key(e): e for e in results if isinstance(e, dict)}
    return doc, table


def merge_best(best: dict[str, dict], fresh: dict[str, dict],
               extra_metrics: frozenset[str] = frozenset()) -> None:
    """Folds a re-run into ``best``, keeping the max of every metric.

    Throughput metrics (``*_per_sec``) always fold; ``extra_metrics``
    names additional higher-is-better metrics (the --min-speedup ones).
    """
    for key, fresh_entry in fresh.items():
        entry = best.setdefault(key, dict(fresh_entry))
        for metric, value in fresh_entry.items():
            if not metric.endswith("_per_sec") and metric not in extra_metrics:
                continue
            if not isinstance(value, (int, float)):
                continue
            old = entry.get(metric)
            if not isinstance(old, (int, float)) or value > old:
                entry[metric] = value


def tolerance_for(key: str, default: float, overrides: dict[str, float]) -> float:
    """Per-leg override: keys look like 'leg=replay_streaming_serial'."""
    name = key.split("=", 1)[1] if "=" in key else key
    return overrides.get(name, default)


def leg_name(key: str) -> str:
    """'leg=decode_v4' -> 'decode_v4' (n-keyed entries pass through)."""
    return key.split("=", 1)[1] if "=" in key else key


def evaluate(baseline: dict[str, dict], current: dict[str, dict],
             default_tolerance: float, overrides: dict[str, float],
             skip_legs: frozenset[str] = frozenset(),
             ) -> tuple[int, int, list[dict]]:
    """Returns (regressions, compared, rows).

    ``rows`` is the per-metric verdict table (entry/metric/baseline/
    current/ratio/verdict) that feeds the markdown step summary; legs in
    ``skip_legs`` are reported but neither compared nor failed.
    """
    regressions = 0
    compared = 0
    rows: list[dict] = []
    header = (f"{'entry':<34} {'metric':<24} {'baseline':>12} "
              f"{'current':>12} {'ratio':>7}")
    print(header)
    print("-" * len(header))
    for key, base_entry in baseline.items():
        if leg_name(key) in skip_legs:
            print(f"{key:<34} {'<skipped: single-core runner>':<24}")
            rows.append({"entry": key, "metric": "*",
                         "verdict": "skipped (single-core runner)"})
            continue
        tolerance = tolerance_for(key, default_tolerance, overrides)
        floor_factor = 1.0 - tolerance
        cur_entry = current.get(key)
        if cur_entry is None:
            print(f"{key:<34} {'<missing from current>':<24}")
            rows.append({"entry": key, "metric": "*",
                         "verdict": "missing from current"})
            regressions += 1
            continue
        for metric, base_value in base_entry.items():
            if not metric.endswith("_per_sec"):
                continue
            if not isinstance(base_value, (int, float)) or base_value <= 0:
                continue
            cur_value = cur_entry.get(metric)
            if not isinstance(cur_value, (int, float)):
                print(f"{key:<34} {metric:<24} {'<missing metric>':>12}")
                rows.append({"entry": key, "metric": metric,
                             "baseline": base_value,
                             "verdict": "missing metric"})
                regressions += 1
                continue
            compared += 1
            ratio = cur_value / base_value
            verdict = ""
            row_verdict = f"ok (band {tolerance:.0%})"
            if cur_value < base_value * floor_factor:
                verdict = f"  REGRESSION (band {tolerance:.0%})"
                row_verdict = f"REGRESSION (band {tolerance:.0%})"
                regressions += 1
            elif ratio > 1.0 / floor_factor:
                verdict = "  (faster — consider refreshing baseline)"
                row_verdict = "faster — consider refreshing baseline"
            rows.append({"entry": key, "metric": metric,
                         "baseline": base_value, "current": cur_value,
                         "ratio": ratio, "verdict": row_verdict})
            print(f"{key:<34} {metric:<24} {base_value:>12.1f} "
                  f"{cur_value:>12.1f} {ratio:>6.2f}x{verdict}")
    return regressions, compared, rows


def check_min_speedups(current: dict[str, dict],
                       specs: list[tuple[str, str, float]],
                       skip: bool) -> tuple[int, list[dict]]:
    """Absolute scaling floors against the CURRENT run.

    Returns (failures, rows). With ``skip`` (single-core runner) every
    floor is reported as skipped and never failed.
    """
    failures = 0
    rows: list[dict] = []
    for leg, metric, floor in specs:
        key = f"leg={leg}"
        label = f"{metric} >= {floor:g}"
        if skip:
            print(f"{key:<34} {label:<24} {'<skipped: single-core runner>'}")
            rows.append({"entry": key, "metric": metric,
                         "baseline": floor,
                         "verdict": "skipped (single-core runner)"})
            continue
        entry = current.get(key)
        value = entry.get(metric) if isinstance(entry, dict) else None
        if not isinstance(value, (int, float)):
            what = "missing leg" if entry is None else "missing metric"
            print(f"{key:<34} {label:<24} {'<' + what + '>':>12}")
            rows.append({"entry": key, "metric": metric, "baseline": floor,
                         "verdict": what})
            failures += 1
            continue
        ok = value >= floor
        verdict = (f"ok (floor {floor:g})" if ok
                   else f"BELOW FLOOR {floor:g}")
        rows.append({"entry": key, "metric": metric, "baseline": floor,
                     "current": value, "verdict": verdict})
        print(f"{key:<34} {label:<24} {floor:>12.2f} {value:>12.2f}"
              + ("" if ok else f"  BELOW FLOOR"))
        if not ok:
            failures += 1
    return failures, rows


def render_markdown(bench: str, rows: list[dict], ok: bool) -> str:
    """Markdown verdict table for the GitHub Actions step summary."""

    def num(value) -> str:
        return f"{value:.4g}" if isinstance(value, (int, float)) else "—"

    status = "✅ pass" if ok else "❌ **FAIL**"
    lines = [
        f"### Perf gate — `{bench}`: {status}",
        "",
        "| entry | metric | baseline | current | delta | verdict |",
        "|---|---|---:|---:|---:|---|",
    ]
    for row in rows:
        ratio = row.get("ratio")
        delta = (f"{(ratio - 1.0) * 100.0:+.1f}%"
                 if isinstance(ratio, (int, float)) else "—")
        verdict = row["verdict"]
        if verdict.startswith("REGRESSION") or verdict.startswith(
                "BELOW FLOOR"):
            verdict = f"❌ {verdict}"
        elif verdict.startswith("missing"):
            verdict = f"❌ {verdict}"
        elif verdict.startswith("skipped"):
            verdict = f"⏭️ {verdict}"
        elif verdict.startswith("faster"):
            verdict = f"🔼 {verdict}"
        else:
            verdict = f"✅ {verdict}"
        lines.append(f"| {leg_name(row['entry'])} | {row['metric']} | "
                     f"{num(row.get('baseline'))} | "
                     f"{num(row.get('current'))} | {delta} | {verdict} |")
    lines.append("")
    return "\n".join(lines) + "\n"


def write_step_summary(text: str) -> None:
    """Appends to $GITHUB_STEP_SUMMARY when set (no-op elsewhere)."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    try:
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(text)
    except OSError as exc:
        print(f"warning: cannot write step summary {path}: {exc}",
              file=sys.stderr)


def parse_min_speedup(spec: str) -> tuple[str, str, float]:
    """'aggregation_intra_n4096/intra_speedup_t8=1.5' -> (leg, metric, floor)."""
    head, sep, value = spec.partition("=")
    if not sep or "/" not in head:
        raise argparse.ArgumentTypeError(
            f"--min-speedup expects LEG/METRIC=FLOOR, got '{spec}'")
    leg, _, metric = head.partition("/")
    if not leg or not metric:
        raise argparse.ArgumentTypeError(
            f"--min-speedup expects LEG/METRIC=FLOOR, got '{spec}'")
    try:
        floor = float(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"--min-speedup {spec}: bad floor") from exc
    if floor <= 0.0:
        raise argparse.ArgumentTypeError(
            f"--min-speedup {spec}: floor must be positive")
    return leg, metric, floor


def parse_leg_tolerance(spec: str) -> tuple[str, float]:
    if "=" not in spec:
        raise argparse.ArgumentTypeError(
            f"--leg-tolerance expects LEG=TOL, got '{spec}'")
    name, _, value = spec.partition("=")
    try:
        tol = float(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"--leg-tolerance {spec}: bad tolerance") from exc
    if not 0.0 <= tol < 1.0:
        raise argparse.ArgumentTypeError(
            f"--leg-tolerance {spec}: tolerance must be in [0, 1)")
    return name, tol


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("current", help="freshly produced bench JSON")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional slowdown before failing (default 0.25)",
    )
    parser.add_argument(
        "--leg-tolerance",
        type=parse_leg_tolerance,
        action="append",
        default=[],
        metavar="LEG=TOL",
        help="per-leg tolerance override (repeatable), e.g. record_v1=0.4",
    )
    parser.add_argument(
        "--parallel-leg",
        action="append",
        default=[],
        metavar="LEG",
        help="leg that needs >1 hardware thread to be meaningful; skipped "
             "with a notice when the current run reports "
             "hardware_concurrency 1 (repeatable)",
    )
    parser.add_argument(
        "--min-speedup",
        type=parse_min_speedup,
        action="append",
        default=[],
        metavar="LEG/METRIC=FLOOR",
        help="absolute scaling floor on the current run (repeatable), e.g. "
             "aggregation_intra_n4096/intra_speedup_t8=1.5; skipped when "
             "the current run reports hardware_concurrency 1",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        help="re-run the bench up to N times on regression, keeping the "
             "best value per metric (requires --rerun-cmd)",
    )
    parser.add_argument(
        "--rerun-cmd",
        default="",
        help="shell command that regenerates CURRENT in place",
    )
    args = parser.parse_args()
    if not 0.0 <= args.tolerance < 1.0:
        print("error: --tolerance must be in [0, 1)", file=sys.stderr)
        return 2
    if args.retries < 0:
        print("error: --retries must be >= 0", file=sys.stderr)
        return 2
    if args.retries > 0 and not args.rerun_cmd:
        print("error: --retries needs --rerun-cmd", file=sys.stderr)
        return 2
    overrides = dict(args.leg_tolerance)

    base_doc, baseline = load_results(args.baseline, "baseline")
    cur_doc, current = load_results(args.current, "current")

    bench = base_doc.get("bench", "?")
    print(f"bench '{bench}': comparing {args.current} against "
          f"{args.baseline} (tolerance {args.tolerance:.0%}"
          + (f", overrides {overrides}" if overrides else "") + ")")

    base_hc = base_doc.get("hardware_concurrency")
    cur_hc = cur_doc.get("hardware_concurrency")
    if (isinstance(base_hc, int) and isinstance(cur_hc, int)
            and base_hc != cur_hc):
        print(f"warning: baseline was recorded at hardware_concurrency="
              f"{base_hc} but this run reports {cur_hc} — parallel-leg "
              f"deltas are not comparable across core counts; consider "
              f"refreshing the baseline", file=sys.stderr)

    skip_legs = frozenset()
    if args.parallel_leg and cur_hc == 1:
        skip_legs = frozenset(args.parallel_leg)
        print(f"notice: hardware_concurrency is 1 — skipping parallel "
              f"leg(s) {sorted(skip_legs)} (their throughput is "
              f"meaningless on a single-core runner)")
    skip_floors = bool(args.min_speedup) and cur_hc == 1
    if skip_floors:
        print("notice: hardware_concurrency is 1 — scaling floors "
              "(--min-speedup) are skipped (a speedup on a single core is "
              "meaningless)")
    floor_metrics = frozenset(metric for _, metric, _ in args.min_speedup)

    best = {key: dict(entry) for key, entry in current.items()}
    attempt = 0
    while True:
        regressions, compared, rows = evaluate(
            baseline, best, args.tolerance, overrides, skip_legs)
        floor_failures, floor_rows = check_min_speedups(
            best, args.min_speedup, skip_floors)
        rows += floor_rows
        failures = regressions + floor_failures
        skipped = sum(1 for r in rows if r["verdict"].startswith("skipped"))
        if compared == 0 and skipped == 0 and not args.min_speedup:
            print("error: no comparable *_per_sec metrics found",
                  file=sys.stderr)
            return 2
        if failures == 0:
            print(f"\nOK: {compared} metrics within tolerance"
                  + (f", {len(args.min_speedup)} floor(s) checked"
                     if args.min_speedup and not skip_floors else "")
                  + (f", {skipped} leg(s)/floor(s) skipped" if skipped else "")
                  + (f" (after {attempt} re-run(s))" if attempt else ""))
            write_step_summary(render_markdown(bench, rows, ok=True))
            return 0
        if attempt >= args.retries:
            print(f"\nFAIL: {regressions} regression(s) beyond the "
                  f"tolerance band, {floor_failures} floor failure(s)"
                  + (f" (best of {attempt + 1} runs)" if attempt else ""))
            write_step_summary(render_markdown(bench, rows, ok=False))
            return 1
        attempt += 1
        print(f"\nregression detected — re-running bench "
              f"({attempt}/{args.retries}): {args.rerun_cmd}")
        proc = subprocess.run(args.rerun_cmd, shell=True)
        if proc.returncode != 0:
            print(f"error: re-run command failed with exit "
                  f"{proc.returncode}", file=sys.stderr)
            return 2
        _, fresh = load_results(args.current, "current")
        merge_best(best, fresh, floor_metrics)


if __name__ == "__main__":
    sys.exit(main())
