#!/usr/bin/env python3
"""CI perf-regression gate for the plain-binary benches.

Compares a freshly produced bench JSON (bench_throughput --quick,
bench_trace_replay --quick) against a committed baseline and fails when
any throughput metric regressed beyond the tolerance band.

Matching: entries of the top-level ``results`` array are keyed by their
``leg`` field if present, otherwise by ``n``. Within a matched pair,
every numeric field ending in ``_per_sec`` (higher is better) is
compared; a current value below ``baseline * (1 - tolerance)`` is a
regression. Faster-than-baseline results always pass (print a note so
baselines can be refreshed when hardware improves).

Usage:
    check_bench_regression.py BASELINE CURRENT [--tolerance 0.25]

Refreshing a baseline after an intentional perf change:
    ./build/bench_throughput --quick --out ci/baselines/bench_throughput_ci.json
    ./build/bench_trace_replay --quick --out ci/baselines/bench_trace_replay_ci.json

Exit codes: 0 ok, 1 regression detected, 2 bad input.
"""

from __future__ import annotations

import argparse
import json
import sys


def entry_key(entry: dict) -> str:
    if "leg" in entry:
        return f"leg={entry['leg']}"
    if "n" in entry:
        return f"n={entry['n']}"
    return "?"


def load_results(path: str) -> tuple[dict, dict[str, dict]]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        print(f"error: {path} has no 'results' array", file=sys.stderr)
        sys.exit(2)
    table = {entry_key(e): e for e in results if isinstance(e, dict)}
    return doc, table


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("current", help="freshly produced bench JSON")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional slowdown before failing (default 0.25)",
    )
    args = parser.parse_args()
    if not 0.0 <= args.tolerance < 1.0:
        print("error: --tolerance must be in [0, 1)", file=sys.stderr)
        return 2

    base_doc, baseline = load_results(args.baseline)
    _, current = load_results(args.current)

    bench = base_doc.get("bench", "?")
    floor_factor = 1.0 - args.tolerance
    regressions = 0
    compared = 0

    print(f"bench '{bench}': comparing {args.current} against {args.baseline} "
          f"(tolerance {args.tolerance:.0%})")
    header = f"{'entry':<34} {'metric':<24} {'baseline':>12} {'current':>12} {'ratio':>7}"
    print(header)
    print("-" * len(header))

    for key, base_entry in baseline.items():
        cur_entry = current.get(key)
        if cur_entry is None:
            print(f"{key:<34} {'<missing from current>':<24}")
            regressions += 1
            continue
        for metric, base_value in base_entry.items():
            if not metric.endswith("_per_sec"):
                continue
            if not isinstance(base_value, (int, float)) or base_value <= 0:
                continue
            cur_value = cur_entry.get(metric)
            if not isinstance(cur_value, (int, float)):
                print(f"{key:<34} {metric:<24} {'<missing metric>':>12}")
                regressions += 1
                continue
            compared += 1
            ratio = cur_value / base_value
            verdict = ""
            if cur_value < base_value * floor_factor:
                verdict = "  REGRESSION"
                regressions += 1
            elif ratio > 1.0 / floor_factor:
                verdict = "  (faster — consider refreshing baseline)"
            print(f"{key:<34} {metric:<24} {base_value:>12.1f} "
                  f"{cur_value:>12.1f} {ratio:>6.2f}x{verdict}")

    if compared == 0:
        print("error: no comparable *_per_sec metrics found", file=sys.stderr)
        return 2
    if regressions:
        print(f"\nFAIL: {regressions} regression(s) beyond the "
              f"{args.tolerance:.0%} tolerance band")
        return 1
    print(f"\nOK: {compared} metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
