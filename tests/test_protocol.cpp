// Protocol-layer units: the Json wire type, the bit-exact hexfloat
// rendering, frame construction, and parseRequest's error paths —
// including a seed-deterministic mutation fuzz over well-formed frames
// (scale it up with DODA_FUZZ_ITERS, as tests/test_fuzz.cpp does).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "algorithms/gathering.hpp"
#include "server/json.hpp"
#include "server/protocol.hpp"
#include "sim/experiment.hpp"
#include "util/rng.hpp"

namespace doda::server {
namespace {

std::uint64_t bitsOf(double value) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

// ------------------------------------------------------------------ Json

TEST(Json, DumpIsByteStableAndOrderPreserving) {
  Json frame = Json::object({{"id", 7},
                             {"method", "job.submit"},
                             {"params", Json::object({{"n", 16},
                                                      {"zipf", 1.5}})}});
  EXPECT_EQ(frame.dump(),
            "{\"id\":7,\"method\":\"job.submit\","
            "\"params\":{\"n\":16,\"zipf\":1.5}}");
  // Insertion order is the wire order — dump twice, byte-identical.
  EXPECT_EQ(frame.dump(), frame.dump());
}

TEST(Json, IntegersStayIntegersAndDoublesStayDoubles) {
  EXPECT_EQ(Json(std::int64_t{42}).dump(), "42");
  EXPECT_EQ(Json(42.0).dump(), "42.0");  // the ".0" marks the double kind
  EXPECT_EQ(Json(-0.5).dump(), "-0.5");
  // Round-trip preserves the kind.
  EXPECT_TRUE(Json::parse("42").isInt());
  EXPECT_TRUE(Json::parse("42.0").type() == Json::Type::kDouble);
  // Equality is strict about the numeric kind.
  EXPECT_FALSE(Json(std::int64_t{1}) == Json(1.0));
}

TEST(Json, ParseDumpRoundTripsEveryType) {
  const std::vector<std::string> documents = {
      "null",
      "true",
      "false",
      "0",
      "-9223372036854775808",
      "9223372036854775807",
      "3.141592653589793",
      "1e-300",
      "\"\"",
      "\"plain\"",
      "\"quote \\\" backslash \\\\ tab \\t newline \\n\"",
      "[]",
      "[1,2,[3,[4]]]",
      "{}",
      "{\"a\":1,\"b\":{\"c\":[true,null]},\"d\":\"x\"}",
  };
  for (const auto& text : documents) {
    const Json parsed = Json::parse(text);
    EXPECT_EQ(parsed.dump(), text) << "document: " << text;
    EXPECT_TRUE(Json::parse(parsed.dump()) == parsed);
  }
}

TEST(Json, ParseHandlesUnicodeEscapes) {
  const Json doc = Json::parse("\"\\u0041\\u00e9\\ud83d\\ude00\"");
  EXPECT_EQ(doc.asString(), "A\xc3\xa9\xf0\x9f\x98\x80");  // A é 😀
}

TEST(Json, EqualityIgnoresObjectOrder) {
  const Json a = Json::parse("{\"x\":1,\"y\":2}");
  const Json b = Json::parse("{\"y\":2,\"x\":1}");
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == Json::parse("{\"x\":1,\"y\":3}"));
  EXPECT_FALSE(a == Json::parse("{\"x\":1}"));
}

TEST(Json, ParseRejectsMalformedInput) {
  const std::vector<std::string> bad = {
      "",
      "{",
      "}",
      "{\"a\":}",
      "{\"a\" 1}",
      "[1,]",
      "[1 2]",
      "nul",
      "truth",
      "+1",
      "01",
      "1.",
      "1e",
      "\"unterminated",
      "\"bad escape \\q\"",
      "\"half surrogate \\ud83d\"",
      "\"raw control \x01\"",
      "{} trailing",
      "1 1",
  };
  for (const auto& text : bad)
    EXPECT_THROW(Json::parse(text), JsonParseError) << "document: " << text;
}

TEST(Json, ParseBoundsNestingDepth) {
  std::string deep;
  for (int i = 0; i < 70; ++i) deep += '[';
  for (int i = 0; i < 70; ++i) deep += ']';
  EXPECT_THROW(Json::parse(deep), JsonParseError);       // default cap 64
  EXPECT_NO_THROW(Json::parse(deep, 128));               // explicit headroom
}

TEST(Json, HugeIntegersFallBackToDouble) {
  // One past int64 max: still parses, as a double.
  const Json doc = Json::parse("9223372036854775808");
  EXPECT_TRUE(doc.type() == Json::Type::kDouble);
  EXPECT_DOUBLE_EQ(doc.asDouble(), 9223372036854775808.0);
}

TEST(Json, FindAndAccessors) {
  const Json doc = Json::parse("{\"a\":1,\"b\":\"x\",\"c\":[true]}");
  ASSERT_NE(doc.find("a"), nullptr);
  EXPECT_EQ(doc.find("a")->asInt(), 1);
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_EQ(doc.find("c")->asArray().size(), 1u);
  EXPECT_EQ(Json(5).find("a"), nullptr);  // non-objects find nothing
}

// ------------------------------------------------------------- hexfloat

TEST(HexDouble, RoundTripsBitExactly) {
  const std::vector<double> values = {
      0.0,
      -0.0,
      1.0,
      -1.0,
      0.5,
      1.0 / 3.0,
      3.141592653589793,
      6.02214076e23,
      1e-300,
      std::numeric_limits<double>::max(),
      std::numeric_limits<double>::min(),        // smallest normal
      std::numeric_limits<double>::denorm_min(),  // smallest subnormal
      -std::numeric_limits<double>::denorm_min() * 12345,
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
  };
  for (const double value : values) {
    const std::string text = hexDouble(value);
    const double back = parseHexDouble(text);
    EXPECT_EQ(bitsOf(back), bitsOf(value))
        << "value " << value << " rendered as " << text;
    // The rendering must also be a valid C hexfloat for strtod.
    EXPECT_EQ(bitsOf(std::strtod(text.c_str(), nullptr)), bitsOf(value));
  }
  EXPECT_TRUE(std::isnan(parseHexDouble(
      hexDouble(std::numeric_limits<double>::quiet_NaN()))));
}

TEST(HexDouble, FixedFormsAreStable) {
  EXPECT_EQ(hexDouble(0.0), "0x0p+0");
  EXPECT_EQ(hexDouble(-0.0), "-0x0p+0");
  EXPECT_EQ(hexDouble(1.0), "0x1.0000000000000p+0");
  EXPECT_EQ(hexDouble(2.0), "0x1.0000000000000p+1");
  EXPECT_EQ(hexDouble(1.5), "0x1.8000000000000p+0");
  EXPECT_EQ(hexDouble(std::numeric_limits<double>::denorm_min()),
            "0x1.0000000000000p-1074");
}

TEST(HexDouble, ParserAcceptsStandardVariantsAndRejectsJunk) {
  EXPECT_EQ(parseHexDouble("0x.8p+1"), 1.0);
  EXPECT_EQ(parseHexDouble("0x10p0"), 16.0);
  EXPECT_EQ(parseHexDouble("-0X1P-1"), -0.5);
  EXPECT_THROW(parseHexDouble("1.5"), std::invalid_argument);
  EXPECT_THROW(parseHexDouble("0x"), std::invalid_argument);
  EXPECT_THROW(parseHexDouble("0x1p"), std::invalid_argument);
  EXPECT_THROW(parseHexDouble("0x1p+2x"), std::invalid_argument);
}

TEST(StatsJson, ShapeMatchesProtocolSpec) {
  sim::MeasureConfig config;
  config.node_count = 8;
  config.trials = 16;
  config.seed = 42;
  config.threads = 1;
  const auto result = sim::measureRandomized(
      config, [](sim::TrialContext&) {
        return std::make_unique<algorithms::Gathering>();
      });
  const Json stats = statsJson(result);
  const Json* interactions = stats.find("interactions");
  ASSERT_NE(interactions, nullptr);
  for (const char* key : {"count", "mean", "stddev", "ci95", "min", "max",
                          "mean_hex", "stddev_hex"})
    EXPECT_NE(interactions->find(key), nullptr) << "missing key " << key;
  EXPECT_EQ(interactions->find("count")->asInt(), 16);
  // The hexfloat twin decodes to the exact decimal field's value.
  EXPECT_EQ(bitsOf(parseHexDouble(interactions->find("mean_hex")->asString())),
            bitsOf(result.interactions.mean()));
  ASSERT_NE(stats.find("failed_trials"), nullptr);
  EXPECT_EQ(stats.find("failed_trials")->asInt(), 0);
}

// --------------------------------------------------------- parseRequest

int codeOf(const ProtocolError& e) { return static_cast<int>(e.code); }

testing::AssertionResult failsWith(const std::string& line, ErrorCode code,
                                   std::size_t max_frame = 1 << 20) {
  try {
    parseRequest(line, max_frame);
    return testing::AssertionFailure() << "parsed: " << line;
  } catch (const ProtocolError& e) {
    if (e.code == code) return testing::AssertionSuccess();
    return testing::AssertionFailure()
           << "expected code " << static_cast<int>(code) << ", got "
           << codeOf(e) << " for: " << line;
  }
}

TEST(ParseRequest, AcceptsMinimalAndFullFrames) {
  const Request bare = parseRequest("{\"id\":1,\"method\":\"ping\"}", 1 << 20);
  EXPECT_EQ(bare.method, "ping");
  EXPECT_EQ(bare.id.asInt(), 1);
  EXPECT_TRUE(bare.params.isObject());
  EXPECT_TRUE(bare.params.asObject().empty());

  const Request full = parseRequest(
      "{\"id\":\"abc\",\"method\":\"job.status\",\"params\":{\"job\":3}}",
      1 << 20);
  EXPECT_EQ(full.id.asString(), "abc");
  EXPECT_EQ(full.params.find("job")->asInt(), 3);
}

TEST(ParseRequest, ErrorPaths) {
  EXPECT_TRUE(failsWith("not json", ErrorCode::kParseError));
  EXPECT_TRUE(failsWith("{\"id\":1,\"method\":\"ping\"", ErrorCode::kParseError));
  EXPECT_TRUE(failsWith("[1,2,3]", ErrorCode::kInvalidRequest));
  EXPECT_TRUE(failsWith("\"ping\"", ErrorCode::kInvalidRequest));
  EXPECT_TRUE(failsWith("{\"method\":\"ping\"}", ErrorCode::kInvalidRequest));
  EXPECT_TRUE(failsWith("{\"id\":null,\"method\":\"ping\"}",
                        ErrorCode::kInvalidRequest));
  EXPECT_TRUE(failsWith("{\"id\":[1],\"method\":\"ping\"}",
                        ErrorCode::kInvalidRequest));
  EXPECT_TRUE(failsWith("{\"id\":1}", ErrorCode::kInvalidRequest));
  EXPECT_TRUE(failsWith("{\"id\":1,\"method\":7}", ErrorCode::kInvalidRequest));
  EXPECT_TRUE(failsWith("{\"id\":1,\"method\":\"ping\",\"params\":[]}",
                        ErrorCode::kInvalidParams));
  EXPECT_TRUE(failsWith(std::string(200, 'x'), ErrorCode::kFrameTooLarge,
                        /*max_frame=*/128));
}

TEST(Frames, ResponseErrorAndNotificationShapes) {
  EXPECT_EQ(makeResponse(Json(1), Json::object({{"ok", true}})).dump(),
            "{\"id\":1,\"result\":{\"ok\":true}}");
  EXPECT_EQ(makeError(Json(), ErrorCode::kParseError, "bad").dump(),
            "{\"id\":null,\"error\":{\"code\":-32700,\"message\":\"bad\"}}");
  EXPECT_EQ(makeNotification("job.progress",
                             Json::object({{"job", 1}})).dump(),
            "{\"method\":\"job.progress\",\"params\":{\"job\":1}}");
}

// ---------------------------------------------------------------- fuzz

std::size_t fuzzIters(std::size_t fallback) {
  const char* env = std::getenv("DODA_FUZZ_ITERS");
  if (env == nullptr) return fallback;
  const unsigned long long parsed = std::strtoull(env, nullptr, 10);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

/// Mutates well-formed frames byte-wise and feeds them to parseRequest:
/// every outcome must be a parsed Request or a ProtocolError — never a
/// crash, never a different exception type escaping the parser.
TEST(ParseRequestFuzz, MutatedFramesNeverEscapeTheErrorModel) {
  const std::vector<std::string> seeds = {
      "{\"id\":1,\"method\":\"ping\"}",
      "{\"id\":2,\"method\":\"job.submit\",\"params\":{\"kind\":"
      "\"randomized\",\"n\":16,\"trials\":8,\"seed\":7,\"zipf\":1.5}}",
      "{\"id\":\"s\",\"method\":\"job.subscribe\",\"params\":{\"job\":1}}",
      "{\"id\":3,\"method\":\"job.result\",\"params\":{\"job\":"
      "9223372036854775807}}",
  };
  util::Rng rng(0xF00DU);
  const std::size_t iterations = fuzzIters(2000);
  std::size_t parsed_ok = 0;
  for (std::size_t i = 0; i < iterations; ++i) {
    std::string frame = seeds[rng.below(seeds.size())];
    const std::size_t mutations = 1 + rng.below(4);
    for (std::size_t m = 0; m < mutations; ++m) {
      const std::size_t pos = rng.below(frame.size());
      switch (rng.below(4)) {
        case 0:  // flip to a random byte (printable-biased)
          frame[pos] = static_cast<char>(32 + rng.below(96));
          break;
        case 1:  // delete
          frame.erase(pos, 1);
          break;
        case 2:  // duplicate
          frame.insert(pos, 1, frame[pos]);
          break;
        default:  // splice structural noise
          frame.insert(pos, "{[\",:");
          break;
      }
      if (frame.empty()) frame = "x";
    }
    try {
      (void)parseRequest(frame, 1 << 16);
      ++parsed_ok;
    } catch (const ProtocolError&) {
      // expected for most mutants
    }
  }
  // Sanity: the corpus is not trivially all-invalid or all-valid.
  EXPECT_LT(parsed_ok, iterations);
}

}  // namespace
}  // namespace doda::server
