#include "sim/experiment.hpp"

#include <gtest/gtest.h>

#include "algorithms/full_knowledge.hpp"
#include "algorithms/future_aware.hpp"
#include "algorithms/gathering.hpp"
#include "algorithms/waiting.hpp"
#include "algorithms/waiting_greedy.hpp"

namespace doda::sim {
namespace {

AlgorithmFactory gatheringFactory() {
  return [](TrialContext&) { return std::make_unique<algorithms::Gathering>(); };
}

TEST(MeasureRandomized, RunsRequestedTrials) {
  MeasureConfig config;
  config.node_count = 8;
  config.trials = 10;
  const auto r = measureRandomized(config, gatheringFactory());
  EXPECT_EQ(r.interactions.count() + r.failed_trials, 10u);
  EXPECT_EQ(r.failed_trials, 0u);
  EXPECT_GT(r.interactions.mean(), 0.0);
}

TEST(MeasureRandomized, SameSeedIsReproducible) {
  MeasureConfig config;
  config.node_count = 10;
  config.trials = 8;
  config.seed = 42;
  const auto a = measureRandomized(config, gatheringFactory());
  const auto b = measureRandomized(config, gatheringFactory());
  EXPECT_DOUBLE_EQ(a.interactions.mean(), b.interactions.mean());
  EXPECT_DOUBLE_EQ(a.interactions.stddev(), b.interactions.stddev());
}

TEST(MeasureRandomized, DifferentSeedsDiffer) {
  MeasureConfig a, b;
  a.node_count = b.node_count = 10;
  a.trials = b.trials = 8;
  a.seed = 1;
  b.seed = 2;
  const auto ra = measureRandomized(a, gatheringFactory());
  const auto rb = measureRandomized(b, gatheringFactory());
  EXPECT_NE(ra.interactions.mean(), rb.interactions.mean());
}

TEST(MeasureRandomized, CapCausesFailures) {
  MeasureConfig config;
  config.node_count = 12;
  config.trials = 5;
  config.max_interactions = 3;  // far below any plausible termination
  const auto r = measureRandomized(config, gatheringFactory());
  EXPECT_EQ(r.failed_trials, 5u);
  EXPECT_EQ(r.interactions.count(), 0u);
}

TEST(MeasureRandomized, WaitingGreedyFactoryGetsWorkingOracle) {
  MeasureConfig config;
  config.node_count = 12;
  config.trials = 6;
  const auto r = measureRandomized(config, [](TrialContext& ctx) {
    return std::make_unique<algorithms::WaitingGreedy>(ctx.meet_time, 200);
  });
  EXPECT_EQ(r.failed_trials, 0u);
}

TEST(MeasureRandomized, ZipfAdversaryWorks) {
  MeasureConfig config;
  config.node_count = 10;
  config.trials = 6;
  config.zipf_exponent = 1.0;
  const auto r = measureRandomized(config, gatheringFactory());
  EXPECT_EQ(r.failed_trials, 0u);
}

TEST(MeasureOfflineOptimal, ProducesCostOne) {
  MeasureConfig config;
  config.node_count = 12;
  config.trials = 6;
  const auto r = measureOfflineOptimal(config);
  EXPECT_EQ(r.failed_trials, 0u);
  EXPECT_DOUBLE_EQ(r.cost.mean(), 1.0);
  // The offline optimum can never beat n-1 interactions.
  EXPECT_GE(r.interactions.min(), static_cast<double>(config.node_count - 1));
}

TEST(MeasureMaterialized, FullKnowledgeHasCostOne) {
  MeasureConfig config;
  config.node_count = 10;
  config.trials = 6;
  const auto r = measureMaterialized(
      config, /*initial_length=*/600,
      [](const dynagraph::InteractionSequence& seq, const core::SystemInfo&) {
        return std::make_unique<algorithms::FullKnowledgeOptimal>(seq);
      });
  EXPECT_EQ(r.failed_trials, 0u);
  EXPECT_DOUBLE_EQ(r.cost.mean(), 1.0);
}

TEST(MeasureMaterialized, FutureAwareCostIsSmall) {
  MeasureConfig config;
  config.node_count = 10;
  config.trials = 6;
  const auto r = measureMaterialized(
      config, /*initial_length=*/1200,
      [](const dynagraph::InteractionSequence& seq, const core::SystemInfo&) {
        return std::make_unique<algorithms::FutureAware>(seq);
      });
  EXPECT_EQ(r.failed_trials, 0u);
  // Paper Thm 6: cost <= n.
  EXPECT_LE(r.cost.max(), static_cast<double>(config.node_count));
}

TEST(MeasureWithCost, GatheringCostAtLeastOne) {
  MeasureConfig config;
  config.node_count = 10;
  config.trials = 6;
  const auto r = measureWithCost(config, /*length_hint=*/2000,
                                 gatheringFactory());
  EXPECT_EQ(r.failed_trials, 0u);
  EXPECT_GE(r.cost.min(), 1.0);
  EXPECT_EQ(r.cost.count(), r.interactions.count());
}

}  // namespace
}  // namespace doda::sim
