#include "analysis/reachability.hpp"

#include <gtest/gtest.h>

#include "analysis/convergecast.hpp"
#include "dynagraph/traces.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace doda::analysis {
namespace {

using dynagraph::kNever;
using testing::ix;

TEST(TemporalReachability, ChainSequence) {
  // 0-1 at t0, 1-2 at t1: journeys 0->2 exist, 2->0 do not.
  const InteractionSequence seq{ix(0, 1), ix(1, 2)};
  const auto r = temporalReachability(seq, 3);
  EXPECT_EQ(r.arrival[0][1], 0u);
  EXPECT_EQ(r.arrival[0][2], 1u);
  EXPECT_EQ(r.arrival[2][1], 1u);
  EXPECT_EQ(r.arrival[2][0], kNever);  // would need decreasing times
  EXPECT_EQ(r.temporal_diameter, kNever);
  EXPECT_LT(r.reachable_fraction, 1.0);
  EXPECT_GT(r.reachable_fraction, 0.5);
}

TEST(TemporalReachability, SelfArrivalIsStart) {
  const InteractionSequence seq{ix(0, 1)};
  const auto r = temporalReachability(seq, 2, /*start=*/0);
  EXPECT_EQ(r.arrival[0][0], 0u);
  EXPECT_EQ(r.arrival[1][1], 0u);
}

TEST(TemporalReachability, FullyReachableOnRepeatedRounds) {
  util::Rng rng(1);
  const auto g = dynagraph::traces::ringGraph(6);
  const auto seq = dynagraph::traces::roundRobin(g, 6);
  const auto r = temporalReachability(seq, 6);
  EXPECT_DOUBLE_EQ(r.reachable_fraction, 1.0);
  EXPECT_NE(r.temporal_diameter, kNever);
  for (core::NodeId u = 0; u < 6; ++u)
    EXPECT_NE(r.broadcast_completion[u], kNever);
}

TEST(TemporalReachability, DiameterBoundsBroadcasts) {
  util::Rng rng(2);
  const auto seq = dynagraph::traces::uniformRandom(8, 300, rng);
  const auto r = temporalReachability(seq, 8);
  if (r.temporal_diameter == kNever) GTEST_SKIP();
  for (core::NodeId u = 0; u < 8; ++u) {
    ASSERT_NE(r.broadcast_completion[u], kNever);
    EXPECT_LE(r.broadcast_completion[u], r.temporal_diameter);
  }
}

class SinkReachableParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SinkReachableParam, EqualsOptCompletion) {
  // The reversal argument of Thm 8: the earliest window end by which every
  // node has a journey into the sink equals the optimal convergecast
  // completion. Two independent implementations must agree.
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 3 + rng.below(8);
    const auto seq =
        dynagraph::traces::uniformRandom(n, 20 + rng.below(200), rng);
    const core::NodeId sink = static_cast<core::NodeId>(rng.below(n));
    const core::Time start = rng.below(5);
    EXPECT_EQ(sinkReachableBy(seq, n, sink, start),
              optCompletion(seq, n, sink, start))
        << "n=" << n << " sink=" << sink << " start=" << start;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SinkReachableParam,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(SinkReachableBy, UnreachableIsNever) {
  const InteractionSequence seq{ix(0, 1)};
  EXPECT_EQ(sinkReachableBy(seq, 3, 0), kNever);
}

}  // namespace
}  // namespace doda::analysis
