#include <gtest/gtest.h>

#include <map>
#include <set>

#include "dynagraph/interaction_sequence.hpp"
#include "dynagraph/lazy_sequence.hpp"
#include "dynagraph/traces.hpp"
#include "util/rng.hpp"

namespace doda::dynagraph {
namespace {

TEST(Interaction, NormalizesEndpointOrder) {
  const Interaction i(5, 2);
  EXPECT_EQ(i.a(), 2u);
  EXPECT_EQ(i.b(), 5u);
  EXPECT_EQ(i, Interaction(2, 5));
}

TEST(Interaction, RejectsSelfInteraction) {
  EXPECT_THROW(Interaction(3, 3), std::invalid_argument);
}

TEST(Interaction, InvolvesAndOther) {
  const Interaction i(1, 4);
  EXPECT_TRUE(i.involves(1));
  EXPECT_TRUE(i.involves(4));
  EXPECT_FALSE(i.involves(2));
  EXPECT_EQ(i.other(1), 4u);
  EXPECT_EQ(i.other(4), 1u);
  EXPECT_THROW(i.other(2), std::invalid_argument);
}

TEST(InteractionSequence, BasicAccess) {
  InteractionSequence seq{Interaction(0, 1), Interaction(1, 2)};
  EXPECT_EQ(seq.length(), 2u);
  EXPECT_EQ(seq.at(0), Interaction(0, 1));
  EXPECT_THROW(seq.at(2), std::out_of_range);
  EXPECT_FALSE(seq.empty());
  EXPECT_TRUE(InteractionSequence{}.empty());
}

TEST(InteractionSequence, SliceClampsBounds) {
  InteractionSequence seq{Interaction(0, 1), Interaction(1, 2),
                          Interaction(2, 3)};
  const auto mid = seq.slice(1, 2);
  ASSERT_EQ(mid.length(), 1u);
  EXPECT_EQ(mid.at(0), Interaction(1, 2));
  EXPECT_EQ(seq.slice(2, 100).length(), 1u);
  EXPECT_EQ(seq.slice(5, 10).length(), 0u);
  EXPECT_EQ(seq.slice(2, 1).length(), 0u);
}

TEST(InteractionSequence, ReversedIsInvolution) {
  util::Rng rng(3);
  const auto seq = traces::uniformRandom(6, 40, rng);
  const auto rev = seq.reversed();
  EXPECT_EQ(rev.length(), seq.length());
  EXPECT_EQ(rev.at(0), seq.at(39));
  EXPECT_EQ(rev.reversed(), seq);
}

TEST(InteractionSequence, RepeatedConcatenates) {
  InteractionSequence seq{Interaction(0, 1), Interaction(1, 2)};
  const auto triple = seq.repeated(3);
  EXPECT_EQ(triple.length(), 6u);
  EXPECT_EQ(triple.at(4), Interaction(0, 1));
  EXPECT_EQ(seq.repeated(0).length(), 0u);
}

TEST(InteractionSequence, UnderlyingGraphCollectsEdges) {
  InteractionSequence seq{Interaction(0, 1), Interaction(0, 1),
                          Interaction(2, 1)};
  const auto g = seq.underlyingGraph(4);
  EXPECT_EQ(g.edgeCount(), 2u);
  EXPECT_TRUE(g.hasEdge(0, 1));
  EXPECT_TRUE(g.hasEdge(1, 2));
  EXPECT_FALSE(g.hasEdge(0, 2));
  EXPECT_THROW(seq.underlyingGraph(2), std::out_of_range);
}

TEST(InteractionSequence, MinNodeCount) {
  EXPECT_EQ(InteractionSequence{}.minNodeCount(), 0u);
  InteractionSequence seq{Interaction(0, 7)};
  EXPECT_EQ(seq.minNodeCount(), 8u);
}

TEST(InteractionSequence, MinNodeCountConsidersBothEndpoints) {
  // Regression: minNodeCount used to read only i.b(), relying on the
  // Interaction normalization a() < b(). The largest id must be found no
  // matter which constructor argument carried it or which endpoint it
  // lands on.
  InteractionSequence seq{Interaction(9, 1), Interaction(2, 3)};
  EXPECT_EQ(seq.minNodeCount(), 10u);
  InteractionSequence lone{Interaction(5, 0)};
  EXPECT_EQ(lone.minNodeCount(), 6u);
}

TEST(InteractionSequence, TimesInvolvingAndNextOccurrence) {
  InteractionSequence seq{Interaction(0, 1), Interaction(2, 3),
                          Interaction(0, 2), Interaction(0, 1)};
  const auto times = seq.timesInvolving(0);
  EXPECT_EQ(times, (std::vector<Time>{0, 2, 3}));
  EXPECT_EQ(seq.timesInvolving(0, 1), (std::vector<Time>{2, 3}));
  EXPECT_EQ(seq.nextOccurrence(1, 0), 0u);
  EXPECT_EQ(seq.nextOccurrence(1, 0, 1), 3u);
  EXPECT_EQ(seq.nextOccurrence(1, 3), kNever);
}

TEST(InteractionSequence, TimelineIndexMatchesNaiveScan) {
  // The inverted per-node timeline must agree with a direct scan of the
  // sequence for every (node, from) query shape.
  util::Rng rng(11);
  const std::size_t n = 7;
  const auto seq = traces::uniformRandom(n, 250, rng);
  for (NodeId u = 0; u < n; ++u) {
    for (Time from : {Time{0}, Time{1}, Time{100}, Time{249}, Time{250},
                      Time{400}}) {
      std::vector<Time> naive;
      for (Time t = from; t < seq.length(); ++t)
        if (seq.at(t).involves(u)) naive.push_back(t);
      EXPECT_EQ(seq.timesInvolving(u, from), naive)
          << "u=" << u << " from=" << from;
    }
    for (NodeId v = 0; v < n; ++v) {
      if (u == v) continue;
      for (Time from : {Time{0}, Time{60}, Time{245}}) {
        Time naive = kNever;
        for (Time t = from; t < seq.length(); ++t)
          if (seq.at(t) == Interaction(u, v)) {
            naive = t;
            break;
          }
        EXPECT_EQ(seq.nextOccurrence(u, v, from), naive)
            << "u=" << u << " v=" << v << " from=" << from;
      }
    }
  }
}

TEST(InteractionSequence, TimelineIndexExtendsAcrossAppends) {
  // Query (builds the index), append more interactions, query again: the
  // incremental extension must cover the appended suffix.
  InteractionSequence seq{Interaction(0, 1), Interaction(1, 2)};
  EXPECT_EQ(seq.timesInvolving(1), (std::vector<Time>{0, 1}));
  seq.append(Interaction(0, 1));
  InteractionSequence more{Interaction(1, 3), Interaction(0, 3)};
  seq.appendAll(more);
  EXPECT_EQ(seq.timesInvolving(1), (std::vector<Time>{0, 1, 2, 3}));
  EXPECT_EQ(seq.timesInvolving(3), (std::vector<Time>{3, 4}));
  EXPECT_EQ(seq.nextOccurrence(0, 1, 1), 2u);
  EXPECT_EQ(seq.nextOccurrence(0, 3), 4u);
}

TEST(InteractionSequence, QueriesOutOfRangeNodesAreEmpty) {
  InteractionSequence seq{Interaction(0, 1)};
  EXPECT_TRUE(seq.timesInvolving(17).empty());
  EXPECT_EQ(seq.nextOccurrence(16, 17), kNever);
  EXPECT_TRUE(InteractionSequence{}.timesInvolving(0).empty());
  EXPECT_EQ(InteractionSequence{}.nextOccurrence(0, 1), kNever);
}

TEST(InteractionSequence, EqualityIgnoresTimelineCache) {
  InteractionSequence a{Interaction(0, 1), Interaction(1, 2)};
  InteractionSequence b{Interaction(0, 1), Interaction(1, 2)};
  a.timesInvolving(0);  // build a's cache only
  EXPECT_TRUE(a == b);
  b.append(Interaction(0, 2));
  EXPECT_FALSE(a == b);
}

TEST(LazySequence, GeneratesOnDemand) {
  int calls = 0;
  LazySequence seq(
      [&calls](Time t) {
        ++calls;
        return Interaction(static_cast<NodeId>(t % 3),
                           static_cast<NodeId>(t % 3 + 1));
      },
      1000);
  EXPECT_EQ(seq.generatedLength(), 0u);
  EXPECT_EQ(seq.at(4), Interaction(1, 2));
  EXPECT_EQ(calls, 5);
  EXPECT_EQ(seq.generatedLength(), 5u);
  // Re-reading does not regenerate.
  EXPECT_EQ(seq.at(2), Interaction(2, 3));
  EXPECT_EQ(calls, 5);
}

TEST(LazySequence, CommittedPrefixIsStable) {
  util::Rng rng(5);
  LazySequence seq([&rng](Time) { return traces::uniformPair(8, rng); },
                   1 << 20);
  seq.ensure(99);
  const auto snapshot = seq.committed();
  seq.ensure(499);
  for (Time t = 0; t < 100; ++t)
    EXPECT_EQ(seq.committed().at(t), snapshot.at(t));
}

TEST(LazySequence, MaxLengthGuardThrows) {
  LazySequence seq([](Time) { return Interaction(0, 1); }, 10);
  seq.ensure(9);
  EXPECT_THROW(seq.ensure(10), std::length_error);
}

TEST(LazySequence, NullGeneratorThrows) {
  EXPECT_THROW(LazySequence(LazySequence::Generator{}),
               std::invalid_argument);
  EXPECT_THROW(LazySequence(LazySequence::BlockGenerator{}),
               std::invalid_argument);
}

TEST(LazySequence, BlockGeneratorCommitsIdenticalPrefix) {
  // The batched generator must realize the same committed sequence as the
  // per-item generator from the same seed — only how far ahead it commits
  // may differ (chunk granularity).
  util::Rng per_item_rng(77), block_rng(77);
  LazySequence per_item(
      [&per_item_rng](Time) { return traces::uniformPair(9, per_item_rng); });
  LazySequence block(LazySequence::BlockGenerator(
      [&block_rng](Time, std::size_t count, std::vector<Interaction>& out) {
        traces::appendUniform(9, count, block_rng, out);
      }));
  per_item.ensure(999);
  block.ensure(999);
  EXPECT_GE(block.generatedLength(), 1000u);
  for (Time t = 0; t < 1000; ++t)
    EXPECT_EQ(per_item.at(t), block.at(t)) << "t=" << t;
}

TEST(LazySequence, BlockGeneratorRespectsMaxLengthGuard) {
  util::Rng rng(5);
  LazySequence seq(LazySequence::BlockGenerator(
                       [&rng](Time, std::size_t count,
                              std::vector<Interaction>& out) {
                         traces::appendUniform(4, count, rng, out);
                       }),
                   10);
  seq.ensure(9);
  EXPECT_EQ(seq.generatedLength(), 10u);  // clamped to max_length
  EXPECT_THROW(seq.ensure(10), std::length_error);
}

TEST(Traces, UniformPairIsValidAndCoversAll) {
  util::Rng rng(11);
  std::set<std::pair<NodeId, NodeId>> seen;
  for (int i = 0; i < 5000; ++i) {
    const auto p = traces::uniformPair(5, rng);
    EXPECT_LT(p.a(), p.b());
    EXPECT_LT(p.b(), 5u);
    seen.emplace(p.a(), p.b());
  }
  EXPECT_EQ(seen.size(), 10u);  // all C(5,2) pairs appear
}

TEST(Traces, UniformPairIsUniform) {
  util::Rng rng(13);
  constexpr int kDraws = 90000;
  std::map<std::pair<NodeId, NodeId>, int> counts;
  for (int i = 0; i < kDraws; ++i) {
    const auto p = traces::uniformPair(4, rng);
    ++counts[{p.a(), p.b()}];
  }
  ASSERT_EQ(counts.size(), 6u);
  const double expected = kDraws / 6.0;
  for (const auto& [pair, c] : counts) {
    EXPECT_GT(c, expected * 0.93);
    EXPECT_LT(c, expected * 1.07);
  }
}

TEST(Traces, BulkUniformMatchesSingleDrawDecode) {
  // appendUniform's cached pair-table lookup must realize exactly the
  // sequence the sqrt decode of uniformPair commits to: same one
  // below(total) draw per pair, same lexicographic index mapping.
  for (const std::size_t n : {2u, 3u, 17u, 64u, 256u}) {
    util::Rng bulk_rng(0xB01D + n), single_rng(0xB01D + n);
    std::vector<Interaction> bulk;
    traces::appendUniform(n, 512, bulk_rng, bulk);
    ASSERT_EQ(bulk.size(), 512u);
    for (std::size_t k = 0; k < bulk.size(); ++k)
      EXPECT_EQ(bulk[k], traces::uniformPair(n, single_rng))
          << "n=" << n << " k=" << k;
  }
}

TEST(Traces, UniformPairNeedsTwoNodes) {
  util::Rng rng(1);
  EXPECT_THROW(traces::uniformPair(1, rng), std::invalid_argument);
}

TEST(Traces, ZipfExponentZeroIsUniformWeights) {
  traces::ZipfPairDistribution d(5, 0.0);
  for (double w : d.weights()) EXPECT_DOUBLE_EQ(w, 1.0);
}

TEST(Traces, ZipfSkewsTowardLowIds) {
  util::Rng rng(17);
  traces::ZipfPairDistribution d(10, 1.2);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 30000; ++i) {
    const auto p = d.sample(rng);
    ++counts[p.a()];
    ++counts[p.b()];
  }
  EXPECT_GT(counts[0], counts[5]);
  EXPECT_GT(counts[1], counts[9]);
}

TEST(Traces, RoundRobinActivatesEveryEdgeEachRound) {
  const auto g = traces::ringGraph(5);
  const auto seq = traces::roundRobin(g, 3);
  EXPECT_EQ(seq.length(), 15u);
  // Round boundaries contain every edge exactly once.
  std::set<Interaction> first_round;
  for (Time t = 0; t < 5; ++t) first_round.insert(seq.at(t));
  EXPECT_EQ(first_round.size(), 5u);
  EXPECT_EQ(seq.at(0), seq.at(5));  // deterministic repetition
}

TEST(Traces, ShuffledRoundsPermutesEdges) {
  util::Rng rng(23);
  const auto g = traces::completeGraph(6);
  const auto seq = traces::shuffledRounds(g, 2, rng);
  EXPECT_EQ(seq.length(), 30u);
  std::set<Interaction> round;
  for (Time t = 0; t < 15; ++t) round.insert(seq.at(t));
  EXPECT_EQ(round.size(), 15u);  // each round is a permutation of edges
}

TEST(Traces, BodySensorProducesHubContactsForEverySensor) {
  util::Rng rng(29);
  traces::BodySensorConfig config;
  config.sensors = 6;
  config.slots = 400;
  const auto seq = traces::bodySensorTrace(config, rng);
  ASSERT_GT(seq.length(), 0u);
  std::set<NodeId> met_hub;
  for (Time t = 0; t < seq.length(); ++t) {
    const auto& i = seq.at(t);
    EXPECT_LE(i.b(), 6u);
    if (i.involves(0)) met_hub.insert(i.other(0));
  }
  EXPECT_EQ(met_hub.size(), 6u);  // every sensor checks in eventually
}

TEST(Traces, BodySensorValidatesConfig) {
  util::Rng rng(1);
  traces::BodySensorConfig bad;
  bad.sensors = 1;
  EXPECT_THROW(traces::bodySensorTrace(bad, rng), std::invalid_argument);
  traces::BodySensorConfig bad2;
  bad2.min_period = 30;
  bad2.max_period = 10;
  EXPECT_THROW(traces::bodySensorTrace(bad2, rng), std::invalid_argument);
}

TEST(Traces, VehicularStaysInRangeAndMeetsSink) {
  util::Rng rng(31);
  traces::VehicularConfig config;
  config.width = 4;
  config.height = 4;
  config.cars = 8;
  config.steps = 3000;
  const auto seq = traces::vehicularTrace(config, rng);
  ASSERT_GT(seq.length(), 0u);
  bool sink_contact = false;
  for (Time t = 0; t < seq.length(); ++t) {
    EXPECT_LE(seq.at(t).b(), 8u);
    sink_contact |= seq.at(t).involves(0);
  }
  EXPECT_TRUE(sink_contact);
}

TEST(Traces, VehicularValidatesConfig) {
  util::Rng rng(1);
  traces::VehicularConfig bad;
  bad.cars = 1;
  EXPECT_THROW(traces::vehicularTrace(bad, rng), std::invalid_argument);
}

}  // namespace
}  // namespace doda::dynagraph
