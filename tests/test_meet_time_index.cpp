#include "dynagraph/meet_time_index.hpp"

#include <gtest/gtest.h>

#include "dynagraph/traces.hpp"
#include "util/rng.hpp"

namespace doda::dynagraph {
namespace {

/// Reference implementation: linear scan for the smallest t' > t with
/// I_{t'} = {u, sink}.
Time naiveMeetTime(const InteractionSequence& seq, NodeId sink, NodeId u,
                   Time t) {
  if (u == sink) return t;
  for (Time x = t + 1; x < seq.length(); ++x)
    if (seq.at(x) == Interaction(u, sink)) return x;
  return kNever;
}

TEST(MeetTimeIndex, SinkMeetTimeIsIdentity) {
  InteractionSequence seq{Interaction(0, 1)};
  MeetTimeIndex idx(seq, 0, 3);
  EXPECT_EQ(idx.meetTime(0, 0), 0u);
  EXPECT_EQ(idx.meetTime(0, 17), 17u);
}

TEST(MeetTimeIndex, StrictlyGreaterThanQueryTime) {
  // Paper: meetTime(t) is the smallest t' > t — a meeting AT t does not
  // count.
  InteractionSequence seq{Interaction(0, 1), Interaction(0, 1)};
  MeetTimeIndex idx(seq, 0, 2);
  EXPECT_EQ(idx.meetTime(1, 0), 1u);
  EXPECT_EQ(idx.meetTime(1, 1), kNever);
}

TEST(MeetTimeIndex, NeverWhenNoMeeting) {
  InteractionSequence seq{Interaction(1, 2), Interaction(1, 2)};
  MeetTimeIndex idx(seq, 0, 3);
  EXPECT_EQ(idx.meetTime(1, 0), kNever);
  EXPECT_EQ(idx.meetTime(2, 0), kNever);
}

TEST(MeetTimeIndex, RejectsBadArguments) {
  InteractionSequence seq{Interaction(0, 1)};
  EXPECT_THROW(MeetTimeIndex(seq, 9, 3), std::out_of_range);
  MeetTimeIndex idx(seq, 0, 2);
  EXPECT_THROW(idx.meetTime(5, 0), std::out_of_range);
}

class MeetTimeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MeetTimeProperty, MatchesNaiveScanOnRandomSequences) {
  util::Rng rng(GetParam());
  const std::size_t n = 4 + rng.below(12);
  const NodeId sink = static_cast<NodeId>(rng.below(n));
  const auto seq = traces::uniformRandom(n, 300, rng);
  MeetTimeIndex idx(seq, sink, n);
  for (int probe = 0; probe < 200; ++probe) {
    const NodeId u = static_cast<NodeId>(rng.below(n));
    const Time t = rng.below(320);
    EXPECT_EQ(idx.meetTime(u, t), naiveMeetTime(seq, sink, u, t))
        << "u=" << u << " t=" << t << " sink=" << sink;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MeetTimeProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(MeetTimeIndex, KnownMeetingsAreAscendingAndComplete) {
  util::Rng rng(77);
  const auto seq = traces::uniformRandom(6, 200, rng);
  MeetTimeIndex idx(seq, 0, 6);
  idx.meetTime(1, 200);  // force a full scan
  for (NodeId u = 1; u < 6; ++u) {
    const auto& times = idx.knownMeetings(u);
    EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
    for (Time t : times) EXPECT_EQ(seq.at(t), Interaction(0, u));
  }
}

TEST(MeetTimeIndex, LazyBackingExtendsOnDemand) {
  util::Rng rng(42);
  LazySequence lazy([&rng](Time) { return traces::uniformPair(6, rng); },
                    1 << 20);
  MeetTimeIndex idx(lazy, 0, 6, /*extension_chunk=*/64);
  // The sequence starts empty; the query must commit randomness until node
  // 3 meets the sink.
  const Time m = idx.meetTime(3, 0);
  ASSERT_NE(m, kNever);
  EXPECT_EQ(lazy.committed().at(m), Interaction(0, 3));
  EXPECT_GT(lazy.generatedLength(), m);
  // The answer agrees with a naive scan over the now-committed prefix.
  EXPECT_EQ(naiveMeetTime(lazy.committed(), 0, 3, 0), m);
}

TEST(MeetTimeIndex, LazyAnswersAreStableAcrossExtensions) {
  util::Rng rng(43);
  LazySequence lazy([&rng](Time) { return traces::uniformPair(5, rng); },
                    1 << 20);
  MeetTimeIndex idx(lazy, 0, 5, 32);
  const Time first = idx.meetTime(2, 0);
  lazy.ensure(first + 500);
  EXPECT_EQ(idx.meetTime(2, 0), first);
}

TEST(MeetTimeIndex, MonotoneCursorMatchesBinarySearchReference) {
  // The engine queries meetTime with nondecreasing t; the monotone cursor
  // must agree with the old upper_bound-over-the-full-list implementation
  // (naiveMeetTime is that reference, one scan per query).
  util::Rng rng(2024);
  const std::size_t n = 10;
  const auto seq = traces::uniformRandom(n, 500, rng);
  MeetTimeIndex idx(seq, 0, n);
  Time t = 0;
  while (t < 520) {
    for (NodeId u = 0; u < n; ++u)
      EXPECT_EQ(idx.meetTime(u, t), naiveMeetTime(seq, 0, u, t))
          << "u=" << u << " t=" << t;
    t += 1 + rng.below(7);
  }
}

TEST(MeetTimeIndex, CursorRecoversFromBackwardsQueries) {
  // Interleave forward and backward queries per node: the cursor must
  // reposition on a backwards query and stay correct afterwards.
  util::Rng rng(31337);
  const auto seq = traces::uniformRandom(6, 300, rng);
  MeetTimeIndex idx(seq, 2, 6);
  const Time probes[] = {0, 50, 250, 10, 11, 290, 0, 299, 5};
  for (NodeId u = 0; u < 6; ++u)
    for (Time t : probes)
      EXPECT_EQ(idx.meetTime(u, t), naiveMeetTime(seq, 2, u, t))
          << "u=" << u << " t=" << t;
}

TEST(MeetTimeIndex, RepeatedQueryAtSameTimeIsStable) {
  InteractionSequence seq{Interaction(0, 1), Interaction(0, 1),
                          Interaction(0, 1)};
  MeetTimeIndex idx(seq, 0, 2);
  EXPECT_EQ(idx.meetTime(1, 0), 1u);
  EXPECT_EQ(idx.meetTime(1, 0), 1u);  // cursor must not over-advance
  EXPECT_EQ(idx.meetTime(1, 1), 2u);
  EXPECT_EQ(idx.meetTime(1, 1), 2u);
}

TEST(MeetTimeIndex, LazyExhaustionReturnsNever) {
  // A backing sequence that can never contain a sink meeting for node 2.
  LazySequence lazy([](Time) { return Interaction(0, 1); }, 256);
  MeetTimeIndex idx(lazy, 0, 3, 64);
  EXPECT_EQ(idx.meetTime(2, 0), kNever);
}

TEST(MeetTimeIndex, ZeroChunkRejected) {
  LazySequence lazy([](Time) { return Interaction(0, 1); }, 16);
  EXPECT_THROW(MeetTimeIndex(lazy, 0, 3, 0), std::invalid_argument);
}

}  // namespace
}  // namespace doda::dynagraph
