// Statistical reproduction of the paper's randomized-adversary theorems at
// laptop scale. These tests use generous tolerances (the claims are about
// expectations; we average a few hundred trials with fixed seeds, so they
// are deterministic, but the tolerance guards against seed sensitivity).

#include <gtest/gtest.h>

#include "adversary/randomized_adversary.hpp"
#include "algorithms/gathering.hpp"
#include "algorithms/waiting.hpp"
#include "algorithms/waiting_greedy.hpp"
#include "analysis/meetings.hpp"
#include "dynagraph/traces.hpp"
#include "sim/experiment.hpp"
#include "sim/fault_experiment.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace doda::sim {
namespace {

namespace cf = util::closed_form;

TEST(Thm9Statistical, GatheringMeanMatchesClosedForm) {
  // E[X_G] = n(n-1) * sum 1/(i(i+1)) = (n-1)^2.
  MeasureConfig config;
  config.node_count = 48;
  config.trials = 300;
  config.seed = 1001;
  const auto r = measureRandomized(config, [](TrialContext&) {
    return std::make_unique<algorithms::Gathering>();
  });
  ASSERT_EQ(r.failed_trials, 0u);
  const double expected = cf::gatheringExpected(config.node_count);
  EXPECT_NEAR(r.interactions.mean() / expected, 1.0, 0.10);
}

TEST(Thm9Statistical, WaitingMeanMatchesClosedForm) {
  // E[X_W] = n(n-1)/2 * H(n-1).
  MeasureConfig config;
  config.node_count = 32;
  config.trials = 300;
  config.seed = 1002;
  const auto r = measureRandomized(config, [](TrialContext&) {
    return std::make_unique<algorithms::Waiting>();
  });
  ASSERT_EQ(r.failed_trials, 0u);
  const double expected = cf::waitingExpected(config.node_count);
  EXPECT_NEAR(r.interactions.mean() / expected, 1.0, 0.10);
}

TEST(Thm9Statistical, WaitingUnderBernoulliLossMatchesClosedForm) {
  // Under per-attempt loss p with the relaxed retry rule, each sink
  // meeting delivers independently w.p. 1-p, thinning the coupon process:
  // E[X_W(p)] = n(n-1)/2 * H(n-1) / (1-p).
  for (const double p : {0.2, 0.5}) {
    MeasureConfig config;
    config.node_count = 24;
    config.trials = 300;
    config.seed = 1010;
    config.faults = fault::FaultModel::bernoulliLoss(p);
    const auto r = measureWithFaults(config, 4096, [](TrialContext&) {
      return std::make_unique<algorithms::Waiting>();
    });
    ASSERT_EQ(r.degradation.completed(), config.trials) << "p=" << p;
    const double expected =
        cf::waitingLossExpected(config.node_count, p);
    EXPECT_NEAR(r.interactions.mean() / expected, 1.0, 0.10) << "p=" << p;
  }
}

TEST(Thm9Statistical, WaitingIsSlowerThanGatheringByLogFactor) {
  MeasureConfig config;
  config.node_count = 64;
  config.trials = 120;
  config.seed = 1003;
  const auto ga = measureRandomized(config, [](TrialContext&) {
    return std::make_unique<algorithms::Gathering>();
  });
  const auto w = measureRandomized(config, [](TrialContext&) {
    return std::make_unique<algorithms::Waiting>();
  });
  // Expected ratio: (n/2 * H(n-1)) / ((n-1)) ~ H(n)/2 * n/(n-1) ≈ 2.4 at
  // n = 64; require at least a clear separation.
  EXPECT_GT(w.interactions.mean() / ga.interactions.mean(), 1.8);
}

TEST(Thm7Statistical, LastTransmissionCostsQuadratic) {
  // The final transfer needs ~ n(n-1)/2 interactions in expectation: the
  // gap between Waiting's last two transmissions behaves like the full
  // coupon wait. We measure the tail gap of Waiting runs.
  MeasureConfig config;
  config.node_count = 24;
  config.trials = 400;
  config.seed = 1004;
  util::Rng master(config.seed);
  util::RunningStats tail_gap;
  for (std::size_t trial = 0; trial < config.trials; ++trial) {
    adversary::RandomizedAdversary adv(config.node_count, master());
    algorithms::Waiting w;
    core::Engine engine({config.node_count, 0},
                        core::AggregationFunction::count());
    const auto r = engine.run(w, adv);
    ASSERT_TRUE(r.terminated);
    const auto& sched = r.schedule;
    ASSERT_GE(sched.size(), 2u);
    tail_gap.add(static_cast<double>(sched.back().time -
                                     sched[sched.size() - 2].time));
  }
  // The last Waiting transfer waits for one specific pair out of n(n-1)/2:
  // expectation exactly n(n-1)/2.
  const double expected = cf::lastTransmissionExpected(config.node_count);
  EXPECT_NEAR(tail_gap.mean() / expected, 1.0, 0.15);
}

TEST(Thm8Statistical, OfflineOptimalMatchesNLogN) {
  // E[opt(0) + 1] = (n-1) H(n-1) (broadcast reversal argument).
  MeasureConfig config;
  config.node_count = 64;
  config.trials = 200;
  config.seed = 1005;
  const auto r = measureOfflineOptimal(config);
  ASSERT_EQ(r.failed_trials, 0u);
  const double expected = cf::broadcastExpected(config.node_count);
  EXPECT_NEAR(r.interactions.mean() / expected, 1.0, 0.10);
}

TEST(Thm8Statistical, OfflineOptimalConcentrates) {
  // Thm 8 also claims w.h.p. concentration; check the relative spread.
  MeasureConfig config;
  config.node_count = 96;
  config.trials = 150;
  config.seed = 1006;
  const auto r = measureOfflineOptimal(config);
  ASSERT_EQ(r.failed_trials, 0u);
  EXPECT_LT(r.interactions.stddev() / r.interactions.mean(), 0.35);
}

TEST(Thm10Statistical, WaitingGreedyTerminatesWithinTauWhp) {
  // Cor 3: WG with tau = n^1.5 sqrt(log n) finishes within tau w.h.p.
  // At n = 64 the constant-1 horizon is tight, so allow a small-c margin.
  MeasureConfig config;
  config.node_count = 64;
  config.trials = 120;
  config.seed = 1007;
  const auto tau = static_cast<core::Time>(
      2.0 * cf::waitingGreedyTau(config.node_count));
  const auto r = measureRandomized(config, [tau](TrialContext& ctx) {
    return std::make_unique<algorithms::WaitingGreedy>(ctx.meet_time, tau);
  });
  ASSERT_EQ(r.failed_trials, 0u);
  EXPECT_LT(r.interactions.mean(), static_cast<double>(tau));
  EXPECT_LT(r.interactions.max(), 1.5 * static_cast<double>(tau));
}

TEST(Thm11Statistical, WaitingGreedyBeatsGatheringAtScale) {
  // WG is asymptotically n^{1.5+o(1)} vs Gathering's n^2: by n = 192 the
  // separation must be visible.
  MeasureConfig config;
  config.node_count = 192;
  config.trials = 40;
  config.seed = 1008;
  const auto tau = static_cast<core::Time>(
      cf::waitingGreedyTau(config.node_count));
  const auto wg = measureRandomized(config, [tau](TrialContext& ctx) {
    return std::make_unique<algorithms::WaitingGreedy>(ctx.meet_time, tau);
  });
  const auto ga = measureRandomized(config, [](TrialContext&) {
    return std::make_unique<algorithms::Gathering>();
  });
  ASSERT_EQ(wg.failed_trials, 0u);
  EXPECT_LT(wg.interactions.mean(), ga.interactions.mean());
}

TEST(ScalingExponents, GatheringIsQuadraticWaitingGreedyIsNot) {
  // Fit empirical exponents over a size sweep: Gathering ~ n^2, WG ~ n^1.5.
  std::vector<double> ns, ga_means, wg_means;
  for (std::size_t n : {32u, 64u, 128u, 256u}) {
    MeasureConfig config;
    config.node_count = n;
    config.trials = 30;
    config.seed = 2000 + n;
    const auto ga = measureRandomized(config, [](TrialContext&) {
      return std::make_unique<algorithms::Gathering>();
    });
    const auto tau = static_cast<core::Time>(cf::waitingGreedyTau(n));
    const auto wg = measureRandomized(config, [tau](TrialContext& ctx) {
      return std::make_unique<algorithms::WaitingGreedy>(ctx.meet_time, tau);
    });
    ns.push_back(static_cast<double>(n));
    ga_means.push_back(ga.interactions.mean());
    wg_means.push_back(wg.interactions.mean());
  }
  const auto ga_fit = util::fitPowerLaw(ns, ga_means);
  const auto wg_fit = util::fitPowerLaw(ns, wg_means);
  EXPECT_NEAR(ga_fit.slope, 2.0, 0.15);
  EXPECT_LT(wg_fit.slope, 1.85);
  EXPECT_GT(wg_fit.slope, 1.2);
}

TEST(Lemma1Statistical, SinkMeetsThetaFnNodesInNFnInteractions) {
  // Lemma 1: in n f(n) interactions, Theta(f(n)) distinct nodes meet the
  // sink. For f(n) = sqrt(n) and n f(n) interactions, E[distinct] =
  // (n-1)(1 - (1 - 2/n/(n-1) * ... )) — we check the Theta band [0.5, 1.5].
  const std::size_t n = 256;
  const double f = 16.0;  // sqrt(256)
  const auto budget = static_cast<core::Time>(n * f);
  util::Rng rng(3001);
  util::RunningStats distinct;
  for (int trial = 0; trial < 60; ++trial) {
    const auto seq = dynagraph::traces::uniformRandom(n, budget, rng);
    distinct.add(static_cast<double>(
        analysis::distinctSinkContacts(seq, 0, budget)));
  }
  EXPECT_GT(distinct.mean(), 0.5 * f);
  EXPECT_LT(distinct.mean(), 2.5 * f);
}

}  // namespace
}  // namespace doda::sim
